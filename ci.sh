#!/usr/bin/env bash
# CI gate for the LimeQO reproduction workspace.
#
#   ./ci.sh         # lint + tier-1 (build, tests, bench type-check)
#   ./ci.sh --fast  # skip the release build (debug tests only)
#
# Everything runs offline: external deps are vendored under vendor/ (see
# vendor/README.md), so no registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ "$FAST" == "0" ]]; then
  echo "==> tier-1: cargo build --release"
  cargo build --offline --release
fi

echo "==> tier-1: cargo test -q"
cargo test --offline -q

echo "==> benches type-check: cargo bench --no-run"
cargo bench --offline --no-run

echo "CI OK"
