#!/usr/bin/env bash
# CI gate for the LimeQO reproduction workspace.
#
#   ./ci.sh            # lint + tier-1 (build, tests, perf smoke, bench type-check)
#   ./ci.sh --fast     # skip the release build (debug tests only)
#   ./ci.sh --ignored  # slow tier only: tests marked #[ignore]
#                      # (full-scale figure smokes, the 100k-query scale
#                      # scenarios, and the sharded 1M-row tier with its
#                      # 256 MiB memory-budget assertion; > ~5 s each) +
#                      # the full-size perf trajectory
#                      # (bench-results/BENCH_policy.json)
#
# Everything runs offline: external deps are vendored under vendor/ (see
# vendor/README.md), so no registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

if [[ "${1:-}" == "--ignored" ]]; then
  echo "==> slow tier: cargo test -- --ignored"
  cargo test --offline -q -p limeqo-integration-tests -- --ignored
  # Full-size perf trajectory: 10k×49 hot paths, self-validated JSON
  # (the binary re-parses the file and checks the required metric keys,
  # failing the tier if the document is malformed).
  echo "==> perf trajectory (full): bench-results/BENCH_policy.json"
  cargo run --offline --release -q -p limeqo-bench --bin perf -- --full
  echo "CI OK (slow tier)"
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

# Robustness gate: the durability layer and the daemon must not panic on
# I/O failures — any unwrap/expect in their non-test code is a potential
# daemon-killer, so production paths carry typed errors only (code below
# the #[cfg(test)] marker is exempt).
echo "==> no-unwrap gate (persist.rs + svc non-test code)"
for f in crates/core/src/persist.rs crates/svc/src/lib.rs; do
  if awk '/#\[cfg\(test\)\]/{exit} {print}' "$f" | grep -nE '\.unwrap\(\)|\.expect\('; then
    echo "ci.sh: $f has unwrap/expect in non-test code (use typed errors)" >&2
    exit 1
  fi
done

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Doc gate: rustdoc warnings (missing_docs on ALL five workspace crates'
# lib targets, broken intra-doc links everywhere) are errors, so the API
# doc pass in ARCHITECTURE.md can't rot.
echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

if [[ "$FAST" == "0" ]]; then
  echo "==> tier-1: cargo build --release"
  cargo build --offline --release
fi

echo "==> tier-1: cargo test -q"
cargo test --offline -q

# Re-runs a suite tier-1 already covered (~9 s) so a golden mismatch gets
# its own named gate line in CI output rather than drowning in tier-1.
echo "==> scenario golden suite"
cargo test --offline -q -p limeqo-integration-tests --test scenarios

# Kernel-equivalence differential suite: blocked kernels bit-identical to
# naive at every tile/thread combination, incremental factor updates exact
# when all rows are dirty and deviation-bounded otherwise, and the
# LimeQO-vs-Random invariant with incremental updates on. Re-run under its
# own gate line (like the golden suite) so a kernel divergence is named in
# CI output; the large-shape sweep rides the --ignored tier.
echo "==> kernel-equivalence differential suite"
cargo test --offline -q -p limeqo-integration-tests --test kernels

# The file corpus under scenarios/ must stay a byte-exact re-expression
# of the code registry (canonical serializer form, spec-equal,
# bit-identical metrics on the cheap pair), and every pinned
# counterexample under scenarios/broken/ must still be caught by the
# fuzzer's calibrated invariants.
echo "==> scenario corpus + fuzzer gates"
cargo test --offline -q -p limeqo-integration-tests \
  --test scenario_corpus --test scenario_fuzz

# Perf trajectory, smoke-sized: emits bench-results/BENCH_policy_smoke.json
# (NOT the committed BENCH_policy.json — smoke never clobbers the tracked
# full-size trajectory) and fails if the document does not parse or misses
# a required metric key (the binary validates itself;
# tests/tests/perf_report.rs pins the same contract in-process). Full
# sizes live in the --ignored tier.
if [[ "$FAST" == "0" ]]; then
  echo "==> perf trajectory (smoke): bench-results/BENCH_policy_smoke.json"
  cargo run --offline --release -q -p limeqo-bench --bin perf -- --smoke
  # Belt-and-braces beyond the binary's self-validation: the selection
  # subsystem's metric keys must actually land in the emitted document
  # (a silently dropped emitter line would otherwise only fail in-process
  # tests, not the committed-trajectory workflow).
  for key in policy.sample_s policy.topk_s \
    als.blocked_s als.block_speedup als.incremental_s \
    shard.select_s shard.merge_s shard.als_s shard.mem_bytes \
    svc.journal_append_s svc.snapshot_s svc.recover_s \
    svc.retry_backoff_s fault.injected_total; do
    if ! grep -q "\"$key\"" bench-results/BENCH_policy_smoke.json; then
      echo "ci.sh: BENCH_policy_smoke.json is missing \"$key\"" >&2
      exit 1
    fi
  done
fi

# Corpus + fuzzer, through the real binary: load and run the whole
# scenarios/ directory (exit 2 with the offending path on any
# parse/validation failure), then a bounded property-based smoke —
# 8 generated specs off the fixed CI seed, every calibrated invariant
# checked, failures auto-minimized under bench-results/fuzz-failures/.
if [[ "$FAST" == "0" ]]; then
  echo "==> scenario corpus run (scenario --dir scenarios)"
  cargo run --offline --release -q -p limeqo-bench --bin scenario -- --dir scenarios
  echo "==> scenario fuzz smoke (seed 1, 8 cases)"
  cargo run --offline --release -q -p limeqo-bench --bin scenario -- fuzz --seed 1 --count 8
fi

# Service-layer crash smoke: boot the daemon, kill it mid-round (abort
# after 12 journaled events — no flush, no destructors), recover into a
# continuation script, and require the recovered trace reply to be
# byte-identical to an uninterrupted run's. This exercises the real
# binary + real files end to end; tests/tests/crash_recovery.rs proves
# the same property in-process at every kill point.
if [[ "$FAST" == "0" ]]; then
  echo "==> limeqo-svc crash-recovery smoke"
  SVC=target/release/limeqo-svc
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  "$SVC" --dir "$SMOKE_DIR/ref" --script crates/svc/smoke/full.ndjson > "$SMOKE_DIR/ref.out"
  set +e
  "$SVC" --dir "$SMOKE_DIR/kill" --script crates/svc/smoke/full.ndjson \
    --crash-after-events 12 > "$SMOKE_DIR/kill.out" 2>/dev/null
  kill_status=$?
  set -e
  if [[ "$kill_status" -eq 0 ]]; then
    echo "ci.sh: svc smoke expected the crashed daemon to die non-zero" >&2
    exit 1
  fi
  "$SVC" --dir "$SMOKE_DIR/kill" --script crates/svc/smoke/resume.ndjson > "$SMOKE_DIR/resume.out"
  grep '"op":"trace"' "$SMOKE_DIR/ref.out" > "$SMOKE_DIR/ref.trace"
  grep '"op":"trace"' "$SMOKE_DIR/resume.out" > "$SMOKE_DIR/resume.trace"
  if ! cmp -s "$SMOKE_DIR/ref.trace" "$SMOKE_DIR/resume.trace"; then
    echo "ci.sh: recovered svc trace differs from the uninterrupted run:" >&2
    diff "$SMOKE_DIR/ref.trace" "$SMOKE_DIR/resume.trace" >&2 || true
    exit 1
  fi
  echo "    killed at event 12 (exit $kill_status), recovered trace byte-identical"

  # Protocol error-path smoke: every malformed request in
  # crates/svc/smoke/errors.ndjson (pre-init ops, non-JSON, duplicate
  # init, unknown op, bad/missing fields) must get an {"ok":false,...}
  # reply while the daemon keeps serving — 7 errors, 4 successes, clean
  # exit. tests in crates/svc/src/lib.rs pin the same paths in-process.
  echo "==> limeqo-svc protocol error-path smoke"
  "$SVC" --dir "$SMOKE_DIR/errors" --script crates/svc/smoke/errors.ndjson \
    > "$SMOKE_DIR/errors.out"
  err_count=$(grep -c '"ok":false' "$SMOKE_DIR/errors.out")
  ok_count=$(grep -c '"ok":true' "$SMOKE_DIR/errors.out")
  if [[ "$err_count" -ne 7 || "$ok_count" -ne 4 ]]; then
    echo "ci.sh: svc error smoke expected 7 error + 4 ok replies, got $err_count + $ok_count:" >&2
    cat "$SMOKE_DIR/errors.out" >&2
    exit 1
  fi
  if ! tail -n 1 "$SMOKE_DIR/errors.out" | grep -q '"op":"shutdown"'; then
    echo "ci.sh: svc error smoke: daemon did not survive to the final shutdown" >&2
    exit 1
  fi
  echo "    7 error replies, 4 ok replies, daemon survived to shutdown"

  # Chaos smoke: a scripted append failure (--fault-at 20, mid tick 4)
  # inside a live daemon. The daemon must degrade rather than die: keep
  # ticking from memory, answer status with degraded:true + the persist
  # error, still serve hint, and exit 0. A fault-free restart on the same
  # state directory must then come up clean (degraded:false) — the
  # journal is valid up to the fault point. crash_recovery.rs proves the
  # same guarantees in-process across a 5-kind × 300-op fault grid.
  echo "==> limeqo-svc chaos smoke (--fault-at 20)"
  "$SVC" --dir "$SMOKE_DIR/chaos" --script crates/svc/smoke/chaos.ndjson \
    --fault-at 20 > "$SMOKE_DIR/chaos.out"
  if ! grep '"op":"status"' "$SMOKE_DIR/chaos.out" | grep -q '"degraded":true'; then
    echo "ci.sh: chaos smoke: status after the injected fault must report degraded:true" >&2
    cat "$SMOKE_DIR/chaos.out" >&2
    exit 1
  fi
  if ! grep '"op":"hint"' "$SMOKE_DIR/chaos.out" | grep -q '"ok":true'; then
    echo "ci.sh: chaos smoke: hint must keep serving in degraded mode" >&2
    cat "$SMOKE_DIR/chaos.out" >&2
    exit 1
  fi
  printf '{"op":"status"}\n{"op":"shutdown"}\n' > "$SMOKE_DIR/chaos-restart.ndjson"
  "$SVC" --dir "$SMOKE_DIR/chaos" --script "$SMOKE_DIR/chaos-restart.ndjson" \
    > "$SMOKE_DIR/chaos2.out"
  if ! grep '"op":"status"' "$SMOKE_DIR/chaos2.out" | grep -q '"degraded":false'; then
    echo "ci.sh: chaos smoke: fault-free restart must come up clean" >&2
    cat "$SMOKE_DIR/chaos2.out" >&2
    exit 1
  fi
  echo "    degraded daemon kept serving, exited 0, clean restart recovered"
fi

echo "==> benches type-check: cargo bench --no-run"
cargo bench --offline --no-run

echo "CI OK"
