#!/usr/bin/env bash
# CI gate for the LimeQO reproduction workspace.
#
#   ./ci.sh            # lint + tier-1 (build, tests, perf smoke, bench type-check)
#   ./ci.sh --fast     # skip the release build (debug tests only)
#   ./ci.sh --ignored  # slow tier only: tests marked #[ignore]
#                      # (full-scale figure smokes and the 100k-query
#                      # scale scenarios; > ~5 s each) + the full-size
#                      # perf trajectory (bench-results/BENCH_policy.json)
#
# Everything runs offline: external deps are vendored under vendor/ (see
# vendor/README.md), so no registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

if [[ "${1:-}" == "--ignored" ]]; then
  echo "==> slow tier: cargo test -- --ignored"
  cargo test --offline -q -p limeqo-integration-tests -- --ignored
  # Full-size perf trajectory: 10k×49 hot paths, self-validated JSON
  # (the binary re-parses the file and checks the required metric keys,
  # failing the tier if the document is malformed).
  echo "==> perf trajectory (full): bench-results/BENCH_policy.json"
  cargo run --offline --release -q -p limeqo-bench --bin perf -- --full
  echo "CI OK (slow tier)"
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Doc gate: rustdoc warnings (missing_docs on ALL five workspace crates'
# lib targets, broken intra-doc links everywhere) are errors, so the API
# doc pass in ARCHITECTURE.md can't rot.
echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

if [[ "$FAST" == "0" ]]; then
  echo "==> tier-1: cargo build --release"
  cargo build --offline --release
fi

echo "==> tier-1: cargo test -q"
cargo test --offline -q

# Re-runs a suite tier-1 already covered (~9 s) so a golden mismatch gets
# its own named gate line in CI output rather than drowning in tier-1.
echo "==> scenario golden suite"
cargo test --offline -q -p limeqo-integration-tests --test scenarios

# Perf trajectory, smoke-sized: emits bench-results/BENCH_policy_smoke.json
# (NOT the committed BENCH_policy.json — smoke never clobbers the tracked
# full-size trajectory) and fails if the document does not parse or misses
# a required metric key (the binary validates itself;
# tests/tests/perf_report.rs pins the same contract in-process). Full
# sizes live in the --ignored tier.
if [[ "$FAST" == "0" ]]; then
  echo "==> perf trajectory (smoke): bench-results/BENCH_policy_smoke.json"
  cargo run --offline --release -q -p limeqo-bench --bin perf -- --smoke
  # Belt-and-braces beyond the binary's self-validation: the selection
  # subsystem's metric keys must actually land in the emitted document
  # (a silently dropped emitter line would otherwise only fail in-process
  # tests, not the committed-trajectory workflow).
  for key in policy.sample_s policy.topk_s; do
    if ! grep -q "\"$key\"" bench-results/BENCH_policy_smoke.json; then
      echo "ci.sh: BENCH_policy_smoke.json is missing \"$key\"" >&2
      exit 1
    fi
  done
fi

echo "==> benches type-check: cargo bench --no-run"
cargo bench --offline --no-run

echo "CI OK"
