#!/usr/bin/env bash
# CI gate for the LimeQO reproduction workspace.
#
#   ./ci.sh            # lint + tier-1 (build, tests, bench type-check)
#   ./ci.sh --fast     # skip the release build (debug tests only)
#   ./ci.sh --ignored  # slow tier only: tests marked #[ignore]
#                      # (full-scale figure smokes; > ~5 s each)
#
# Everything runs offline: external deps are vendored under vendor/ (see
# vendor/README.md), so no registry access is needed or attempted.
set -euo pipefail
cd "$(dirname "$0")"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

if [[ "${1:-}" == "--ignored" ]]; then
  echo "==> slow tier: cargo test -- --ignored"
  cargo test --offline -q -p limeqo-integration-tests -- --ignored
  echo "CI OK (slow tier)"
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Doc gate: rustdoc warnings (missing_docs on limeqo-core/limeqo-linalg,
# broken intra-doc links everywhere) are errors, so the API doc pass in
# ARCHITECTURE.md can't rot.
echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

if [[ "$FAST" == "0" ]]; then
  echo "==> tier-1: cargo build --release"
  cargo build --offline --release
fi

echo "==> tier-1: cargo test -q"
cargo test --offline -q

# Re-runs a suite tier-1 already covered (~9 s) so a golden mismatch gets
# its own named gate line in CI output rather than drowning in tier-1.
echo "==> scenario golden suite"
cargo test --offline -q -p limeqo-integration-tests --test scenarios

echo "==> benches type-check: cargo bench --no-run"
cargo bench --offline --no-run

echo "CI OK"
