//! Online exploration (the paper's §6 future-work direction): no offline
//! window at all — queries are optimized as they arrive, with a bounded
//! regression guard.
//!
//! Each arrival normally serves its best verified hint; with a small
//! probability it gambles on the completed matrix's best unverified hint,
//! cancelled at ρ× the incumbent latency if the gamble goes wrong. The
//! workload matrix fills up as a side effect, at a hard per-arrival
//! regression bound.
//!
//! Run with: `cargo run --release -p limeqo-examples --bin online_exploration`

use limeqo_core::explore::MatOracle;
use limeqo_core::online::{OnlineConfig, OnlineExplorer};
use limeqo_core::AlsCompleter;
use limeqo_linalg::rng::SeededRng;
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    let mut workload = WorkloadSpec::tiny(60, 31).build();
    let matrices = workload.build_oracle();
    let oracle = MatOracle::new(matrices.true_latency.clone(), Some(matrices.est_cost.clone()));

    // A day of dashboard traffic: 5000 arrivals, Zipf-ish skew.
    let mut rng = SeededRng::new(17);
    let trace: Vec<usize> = (0..5000)
        .map(|_| {
            let r = rng.uniform(0.0, 1.0);
            ((r * r * workload.n() as f64) as usize).min(workload.n() - 1)
        })
        .collect();

    println!(
        "online exploration over {} arrivals ({} unique queries)\n",
        trace.len(),
        workload.n()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>7} {:>9}",
        "explore%", "experienced", "all-default", "saved", "wins", "cancelled"
    );
    for explore_prob in [0.0, 0.05, 0.1, 0.2] {
        let cfg = OnlineConfig { explore_prob, rho: 1.2, seed: 3, ..Default::default() };
        let mut online =
            OnlineExplorer::new(&oracle, Box::new(AlsCompleter::paper_default(5)), cfg);
        online.serve_trace(&trace);
        let s = online.stats();
        println!(
            "{:>7.0}% {:>11.1}s {:>11.1}s {:>9.1}% {:>7} {:>9}",
            explore_prob * 100.0,
            s.total_latency,
            s.default_latency,
            100.0 * (1.0 - s.total_latency / s.default_latency),
            s.wins,
            s.cancelled
        );
    }
    println!("\neach exploring arrival risks at most rho-1 = 20% extra latency (plus the");
    println!("incumbent rerun on cancellation); the verified plan cache and the matrix");
    println!("keep improving without any dedicated offline window.");
}
