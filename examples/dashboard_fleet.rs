//! Dashboard fleet: the paper's motivating scenario — a mostly repetitive
//! analytic workload (live dashboards) where new panels (queries) appear
//! over time.
//!
//! Demonstrates workload shift handling (paper §5.3): LimeQO keeps
//! exploring as 30% new queries arrive mid-flight, and the matrix rows
//! already explored transfer knowledge to the newcomers through the shared
//! hint factors.
//!
//! Run with: `cargo run --release -p limeqo-examples --bin dashboard_fleet`

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::{GreedyPolicy, LimeQoPolicy, Policy};
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    let mut workload = WorkloadSpec::tiny(60, 99).build();
    let matrices = workload.build_oracle();
    let oracle = MatOracle::new(matrices.true_latency.clone(), Some(matrices.est_cost.clone()));
    let n = workload.n();
    let initial = n * 7 / 10;
    let shift_at = 0.6 * matrices.default_total;
    let horizon = 2.0 * matrices.default_total;

    println!("dashboard fleet: {initial} panels now, {} more arriving later\n", n - initial);
    println!("{:<22} {:>12} {:>12} {:>12}", "policy", "before shift", "after shift", "end");
    for (name, policy) in [
        ("LimeQO", Box::new(LimeQoPolicy::with_als(3)) as Box<dyn Policy>),
        ("Greedy", Box::new(GreedyPolicy)),
    ] {
        let cfg = ExploreConfig { batch: 8, seed: 5, ..Default::default() };
        let mut ex = Explorer::new(&oracle, policy, cfg, initial);
        ex.run_until(shift_at);
        let before = ex.workload_latency();
        // The new dashboards go live: their defaults run online, then
        // offline exploration covers them too.
        ex.add_queries(n - initial);
        let right_after = ex.workload_latency();
        ex.run_until(horizon);
        let end = ex.workload_latency();
        println!("{:<22} {:>11.1}s {:>11.1}s {:>11.1}s", name, before, right_after, end);
    }
    println!(
        "\n(default total for all {n} panels: {:.1}s, oracle-optimal {:.1}s)",
        matrices.default_total, matrices.optimal_total
    );
    println!("LimeQO recovers from the arrival faster: the hint factors H learned on");
    println!("the old panels immediately transfer to the new rows of the matrix.");
}
