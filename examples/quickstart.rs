//! Quickstart: offline-optimize a small repetitive workload with LimeQO.
//!
//! Builds a simulated DBMS workload, explores (query, hint) cells offline
//! with censored-ALS-guided active learning, and prints the verified hint
//! selection for each query — the plan cache a production deployment would
//! serve from, with the paper's no-regressions guarantee.
//!
//! Run with: `cargo run --release -p limeqo-examples --bin quickstart`

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    // 1. A workload: 40 repetitive queries against a synthetic catalog.
    //    (Real deployments would instead record latencies from their DBMS's
    //    hint interface; `limeqo-sim` plays that role here.)
    let mut workload = WorkloadSpec::tiny(40, 42).build();
    let matrices = workload.build_oracle();
    println!(
        "workload `{}`: {} queries x {} hints",
        workload.spec.name,
        workload.n(),
        workload.k()
    );
    println!(
        "default plans take {:.1}s total; a perfect oracle would take {:.1}s ({:.2}x headroom)\n",
        matrices.default_total,
        matrices.optimal_total,
        matrices.headroom()
    );

    // 2. Offline exploration with LimeQO (Algorithm 1 + censored ALS).
    let oracle = MatOracle::new(matrices.true_latency.clone(), Some(matrices.est_cost.clone()));
    let policy = LimeQoPolicy::with_als(7);
    let cfg = ExploreConfig { batch: 8, seed: 7, ..Default::default() };
    let mut explorer = Explorer::new(&oracle, Box::new(policy), cfg, workload.n());

    // Spend half the default workload time exploring.
    let budget = 0.5 * matrices.default_total;
    explorer.run_until(budget);

    println!(
        "after {:.1}s of offline exploration ({} plans executed, {} timed out):",
        explorer.time_spent(),
        explorer.cells_executed(),
        explorer.wm().censored_count()
    );
    println!(
        "  workload latency: {:.1}s -> {:.1}s (optimal {:.1}s)",
        matrices.default_total,
        explorer.workload_latency(),
        matrices.optimal_total
    );
    println!("  model overhead: {:.0}ms\n", explorer.overhead() * 1000.0);

    // 3. The verified plan cache: best observed hint per query.
    println!("verified hint selections (queries with an improvement):");
    for q in 0..workload.n() {
        let (hint, latency) = explorer.wm().row_best(q).expect("default always observed");
        let default = matrices.true_latency[(q, 0)];
        if hint != 0 {
            println!(
                "  q{q:<3} {} -> hint {:<2} [{}]  {:.3}s -> {:.3}s ({:.1}x)",
                workload.queries[q].class.label(),
                hint,
                workload.hints.get(hint).tag(),
                default,
                latency,
                default / latency
            );
        }
    }
    println!("\nqueries without a verified improvement keep their default plan —");
    println!("that is the no-regressions guarantee.");
}
