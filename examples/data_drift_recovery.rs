//! Data drift recovery: the database grows and value distributions shift
//! (paper §5.4) — how stale do cached hint selections get, and how fast
//! does LimeQO recover after a hard data shift?
//!
//! Run with: `cargo run --release -p limeqo-examples --bin data_drift_recovery`

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_sim::drift::{build_oracle_uncalibrated, drift_workload, optimal_hint_change_fraction};
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    let mut workload = WorkloadSpec::tiny(60, 123).build();
    let base = workload.build_oracle();
    println!(
        "base workload: default {:.1}s optimal {:.1}s\n",
        base.default_total, base.optimal_total
    );

    // 1. How quickly do optimal hints rot as the data drifts?
    println!("optimal-hint churn under incremental data updates:");
    for (days, label) in
        [(7.0, "1 week"), (90.0, "3 months"), (365.0, "1 year"), (730.0, "2 years")]
    {
        let drifted = drift_workload(&workload, days, 0xD0);
        let o = build_oracle_uncalibrated(&drifted);
        println!(
            "  after {label:>9}: {:4.1}% of queries have a new optimal hint; defaults now {:.1}s",
            100.0 * optimal_hint_change_fraction(&base, &o),
            o.default_total
        );
    }

    // 2. Hard shift: explore on today's data, then swap in the 2-years-later
    //    database and keep going.
    let oracle_now = MatOracle::new(base.true_latency.clone(), Some(base.est_cost.clone()));
    let future = drift_workload(&workload, 730.0, 0xD1);
    let future_m = build_oracle_uncalibrated(&future);
    let oracle_future =
        MatOracle::new(future_m.true_latency.clone(), Some(future_m.est_cost.clone()));

    let cfg = ExploreConfig { batch: 8, seed: 9, ..Default::default() };
    let mut ex =
        Explorer::new(&oracle_now, Box::new(LimeQoPolicy::with_als(11)), cfg, workload.n());
    ex.run_until(2.0 * base.default_total);
    println!(
        "\nexplored old data: workload latency {:.1}s (optimal {:.1}s)",
        ex.workload_latency(),
        base.optimal_total
    );

    ex.data_shift(&oracle_future);
    let stale = ex.workload_latency();
    println!(
        "data shift! cached hints re-priced on new data: {:.1}s (new default would be {:.1}s)",
        stale, future_m.default_total
    );
    assert!(stale <= future_m.default_total * 1.001, "cached hints should still help");

    let t0 = ex.time_spent();
    ex.run_until(t0 + 1.0 * future_m.default_total);
    println!(
        "after re-exploring for one workload time: {:.1}s (new optimal {:.1}s)",
        ex.workload_latency(),
        future_m.optimal_total
    );
    println!("\nthe cached plans carried most of the benefit across the shift, and");
    println!("re-exploration recovered the rest — matching the paper's Fig. 11 story.");
}
