//! The ETL trap (paper §5.1 / Fig. 8): a long write-bound query that no
//! hint can speed up defeats the Greedy heuristic, while LimeQO's
//! predictive model learns to ignore it.
//!
//! Run with: `cargo run --release -p limeqo-examples --bin etl_greedy_trap`

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::{GreedyPolicy, LimeQoPolicy, Policy};
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    let mut workload = WorkloadSpec::tiny(50, 77).build();
    // A COPY-style export that takes 20 s no matter what the optimizer
    // does; the calibration target grows with it so the rest of the
    // workload keeps its scale.
    workload.add_etl_query(20.0);
    workload.spec.target_default_total += 20.0;
    let etl_row = workload.n() - 1;
    let matrices = workload.build_oracle();
    let oracle = MatOracle::new(matrices.true_latency.clone(), Some(matrices.est_cost.clone()));
    println!(
        "workload with ETL query: default {:.1}s (ETL alone: {:.1}s)\n",
        matrices.default_total,
        matrices.true_latency[(etl_row, 0)]
    );

    let budget = 1.5 * matrices.default_total;
    for (name, policy) in [
        ("Greedy", Box::new(GreedyPolicy) as Box<dyn Policy>),
        ("LimeQO", Box::new(LimeQoPolicy::with_als(3))),
    ] {
        let cfg = ExploreConfig { batch: 8, seed: 21, ..Default::default() };
        let mut ex = Explorer::new(&oracle, policy, cfg, workload.n());
        ex.run_until(budget);
        // How much exploration time went into the hopeless ETL row?
        let etl_cells =
            (0..workload.k()).filter(|&h| ex.wm().cell(etl_row, h).is_observed()).count() - 1; // default was free
        println!(
            "{name}: latency {:.1}s after {:.1}s exploration; probed the ETL query {etl_cells} times",
            ex.workload_latency(),
            ex.time_spent()
        );
    }
    println!("\nGreedy keeps attacking the longest-running query — the unimprovable ETL —");
    println!("while LimeQO's completed matrix predicts no gain there and spends the");
    println!("budget on queries that actually have headroom.");
}
