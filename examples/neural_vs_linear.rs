//! LimeQO vs LimeQO+ on one workload: accuracy/overhead trade-off of the
//! linear (censored ALS) and neural (transductive TCNN) predictive models
//! (paper §5.2).
//!
//! Run with: `cargo run --release -p limeqo-examples --bin neural_vs_linear`

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_sim::workloads::WorkloadSpec;
use limeqo_tcnn::{TcnnConfig, TransductiveTcnnCompleter, WorkloadFeatures};

fn main() {
    let mut workload = WorkloadSpec::tiny(80, 55).build();
    let matrices = workload.build_oracle();
    let oracle = MatOracle::new(matrices.true_latency.clone(), Some(matrices.est_cost.clone()));
    let budget = 1.0 * matrices.default_total;
    println!(
        "workload: {} queries, default {:.1}s, optimal {:.1}s; exploring for {:.1}s\n",
        workload.n(),
        matrices.default_total,
        matrices.optimal_total,
        budget
    );

    // Linear: censored ALS (the paper's LimeQO).
    let cfg = ExploreConfig { batch: 16, seed: 4, ..Default::default() };
    let mut linear =
        Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(5)), cfg.clone(), workload.n());
    linear.run_until(budget);
    println!(
        "LimeQO  (ALS):  latency {:.1}s, model overhead {:>8.3}s",
        linear.workload_latency(),
        linear.overhead()
    );

    // Neural: transductive TCNN (the paper's LimeQO+). Plan featurization
    // is shared, as a deployment would cache it.
    let features = WorkloadFeatures::build(&workload);
    let tcnn = TransductiveTcnnCompleter::with_features(features, 5, TcnnConfig::default(), 6);
    let policy = LimeQoPolicy::new(Box::new(tcnn), "limeqo+");
    let mut neural = Explorer::new(&oracle, Box::new(policy), cfg, workload.n());
    neural.run_until(budget);
    println!(
        "LimeQO+ (TCNN): latency {:.1}s, model overhead {:>8.3}s",
        neural.workload_latency(),
        neural.overhead()
    );

    let ratio = neural.overhead() / linear.overhead().max(1e-9);
    println!("\nthe neural model costs {ratio:.0}x more compute for its predictions");
    println!("(the paper measured 360x on their CPU; the exact factor depends on");
    println!("network size and hardware, the ordering is what matters).");
}
