//! Runnable example applications for the LimeQO reproduction.
//!
//! Each binary in this crate exercises the public API end to end:
//!
//! * `quickstart` — build a workload, explore offline, print the verified
//!   plan cache,
//! * `dashboard_fleet` — repetitive dashboard workload with new queries
//!   arriving mid-exploration (workload shift, §5.3),
//! * `data_drift_recovery` — hint-churn under incremental data updates and
//!   recovery from a hard data shift (§5.4),
//! * `etl_greedy_trap` — the write-bound ETL query that defeats Greedy
//!   (§5.1 / Fig. 8),
//! * `neural_vs_linear` — LimeQO vs LimeQO+ accuracy/overhead trade-off
//!   (§5.2).
