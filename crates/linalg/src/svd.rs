//! Thin singular value decomposition.
//!
//! LimeQO needs the SVD in three places: the Fig. 14 low-rank analysis
//! (singular-value spectrum of the workload matrix), Singular Value
//! Thresholding, and the Soft-Impute solver for nuclear-norm minimization
//! (Fig. 17). All three operate on n×k matrices with k = 49 hints, so we
//! compute the eigendecomposition of the small k×k Gram matrix `AᵀA = V Λ Vᵀ`
//! and recover `U = A V Σ⁻¹`. For n < k the same trick is applied to `AAᵀ`.

use crate::eigen::eigen_sym;
use crate::error::{LinalgError, Result};
use crate::matrix::Mat;

/// Thin SVD `A = U diag(s) Vᵀ` with `U: n×r`, `V: k×r`, `r = min(n, k)`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (n×r).
    pub u: Mat,
    /// Singular values, descending, all ≥ 0.
    pub s: Vec<f64>,
    /// Right singular vectors (k×r), stored as columns.
    pub v: Mat,
}

impl Svd {
    /// Reconstruct `U diag(s) Vᵀ`, optionally truncated to the top `rank`
    /// singular triplets.
    pub fn reconstruct(&self, rank: Option<usize>) -> Mat {
        let r = rank.unwrap_or(self.s.len()).min(self.s.len());
        let n = self.u.rows();
        let k = self.v.rows();
        let mut out = Mat::zeros(n, k);
        for t in 0..r {
            let sv = self.s[t];
            if sv == 0.0 {
                continue;
            }
            for i in 0..n {
                let ui = self.u[(i, t)] * sv;
                if ui == 0.0 {
                    continue;
                }
                let row = out.row_mut(i);
                for (j, o) in row.iter_mut().enumerate() {
                    *o += ui * self.v[(j, t)];
                }
            }
        }
        out
    }

    /// Apply soft-thresholding `s ← max(s − τ, 0)` to the spectrum and
    /// reconstruct — the proximal operator of the nuclear norm, used by both
    /// SVT and Soft-Impute.
    pub fn shrink_reconstruct(&self, tau: f64) -> Mat {
        let shrunk = Svd {
            u: self.u.clone(),
            s: self.s.iter().map(|&x| (x - tau).max(0.0)).collect(),
            v: self.v.clone(),
        };
        shrunk.reconstruct(None)
    }

    /// Effective numerical rank at relative tolerance `rel_tol`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let top = self.s.first().copied().unwrap_or(0.0);
        if top <= 0.0 {
            return 0;
        }
        self.s.iter().filter(|&&x| x > rel_tol * top).count()
    }
}

/// Compute the thin SVD of an arbitrary dense matrix.
pub fn svd_thin(a: &Mat) -> Result<Svd> {
    let (n, k) = a.shape();
    if n == 0 || k == 0 {
        return Err(LinalgError::Empty { op: "svd_thin" });
    }
    if k <= n {
        // Gram on the column side: AᵀA (k×k).
        let gram = a.t_matmul(a)?;
        let eig = eigen_sym(&gram)?;
        let r = k;
        let s: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        // U = A V Σ⁻¹ ; for zero singular values leave the U column zero.
        let av = a.matmul(&eig.vectors)?;
        let mut u = Mat::zeros(n, r);
        for t in 0..r {
            if s[t] > 1e-12 * s[0].max(1e-300) {
                let inv = 1.0 / s[t];
                for i in 0..n {
                    u[(i, t)] = av[(i, t)] * inv;
                }
            }
        }
        Ok(Svd { u, s, v: eig.vectors })
    } else {
        // n < k: decompose Aᵀ and swap factors.
        let at = a.transpose();
        let svd_t = svd_thin(&at)?;
        Ok(Svd { u: svd_t.v, s: svd_t.s, v: svd_t.u })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::rng::SeededRng;

    #[test]
    fn diagonal_singular_values() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
        let svd = svd_thin(&a).unwrap();
        assert!((svd.s[0] - 4.0).abs() < 1e-10);
        assert!((svd.s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_tall() {
        let mut rng = SeededRng::new(7);
        let a = rng.uniform_mat(20, 5, 0.0, 10.0);
        let svd = svd_thin(&a).unwrap();
        assert!(max_abs_diff(&a, &svd.reconstruct(None)) < 1e-8);
    }

    #[test]
    fn reconstruction_wide() {
        let mut rng = SeededRng::new(8);
        let a = rng.uniform_mat(4, 11, -5.0, 5.0);
        let svd = svd_thin(&a).unwrap();
        assert!(max_abs_diff(&a, &svd.reconstruct(None)) < 1e-8);
    }

    #[test]
    fn rank_of_outer_product() {
        // Rank-2 matrix: two outer products.
        let q = Mat::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[0.0, 3.0], &[1.0, 1.0]]);
        let h = Mat::from_rows(&[&[1.0, 2.0], &[0.5, 1.0], &[2.0, 0.0]]);
        let a = q.matmul_t(&h).unwrap();
        let svd = svd_thin(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 2);
    }

    #[test]
    fn truncated_reconstruction_is_best_rank_k() {
        // For a rank-2 matrix, truncating to rank 2 must be exact.
        let q = Mat::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[0.3, 3.0]]);
        let h = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let a = q.matmul_t(&h).unwrap();
        let svd = svd_thin(&a).unwrap();
        assert!(max_abs_diff(&a, &svd.reconstruct(Some(2))) < 1e-9);
    }

    #[test]
    fn singular_values_nonnegative_sorted() {
        let mut rng = SeededRng::new(9);
        let a = rng.gaussian_mat(15, 7, 0.0, 2.0);
        let svd = svd_thin(&a).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn shrink_reconstruct_zeroes_small_spectrum() {
        let a = Mat::from_rows(&[&[5.0, 0.0], &[0.0, 0.1]]);
        let svd = svd_thin(&a).unwrap();
        let shrunk = svd.shrink_reconstruct(1.0);
        // Second singular value (0.1) is shrunk to zero, first to 4.
        let svd2 = svd_thin(&shrunk).unwrap();
        assert!((svd2.s[0] - 4.0).abs() < 1e-9);
        assert!(svd2.s[1].abs() < 1e-9);
    }
}
