//! Dense linear algebra substrate for LimeQO.
//!
//! The paper implements its linear methods "using standard linear algebra
//! libraries, specifically NumPy's `numpy.linalg` which uses LAPACK at core"
//! (§5). No mature offline linalg crate is available in this environment, so
//! this crate provides the subset of LAPACK functionality LimeQO needs, from
//! scratch:
//!
//! * [`Mat`] — a dense, row-major, `f64` matrix with the elementwise and
//!   broadcast operations used by the matrix-completion algorithms,
//! * [`matmul`](Mat::matmul) and friends — cache-friendly blocked matrix
//!   multiplication,
//! * [`mod@cholesky`] / [`mod@lu`] — factorizations backing the ridge-regularized
//!   normal-equation solves inside alternating least squares,
//! * [`eigen`] — cyclic Jacobi eigendecomposition of symmetric matrices,
//! * [`svd`] — thin singular value decomposition built on the Gram-matrix
//!   eigendecomposition (exact and fast for the tall-skinny workload
//!   matrices LimeQO manipulates: the hint dimension is 49),
//! * [`rng`] — seeded random number helpers (uniform/Gaussian fills) so
//!   every experiment in the reproduction is deterministic,
//! * [`par`] — deterministic fork-join helpers (contiguous output chunks,
//!   one scoped worker per chunk, no cross-chunk reductions) behind the
//!   batched ridge solvers [`ridge_solve_rows`] / [`ridge_solve_cols`],
//! * [`block`] — cache-blocked (tiled) variants of the batched ALS kernels,
//!   byte-identical to the naive paths at any tile size and thread count,
//! * [`mod@fenwick`] — a Fenwick (binary indexed) tree over integer counts,
//!   the rank-selection substrate of the sublinear candidate-selection
//!   subsystem in `limeqo_core`.
//!
//! All routines are deterministic given their inputs; the parallel ones are
//! additionally byte-identical to their serial counterparts at any thread
//! count (see PERF.md at the workspace root for the contract). None
//! allocate outside of construction paths that return new matrices.

#![warn(missing_docs)]

pub mod block;
pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod fenwick;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod par;
pub mod rng;
pub mod svd;

pub use block::{matmul_t_tiled, ridge_solve_cols_tiled, ridge_solve_rows_tiled};
pub use cholesky::{cholesky, cholesky_solve, CholeskyFactor};
pub use eigen::{eigen_sym, EigenSym};
pub use error::{LinalgError, Result};
pub use fenwick::Fenwick;
pub use lstsq::{
    lstsq, ridge_solve, ridge_solve_cols, ridge_solve_rows, ridge_solve_rows_blocked, RidgeFactor,
};
pub use lu::{lu, lu_solve, LuFactor};
pub use matrix::Mat;
pub use norms::{frobenius_norm, masked_mse, max_abs_diff};
pub use svd::{svd_thin, Svd};
