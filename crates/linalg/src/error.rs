//! Error type shared by all linalg routines.

use std::fmt;

/// Errors produced by the linear algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// A factorization requires a square matrix but got a rectangular one.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky hit a non-positive pivot: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// LU hit a (numerically) zero pivot: the matrix is singular.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine.
        op: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a non-empty matrix.
    Empty {
        /// Description of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {}x{} vs {}x{}", lhs.0, lhs.1, rhs.0, rhs.1)
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot {pivot})")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op} did not converge after {iterations} iterations")
            }
            LinalgError::Empty { op } => write!(f, "{op} requires a non-empty matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
