//! Cholesky factorization and solve for symmetric positive definite systems.
//!
//! The ridge-regularized normal equations inside censored ALS (Algorithm 2,
//! lines 6 and 11) are of the form `(HᵀH + λI) X = B` with λ > 0, which is
//! symmetric positive definite by construction — Cholesky is the right tool.

use crate::error::{LinalgError, Result};
use crate::matrix::Mat;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Mat,
}

/// Factor a symmetric positive definite matrix `A = L Lᵀ`.
///
/// Only the lower triangle of `a` is read; symmetry is assumed, not checked.
pub fn cholesky(a: &Mat) -> Result<CholeskyFactor> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { rows: n, cols: m });
    }
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(CholeskyFactor { l })
}

impl CholeskyFactor {
    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A X = B` column-by-column for a matrix right-hand side.
    pub fn solve(&self, b: &Mat) -> Result<Mat> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Mat::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve_vec(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }
}

/// One-shot `A x = B` solve for SPD `A`.
pub fn cholesky_solve(a: &Mat, b: &Mat) -> Result<Mat> {
    cholesky(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    #[test]
    fn factor_hand_computed() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let f = cholesky(&a).unwrap();
        assert!((f.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((f.l()[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((f.l()[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_a() {
        let a = Mat::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let f = cholesky(&a).unwrap();
        let rebuilt = f.l().matmul(&f.l().transpose()).unwrap();
        assert!(max_abs_diff(&a, &rebuilt) < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Mat::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]);
        let x_true = vec![1.5, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = cholesky(&a).unwrap().solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = Mat::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let b = a.matmul(&x_true).unwrap();
        let x = cholesky_solve(&a, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(cholesky(&a), Err(LinalgError::NotSquare { .. })));
    }
}
