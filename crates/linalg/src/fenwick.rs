//! Fenwick tree (binary indexed tree) over non-negative integer counts.
//!
//! The selection subsystem keeps one of these over the workload matrix's
//! per-row unobserved-cell counts: `prefix`/`rank_select` turn a global
//! cell rank into a row in O(log n), which is what makes uniform
//! unobserved-cell sampling sublinear (no candidate materialization —
//! see `limeqo_core::select`). The tree is a plain data structure with no
//! linear-algebra dependencies; it lives in this crate because, like
//! [`crate::par`], it is substrate shared by the layers above.
//!
//! ```
//! use limeqo_linalg::fenwick::Fenwick;
//!
//! let mut f = Fenwick::from_counts(&[3, 0, 2, 5]);
//! assert_eq!(f.total(), 10);
//! assert_eq!(f.prefix(2), 3);            // counts before slot 2
//! assert_eq!(f.rank_select(3), (2, 0));  // ranks 3..5 live in slot 2
//! f.add(2, -2);
//! assert_eq!(f.rank_select(3), (3, 0));  // slot 2 emptied: rank 3 moved on
//! ```

/// A Fenwick (binary indexed) tree over `i64` counts, supporting point
/// update, prefix sum, rank selection (descent), and appending new slots —
/// everything in O(log n).
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-based implicit tree; `tree[i]` covers `(i - lowbit(i), i]`.
    /// Slot 0 is the unused sentinel every operation assumes, so the
    /// vector is never empty.
    tree: Vec<i64>,
    /// Cached total so `total()` is O(1).
    total: i64,
}

impl Default for Fenwick {
    fn default() -> Self {
        Fenwick::new()
    }
}

impl Fenwick {
    /// An empty tree with no slots (grow it with [`Fenwick::append`]).
    pub fn new() -> Self {
        Fenwick { tree: vec![0], total: 0 }
    }

    /// Build from per-slot counts in O(n).
    pub fn from_counts(counts: &[i64]) -> Self {
        let n = counts.len();
        let mut tree = vec![0i64; n + 1];
        for (i, &c) in counts.iter().enumerate() {
            debug_assert!(c >= 0, "counts must be non-negative");
            let pos = i + 1;
            tree[pos] += c;
            let parent = pos + (pos & pos.wrapping_neg());
            if parent <= n {
                let v = tree[pos];
                tree[parent] += v;
            }
        }
        let total = counts.iter().sum();
        Fenwick { tree, total }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    /// True when the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of every slot (O(1)).
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Add `delta` to `slot` (counts must stay non-negative overall, which
    /// the tree itself does not enforce per-slot).
    pub fn add(&mut self, slot: usize, delta: i64) {
        debug_assert!(slot < self.len(), "slot {slot} out of range {}", self.len());
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
        self.total += delta;
    }

    /// Sum of slots `0..slot` (O(log n)).
    pub fn prefix(&self, slot: usize) -> i64 {
        debug_assert!(slot <= self.len());
        let mut sum = 0;
        let mut i = slot;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Map a global `rank` in `[0, total())` to `(slot, offset)`: the slot
    /// holding that rank and the rank's offset within the slot — the
    /// Fenwick descent, O(log n) with no prefix-sum recomputation.
    ///
    /// # Panics
    /// Panics if `rank >= total()`.
    pub fn rank_select(&self, rank: i64) -> (usize, i64) {
        assert!(rank >= 0 && rank < self.total, "rank {rank} out of {}", self.total);
        let n = self.len();
        let mut pos = 0usize; // 1-based position of the last slot known to be <= rank
        let mut remaining = rank;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        (pos, remaining) // pos is 0-based slot index after the descent
    }

    /// Append a new slot with `count` in O(log n) (the new tree node's
    /// range sum is reconstructed from two prefix sums).
    pub fn append(&mut self, count: i64) {
        debug_assert!(count >= 0);
        let pos = self.tree.len(); // 1-based index of the new slot
        let low = pos - (pos & pos.wrapping_neg()); // node covers (low, pos]
        let covered = self.prefix(pos - 1) - self.prefix(low);
        self.tree.push(covered + count);
        self.total += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_prefix(counts: &[i64], slot: usize) -> i64 {
        counts[..slot].iter().sum()
    }

    #[test]
    fn build_prefix_and_total() {
        let counts = [5i64, 0, 3, 7, 1, 0, 2];
        let f = Fenwick::from_counts(&counts);
        assert_eq!(f.len(), counts.len());
        assert_eq!(f.total(), 18);
        for s in 0..=counts.len() {
            assert_eq!(f.prefix(s), naive_prefix(&counts, s), "prefix({s})");
        }
    }

    #[test]
    fn rank_select_matches_linear_scan() {
        let counts = [2i64, 0, 0, 4, 1, 3];
        let f = Fenwick::from_counts(&counts);
        for rank in 0..f.total() {
            let (slot, off) = f.rank_select(rank);
            // Linear-scan reference.
            let mut acc = 0;
            let mut want = None;
            for (i, &c) in counts.iter().enumerate() {
                if rank < acc + c {
                    want = Some((i, rank - acc));
                    break;
                }
                acc += c;
            }
            assert_eq!((slot, off), want.unwrap(), "rank {rank}");
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rank_select_rejects_out_of_range() {
        Fenwick::from_counts(&[1, 2]).rank_select(3);
    }

    #[test]
    fn add_and_append_stay_consistent() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(0xF3);
        let mut counts: Vec<i64> = vec![4; 5];
        let mut f = Fenwick::from_counts(&counts);
        for step in 0..500 {
            match rng.index(3) {
                0 => {
                    let s = rng.index(counts.len());
                    if counts[s] > 0 {
                        counts[s] -= 1;
                        f.add(s, -1);
                    }
                }
                1 => {
                    let s = rng.index(counts.len());
                    counts[s] += 3;
                    f.add(s, 3);
                }
                _ => {
                    let c = rng.index(6) as i64;
                    counts.push(c);
                    f.append(c);
                }
            }
            assert_eq!(f.total(), counts.iter().sum::<i64>(), "total at step {step}");
            for s in 0..=counts.len() {
                assert_eq!(f.prefix(s), naive_prefix(&counts, s), "prefix({s}) at {step}");
            }
            if f.total() > 0 {
                let rank = rng.index(f.total() as usize) as i64;
                let (slot, off) = f.rank_select(rank);
                assert!(off < counts[slot], "offset within slot");
                assert_eq!(f.prefix(slot) + off, rank, "rank roundtrip");
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let f = Fenwick::new();
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
        let mut f = Fenwick::from_counts(&[0]);
        assert_eq!(f.total(), 0);
        f.add(0, 7);
        assert_eq!(f.rank_select(6), (0, 6));
    }

    #[test]
    fn growing_from_empty_matches_from_counts() {
        // new()/default() must accept appends directly — the empty tree
        // still carries the 1-based sentinel every operation assumes.
        let counts = [2i64, 0, 5, 1];
        let mut grown = Fenwick::default();
        for &c in &counts {
            grown.append(c);
        }
        let built = Fenwick::from_counts(&counts);
        assert_eq!(grown.total(), built.total());
        for s in 0..=counts.len() {
            assert_eq!(grown.prefix(s), built.prefix(s));
        }
        for rank in 0..grown.total() {
            assert_eq!(grown.rank_select(rank), built.rank_select(rank));
        }
    }
}
