//! Norms and error metrics used by the completion algorithms and tests.

use crate::matrix::Mat;

/// Frobenius norm `‖A‖_F`.
pub fn frobenius_norm(a: &Mat) -> f64 {
    a.as_slice().iter().map(|&v| v * v).sum::<f64>().sqrt()
}

/// Largest absolute entrywise difference between two same-shaped matrices.
///
/// Panics on shape mismatch (test/diagnostic helper).
pub fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    a.as_slice().iter().zip(b.as_slice().iter()).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Mean squared error over the entries where `mask != 0`.
///
/// This is the accuracy metric of Fig. 17: completion error measured on the
/// held-out (unobserved) cells. Returns 0 when the mask selects nothing.
pub fn masked_mse(truth: &Mat, pred: &Mat, mask: &Mat) -> f64 {
    assert_eq!(truth.shape(), pred.shape(), "masked_mse shape mismatch");
    assert_eq!(truth.shape(), mask.shape(), "masked_mse mask mismatch");
    let mut sum = 0.0;
    let mut count = 0usize;
    for ((&t, &p), &m) in
        truth.as_slice().iter().zip(pred.as_slice().iter()).zip(mask.as_slice().iter())
    {
        if m != 0.0 {
            let d = t - p;
            sum += d * d;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_hand_computed() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((frobenius_norm(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn masked_mse_only_counts_masked() {
        let t = Mat::from_rows(&[&[1.0, 10.0]]);
        let p = Mat::from_rows(&[&[2.0, 0.0]]);
        let m = Mat::from_rows(&[&[1.0, 0.0]]);
        assert!((masked_mse(&t, &p, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_mse_empty_mask_is_zero() {
        let t = Mat::from_rows(&[&[1.0]]);
        let p = Mat::from_rows(&[&[5.0]]);
        let m = Mat::from_rows(&[&[0.0]]);
        assert_eq!(masked_mse(&t, &p, &m), 0.0);
    }
}
