//! Least squares and ridge-regularized solves, serial and batched-parallel.
//!
//! Algorithm 2 of the paper updates the factor matrices with the closed-form
//! ridge solutions `Q ← Ŵ H (HᵀH + λI)⁻¹` and `H ← Ŵᵀ Q (QᵀQ + λI)⁻¹`.
//! [`ridge_solve`] computes exactly the `(GᵀG + λI)⁻¹ GᵀB`-style product via
//! a Cholesky solve (falling back to LU if rounding breaks positive
//! definiteness, which can only happen at λ = 0).
//!
//! The ridge problem is *embarrassingly batched*: every right-hand-side
//! column shares the normal matrix `GᵀG + λI` but is otherwise independent,
//! so [`RidgeFactor`] factors once and [`ridge_solve_rows`] /
//! [`ridge_solve_cols`] fan the right-hand sides out across scoped threads.
//! Both are **byte-identical to the serial path at any thread count** —
//! each solution's floating-point sequence never changes, only which
//! worker writes it into its pre-allocated output rows (see
//! `limeqo_linalg::par` and PERF.md for the determinism contract).

use crate::cholesky::{cholesky, CholeskyFactor};
use crate::error::{LinalgError, Result};
use crate::lu::{lu, LuFactor};
use crate::matrix::Mat;
use crate::par::par_chunks;

/// Solve the ridge problem `argmin_X ‖G X − B‖_F² + λ‖X‖_F²`,
/// i.e. `X = (GᵀG + λI)⁻¹ GᵀB`.
///
/// `G` is m×p, `B` is m×q, the result is p×q. With λ > 0 the normal matrix is
/// SPD and Cholesky always succeeds; λ = 0 falls back to LU when needed.
///
/// ```
/// use limeqo_linalg::{ridge_solve, Mat};
///
/// // Overdetermined exact system: G X = B has the solution X = [[2], [-1]].
/// let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let b = Mat::from_rows(&[&[2.0], &[-1.0], &[1.0]]);
/// let x = ridge_solve(&g, &b, 0.0).unwrap();
/// assert!((x[(0, 0)] - 2.0).abs() < 1e-10);
/// assert!((x[(1, 0)] + 1.0).abs() < 1e-10);
///
/// // Regularization shrinks the solution toward zero.
/// let shrunk = ridge_solve(&g, &b, 10.0).unwrap();
/// assert!(shrunk[(0, 0)].abs() < x[(0, 0)].abs());
/// ```
pub fn ridge_solve(g: &Mat, b: &Mat, lambda: f64) -> Result<Mat> {
    let factor = RidgeFactor::new(g, lambda)?;
    let gtb = g.t_matmul(b)?;
    factor.solve(&gtb)
}

/// The factored normal matrix `GᵀG + λI` of a ridge problem, reusable
/// across many right-hand sides.
///
/// With λ > 0 the normal matrix is SPD and the factor is a Cholesky
/// decomposition; at λ = 0 rounding can break positive definiteness, in
/// which case an LU factorization is kept instead — the same fallback rule
/// [`ridge_solve`] has always applied.
#[derive(Debug, Clone)]
pub struct RidgeFactor {
    kind: FactorKind,
}

#[derive(Debug, Clone)]
enum FactorKind {
    Chol(CholeskyFactor),
    Lu(LuFactor),
}

impl RidgeFactor {
    /// Factor `GᵀG + λI` for `G` of shape m×p.
    pub fn new(g: &Mat, lambda: f64) -> Result<Self> {
        let mut gtg = g.t_matmul(g)?;
        for i in 0..gtg.rows() {
            gtg[(i, i)] += lambda;
        }
        let kind = match cholesky(&gtg) {
            Ok(f) => FactorKind::Chol(f),
            Err(_) => FactorKind::Lu(lu(&gtg)?),
        };
        Ok(RidgeFactor { kind })
    }

    /// Dimension p of the factored normal matrix.
    pub fn dim(&self) -> usize {
        match &self.kind {
            FactorKind::Chol(f) => f.l().rows(),
            FactorKind::Lu(f) => f.dim(),
        }
    }

    /// Solve `(GᵀG + λI) X = GᵀB` given the already-computed product
    /// `GᵀB`. Right-hand-side columns are solved independently, column by
    /// column, exactly as the one-shot [`ridge_solve`] does.
    pub fn solve(&self, gtb: &Mat) -> Result<Mat> {
        match &self.kind {
            FactorKind::Chol(f) => f.solve(gtb),
            FactorKind::Lu(f) => f.solve(gtb),
        }
    }
}

/// Batched ridge solve over **rows**: every row of `b_rows` is an
/// independent right-hand side `bᵢᵀ`, and row i of the result is the
/// solution `argmin_x ‖G x − bᵢ‖² + λ‖x‖²`. For `G` m×p and `b_rows` q×m
/// the result is q×p — already transposed for callers (like the ALS `Q`
/// update) whose unknowns live in rows.
///
/// The normal matrix is factored once; the q systems are partitioned into
/// contiguous row chunks across `threads` scoped workers (`0` = auto),
/// each writing only its own pre-allocated output rows. Results are
/// byte-identical to the serial path at any thread count.
///
/// ```
/// use limeqo_linalg::{ridge_solve, ridge_solve_rows, Mat};
///
/// // Two independent right-hand sides as rows.
/// let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let b_rows = Mat::from_rows(&[&[2.0, -1.0, 1.0], &[0.0, 3.0, 3.0]]);
/// let x = ridge_solve_rows(&g, &b_rows, 0.5, 2).unwrap();
/// assert_eq!(x.shape(), (2, 2));
///
/// // Row i equals the one-shot serial solution for that right-hand side —
/// // and the thread count never changes a single bit.
/// let serial = ridge_solve(&g, &b_rows.transpose(), 0.5).unwrap();
/// for threads in [1, 2, 8] {
///     let par = ridge_solve_rows(&g, &b_rows, 0.5, threads).unwrap();
///     assert_eq!(par.as_slice(), serial.transpose().as_slice());
/// }
/// ```
pub fn ridge_solve_rows(g: &Mat, b_rows: &Mat, lambda: f64, threads: usize) -> Result<Mat> {
    ridge_solve_rows_blocked(g, b_rows, lambda, threads, &[(0, b_rows.rows())])
}

/// [`ridge_solve_rows`] with the right-hand-side rows partitioned into
/// caller-supplied contiguous `blocks` (`(start, end)` half-open, ascending,
/// covering `0..b_rows.rows()` exactly) — the entry point behind per-shard
/// ALS factor solves: each shard's query rows are one block, solved as its
/// own batch against the *shared* factored normal matrix.
///
/// Because every output row's floating-point sequence (gather `bᵢ`,
/// `Gᵀbᵢ`, triangular solves) is independent of how its neighbours are
/// batched, the result is byte-identical to the unblocked call for **any**
/// block partition and any thread count — which is what pins the sharded
/// engine's factor model to the unsharded one bit for bit.
///
/// ```
/// use limeqo_linalg::{ridge_solve_rows, ridge_solve_rows_blocked, Mat};
/// use limeqo_linalg::rng::SeededRng;
///
/// let mut rng = SeededRng::new(3);
/// let g = rng.uniform_mat(6, 3, 0.0, 1.0);
/// let b = rng.uniform_mat(10, 6, 0.0, 1.0);
/// let whole = ridge_solve_rows(&g, &b, 0.2, 2).unwrap();
/// let blocked = ridge_solve_rows_blocked(&g, &b, 0.2, 2, &[(0, 4), (4, 4), (4, 10)]).unwrap();
/// assert_eq!(blocked.as_slice(), whole.as_slice());
/// ```
pub fn ridge_solve_rows_blocked(
    g: &Mat,
    b_rows: &Mat,
    lambda: f64,
    threads: usize,
    blocks: &[(usize, usize)],
) -> Result<Mat> {
    if g.rows() != b_rows.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_solve_rows",
            lhs: g.shape(),
            rhs: b_rows.shape(),
        });
    }
    let q = b_rows.rows();
    let mut expect = 0usize;
    for &(start, end) in blocks {
        assert!(
            start == expect && end >= start,
            "blocks must partition 0..{q} contiguously: got ({start}, {end}) after {expect}"
        );
        expect = end;
    }
    assert!(expect == q, "blocks must cover 0..{q}: ended at {expect}");
    let factor = RidgeFactor::new(g, lambda)?;
    let p = g.cols();
    let mut out = Mat::zeros(q, p);
    if p == 0 {
        return Ok(out);
    }
    for &(start, end) in blocks {
        if start == end {
            continue;
        }
        // The dominant per-chunk cost is the GᵀB product: m·p per RHS.
        let t = crate::par::effective_threads(threads, (end - start) * g.rows() * p);
        let sub = &mut out.as_mut_slice()[start * p..end * p];
        par_chunks(sub, p, t, |r0, chunk| {
            let width = chunk.len() / p;
            // Gather this chunk's right-hand sides as columns: m × width.
            let bt = b_rows.row_block(start + r0, start + r0 + width).transpose();
            let gtb = g.t_matmul(&bt).expect("shape pre-validated");
            let x = factor.solve(&gtb).expect("shape pre-validated");
            for (i, out_row) in chunk.chunks_mut(p).enumerate() {
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = x[(j, i)];
                }
            }
        });
    }
    Ok(out)
}

/// Batched ridge solve over **columns**: every column of `b` is an
/// independent right-hand side, exactly as in [`ridge_solve`], but the
/// result comes back transposed (q×p, row j = solution for column j) and
/// the columns are partitioned across `threads` scoped workers (`0` =
/// auto). Used by the ALS `H` update, whose unknown factor rows are the
/// columns of the filled matrix.
///
/// ```
/// use limeqo_linalg::{ridge_solve, ridge_solve_cols, Mat};
///
/// let g = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 2.0]]);
/// let serial = ridge_solve(&g, &b, 0.2).unwrap();
/// for threads in [1, 2, 8] {
///     let par = ridge_solve_cols(&g, &b, 0.2, threads).unwrap();
///     assert_eq!(par.as_slice(), serial.transpose().as_slice());
/// }
/// ```
pub fn ridge_solve_cols(g: &Mat, b: &Mat, lambda: f64, threads: usize) -> Result<Mat> {
    if g.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_solve_cols",
            lhs: g.shape(),
            rhs: b.shape(),
        });
    }
    let factor = RidgeFactor::new(g, lambda)?;
    let p = g.cols();
    let mut out = Mat::zeros(b.cols(), p);
    if p == 0 {
        return Ok(out);
    }
    // The dominant per-chunk cost is the GᵀB product: m·p per RHS column.
    let threads = crate::par::effective_threads(threads, b.cols() * g.rows() * p);
    par_chunks(out.as_mut_slice(), p, threads, |c0, chunk| {
        let width = chunk.len() / p;
        let block = b.col_block(c0, c0 + width);
        let gtb = g.t_matmul(&block).expect("shape pre-validated");
        let x = factor.solve(&gtb).expect("shape pre-validated");
        for (i, out_row) in chunk.chunks_mut(p).enumerate() {
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = x[(j, i)];
            }
        }
    });
    Ok(out)
}

/// Ordinary least squares `argmin_X ‖G X − B‖_F²` via the normal equations.
pub fn lstsq(g: &Mat, b: &Mat) -> Result<Mat> {
    ridge_solve(g, b, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::rng::SeededRng;

    #[test]
    fn exact_system_recovered() {
        let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x_true = Mat::from_rows(&[&[2.0], &[-1.0]]);
        let b = g.matmul(&x_true).unwrap();
        let x = lstsq(&g, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-10);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let g = Mat::from_rows(&[&[1.0], &[1.0]]);
        let b = Mat::from_rows(&[&[2.0], &[2.0]]);
        let x0 = ridge_solve(&g, &b, 0.0).unwrap();
        let x1 = ridge_solve(&g, &b, 10.0).unwrap();
        assert!((x0[(0, 0)] - 2.0).abs() < 1e-12);
        assert!(x1[(0, 0)] < x0[(0, 0)]);
        assert!(x1[(0, 0)] > 0.0);
    }

    #[test]
    fn ridge_closed_form_1d() {
        // For scalar g-column: x = (gᵀb) / (gᵀg + λ).
        let g = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let lam = 0.5;
        let x = ridge_solve(&g, &b, lam).unwrap();
        let expected = 14.0 / (14.0 + lam);
        assert!((x[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_noisy_fit_has_small_residual() {
        let mut rng = SeededRng::new(11);
        let g = rng.gaussian_mat(50, 4, 0.0, 1.0);
        let x_true = Mat::from_rows(&[&[1.0], &[-2.0], &[0.5], &[3.0]]);
        let mut b = g.matmul(&x_true).unwrap();
        for v in b.as_mut_slice() {
            *v += rng.gaussian(0.0, 0.01);
        }
        let x = lstsq(&g, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 0.05);
    }

    #[test]
    fn batched_rows_match_serial_bit_for_bit() {
        let mut rng = SeededRng::new(21);
        let g = rng.uniform_mat(9, 4, 0.0, 2.0);
        let b_rows = rng.uniform_mat(31, 9, 0.0, 5.0);
        let serial = ridge_solve(&g, &b_rows.transpose(), 0.2).unwrap().transpose();
        for threads in [1, 2, 5, 8, 0] {
            let par = ridge_solve_rows(&g, &b_rows, 0.2, threads).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn batched_cols_match_serial_bit_for_bit() {
        let mut rng = SeededRng::new(22);
        let g = rng.uniform_mat(40, 3, 0.0, 2.0);
        let b = rng.uniform_mat(40, 17, 0.0, 5.0);
        let serial = ridge_solve(&g, &b, 0.2).unwrap().transpose();
        for threads in [1, 2, 4, 16, 0] {
            let par = ridge_solve_cols(&g, &b, 0.2, threads).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn blocked_rows_match_unblocked_for_any_partition() {
        let mut rng = SeededRng::new(23);
        let g = rng.uniform_mat(9, 4, 0.0, 2.0);
        let b_rows = rng.uniform_mat(31, 9, 0.0, 5.0);
        let whole = ridge_solve_rows(&g, &b_rows, 0.2, 1).unwrap();
        for case in 0..40 {
            // Random contiguous partition of 0..31, empty blocks allowed.
            let mut cuts = vec![0usize, 31];
            for _ in 0..rng.index(6) {
                cuts.push(rng.index(32));
            }
            cuts.sort_unstable();
            let blocks: Vec<(usize, usize)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
            for threads in [1, 3, 8] {
                let blocked = ridge_solve_rows_blocked(&g, &b_rows, 0.2, threads, &blocks).unwrap();
                assert_eq!(
                    blocked.as_slice(),
                    whole.as_slice(),
                    "case {case} blocks {blocks:?} threads {threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "blocks must cover")]
    fn blocked_rows_reject_short_partition() {
        let g = Mat::zeros(3, 2);
        let b_rows = Mat::zeros(5, 3);
        let _ = ridge_solve_rows_blocked(&g, &b_rows, 0.1, 1, &[(0, 3)]);
    }

    #[test]
    fn batched_solvers_agree_with_serial_on_singular_input() {
        // An exactly rank-deficient G at λ = 0 fails Cholesky *and* the LU
        // fallback; the batched solvers must report the same error instead
        // of fanning out garbage.
        let g = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let b_rows = Mat::from_rows(&[&[1.0, 1.0, 2.0], &[0.5, 0.5, 1.0]]);
        assert!(ridge_solve(&g, &b_rows.transpose(), 0.0).is_err());
        assert!(ridge_solve_rows(&g, &b_rows, 0.0, 2).is_err());
        assert!(ridge_solve_cols(&g, &b_rows.transpose(), 0.0, 2).is_err());
        // With λ > 0 the same G is solvable everywhere.
        assert!(ridge_solve_rows(&g, &b_rows, 0.1, 2).is_ok());
    }

    #[test]
    fn batched_shape_mismatch_rejected() {
        let g = Mat::zeros(4, 2);
        assert!(ridge_solve_rows(&g, &Mat::zeros(3, 5), 0.1, 2).is_err());
        assert!(ridge_solve_cols(&g, &Mat::zeros(5, 3), 0.1, 2).is_err());
    }

    #[test]
    fn ridge_factor_reports_dim() {
        let g = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0]]);
        assert_eq!(RidgeFactor::new(&g, 0.3).unwrap().dim(), 3);
    }

    #[test]
    fn multi_rhs_columns_solved_independently() {
        let g = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x_true = Mat::from_rows(&[&[1.0, -1.0], &[2.0, 4.0]]);
        let b = g.matmul(&x_true).unwrap();
        let x = lstsq(&g, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-10);
    }
}
