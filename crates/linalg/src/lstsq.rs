//! Least squares and ridge-regularized solves.
//!
//! Algorithm 2 of the paper updates the factor matrices with the closed-form
//! ridge solutions `Q ← Ŵ H (HᵀH + λI)⁻¹` and `H ← Ŵᵀ Q (QᵀQ + λI)⁻¹`.
//! [`ridge_solve`] computes exactly the `(GᵀG + λI)⁻¹ GᵀB`-style product via
//! a Cholesky solve (falling back to LU if rounding breaks positive
//! definiteness, which can only happen at λ = 0).

use crate::cholesky::cholesky;
use crate::error::Result;
use crate::lu::lu;
use crate::matrix::Mat;

/// Solve the ridge problem `argmin_X ‖G X − B‖_F² + λ‖X‖_F²`,
/// i.e. `X = (GᵀG + λI)⁻¹ GᵀB`.
///
/// `G` is m×p, `B` is m×q, the result is p×q. With λ > 0 the normal matrix is
/// SPD and Cholesky always succeeds; λ = 0 falls back to LU when needed.
///
/// ```
/// use limeqo_linalg::{ridge_solve, Mat};
///
/// // Overdetermined exact system: G X = B has the solution X = [[2], [-1]].
/// let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let b = Mat::from_rows(&[&[2.0], &[-1.0], &[1.0]]);
/// let x = ridge_solve(&g, &b, 0.0).unwrap();
/// assert!((x[(0, 0)] - 2.0).abs() < 1e-10);
/// assert!((x[(1, 0)] + 1.0).abs() < 1e-10);
///
/// // Regularization shrinks the solution toward zero.
/// let shrunk = ridge_solve(&g, &b, 10.0).unwrap();
/// assert!(shrunk[(0, 0)].abs() < x[(0, 0)].abs());
/// ```
pub fn ridge_solve(g: &Mat, b: &Mat, lambda: f64) -> Result<Mat> {
    let mut gtg = g.t_matmul(g)?;
    for i in 0..gtg.rows() {
        gtg[(i, i)] += lambda;
    }
    let gtb = g.t_matmul(b)?;
    match cholesky(&gtg) {
        Ok(f) => f.solve(&gtb),
        Err(_) => lu(&gtg)?.solve(&gtb),
    }
}

/// Ordinary least squares `argmin_X ‖G X − B‖_F²` via the normal equations.
pub fn lstsq(g: &Mat, b: &Mat) -> Result<Mat> {
    ridge_solve(g, b, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;
    use crate::rng::SeededRng;

    #[test]
    fn exact_system_recovered() {
        let g = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x_true = Mat::from_rows(&[&[2.0], &[-1.0]]);
        let b = g.matmul(&x_true).unwrap();
        let x = lstsq(&g, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-10);
    }

    #[test]
    fn ridge_shrinks_toward_zero() {
        let g = Mat::from_rows(&[&[1.0], &[1.0]]);
        let b = Mat::from_rows(&[&[2.0], &[2.0]]);
        let x0 = ridge_solve(&g, &b, 0.0).unwrap();
        let x1 = ridge_solve(&g, &b, 10.0).unwrap();
        assert!((x0[(0, 0)] - 2.0).abs() < 1e-12);
        assert!(x1[(0, 0)] < x0[(0, 0)]);
        assert!(x1[(0, 0)] > 0.0);
    }

    #[test]
    fn ridge_closed_form_1d() {
        // For scalar g-column: x = (gᵀb) / (gᵀg + λ).
        let g = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let lam = 0.5;
        let x = ridge_solve(&g, &b, lam).unwrap();
        let expected = 14.0 / (14.0 + lam);
        assert!((x[(0, 0)] - expected).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_noisy_fit_has_small_residual() {
        let mut rng = SeededRng::new(11);
        let g = rng.gaussian_mat(50, 4, 0.0, 1.0);
        let x_true = Mat::from_rows(&[&[1.0], &[-2.0], &[0.5], &[3.0]]);
        let mut b = g.matmul(&x_true).unwrap();
        for v in b.as_mut_slice() {
            *v += rng.gaussian(0.0, 0.01);
        }
        let x = lstsq(&g, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 0.05);
    }

    #[test]
    fn multi_rhs_columns_solved_independently() {
        let g = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x_true = Mat::from_rows(&[&[1.0, -1.0], &[2.0, 4.0]]);
        let b = g.matmul(&x_true).unwrap();
        let x = lstsq(&g, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-10);
    }
}
