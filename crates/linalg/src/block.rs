//! Cache-blocked (tiled) variants of the batched kernels behind ALS.
//!
//! The unblocked batched solvers
//! ([`ridge_solve_rows_blocked`](crate::ridge_solve_rows_blocked),
//! [`ridge_solve_cols`](crate::ridge_solve_cols)) materialize their whole
//! right-hand-side panel per worker chunk — a `row_block().transpose()` or
//! `col_block()` copy the size of the full workload matrix — and then
//! stream an output panel that outgrows L1 through every step of the inner
//! accumulation. At the 10k×49 acceptance shape that traffic, not the
//! arithmetic, is the serial ALS wall. The tiled kernels here cut the panel
//! into L1-sized slices of `tile` right-hand sides, gather nothing (they
//! read the operands' contiguous rows in place), and keep the per-tile
//! accumulator resident across the whole reduction.
//!
//! **Determinism contract** (the same one `limeqo_linalg::par` and PERF.md
//! pin): every output element is computed with *exactly* the floating-point
//! operation sequence of the unblocked kernel — same additions, same order,
//! same zero-operand skips — so the result is byte-identical to the naive
//! path at **any** tile size and any thread count. Tiling, like threading,
//! only decides which slots are computed together; it never reorders a
//! reduction. The `tests/tests/kernels.rs` differential suite holds the
//! blocked kernels to this bit for bit.

use crate::error::{LinalgError, Result};
use crate::lstsq::RidgeFactor;
use crate::matrix::Mat;
use crate::par::{effective_threads, par_chunks};

/// L1 data-cache budget (bytes) the auto tile targets. A deliberate
/// constant, not a machine probe: the tile size must be a pure function of
/// the problem shape so every machine runs the identical partition.
const L1_TARGET_BYTES: usize = 32 * 1024;

/// Smallest tile auto mode will pick; below this the per-tile solve
/// dispatch overhead dominates.
const MIN_AUTO_TILE: usize = 8;

/// Largest tile auto mode will pick; beyond this the output panel itself
/// outgrows L1 and blocking stops paying.
const MAX_AUTO_TILE: usize = 256;

/// The auto tile size for right-hand sides of `row_len` elements: the
/// largest tile whose operand panel (`tile × row_len` doubles) fits the L1
/// budget, clamped to `[8, 256]`.
///
/// Pure function of the shape — no machine introspection — so the chosen
/// partition (and therefore the wall-clock profile, though never the bits)
/// is reproducible everywhere.
///
/// ```
/// use limeqo_linalg::block::auto_tile;
/// assert_eq!(auto_tile(49), 83);   // the hint-dimension shape
/// assert_eq!(auto_tile(1), 256);   // clamped above
/// assert_eq!(auto_tile(100_000), 8); // clamped below
/// ```
pub fn auto_tile(row_len: usize) -> usize {
    (L1_TARGET_BYTES / (row_len.max(1) * std::mem::size_of::<f64>()))
        .clamp(MIN_AUTO_TILE, MAX_AUTO_TILE)
}

/// Resolve a tile-size knob: `0` means "auto" ([`auto_tile`] for
/// right-hand sides of `row_len` elements), anything else is taken
/// literally.
pub fn resolve_tile(tile: usize, row_len: usize) -> usize {
    if tile == 0 {
        auto_tile(row_len)
    } else {
        tile
    }
}

/// `a * bᵀ`, row-partitioned across `threads` workers with the columns of
/// each output chunk computed in `tile`-column slices (`0` = auto) so the
/// active rows of `b` stay cache-resident across the chunk.
///
/// Byte-identical to [`Mat::matmul_t`] and [`crate::par::matmul_t`] at any
/// tile size and thread count: each output element is the same
/// left-to-right dot product into a fresh accumulator; tiling only decides
/// the order elements are *visited*, which no element's value depends on.
///
/// ```
/// use limeqo_linalg::block::matmul_t_tiled;
/// use limeqo_linalg::rng::SeededRng;
///
/// let mut rng = SeededRng::new(5);
/// let a = rng.uniform_mat(13, 4, -1.0, 1.0);
/// let b = rng.uniform_mat(7, 4, -1.0, 1.0);
/// let naive = a.matmul_t(&b).unwrap();
/// for tile in [1, 3, 0] {
///     let tiled = matmul_t_tiled(&a, &b, 2, tile).unwrap();
///     assert_eq!(tiled.as_slice(), naive.as_slice());
/// }
/// ```
pub fn matmul_t_tiled(a: &Mat, b: &Mat, threads: usize, tile: usize) -> Result<Mat> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "blocked matmul_t",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Mat::zeros(a.rows(), b.rows());
    let width = b.rows();
    if width == 0 {
        return Ok(out);
    }
    let tile = resolve_tile(tile, a.cols());
    let threads = effective_threads(threads, a.rows() * b.rows() * a.cols());
    par_chunks(out.as_mut_slice(), width, threads, |r0, chunk| {
        let mut j0 = 0;
        while j0 < width {
            let j1 = (j0 + tile).min(width);
            for (i, out_row) in chunk.chunks_mut(width).enumerate() {
                let a_row = a.row(r0 + i);
                for (j, o) in out_row[j0..j1].iter_mut().enumerate() {
                    let b_row = b.row(j0 + j);
                    let mut acc = 0.0;
                    for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
            j0 = j1;
        }
    });
    Ok(out)
}

/// [`ridge_solve_rows_blocked`] with the right-hand sides of each block
/// solved in `tile`-row slices (`0` = auto), and the `GᵀB` product of each
/// slice computed in place — no `row_block().transpose()` gather.
///
/// `G`'s columns are hoisted once into contiguous buffers (copying `G`
/// changes no floating-point value), and each right-hand side's `Gᵀbᵢ`
/// entry is then the identical k-ascending accumulation [`Mat::t_matmul`]
/// performs, including its skip of exact-zero `G` entries. The factored
/// normal matrix solves each right-hand-side column independently, so
/// slice width cannot move a bit either. Byte-identical to
/// [`ridge_solve_rows_blocked`] (and so to the serial
/// [`crate::ridge_solve`]) at any tile size, block partition and thread
/// count.
///
/// ```
/// use limeqo_linalg::block::ridge_solve_rows_tiled;
/// use limeqo_linalg::ridge_solve_rows;
/// use limeqo_linalg::rng::SeededRng;
///
/// let mut rng = SeededRng::new(6);
/// let g = rng.uniform_mat(9, 4, 0.0, 1.0);
/// let b = rng.uniform_mat(21, 9, 0.0, 1.0);
/// let naive = ridge_solve_rows(&g, &b, 0.2, 1).unwrap();
/// for tile in [1, 5, 0] {
///     let tiled =
///         ridge_solve_rows_tiled(&g, &b, 0.2, 2, &[(0, 21)], tile).unwrap();
///     assert_eq!(tiled.as_slice(), naive.as_slice());
/// }
/// ```
///
/// [`ridge_solve_rows_blocked`]: crate::ridge_solve_rows_blocked
pub fn ridge_solve_rows_tiled(
    g: &Mat,
    b_rows: &Mat,
    lambda: f64,
    threads: usize,
    blocks: &[(usize, usize)],
    tile: usize,
) -> Result<Mat> {
    if g.rows() != b_rows.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_solve_rows",
            lhs: g.shape(),
            rhs: b_rows.shape(),
        });
    }
    let q = b_rows.rows();
    let mut expect = 0usize;
    for &(start, end) in blocks {
        assert!(
            start == expect && end >= start,
            "blocks must partition 0..{q} contiguously: got ({start}, {end}) after {expect}"
        );
        expect = end;
    }
    assert!(expect == q, "blocks must cover 0..{q}: ended at {expect}");
    let factor = RidgeFactor::new(g, lambda)?;
    let p = g.cols();
    let m = g.rows();
    let mut out = Mat::zeros(q, p);
    if p == 0 {
        return Ok(out);
    }
    let tile = resolve_tile(tile, m);
    // Hoist G's columns into contiguous buffers once, outside the fan-out:
    // the per-tile GᵀB kernel then streams both operands stride-1.
    let gcols: Vec<Vec<f64>> = (0..p).map(|j| g.col(j)).collect();
    for &(start, end) in blocks {
        if start == end {
            continue;
        }
        // The dominant per-chunk cost is the GᵀB product: m·p per RHS.
        let t = effective_threads(threads, (end - start) * m * p);
        let sub = &mut out.as_mut_slice()[start * p..end * p];
        par_chunks(sub, p, t, |r0, chunk| {
            let rows = chunk.len() / p;
            let mut t0 = 0;
            while t0 < rows {
                let t1 = (t0 + tile).min(rows);
                let mut gtb = Mat::zeros(p, t1 - t0);
                for i in t0..t1 {
                    let b_row = b_rows.row(start + r0 + i);
                    for (jp, gcol) in gcols.iter().enumerate() {
                        // t_matmul's accumulation, element-local: k
                        // ascending, exact zeros of G skipped, into a
                        // zero-initialized accumulator.
                        let mut acc = 0.0;
                        for (&gk, &bk) in gcol.iter().zip(b_row.iter()) {
                            if gk != 0.0 {
                                acc += gk * bk;
                            }
                        }
                        gtb[(jp, i - t0)] = acc;
                    }
                }
                let x = factor.solve(&gtb).expect("shape pre-validated");
                for (i, out_row) in chunk[t0 * p..t1 * p].chunks_mut(p).enumerate() {
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = x[(j, i)];
                    }
                }
                t0 = t1;
            }
        });
    }
    Ok(out)
}

/// [`ridge_solve_cols`](crate::ridge_solve_cols) with each worker's columns
/// solved in `tile`-column slices (`0` = auto), and the `GᵀB` product of
/// each slice reading `B`'s rows in place — no `col_block` gather.
///
/// The slice kernel is [`Mat::t_matmul`]'s k-outer loop verbatim (same
/// k-ascending accumulation into zero-initialized slots, same exact-zero
/// skip of `G` entries), applied to a column window of each `B` row
/// instead of a materialized copy. Byte-identical to
/// [`ridge_solve_cols`](crate::ridge_solve_cols) at any tile size and
/// thread count.
///
/// ```
/// use limeqo_linalg::block::ridge_solve_cols_tiled;
/// use limeqo_linalg::ridge_solve_cols;
/// use limeqo_linalg::rng::SeededRng;
///
/// let mut rng = SeededRng::new(7);
/// let g = rng.uniform_mat(20, 3, 0.0, 1.0);
/// let b = rng.uniform_mat(20, 11, 0.0, 1.0);
/// let naive = ridge_solve_cols(&g, &b, 0.2, 1).unwrap();
/// for tile in [1, 4, 0] {
///     let tiled = ridge_solve_cols_tiled(&g, &b, 0.2, 2, tile).unwrap();
///     assert_eq!(tiled.as_slice(), naive.as_slice());
/// }
/// ```
pub fn ridge_solve_cols_tiled(
    g: &Mat,
    b: &Mat,
    lambda: f64,
    threads: usize,
    tile: usize,
) -> Result<Mat> {
    if g.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge_solve_cols",
            lhs: g.shape(),
            rhs: b.shape(),
        });
    }
    let factor = RidgeFactor::new(g, lambda)?;
    let p = g.cols();
    let m = g.rows();
    let mut out = Mat::zeros(b.cols(), p);
    if p == 0 {
        return Ok(out);
    }
    // The k-outer reduction streams G and B once per tile, so what must
    // stay L1-resident across the whole m-long loop is the `p × tile`
    // accumulator — the tile resolves against `p`, not `m`. (Resolving
    // against `m` would shrink the tile as the matrix grows and re-stream
    // G ⌈cols/tile⌉ times; at 10k×49 that re-reads a 400 KB operand seven
    // times per solve.)
    let tile = resolve_tile(tile, p);
    // The dominant per-chunk cost is the GᵀB product: m·p per RHS column.
    let threads = effective_threads(threads, b.cols() * m * p);
    par_chunks(out.as_mut_slice(), p, threads, |c0, chunk| {
        let cols = chunk.len() / p;
        let mut t0 = 0;
        while t0 < cols {
            let t1 = (t0 + tile).min(cols);
            let (lo, hi) = (c0 + t0, c0 + t1);
            // t_matmul's k-outer accumulation, reading B's row windows in
            // place instead of a col_block copy.
            let mut gtb = Mat::zeros(p, hi - lo);
            let gtb_width = hi - lo;
            for k in 0..m {
                let g_row = g.row(k);
                let b_row = &b.row(k)[lo..hi];
                for (i, &g_ki) in g_row.iter().enumerate() {
                    if g_ki == 0.0 {
                        continue;
                    }
                    let out_row = &mut gtb.as_mut_slice()[i * gtb_width..(i + 1) * gtb_width];
                    for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += g_ki * b_kj;
                    }
                }
            }
            let x = factor.solve(&gtb).expect("shape pre-validated");
            for (i, out_row) in chunk[t0 * p..t1 * p].chunks_mut(p).enumerate() {
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = x[(j, i)];
                }
            }
            t0 = t1;
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::{ridge_solve, ridge_solve_cols, ridge_solve_rows};
    use crate::rng::SeededRng;

    #[test]
    fn auto_tile_is_shape_monotone_and_clamped() {
        assert_eq!(auto_tile(0), MAX_AUTO_TILE);
        assert_eq!(auto_tile(1), MAX_AUTO_TILE);
        assert_eq!(auto_tile(49), 83);
        assert_eq!(auto_tile(1 << 20), MIN_AUTO_TILE);
        let mut prev = auto_tile(1);
        for row_len in 2..2048 {
            let t = auto_tile(row_len);
            assert!(t <= prev, "auto_tile must shrink as rows widen");
            assert!((MIN_AUTO_TILE..=MAX_AUTO_TILE).contains(&t));
            prev = t;
        }
        assert_eq!(resolve_tile(0, 49), auto_tile(49));
        assert_eq!(resolve_tile(17, 49), 17);
    }

    #[test]
    fn tiled_matmul_t_matches_naive_bit_for_bit() {
        let mut rng = SeededRng::new(31);
        // 23 is deliberately coprime to every tested tile size.
        let a = rng.uniform_mat(23, 5, -1.0, 1.0);
        let b = rng.uniform_mat(11, 5, -1.0, 1.0);
        let naive = a.matmul_t(&b).unwrap();
        for tile in [1, 3, 7, 11, 64, 0] {
            for threads in [1, 2, 8] {
                let tiled = matmul_t_tiled(&a, &b, threads, tile).unwrap();
                assert_eq!(tiled.as_slice(), naive.as_slice(), "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn tiled_rows_solve_matches_serial_bit_for_bit() {
        let mut rng = SeededRng::new(32);
        let g = rng.uniform_mat(9, 4, 0.0, 2.0);
        let b_rows = rng.uniform_mat(31, 9, 0.0, 5.0);
        let serial = ridge_solve(&g, &b_rows.transpose(), 0.2).unwrap().transpose();
        for tile in [1, 7, 31, 64, 0] {
            for threads in [1, 2, 8] {
                let tiled =
                    ridge_solve_rows_tiled(&g, &b_rows, 0.2, threads, &[(0, 31)], tile).unwrap();
                assert_eq!(tiled.as_slice(), serial.as_slice(), "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn tiled_rows_solve_matches_for_any_block_partition() {
        let mut rng = SeededRng::new(33);
        let g = rng.uniform_mat(9, 4, 0.0, 2.0);
        let b_rows = rng.uniform_mat(31, 9, 0.0, 5.0);
        let whole = ridge_solve_rows(&g, &b_rows, 0.2, 1).unwrap();
        for case in 0..20 {
            let mut cuts = vec![0usize, 31];
            for _ in 0..rng.index(5) {
                cuts.push(rng.index(32));
            }
            cuts.sort_unstable();
            let blocks: Vec<(usize, usize)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
            for tile in [1, 7, 0] {
                let tiled = ridge_solve_rows_tiled(&g, &b_rows, 0.2, 3, &blocks, tile).unwrap();
                assert_eq!(
                    tiled.as_slice(),
                    whole.as_slice(),
                    "case {case} blocks {blocks:?} tile {tile}"
                );
            }
        }
    }

    #[test]
    fn tiled_cols_solve_matches_serial_bit_for_bit() {
        let mut rng = SeededRng::new(34);
        let g = rng.uniform_mat(40, 3, 0.0, 2.0);
        let b = rng.uniform_mat(40, 17, 0.0, 5.0);
        let serial = ridge_solve(&g, &b, 0.2).unwrap().transpose();
        for tile in [1, 7, 17, 64, 0] {
            for threads in [1, 2, 8] {
                let tiled = ridge_solve_cols_tiled(&g, &b, 0.2, threads, tile).unwrap();
                assert_eq!(tiled.as_slice(), serial.as_slice(), "tile={tile} threads={threads}");
            }
        }
    }

    #[test]
    fn exact_zeros_in_g_keep_the_skip_semantics() {
        // t_matmul skips exact-zero G entries, which matters bit-wise when
        // a right-hand side holds a negative zero or an infinity (an
        // unskipped 0·∞ term would inject a NaN). The tiled kernels must
        // skip the very same terms; NaNs compare by bit pattern here.
        let bits = |m: &Mat| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let g = Mat::from_rows(&[&[0.0, 1.0], &[-0.0, 2.0], &[3.0, 0.0]]);
        let b_rows = Mat::from_rows(&[&[-0.0, f64::INFINITY, 1.0], &[1.0, -0.0, f64::INFINITY]]);
        let naive = ridge_solve_rows(&g, &b_rows, 0.5, 1).unwrap();
        for tile in [1, 2, 0] {
            let tiled = ridge_solve_rows_tiled(&g, &b_rows, 0.5, 1, &[(0, 2)], tile).unwrap();
            assert_eq!(bits(&tiled), bits(&naive), "tile={tile}");
        }
        let b = b_rows.transpose();
        let naive_cols = ridge_solve_cols(&g, &b, 0.5, 1).unwrap();
        for tile in [1, 2, 0] {
            let tiled = ridge_solve_cols_tiled(&g, &b, 0.5, 1, tile).unwrap();
            assert_eq!(bits(&tiled), bits(&naive_cols), "tile={tile}");
        }
    }

    #[test]
    fn tiled_kernels_reject_shape_mismatch() {
        let g = Mat::zeros(4, 2);
        assert!(matmul_t_tiled(&Mat::zeros(2, 3), &Mat::zeros(2, 4), 1, 2).is_err());
        assert!(ridge_solve_rows_tiled(&g, &Mat::zeros(3, 5), 0.1, 1, &[(0, 3)], 2).is_err());
        assert!(ridge_solve_cols_tiled(&g, &Mat::zeros(5, 3), 0.1, 1, 2).is_err());
    }

    #[test]
    fn tiled_solvers_propagate_singular_factor_errors() {
        let g = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let b_rows = Mat::from_rows(&[&[1.0, 1.0, 2.0], &[0.5, 0.5, 1.0]]);
        assert!(ridge_solve_rows_tiled(&g, &b_rows, 0.0, 1, &[(0, 2)], 1).is_err());
        assert!(ridge_solve_cols_tiled(&g, &b_rows.transpose(), 0.0, 1, 1).is_err());
        assert!(ridge_solve_rows_tiled(&g, &b_rows, 0.1, 1, &[(0, 2)], 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "blocks must cover")]
    fn tiled_rows_solve_rejects_short_partition() {
        let g = Mat::zeros(3, 2);
        let b_rows = Mat::zeros(5, 3);
        let _ = ridge_solve_rows_tiled(&g, &b_rows, 0.1, 1, &[(0, 3)], 2);
    }
}
