//! Dense row-major `f64` matrix.
//!
//! [`Mat`] is the single matrix type used throughout the reproduction. It is
//! intentionally simple: a `Vec<f64>` plus a shape, with the elementwise,
//! reduction and multiplication operations that the matrix-completion
//! algorithms (censored ALS, SVT, Soft-Impute) and the neural layers need.

use crate::error::{LinalgError, Result};

/// A dense, row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Mat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for c in 0..show_cols {
                write!(f, "{:10.4}", self[(r, c)])?;
                if c + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Mat {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Mat { rows, cols, data })
    }

    /// Build a matrix from nested row slices (handy in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Mat::from_rows");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Build a column vector (n×1 matrix) from a slice.
    pub fn col_vec(values: &[f64]) -> Self {
        Mat { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its backing storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Bounds-checked element access returning `None` when out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Uses the classic i-k-j loop order so the inner loop streams over
    /// contiguous rows of both the output and `other` (good cache behaviour
    /// without an explicit blocking scheme; all LimeQO matrices have a small
    /// inner dimension — the hint count 49 or the rank r ≤ 9).
    pub fn matmul(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Mat) -> Result<Mat> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a_ki) in a_row.iter().enumerate() {
                if a_ki == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ki * b_kj;
                }
            }
        }
        Ok(out)
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (&a, &x) in row.iter().zip(v.iter()) {
                acc += a * x;
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// In-place elementwise addition of `other` scaled by `alpha`.
    pub fn axpy(&mut self, alpha: f64, other: &Mat) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every entry by a scalar, returning a new matrix.
    pub fn scale(&self, s: f64) -> Mat {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Apply `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Mat {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// Apply `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Clamp every entry to be at least `lo` (used for the non-negativity
    /// projection in Algorithm 2, lines 7 and 12).
    pub fn clamp_min(&mut self, lo: f64) {
        for v in &mut self.data {
            if *v < lo {
                *v = lo;
            }
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Minimum entry of row `r` together with its column index.
    ///
    /// Returns `None` for zero-column matrices. NaNs are skipped.
    pub fn row_min(&self, r: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (c, &v) in self.row(r).iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match best {
                Some((_, bv)) if bv <= v => {}
                _ => best = Some((c, v)),
            }
        }
        best
    }

    /// Extract a contiguous sub-block of rows `[r0, r1)` as a new matrix.
    pub fn row_block(&self, r0: usize, r1: usize) -> Mat {
        assert!(r0 <= r1 && r1 <= self.rows);
        Mat {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Extract a contiguous sub-block of columns `[c0, c1)` as a new
    /// matrix (used to hand independent right-hand-side blocks to the
    /// batched ridge solver's workers).
    pub fn col_block(&self, c0: usize, c1: usize) -> Mat {
        assert!(c0 <= c1 && c1 <= self.cols);
        let mut out = Mat::zeros(self.rows, c1 - c0);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Vertically stack `self` on top of `other`.
    pub fn vstack(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Mat { rows: self.rows + other.rows, cols: self.cols, data })
    }

    fn zip_with(&self, other: &Mat, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Mat> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch { op, lhs: self.shape(), rhs: other.shape() });
        }
        let data =
            self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect::<Vec<_>>();
        Ok(Mat { rows: self.rows, cols: self.cols, data })
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(Mat::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_rows(&[&[1.0, -2.0, 3.5], &[0.0, 4.0, -1.0]]);
        let i = Mat::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let expected = a.transpose().matmul(&b).unwrap();
        assert_eq!(a.t_matmul(&b).unwrap(), expected);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0], &[1.0, 1.0]]);
        let expected = a.matmul(&b.transpose()).unwrap();
        assert_eq!(a.matmul_t(&b).unwrap(), expected);
    }

    #[test]
    fn hadamard_and_add_sub() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[2.0, 0.5], &[1.0, 2.0]]);
        assert_eq!(a.hadamard(&b).unwrap(), Mat::from_rows(&[&[2.0, 1.0], &[3.0, 8.0]]));
        assert_eq!(a.add(&b).unwrap(), Mat::from_rows(&[&[3.0, 2.5], &[4.0, 6.0]]));
        assert_eq!(a.sub(&b).unwrap(), Mat::from_rows(&[&[-1.0, 1.5], &[2.0, 2.0]]));
    }

    #[test]
    fn row_min_skips_nan() {
        let a = Mat::from_rows(&[&[f64::NAN, 2.0, 1.5]]);
        assert_eq!(a.row_min(0), Some((2, 1.5)));
    }

    #[test]
    fn row_min_empty_cols() {
        let a = Mat::zeros(1, 0);
        assert_eq!(a.row_min(0), None);
    }

    #[test]
    fn clamp_min_projects_negatives() {
        let mut a = Mat::from_rows(&[&[-1.0, 0.5], &[2.0, -3.0]]);
        a.clamp_min(0.0);
        assert_eq!(a, Mat::from_rows(&[&[0.0, 0.5], &[2.0, 0.0]]));
    }

    #[test]
    fn matvec_hand_computed() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn vstack_appends_rows() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s[(2, 1)], 6.0);
    }

    #[test]
    fn row_block_extracts_middle() {
        let a = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let b = a.row_block(1, 3);
        assert_eq!(b, Mat::from_rows(&[&[2.0], &[3.0]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Mat::from_rows(&[&[1.0, 1.0]]);
        let b = Mat::from_rows(&[&[2.0, 3.0]]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a, Mat::from_rows(&[&[2.0, 2.5]]));
    }
}
