//! Deterministic fork-join helpers for the parallel completion engine.
//!
//! Everything here obeys one **determinism contract** (see PERF.md at the
//! workspace root): work is partitioned into disjoint, contiguous chunks of
//! *output* slots — one chunk per worker, each worker writing only its own
//! pre-allocated slots — and every output element is computed with exactly
//! the same floating-point operation sequence as the serial code. The
//! thread count only moves chunk boundaries; it never reorders a reduction,
//! so results are byte-identical at any thread count, including 1. No
//! helper performs a cross-chunk reduction.
//!
//! Threads come from [`crossbeam::thread::scope`] (scoped borrows, panics
//! propagated), matching the seed fan-out pattern the bench scenario
//! runner established.

use crate::error::{LinalgError, Result};
use crate::matrix::Mat;

/// Number of workers the machine can actually run in parallel (≥ 1).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve a thread-count knob: `0` means "ask the machine"
/// ([`auto_threads`]), anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        auto_threads()
    } else {
        threads
    }
}

/// Below this many inner-loop multiply-adds, auto mode stays serial:
/// spawning a scope of OS threads costs tens of microseconds, which
/// dwarfs sub-threshold kernels (the fast scenario registry's matrices
/// are this small). Purely a performance heuristic — chunked and serial
/// execution are byte-identical either way.
pub const MIN_PAR_WORK: usize = 262_144;

/// Worker count for a kernel performing roughly `work` multiply-adds:
/// an explicit `threads` value is honored literally (tests pin 2/8-way
/// fan-outs on small inputs); `0` (auto) declines to parallelize below
/// [`MIN_PAR_WORK`].
pub fn effective_threads(threads: usize, work: usize) -> usize {
    if threads == 0 && work < MIN_PAR_WORK {
        1
    } else {
        resolve_threads(threads)
    }
}

/// Split `len` work units into at most `chunks` contiguous, near-equal
/// `(start, end)` ranges covering `0..len` in order. Never returns an
/// empty range; returns fewer ranges when `len < chunks`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1).min(len.max(1));
    if len == 0 {
        return vec![(0, 0)];
    }
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Partition `out` into contiguous chunks of whole `unit`-sized blocks and
/// run `f(first_unit_index, chunk)` on each, in parallel when more than one
/// worker is available. `out.len()` must be a multiple of `unit`.
///
/// Each invocation of `f` owns its chunk exclusively — this is the
/// "pre-allocated slots" half of the determinism contract. `f` must compute
/// every element the same way regardless of which chunk it lands in.
pub fn par_chunks<F>(out: &mut [f64], unit: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if out.is_empty() {
        return;
    }
    assert!(unit > 0 && out.len() % unit == 0, "output not unit-aligned");
    let units = out.len() / unit;
    let workers = resolve_threads(threads).min(units);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let ranges = chunk_ranges(units, workers);
    crossbeam::thread::scope(|scope| {
        let mut rest = &mut *out;
        for &(start, end) in &ranges {
            let (chunk, tail) = rest.split_at_mut((end - start) * unit);
            rest = tail;
            let f = &f;
            scope.spawn(move |_| f(start, chunk));
        }
    })
    .expect("parallel chunk fan-out");
}

/// `a * bᵀ`, row-partitioned across `threads` workers.
///
/// Byte-identical to [`Mat::matmul_t`] at any thread count: each output
/// element is the same left-to-right dot product; the partition only
/// decides which worker writes which pre-allocated output rows.
pub fn matmul_t(a: &Mat, b: &Mat, threads: usize) -> Result<Mat> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "par matmul_t",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let mut out = Mat::zeros(a.rows(), b.rows());
    let width = b.rows();
    if width == 0 {
        return Ok(out);
    }
    let threads = effective_threads(threads, a.rows() * b.rows() * a.cols());
    par_chunks(out.as_mut_slice(), width, threads, |r0, chunk| {
        for (i, out_row) in chunk.chunks_mut(width).enumerate() {
            let a_row = a.row(r0 + i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn chunk_ranges_cover_in_order() {
        assert_eq!(chunk_ranges(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(chunk_ranges(2, 8), vec![(0, 1), (1, 2)]);
        assert_eq!(chunk_ranges(0, 4), vec![(0, 0)]);
        for (len, chunks) in [(1, 1), (7, 7), (100, 9)] {
            let r = chunk_ranges(len, chunks);
            assert_eq!(r.first().unwrap().0, 0);
            assert_eq!(r.last().unwrap().1, len);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must tile contiguously");
                assert!(w[0].1 > w[0].0);
            }
        }
    }

    #[test]
    fn par_chunks_writes_disjoint_slots() {
        let mut out = vec![0.0; 12];
        par_chunks(&mut out, 3, 4, |first, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (first * 3 + i) as f64;
            }
        });
        let want: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn matmul_t_matches_serial_at_any_thread_count() {
        let mut rng = SeededRng::new(7);
        let a = rng.uniform_mat(23, 5, -1.0, 1.0);
        let b = rng.uniform_mat(11, 5, -1.0, 1.0);
        let serial = a.matmul_t(&b).unwrap();
        for threads in [1, 2, 3, 8, 0] {
            let par = matmul_t(&a, &b, threads).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn matmul_t_shape_checked() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 4);
        assert!(matmul_t(&a, &b, 2).is_err());
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(auto_threads() >= 1);
    }

    #[test]
    fn effective_threads_declines_small_auto_work_only() {
        // Auto mode: below-threshold kernels stay serial (thread spawn
        // would dwarf the compute) …
        assert_eq!(effective_threads(0, MIN_PAR_WORK - 1), 1);
        assert!(effective_threads(0, MIN_PAR_WORK) >= 1);
        // … but an explicit thread count is always honored literally —
        // the determinism tests rely on forcing real fan-outs.
        assert_eq!(effective_threads(8, 1), 8);
        assert_eq!(effective_threads(2, usize::MAX), 2);
    }
}
