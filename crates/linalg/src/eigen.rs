//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The thin SVD in [`crate::svd`] reduces to an eigendecomposition of the
//! k×k Gram matrix (k = number of hints = 49 throughout the paper), for
//! which Jacobi is simple, numerically robust, and plenty fast.

use crate::error::{LinalgError, Result};
use crate::matrix::Mat;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in descending order; `vectors` holds the matching
/// eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct EigenSym {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, column `i` pairs with `values[i]`.
    pub vectors: Mat,
}

/// Off-diagonal Frobenius norm, the Jacobi convergence measure.
fn off_diag_norm(a: &Mat) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s.sqrt()
}

/// Compute all eigenvalues/eigenvectors of a symmetric matrix.
///
/// Only the lower triangle is trusted; the matrix is symmetrized on entry.
/// Sweeps are capped at 64 cycles; convergence to ~1e-12 relative
/// off-diagonal mass typically takes < 10 sweeps for the matrices LimeQO
/// produces.
pub fn eigen_sym(a: &Mat) -> Result<EigenSym> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { rows: n, cols: m });
    }
    if n == 0 {
        return Err(LinalgError::Empty { op: "eigen_sym" });
    }
    // Work on a symmetrized copy so tiny asymmetries from accumulation error
    // cannot stall the sweep.
    let mut w = Mat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Mat::identity(n);

    let scale = (0..n).map(|i| w[(i, i)].abs()).fold(1e-300, f64::max);
    let tol = 1e-14 * scale * (n as f64);
    const MAX_SWEEPS: usize = 64;

    for _sweep in 0..MAX_SWEEPS {
        if off_diag_norm(&w) <= tol {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = w[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = w[(p, p)];
                let aqq = w[(q, q)];
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation on rows/columns p and q of W.
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract, sort descending, permute eigenvectors accordingly.
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| w[(i, i)]).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let vectors = Mat::from_fn(n, n, |r, c| v[(r, idx[c])]);
    Ok(EigenSym { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    #[test]
    fn diagonal_matrix() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = eigen_sym(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigen_sym(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = Mat::from_rows(&[
            &[4.0, 1.0, -2.0, 0.5],
            &[1.0, 3.0, 0.0, 1.0],
            &[-2.0, 0.0, 5.0, -1.0],
            &[0.5, 1.0, -1.0, 2.0],
        ]);
        let e = eigen_sym(&a).unwrap();
        // V diag(λ) Vᵀ == A
        let n = a.rows();
        let lam = Mat::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rebuilt = e.vectors.matmul(&lam).unwrap().matmul(&e.vectors.transpose()).unwrap();
        assert!(max_abs_diff(&a, &rebuilt) < 1e-9);
        // VᵀV == I
        let vtv = e.vectors.t_matmul(&e.vectors).unwrap();
        assert!(max_abs_diff(&vtv, &Mat::identity(n)) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Mat::from_rows(&[&[1.0, 0.2, 0.0], &[0.2, 5.0, 0.1], &[0.0, 0.1, 3.0]]);
        let e = eigen_sym(&a).unwrap();
        assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
    }

    #[test]
    fn trace_preserved() {
        let a = Mat::from_rows(&[&[2.0, -1.0, 0.3], &[-1.0, 1.5, 0.7], &[0.3, 0.7, -0.5]]);
        let e = eigen_sym(&a).unwrap();
        let trace = a[(0, 0)] + a[(1, 1)] + a[(2, 2)];
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(eigen_sym(&Mat::zeros(2, 3)).is_err());
    }
}
