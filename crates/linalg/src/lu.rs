//! LU factorization with partial pivoting for general square systems.
//!
//! Used as the fallback solver when a normal-equation matrix loses positive
//! definiteness to rounding (rare, but the ALS loop must never panic), and by
//! the ridge surrogate of the BayesQO baseline.

use crate::error::{LinalgError, Result};
use crate::matrix::Mat;

/// Packed LU factorization `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined storage: strictly-lower part holds L (unit diagonal implied),
    /// upper part holds U.
    lu: Mat,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
}

/// Factor a square matrix with partial pivoting.
pub fn lu(a: &Mat) -> Result<LuFactor> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinalgError::NotSquare { rows: n, cols: m });
    }
    let mut lu_m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot selection: largest absolute value in the column at/below the diagonal.
        let mut pivot_row = col;
        let mut pivot_val = lu_m[(col, col)].abs();
        for r in col + 1..n {
            let v = lu_m[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Singular { pivot: col });
        }
        if pivot_row != col {
            perm.swap(col, pivot_row);
            for c in 0..n {
                let a = lu_m[(col, c)];
                let b = lu_m[(pivot_row, c)];
                lu_m[(col, c)] = b;
                lu_m[(pivot_row, c)] = a;
            }
        }
        let inv_pivot = 1.0 / lu_m[(col, col)];
        for r in col + 1..n {
            let factor = lu_m[(r, col)] * inv_pivot;
            lu_m[(r, col)] = factor;
            for c in col + 1..n {
                let delta = factor * lu_m[(col, c)];
                lu_m[(r, c)] -= delta;
            }
        }
    }
    Ok(LuFactor { lu: lu_m, perm })
}

impl LuFactor {
    /// Dimension n of the factored n×n matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in i + 1..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Solve `A X = B` for a matrix right-hand side.
    pub fn solve(&self, b: &Mat) -> Result<Mat> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch { op: "lu solve", lhs: (n, n), rhs: b.shape() });
        }
        let mut out = Mat::zeros(n, b.cols());
        for c in 0..b.cols() {
            let x = self.solve_vec(&b.col(c))?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }
}

/// One-shot `A X = B` solve for general square `A`.
pub fn lu_solve(a: &Mat, b: &Mat) -> Result<Mat> {
    lu(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    #[test]
    fn solves_nonsymmetric_system() {
        let a = Mat::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let x_true = vec![1.0, 2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lu(&a).unwrap().solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn detects_singularity() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(lu(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu(&a).unwrap().solve_vec(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_rhs_matches_vector_solves() {
        let a = Mat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[5.0, 1.0], &[5.0, 0.0]]);
        let x = lu_solve(&a, &b).unwrap();
        let rebuilt = a.matmul(&x).unwrap();
        assert!(max_abs_diff(&rebuilt, &b) < 1e-12);
    }
}
