//! Seeded randomness helpers.
//!
//! Every stochastic component of the reproduction (catalog generation, noise,
//! random exploration, ALS initialization, NN weight init, dropout) draws
//! from a [`SeededRng`] so that each experiment is exactly reproducible from
//! its seed. Gaussians use Box–Muller because the offline `rand` crate does
//! not bundle `rand_distr`.

use crate::matrix::Mat;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG wrapper with matrix-fill and distribution helpers.
pub struct SeededRng {
    inner: StdRng,
    /// Cached second Box–Muller variate.
    spare_gaussian: Option<f64>,
}

impl SeededRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed), spare_gaussian: None }
    }

    /// Derive an independent child RNG; used to give each subsystem its own
    /// stream so adding draws in one place does not perturb another.
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let base = self.inner.next_u64();
        SeededRng::new(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_range(0.0..1.0) < p
    }

    /// Standard normal via Box–Muller (with caching of the paired variate).
    pub fn gaussian(&mut self, mean: f64, std: f64) -> f64 {
        let z = match self.spare_gaussian.take() {
            Some(z) => z,
            None => {
                // Draw u1 in (0, 1] to keep ln(u1) finite.
                let u1: f64 = 1.0 - self.inner.gen_range(0.0..1.0);
                let u2: f64 = self.inner.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare_gaussian = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std * z
    }

    /// Log-normal draw: `exp(N(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian(mu, sigma).exp()
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform_mat(&mut self, rows: usize, cols: usize, lo: f64, hi: f64) -> Mat {
        Mat::from_fn(rows, cols, |_, _| self.uniform(lo, hi))
    }

    /// Matrix with i.i.d. Gaussian entries.
    pub fn gaussian_mat(&mut self, rows: usize, cols: usize, mean: f64, std: f64) -> Mat {
        Mat::from_fn(rows, cols, |_, _| self.gaussian(mean, std))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Access the raw `rand` RNG for anything not wrapped here.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// Snapshot the full generator state: the four xoshiro256++ words plus
    /// the cached Box–Muller variate. Restoring via [`SeededRng::restore`]
    /// resumes the stream exactly where it left off, which is what lets a
    /// crash-recovered engine continue bit-identically.
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.inner.state(), self.spare_gaussian)
    }

    /// Rebuild a generator from a [`SeededRng::state`] snapshot.
    pub fn restore(state: ([u64; 4], Option<f64>)) -> Self {
        SeededRng { inner: StdRng::from_state(state.0), spare_gaussian: state.1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f64> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gaussian_moments_roughly_correct() {
        let mut rng = SeededRng::new(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SeededRng::new(5);
        let s = rng.sample_indices(10, 7);
        assert_eq!(s.len(), 7);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
        assert!(s.iter().all(|&i| i < 10));
    }

    #[test]
    fn log_normal_positive() {
        let mut rng = SeededRng::new(6);
        for _ in 0..1000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = SeededRng::new(77);
        // Burn an odd number of Box–Muller draws so a spare is cached.
        let _ = a.gaussian(0.0, 1.0);
        let _ = a.uniform(0.0, 1.0);
        let mut b = SeededRng::restore(a.state());
        for _ in 0..32 {
            assert_eq!(a.gaussian(0.0, 1.0), b.gaussian(0.0, 1.0));
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.index(17), b.index(17));
        }
    }

    #[test]
    fn fork_streams_are_independent_of_later_parent_use() {
        let mut a = SeededRng::new(99);
        let mut fork1 = a.fork(1);
        let v1: Vec<f64> = (0..4).map(|_| fork1.uniform(0.0, 1.0)).collect();

        let mut b = SeededRng::new(99);
        let mut fork2 = b.fork(1);
        // Consuming from the parent after forking must not change the fork.
        let _ = b.uniform(0.0, 1.0);
        let v2: Vec<f64> = (0..4).map(|_| fork2.uniform(0.0, 1.0)).collect();
        assert_eq!(v1, v2);
    }
}
