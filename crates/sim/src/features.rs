//! Plan featurization for the tree convolutional neural networks.
//!
//! Following Bao (§4.3.2 of the paper): plans are binarized trees where each
//! node carries a one-hot operator encoding plus log-scaled cost and
//! cardinality estimates. The TCNN consumes trees as flat arrays (preorder
//! node features + child indices), which lets the network batch all nodes
//! of a tree through the convolution as one matrix multiply.

use crate::plan::{JoinMethod, PlanTree, ScanMethod};
use limeqo_linalg::Mat;

/// Per-node feature width: 6 one-hot operator slots (3 joins + 3 scans),
/// log(est cost), log(est rows), and an index-lookup flag.
pub const NODE_FEATURE_DIM: usize = 9;

/// A featurized plan tree in flat-array form.
#[derive(Debug, Clone)]
pub struct PlanFeatures {
    /// Node features, one row per node, preorder (row 0 = root).
    pub nodes: Mat,
    /// Left-child index per node, -1 for none.
    pub left: Vec<i32>,
    /// Right-child index per node, -1 for none.
    pub right: Vec<i32>,
}

impl PlanFeatures {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True when the tree has no nodes (never produced by
    /// [`featurize_plan`]).
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// Normalization constants for the two continuous features, estimated from
/// a sample of plans so inputs arrive roughly standardized.
#[derive(Debug, Clone, Copy)]
pub struct FeatureNorm {
    /// Mean of `ln(1 + est_cost)` over sampled nodes.
    pub cost_mean: f64,
    /// Std of the same.
    pub cost_std: f64,
    /// Mean of `ln(1 + est_rows)`.
    pub rows_mean: f64,
    /// Std of the same.
    pub rows_std: f64,
}

impl Default for FeatureNorm {
    fn default() -> Self {
        // Reasonable magnitudes when no sample is available.
        FeatureNorm { cost_mean: 10.0, cost_std: 4.0, rows_mean: 8.0, rows_std: 4.0 }
    }
}

impl FeatureNorm {
    /// Fit normalization constants from sample plans.
    pub fn fit(plans: &[PlanTree]) -> FeatureNorm {
        let mut costs = Vec::new();
        let mut rows = Vec::new();
        for p in plans {
            p.visit(&mut |n| {
                let e = n.est();
                costs.push((1.0 + e.cost.max(0.0)).ln());
                rows.push((1.0 + e.rows.max(0.0)).ln());
            });
        }
        let stat = |v: &[f64]| {
            if v.is_empty() {
                return (0.0, 1.0);
            }
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
            (mean, var.sqrt().max(1e-6))
        };
        let (cm, cs) = stat(&costs);
        let (rm, rs) = stat(&rows);
        FeatureNorm { cost_mean: cm, cost_std: cs, rows_mean: rm, rows_std: rs }
    }
}

fn op_slot(plan: &PlanTree) -> usize {
    match plan {
        PlanTree::Join { method: JoinMethod::Hash, .. } => 0,
        PlanTree::Join { method: JoinMethod::Merge, .. } => 1,
        PlanTree::Join { method: JoinMethod::NestLoop, .. } => 2,
        PlanTree::Scan { method: ScanMethod::Seq, .. } => 3,
        PlanTree::Scan { method: ScanMethod::Index, .. } => 4,
        PlanTree::Scan { method: ScanMethod::IndexOnly, .. } => 5,
    }
}

/// Flatten an (estimated-world-annotated) plan into TCNN input arrays.
pub fn featurize_plan(plan: &PlanTree, norm: &FeatureNorm) -> PlanFeatures {
    // Preorder collect.
    fn collect<'a>(
        p: &'a PlanTree,
        nodes: &mut Vec<&'a PlanTree>,
        left: &mut Vec<i32>,
        right: &mut Vec<i32>,
    ) -> i32 {
        let idx = nodes.len() as i32;
        nodes.push(p);
        left.push(-1);
        right.push(-1);
        if let PlanTree::Join { left: l, right: r, .. } = p {
            let li = collect(l, nodes, left, right);
            left[idx as usize] = li;
            let ri = collect(r, nodes, left, right);
            right[idx as usize] = ri;
        }
        idx
    }
    let mut flat = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    collect(plan, &mut flat, &mut left, &mut right);

    let mut nodes = Mat::zeros(flat.len(), NODE_FEATURE_DIM);
    for (i, p) in flat.iter().enumerate() {
        nodes[(i, op_slot(p))] = 1.0;
        let e = p.est();
        nodes[(i, 6)] = ((1.0 + e.cost.max(0.0)).ln() - norm.cost_mean) / norm.cost_std;
        nodes[(i, 7)] = ((1.0 + e.rows.max(0.0)).ln() - norm.rows_mean) / norm.rows_std;
        nodes[(i, 8)] = match p {
            PlanTree::Join { inner_lookup: true, .. } => 1.0,
            _ => 0.0,
        };
    }
    PlanFeatures { nodes, left, right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NodeStats;

    fn scan(i: usize, method: ScanMethod) -> PlanTree {
        PlanTree::Scan {
            table_ref: i,
            method,
            est: NodeStats { rows: 100.0, cost: 50.0 },
            actual: NodeStats::default(),
        }
    }

    fn sample_plan() -> PlanTree {
        PlanTree::Join {
            method: JoinMethod::Hash,
            inner_lookup: false,
            left: Box::new(PlanTree::Join {
                method: JoinMethod::NestLoop,
                inner_lookup: true,
                left: Box::new(scan(0, ScanMethod::Seq)),
                right: Box::new(scan(1, ScanMethod::Index)),
                est: NodeStats { rows: 500.0, cost: 300.0 },
                actual: NodeStats::default(),
            }),
            right: Box::new(scan(2, ScanMethod::IndexOnly)),
            est: NodeStats { rows: 1000.0, cost: 900.0 },
            actual: NodeStats::default(),
        }
    }

    #[test]
    fn featurize_node_count_and_shape() {
        let f = featurize_plan(&sample_plan(), &FeatureNorm::default());
        assert_eq!(f.len(), 5);
        assert_eq!(f.nodes.shape(), (5, NODE_FEATURE_DIM));
    }

    #[test]
    fn root_is_node_zero_with_children_linked() {
        let f = featurize_plan(&sample_plan(), &FeatureNorm::default());
        // Root is the hash join: slot 0.
        assert_eq!(f.nodes[(0, 0)], 1.0);
        assert!(f.left[0] >= 0 && f.right[0] >= 0);
        // Leaves have no children.
        for i in 0..f.len() {
            if f.nodes[(i, 3)] == 1.0 || f.nodes[(i, 4)] == 1.0 || f.nodes[(i, 5)] == 1.0 {
                assert_eq!(f.left[i], -1);
                assert_eq!(f.right[i], -1);
            }
        }
    }

    #[test]
    fn one_hot_exactly_one_slot() {
        let f = featurize_plan(&sample_plan(), &FeatureNorm::default());
        for i in 0..f.len() {
            let ones: f64 = (0..6).map(|s| f.nodes[(i, s)]).sum();
            assert_eq!(ones, 1.0);
        }
    }

    #[test]
    fn inner_lookup_flag_set() {
        let f = featurize_plan(&sample_plan(), &FeatureNorm::default());
        let lookup_flags: f64 = (0..f.len()).map(|i| f.nodes[(i, 8)]).sum();
        assert_eq!(lookup_flags, 1.0); // exactly the NL* node
    }

    #[test]
    fn norm_fit_standardizes() {
        let plans = vec![sample_plan(), sample_plan()];
        let norm = FeatureNorm::fit(&plans);
        let f = featurize_plan(&plans[0], &norm);
        // Standardized features should be bounded for the fitted sample.
        for i in 0..f.len() {
            assert!(f.nodes[(i, 6)].abs() < 5.0);
            assert!(f.nodes[(i, 7)].abs() < 5.0);
        }
    }
}
