//! Data drift: table growth and selectivity shift over simulated days.
//!
//! The paper studies two flavours of change (§5.4): *incremental updates*
//! (Fig. 10 — what fraction of queries change their optimal hint after
//! 1 day … 2 years of data growth) and a *complete data shift* (Fig. 11 —
//! swap Stack 2017 for Stack 2019 mid-exploration). [`drift_workload`]
//! implements the underlying model:
//!
//! * every table grows by its [`crate::catalog::Table::daily_growth`] rate
//!   compounded over `days`,
//! * true predicate/join selectivities random-walk with a standard
//!   deviation that grows with `days` (value distributions shift slowly);
//!   the walk has a per-catalog-table common component shared by every
//!   query referencing the table, plus per-reference idiosyncratic noise,
//!   and is centered so aggregate slowdown comes from growth alone,
//! * the planner's statistics follow the truth only partially (ANALYZE
//!   refreshes magnitudes but correlated-predicate errors persist), so the
//!   estimation-error *profile* of each query is preserved.
//!
//! The drift constants are chosen so the fraction of queries whose
//! optimal hint changes roughly traces the paper's Fig. 10 curve (small
//! after a month, a fifth to a quarter after two years); regenerate fig10
//! after touching them.

use crate::workloads::Workload;
use limeqo_linalg::rng::SeededRng;

/// Scale of the log-selectivity drift: `sigma = RATE · days^EXPONENT`.
/// Chosen so the fraction of queries whose optimal hint changes roughly
/// traces the paper's Fig. 10 shape (≈0 % after a day, a few percent after
/// a month, ~20–25 % after two years on the small test workloads; re-run
/// `limeqo-bench --bin fig10` after touching any drift constant).
pub const DRIFT_SIGMA_RATE: f64 = 0.0054;

/// Super-diffusive drift exponent (value distributions shift with trends,
/// not just random walks).
pub const DRIFT_EXPONENT: f64 = 0.75;

/// Fraction of the true drift that propagates into planner estimates
/// (statistics are refreshed, but systematically-correlated errors remain).
pub const EST_TRACKING: f64 = 0.7;

/// Std multiplier for the per-table common component of the walk (a
/// table's value distribution shifts once, for every query touching it).
/// `TABLE_FRAC² + REF_FRAC² = 1`, so a predicate's marginal log-drift std
/// is exactly `sigma`; join selectivities average the two endpoint shifts
/// and drift slightly less (std `sqrt(0.5·TABLE_FRAC² + REF_FRAC²)·sigma`).
const TABLE_FRAC: f64 = 0.894_427_190_999_915_9; // sqrt(0.8)

/// Std multiplier for the per-reference idiosyncratic component (different
/// predicates over the same table drift differently). Kept smaller than
/// [`TABLE_FRAC`] so workload-aggregate cost is driven by table growth, as
/// in the paper (§5.4: Stack's default total grew 1.16 h → 1.46 h), not by
/// predicate-level noise.
const REF_FRAC: f64 = 0.447_213_595_499_958; // sqrt(0.2)

/// Evolve a workload by `days` of data change. Returns a new workload with
/// the same queries over a grown, shifted database. The returned workload's
/// catalog keeps the *original* machine-speed calibration so latencies are
/// comparable before/after the shift (re-running
/// [`Workload::build_oracle`] would re-calibrate; use
/// [`build_oracle_uncalibrated`] instead).
pub fn drift_workload(base: &Workload, days: f64, seed: u64) -> Workload {
    assert!(days >= 0.0, "drift days must be non-negative");
    let mut w = base.clone();
    let mut rng = SeededRng::new(seed ^ 0x000D_21F7u64 ^ (days.to_bits()));
    // Table growth.
    for t in &mut w.catalog.tables {
        t.rows *= (1.0 + t.daily_growth).powf(days);
    }
    // Selectivity random walk, split into a per-catalog-table common
    // component (the table's value distribution shifts identically for
    // every query referencing it) and a smaller per-reference idiosyncratic
    // component. Both components are mean-one as *multiplicative factors*
    // (the table factors are normalized in linear space, the idiosyncratic
    // draws carry the lognormal −σ²/2 mean correction), so the walk adds no
    // workload-wide trend: systematic slowdown comes from table growth.
    let sigma = DRIFT_SIGMA_RATE * days.powf(DRIFT_EXPONENT);
    let sigma_ref = sigma * REF_FRAC;
    let mut table_factor: Vec<f64> =
        w.catalog.tables.iter().map(|_| rng.log_normal(0.0, sigma * TABLE_FRAC)).collect();
    if !table_factor.is_empty() {
        let mean = table_factor.iter().sum::<f64>() / table_factor.len() as f64;
        for f in &mut table_factor {
            *f /= mean;
        }
    }
    let idio_mu = -0.5 * sigma_ref * sigma_ref;
    for q in &mut w.queries {
        for tr in &mut q.tables {
            let f = table_factor[tr.table] * rng.log_normal(idio_mu, sigma_ref);
            tr.sel_true = (tr.sel_true * f).clamp(1e-8, 1.0);
            tr.sel_est = (tr.sel_est * f.powf(EST_TRACKING)).clamp(1e-8, 1.0);
        }
        for e in &mut q.joins {
            // A join's selectivity shifts with both endpoint distributions.
            let fa = table_factor[q.tables[e.a].table];
            let fb = table_factor[q.tables[e.b].table];
            let f = (fa * fb).sqrt() * rng.log_normal(idio_mu, sigma_ref);
            e.sel_true = (e.sel_true * f).clamp(1e-12, 1.0);
            e.sel_est = (e.sel_est * f.powf(EST_TRACKING)).clamp(1e-12, 1.0);
        }
    }
    w.spec.name = format!("{}+{}d", base.spec.name, days as i64);
    w
}

/// Build oracle matrices for a drifted workload *without* re-calibrating the
/// machine-speed constant, so totals are comparable to the base workload
/// (data growth is allowed to raise the default total, as it does in the
/// paper: Stack grew from 1.16 h to 1.46 h between snapshots).
pub fn build_oracle_uncalibrated(w: &Workload) -> crate::workloads::OracleMatrices {
    // Reuse build_oracle's machinery by pinning the target to whatever the
    // current calibration yields: plan/execute every cell, then undo the
    // recalibration by rebuilding with the preserved time_per_cost_unit.
    let tpu = w.catalog.params.time_per_cost_unit;
    let mut scratch = w.clone();
    let o = scratch.build_oracle();
    let new_tpu = scratch.catalog.params.time_per_cost_unit;
    // build_oracle computed latencies with new_tpu; rescale the plan-cost
    // component back to tpu. latency = etl + noise*(cu*tpu' + STARTUP)
    // => latency(tpu) = etl + (latency(tpu') - etl - noise*STARTUP)*tpu/tpu'
    //                   + noise*STARTUP.
    let n = w.n();
    let k = w.k();
    let mut lat = o.true_latency.clone();
    for i in 0..n {
        let etl = w.queries[i].etl_write_seconds;
        for h in 0..k {
            let noise = crate::executor::noise_factor(w.queries[i].noise_seed, h);
            let startup = noise * crate::executor::STARTUP_SECONDS;
            let plan_part = (lat[(i, h)] - etl - startup).max(0.0);
            lat[(i, h)] = etl + plan_part * (tpu / new_tpu) + startup;
        }
    }
    let default_total: f64 = (0..n).map(|i| lat[(i, 0)]).sum();
    let optimal_total: f64 = (0..n).map(|i| lat.row_min(i).map(|(_, v)| v).unwrap()).sum();
    crate::workloads::OracleMatrices {
        true_latency: lat,
        est_cost: o.est_cost,
        default_total,
        optimal_total,
    }
}

/// Fraction of queries whose optimal hint differs between two oracles with
/// identical shapes (Fig. 10's Y axis).
pub fn optimal_hint_change_fraction(
    a: &crate::workloads::OracleMatrices,
    b: &crate::workloads::OracleMatrices,
) -> f64 {
    let n = a.true_latency.rows();
    assert_eq!(n, b.true_latency.rows());
    let mut changed = 0usize;
    for i in 0..n {
        let (ha, _) = a.true_latency.row_min(i).expect("non-empty row");
        let (hb, _) = b.true_latency.row_min(i).expect("non-empty row");
        if ha != hb {
            changed += 1;
        }
    }
    changed as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadSpec;

    #[test]
    fn zero_day_drift_changes_nothing_structural() {
        let base = WorkloadSpec::tiny(10, 30).build();
        let d = drift_workload(&base, 0.0, 1);
        for (a, b) in base.queries.iter().zip(d.queries.iter()) {
            for (ta, tb) in a.tables.iter().zip(b.tables.iter()) {
                assert!((ta.sel_true - tb.sel_true).abs() < 1e-12);
            }
        }
        for (ta, tb) in base.catalog.tables.iter().zip(d.catalog.tables.iter()) {
            assert_eq!(ta.rows, tb.rows);
        }
    }

    #[test]
    fn tables_grow_with_days() {
        let base = WorkloadSpec::tiny(5, 31).build();
        let d = drift_workload(&base, 365.0, 2);
        for (a, b) in base.catalog.tables.iter().zip(d.catalog.tables.iter()) {
            assert!(b.rows > a.rows);
        }
    }

    #[test]
    fn hint_change_fraction_grows_with_horizon() {
        let mut base = WorkloadSpec::tiny(40, 32).build();
        let o0 = base.build_oracle();
        let mut short = drift_workload(&base, 7.0, 3);
        let mut long = drift_workload(&base, 730.0, 3);
        // Use the same calibration basis: rebuild oracles with their own
        // calibration is fine here since only the argmin per row matters and
        // rescaling a row by a constant preserves the argmin.
        let os = short.build_oracle();
        let ol = long.build_oracle();
        let fs = optimal_hint_change_fraction(&o0, &os);
        let fl = optimal_hint_change_fraction(&o0, &ol);
        assert!(fl >= fs, "week {fs} vs 2y {fl}");
        assert!(fl > 0.0, "2-year drift should change some optimal hints");
    }

    #[test]
    fn uncalibrated_oracle_keeps_machine_speed() {
        let mut base = WorkloadSpec::tiny(12, 33).build();
        let o0 = base.build_oracle();
        let target = base.spec.target_default_total;
        assert!((o0.default_total - target).abs() < 1e-6 * target);
        let drifted = drift_workload(&base, 365.0, 4);
        let od = build_oracle_uncalibrated(&drifted);
        // Growth changed the cost units, so hitting the spec target again
        // would need a new machine speed; an uncalibrated build must not.
        assert!(
            (od.default_total - target).abs() > 1e-3,
            "drifted default total {} looks recalibrated to target {target}",
            od.default_total
        );
        // Contract check: every cell must equal a direct plan-and-execute
        // on the drifted catalog, which still carries the base calibration.
        let exec = crate::executor::Executor::new(&drifted.catalog);
        for i in (0..drifted.n()).step_by(3) {
            for h in [0usize, 7, 48] {
                let mut plan = drifted.plan_cell(i, h);
                let direct = exec.latency_seconds(&mut plan, &drifted.queries[i], h);
                let got = od.true_latency[(i, h)];
                assert!(
                    (got - direct).abs() <= 1e-9 * direct.max(1.0),
                    "cell ({i},{h}): oracle {got} vs direct {direct}"
                );
            }
        }
    }

    #[test]
    fn fixed_plan_on_grown_data_is_slower() {
        let mut base = WorkloadSpec::tiny(12, 33).build();
        let _ = base.build_oracle();
        let drifted = drift_workload(&base, 365.0, 4);
        // Execute the BASE plans (planned against the base catalog) and the
        // BASE queries (base selectivities) on the grown catalog: with plan
        // and predicates fixed, more data can only cost more. (Re-planning
        // may legitimately get faster — grown statistics can pull the
        // default plan out of an optimizer trap — which is why this
        // invariant is stated for fixed plans.)
        let exec_base = crate::executor::Executor::new(&base.catalog);
        let exec_grown = crate::executor::Executor::new(&drifted.catalog);
        let mut before = 0.0;
        let mut after = 0.0;
        for i in 0..base.n() {
            let mut plan = base.plan_cell(i, 0);
            before += exec_base.latency_seconds(&mut plan, &base.queries[i], 0);
            after += exec_grown.latency_seconds(&mut plan, &base.queries[i], 0);
        }
        assert!(after > before, "grown db must be slower for fixed plans: {after} vs {before}");
    }
}
