//! Config-file loader for [`ScenarioSpec`]: scenarios as data, not code.
//!
//! A scenario file is JSON (`.json`) or a TOML subset (`.toml`) describing
//! exactly the fields of [`ScenarioSpec`]. The loader is dependency-free:
//! both parsers live here, track line numbers, and decode through a single
//! strict schema so every error names the file, the line, and the field
//! path (`scenarios/job-mini.json:14: policy.limeqo_als.rank: expected a
//! non-negative integer`). Unknown keys are errors — a typoed knob must
//! never be silently ignored.
//!
//! The serializers ([`to_json_string`], [`to_toml_string`]) emit canonical
//! files whose round trip is *exact*: floats print through Rust's
//! shortest-representation formatter, which re-parses bit for bit, and
//! [`ScenarioSpec::check`] rejects seeds above 2^53 up front. The corpus
//! test in `tests/tests/scenario_corpus.rs` holds `scenarios/` to this
//! round trip against the code registry.
//!
//! The TOML dialect is the subset the serializer emits plus the obvious
//! human conveniences: `[table]` / `[[array-of-tables]]` headers, dotted
//! keys, basic strings, numbers (with `_` separators), booleans, arrays
//! (multi-line allowed), inline tables, and `#` comments.

use std::path::{Path, PathBuf};

use crate::catalog::CatalogSpec;
use crate::query::{JoinShape, QueryClass};
use crate::scenario::{
    ArrivalModel, ArrivalSpec, DriftEvent, DriftKind, HintShape, ScenarioSpec, ScenarioWorkload,
    SyntheticSpec,
};
use crate::workloads::{ClassMix, WorkloadSpec};
use limeqo_core::scenario::PolicySpec;
use limeqo_core::store::DriftPolicy;

/// A scenario-file load failure: file, line (when known), and message.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadError {
    /// The file being loaded.
    pub path: PathBuf,
    /// 1-based line the error was detected on, when attributable.
    pub line: Option<usize>,
    /// What went wrong, prefixed with the offending field path.
    pub msg: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{line}: {}", self.path.display(), self.msg),
            None => write!(f, "{}: {}", self.path.display(), self.msg),
        }
    }
}

impl std::error::Error for LoadError {}

// ---------------------------------------------------------------------------
// Value tree (shared by both parsers)

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

#[derive(Debug, Clone, PartialEq)]
struct Value {
    node: Node,
    line: usize,
}

impl Value {
    fn new(node: Node, line: usize) -> Self {
        Value { node, line }
    }

    fn kind(&self) -> &'static str {
        match self.node {
            Node::Null => "null",
            Node::Bool(_) => "a boolean",
            Node::Num(_) => "a number",
            Node::Str(_) => "a string",
            Node::Arr(_) => "an array",
            Node::Obj(_) => "a table",
        }
    }
}

// ---------------------------------------------------------------------------
// JSON parser (line-tracking)

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

type ParseResult<T> = Result<T, (usize, String)>;

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> Self {
        JsonParser { bytes: src.as_bytes(), pos: 0, line: 1 }
    }

    fn parse(src: &str) -> ParseResult<Value> {
        let mut p = JsonParser::new(src);
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err((p.line, "trailing content after the top-level value".into()));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> ParseResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err((self.line, format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> ParseResult<Value> {
        self.skip_ws();
        let line = self.line;
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::new(Node::Str(self.string()?), line)),
            Some(b't') => self.keyword("true", Node::Bool(true)),
            Some(b'f') => self.keyword("false", Node::Bool(false)),
            Some(b'n') => self.keyword("null", Node::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err((line, format!("unexpected character {:?}", c as char))),
            None => Err((line, "unexpected end of input".into())),
        }
    }

    fn keyword(&mut self, word: &str, node: Node) -> ParseResult<Value> {
        let line = self.line;
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(Value::new(node, line))
        } else {
            Err((line, format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> ParseResult<Value> {
        let line = self.line;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text.parse().map_err(|_| (line, format!("invalid number {text:?}")))?;
        Ok(Value::new(Node::Num(v), line))
    }

    fn string(&mut self) -> ParseResult<String> {
        let line = self.line;
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err((line, "unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or((line, "unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape(line)?),
                        other => return Err((line, format!("unknown escape \\{}", other as char))),
                    }
                }
                Some(b'\n') => return Err((line, "unterminated string".into())),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| (line, "invalid UTF-8 in string".to_string()))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self, line: usize) -> ParseResult<char> {
        let hex4 = |p: &mut Self| -> ParseResult<u32> {
            let end = p.pos + 4;
            let s = p
                .bytes
                .get(p.pos..end)
                .and_then(|b| std::str::from_utf8(b).ok())
                .ok_or((line, "truncated \\u escape".to_string()))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| (line, "bad \\u escape".to_string()))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = hex4(self)?;
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c).ok_or((line, "bad surrogate pair".into()));
            }
            return Err((line, "lone surrogate in \\u escape".into()));
        }
        char::from_u32(hi).ok_or((line, "bad \\u escape".into()))
    }

    fn object(&mut self) -> ParseResult<Value> {
        let line = self.line;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::new(Node::Obj(fields), line));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':').map_err(|_| (self.line, "expected ':' after key".to_string()))?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::new(Node::Obj(fields), line));
                }
                _ => return Err((self.line, "expected ',' or '}' in object".into())),
            }
        }
    }

    fn array(&mut self) -> ParseResult<Value> {
        let line = self.line;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::new(Node::Arr(items), line));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::new(Node::Arr(items), line));
                }
                _ => return Err((self.line, "expected ',' or ']' in array".into())),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TOML parser (the documented subset, line-tracking)

struct TomlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    root: Value,
    /// Path of the currently open `[table]` / `[[array-of-tables]]`.
    current: Vec<String>,
}

impl<'a> TomlParser<'a> {
    fn parse(src: &'a str) -> ParseResult<Value> {
        let mut p = TomlParser {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            root: Value::new(Node::Obj(Vec::new()), 1),
            current: Vec::new(),
        };
        p.run()?;
        Ok(p.root)
    }

    fn run(&mut self) -> ParseResult<()> {
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Ok(()),
                Some(b'[') => self.header()?,
                Some(_) => self.key_value()?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skip whitespace, newlines, and comments between statements.
    fn skip_trivia(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip spaces/tabs only (within a statement line).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_eol(&mut self) -> ParseResult<()> {
        self.skip_inline_ws();
        match self.peek() {
            None | Some(b'\n') => Ok(()),
            Some(b'#') => Ok(()), // comment runs to end of line
            Some(c) => Err((self.line, format!("expected end of line, found {:?}", c as char))),
        }
    }

    fn header(&mut self) -> ParseResult<()> {
        let line = self.line;
        self.pos += 1; // consume '['
        let array = self.peek() == Some(b'[');
        if array {
            self.pos += 1;
        }
        self.skip_inline_ws();
        let path = self.dotted_key()?;
        self.skip_inline_ws();
        if self.peek() != Some(b']') {
            return Err((line, "expected ']' closing the table header".into()));
        }
        self.pos += 1;
        if array {
            if self.peek() != Some(b']') {
                return Err((line, "expected ']]' closing the array-of-tables header".into()));
            }
            self.pos += 1;
        }
        self.expect_eol()?;
        if array {
            // Append a fresh element to the array at `path`.
            let parent = navigate(&mut self.root, &path[..path.len() - 1], line)?;
            let key = path.last().expect("non-empty header path");
            let slot = match &mut parent.node {
                Node::Obj(fields) => {
                    if let Some(i) = fields.iter().position(|(k, _)| k == key) {
                        &mut fields[i].1
                    } else {
                        fields.push((key.clone(), Value::new(Node::Arr(Vec::new()), line)));
                        &mut fields.last_mut().expect("just pushed").1
                    }
                }
                _ => return Err((line, format!("{key} is not a table"))),
            };
            match &mut slot.node {
                Node::Arr(items) => items.push(Value::new(Node::Obj(Vec::new()), line)),
                _ => return Err((line, format!("[[{key}]] conflicts with a non-array value"))),
            }
        } else {
            navigate(&mut self.root, &path, line)?;
        }
        self.current = path;
        Ok(())
    }

    fn key_value(&mut self) -> ParseResult<()> {
        let line = self.line;
        let key_path = self.dotted_key()?;
        self.skip_inline_ws();
        if self.peek() != Some(b'=') {
            return Err((line, "expected '=' after key".into()));
        }
        self.pos += 1;
        self.skip_inline_ws();
        let value = self.value()?;
        self.expect_eol()?;
        let mut full = self.current.clone();
        full.extend(key_path.iter().cloned());
        let (leaf, parents) = full.split_last().expect("non-empty key");
        let table = navigate(&mut self.root, parents, line)?;
        match &mut table.node {
            Node::Obj(fields) => {
                if fields.iter().any(|(k, _)| k == leaf) {
                    return Err((line, format!("duplicate key {leaf:?}")));
                }
                fields.push((leaf.clone(), value));
            }
            _ => return Err((line, format!("cannot set key inside non-table {leaf:?}"))),
        }
        Ok(())
    }

    fn dotted_key(&mut self) -> ParseResult<Vec<String>> {
        let mut path = vec![self.key_segment()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                self.skip_inline_ws();
                path.push(self.key_segment()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn key_segment(&mut self) -> ParseResult<String> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii").to_string())
            }
            _ => Err((self.line, "expected a key".into())),
        }
    }

    fn value(&mut self) -> ParseResult<Value> {
        let line = self.line;
        match self.peek() {
            Some(b'"') => Ok(Value::new(Node::Str(self.basic_string()?), line)),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => {
                let word = if self.peek() == Some(b't') { "true" } else { "false" };
                if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                    self.pos += word.len();
                    Ok(Value::new(Node::Bool(word == "true"), line))
                } else {
                    Err((line, "expected a boolean".into()))
                }
            }
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => self.number(),
            Some(c) => Err((line, format!("unexpected character {:?} in value", c as char))),
            None => Err((line, "unexpected end of input in value".into())),
        }
    }

    fn number(&mut self) -> ParseResult<Value> {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'_') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let text: String = raw.chars().filter(|&c| c != '_').collect();
        let v: f64 = text.parse().map_err(|_| (line, format!("invalid number {raw:?}")))?;
        Ok(Value::new(Node::Num(v), line))
    }

    fn basic_string(&mut self) -> ParseResult<String> {
        // Shares JSON's escape grammar, which covers TOML basic strings
        // for every file the serializer emits.
        let mut sub = JsonParser { bytes: self.bytes, pos: self.pos, line: self.line };
        let s = sub.string()?;
        self.pos = sub.pos;
        self.line = sub.line;
        Ok(s)
    }

    fn array(&mut self) -> ParseResult<Value> {
        let line = self.line;
        self.pos += 1; // '['
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::new(Node::Arr(items), line));
                }
                None => return Err((line, "unterminated array".into())),
                _ => {
                    items.push(self.value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {}
                        _ => return Err((self.line, "expected ',' or ']' in array".into())),
                    }
                }
            }
        }
    }

    fn inline_table(&mut self) -> ParseResult<Value> {
        let line = self.line;
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_inline_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::new(Node::Obj(fields), line));
        }
        loop {
            self.skip_inline_ws();
            let key = self.key_segment()?;
            self.skip_inline_ws();
            if self.peek() != Some(b'=') {
                return Err((self.line, "expected '=' in inline table".into()));
            }
            self.pos += 1;
            self.skip_inline_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_inline_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::new(Node::Obj(fields), line));
                }
                _ => return Err((self.line, "expected ',' or '}' in inline table".into())),
            }
        }
    }
}

/// Walk (and create) the table at `path`, descending into the *last*
/// element of any array-of-tables on the way — the TOML rule that makes
/// `[drift.kind]` after `[[drift]]` refer to the newest event.
fn navigate<'v>(root: &'v mut Value, path: &[String], line: usize) -> ParseResult<&'v mut Value> {
    let mut cur = root;
    for seg in path {
        cur = descend_one(cur, seg, line)?;
    }
    into_open_table(cur, line)
}

/// Descend through an array-of-tables to its open (last) element; tables
/// pass through unchanged.
fn into_open_table(v: &mut Value, line: usize) -> ParseResult<&mut Value> {
    if matches!(v.node, Node::Arr(_)) {
        let Node::Arr(items) = &mut v.node else { unreachable!() };
        return items.last_mut().ok_or((line, "empty array of tables".to_string()));
    }
    Ok(v)
}

fn descend_one<'v>(v: &'v mut Value, seg: &str, line: usize) -> ParseResult<&'v mut Value> {
    let v = into_open_table(v, line)?;
    match &mut v.node {
        Node::Obj(fields) => {
            let idx = if let Some(i) = fields.iter().position(|(k, _)| k == seg) {
                i
            } else {
                fields.push((seg.to_string(), Value::new(Node::Obj(Vec::new()), line)));
                fields.len() - 1
            };
            Ok(&mut fields[idx].1)
        }
        _ => Err((line, format!("{seg} is inside a non-table value"))),
    }
}

// ---------------------------------------------------------------------------
// Decoder: Value -> ScenarioSpec, strict schema with path-qualified errors

struct Dec<'a> {
    file: &'a Path,
    /// Directory replay_csv paths resolve against; `None` when parsing
    /// from a string (replay_csv is then rejected).
    base_dir: Option<&'a Path>,
}

impl<'a> Dec<'a> {
    fn err(&self, line: usize, path: &str, msg: impl std::fmt::Display) -> LoadError {
        LoadError {
            path: self.file.to_path_buf(),
            line: Some(line),
            msg: if path.is_empty() { msg.to_string() } else { format!("{path}: {msg}") },
        }
    }

    fn obj<'v>(&self, v: &'v Value, path: &str) -> Result<&'v [(String, Value)], LoadError> {
        match &v.node {
            Node::Obj(fields) => Ok(fields),
            _ => Err(self.err(v.line, path, format!("expected a table, found {}", v.kind()))),
        }
    }

    fn arr<'v>(&self, v: &'v Value, path: &str) -> Result<&'v [Value], LoadError> {
        match &v.node {
            Node::Arr(items) => Ok(items),
            _ => Err(self.err(v.line, path, format!("expected an array, found {}", v.kind()))),
        }
    }

    fn str<'v>(&self, v: &'v Value, path: &str) -> Result<&'v str, LoadError> {
        match &v.node {
            Node::Str(s) => Ok(s),
            _ => Err(self.err(v.line, path, format!("expected a string, found {}", v.kind()))),
        }
    }

    fn f64(&self, v: &Value, path: &str) -> Result<f64, LoadError> {
        match v.node {
            Node::Num(n) => Ok(n),
            _ => Err(self.err(v.line, path, format!("expected a number, found {}", v.kind()))),
        }
    }

    fn bool(&self, v: &Value, path: &str) -> Result<bool, LoadError> {
        match v.node {
            Node::Bool(b) => Ok(b),
            _ => Err(self.err(v.line, path, format!("expected a boolean, found {}", v.kind()))),
        }
    }

    fn usize(&self, v: &Value, path: &str) -> Result<usize, LoadError> {
        let n = self.f64(v, path)?;
        if n.fract() != 0.0 || n < 0.0 || n > (1u64 << 53) as f64 {
            return Err(self.err(v.line, path, "expected a non-negative integer"));
        }
        Ok(n as usize)
    }

    fn u64(&self, v: &Value, path: &str) -> Result<u64, LoadError> {
        Ok(self.usize(v, path)? as u64)
    }

    fn pair_f64(&self, v: &Value, path: &str) -> Result<(f64, f64), LoadError> {
        let items = self.arr(v, path)?;
        if items.len() != 2 {
            return Err(self.err(v.line, path, "expected a 2-element array"));
        }
        Ok((self.f64(&items[0], path)?, self.f64(&items[1], path)?))
    }

    fn pair_usize(&self, v: &Value, path: &str) -> Result<(usize, usize), LoadError> {
        let items = self.arr(v, path)?;
        if items.len() != 2 {
            return Err(self.err(v.line, path, "expected a 2-element array"));
        }
        Ok((self.usize(&items[0], path)?, self.usize(&items[1], path)?))
    }

    fn get<'v>(&self, fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn req<'v>(
        &self,
        owner: &Value,
        fields: &'v [(String, Value)],
        key: &str,
        path: &str,
    ) -> Result<&'v Value, LoadError> {
        self.get(fields, key)
            .ok_or_else(|| self.err(owner.line, path, format!("missing required key {key:?}")))
    }

    fn no_unknown(
        &self,
        fields: &[(String, Value)],
        allowed: &[&str],
        path: &str,
    ) -> Result<(), LoadError> {
        for (k, v) in fields {
            if !allowed.contains(&k.as_str()) {
                return Err(self.err(
                    v.line,
                    path,
                    format!("unknown key {k:?} (expected one of: {})", allowed.join(", ")),
                ));
            }
        }
        Ok(())
    }

    /// A table that must contain exactly one of `variants` — the encoding
    /// of every tagged enum in the schema.
    fn single_variant<'v>(
        &self,
        v: &'v Value,
        variants: &[&str],
        path: &str,
    ) -> Result<(&'v str, &'v Value), LoadError> {
        let fields = self.obj(v, path)?;
        self.no_unknown(fields, variants, path)?;
        if fields.len() != 1 {
            return Err(self.err(
                v.line,
                path,
                format!("expected exactly one of: {}", variants.join(", ")),
            ));
        }
        let (k, inner) = &fields[0];
        Ok((k.as_str(), inner))
    }

    fn spec(&self, v: &Value) -> Result<ScenarioSpec, LoadError> {
        let fields = self.obj(v, "")?;
        self.no_unknown(
            fields,
            &[
                "name",
                "summary",
                "workload",
                "hint_shape",
                "drift",
                "policy",
                "budget_multiple",
                "batch",
                "max_steps",
                "seeds",
                "arrivals",
                "shards",
                "probe_fail_rate",
                "probe_fail_seed",
            ],
            "",
        )?;
        let name = self.str(self.req(v, fields, "name", "")?, "name")?.to_string();
        let summary = self.str(self.req(v, fields, "summary", "")?, "summary")?.to_string();
        let workload = self.workload(self.req(v, fields, "workload", "")?)?;
        let hint_shape = match self.get(fields, "hint_shape") {
            None => HintShape::Full,
            Some(hv) => self.hint_shape(hv)?,
        };
        let drift = match self.get(fields, "drift") {
            None => Vec::new(),
            Some(dv) => self
                .arr(dv, "drift")?
                .iter()
                .map(|e| self.drift_event(e))
                .collect::<Result<_, _>>()?,
        };
        let policy = self.policy(self.req(v, fields, "policy", "")?)?;
        let budget_multiple = match self.get(fields, "budget_multiple") {
            None => 0.0,
            Some(bv) => self.f64(bv, "budget_multiple")?,
        };
        let batch = self.usize(self.req(v, fields, "batch", "")?, "batch")?;
        let max_steps = self.usize(self.req(v, fields, "max_steps", "")?, "max_steps")?;
        let seeds_v = self.req(v, fields, "seeds", "")?;
        let seeds = self
            .arr(seeds_v, "seeds")?
            .iter()
            .map(|s| self.u64(s, "seeds"))
            .collect::<Result<_, _>>()?;
        let arrivals = match self.get(fields, "arrivals") {
            None => None,
            Some(av) => Some(self.arrivals(av)?),
        };
        // Optional: absent means the unsharded layout (the only layout
        // that existed before the sharded tier), keeping old files valid.
        let shards = match self.get(fields, "shards") {
            None => 1,
            Some(sv) => self.usize(sv, "shards")?,
        };
        // Optional fault-injection knobs: absent means no injected probe
        // failures, the only behaviour that existed before the fault axis,
        // keeping old files valid (same policy as `shards`).
        let probe_fail_rate = match self.get(fields, "probe_fail_rate") {
            None => 0.0,
            Some(rv) => self.f64(rv, "probe_fail_rate")?,
        };
        let probe_fail_seed = match self.get(fields, "probe_fail_seed") {
            None => 0,
            Some(sv) => self.u64(sv, "probe_fail_seed")?,
        };
        Ok(ScenarioSpec {
            name,
            summary,
            workload,
            hint_shape,
            drift,
            policy,
            budget_multiple,
            batch,
            max_steps,
            seeds,
            arrivals,
            shards,
            probe_fail_rate,
            probe_fail_seed,
        })
    }

    fn workload(&self, v: &Value) -> Result<ScenarioWorkload, LoadError> {
        let (tag, inner) = self.single_variant(v, &["sim", "synthetic"], "workload")?;
        match tag {
            "sim" => Ok(ScenarioWorkload::Sim(self.workload_sim(inner)?)),
            _ => Ok(ScenarioWorkload::Synthetic(self.synthetic(inner)?)),
        }
    }

    fn workload_sim(&self, v: &Value) -> Result<WorkloadSpec, LoadError> {
        let p = "workload.sim";
        let fields = self.obj(v, p)?;
        self.no_unknown(
            fields,
            &[
                "name",
                "n_queries",
                "catalog",
                "class_mix",
                "target_default_total",
                "templates",
                "seed",
            ],
            p,
        )?;
        let templates = match self.get(fields, "templates") {
            None => None,
            Some(Value { node: Node::Null, .. }) => None,
            Some(tv) => Some(self.usize(tv, "workload.sim.templates")?),
        };
        Ok(WorkloadSpec {
            name: self.str(self.req(v, fields, "name", p)?, "workload.sim.name")?.to_string(),
            n_queries: self
                .usize(self.req(v, fields, "n_queries", p)?, "workload.sim.n_queries")?,
            catalog: self.catalog(self.req(v, fields, "catalog", p)?)?,
            class_mix: self
                .arr(self.req(v, fields, "class_mix", p)?, "workload.sim.class_mix")?
                .iter()
                .map(|c| self.class_mix(c))
                .collect::<Result<_, _>>()?,
            target_default_total: self.f64(
                self.req(v, fields, "target_default_total", p)?,
                "workload.sim.target_default_total",
            )?,
            templates,
            seed: self.u64(self.req(v, fields, "seed", p)?, "workload.sim.seed")?,
        })
    }

    fn catalog(&self, v: &Value) -> Result<CatalogSpec, LoadError> {
        let p = "workload.sim.catalog";
        let fields = self.obj(v, p)?;
        self.no_unknown(
            fields,
            &["name", "n_tables", "rows_range", "width_range", "index_prob", "fact_fraction"],
            p,
        )?;
        Ok(CatalogSpec {
            name: self.str(self.req(v, fields, "name", p)?, "workload.sim.catalog.name")?.into(),
            n_tables: self.usize(self.req(v, fields, "n_tables", p)?, "...catalog.n_tables")?,
            rows_range: self
                .pair_f64(self.req(v, fields, "rows_range", p)?, "...catalog.rows_range")?,
            width_range: self
                .pair_f64(self.req(v, fields, "width_range", p)?, "...catalog.width_range")?,
            index_prob: self.f64(self.req(v, fields, "index_prob", p)?, "...catalog.index_prob")?,
            fact_fraction: self
                .f64(self.req(v, fields, "fact_fraction", p)?, "...catalog.fact_fraction")?,
        })
    }

    fn class_mix(&self, v: &Value) -> Result<ClassMix, LoadError> {
        let p = "workload.sim.class_mix";
        let fields = self.obj(v, p)?;
        self.no_unknown(
            fields,
            &["class", "weight", "shape", "n_tables", "pred_sel_range", "fanout", "pred_prob"],
            p,
        )?;
        let class_v = self.req(v, fields, "class", p)?;
        let class = match self.str(class_v, "...class_mix.class")? {
            "nl-trap" => QueryClass::NestLoopTrap,
            "idx-trap" => QueryClass::IndexTrap,
            "missed-idx" => QueryClass::MissedIndex,
            "well-est" => QueryClass::WellEstimated,
            "etl" => QueryClass::Etl,
            other => {
                return Err(self.err(
                    class_v.line,
                    "...class_mix.class",
                    format!(
                        "unknown query class {other:?} \
                         (nl-trap, idx-trap, missed-idx, well-est, etl)"
                    ),
                ))
            }
        };
        let shape_v = self.req(v, fields, "shape", p)?;
        let shape = match self.str(shape_v, "...class_mix.shape")? {
            "chain" => JoinShape::Chain,
            "star" => JoinShape::Star,
            "snowflake" => JoinShape::Snowflake,
            other => {
                return Err(self.err(
                    shape_v.line,
                    "...class_mix.shape",
                    format!("unknown join shape {other:?} (chain, star, snowflake)"),
                ))
            }
        };
        Ok(ClassMix {
            class,
            weight: self.f64(self.req(v, fields, "weight", p)?, "...class_mix.weight")?,
            shape,
            n_tables: self
                .pair_usize(self.req(v, fields, "n_tables", p)?, "...class_mix.n_tables")?,
            pred_sel_range: self.pair_f64(
                self.req(v, fields, "pred_sel_range", p)?,
                "...class_mix.pred_sel_range",
            )?,
            fanout: self.pair_f64(self.req(v, fields, "fanout", p)?, "...class_mix.fanout")?,
            pred_prob: self.f64(self.req(v, fields, "pred_prob", p)?, "...class_mix.pred_prob")?,
        })
    }

    fn synthetic(&self, v: &Value) -> Result<SyntheticSpec, LoadError> {
        let p = "workload.synthetic";
        let fields = self.obj(v, p)?;
        self.no_unknown(
            fields,
            &["n", "k", "rank", "default_inflation", "noise_sigma", "seed"],
            p,
        )?;
        Ok(SyntheticSpec {
            n: self.usize(self.req(v, fields, "n", p)?, "workload.synthetic.n")?,
            k: self.usize(self.req(v, fields, "k", p)?, "workload.synthetic.k")?,
            rank: self.usize(self.req(v, fields, "rank", p)?, "workload.synthetic.rank")?,
            default_inflation: self.f64(
                self.req(v, fields, "default_inflation", p)?,
                "workload.synthetic.default_inflation",
            )?,
            noise_sigma: self
                .f64(self.req(v, fields, "noise_sigma", p)?, "workload.synthetic.noise_sigma")?,
            seed: self.u64(self.req(v, fields, "seed", p)?, "workload.synthetic.seed")?,
        })
    }

    fn hint_shape(&self, v: &Value) -> Result<HintShape, LoadError> {
        if let Node::Str(s) = &v.node {
            return match s.as_str() {
                "full" => Ok(HintShape::Full),
                other => Err(self.err(
                    v.line,
                    "hint_shape",
                    format!("unknown hint shape {other:?} (\"full\", or a prefix/strided table)"),
                )),
            };
        }
        let (tag, inner) = self.single_variant(v, &["prefix", "strided"], "hint_shape")?;
        match tag {
            "prefix" => Ok(HintShape::Prefix(self.usize(inner, "hint_shape.prefix")?)),
            _ => Ok(HintShape::Strided(self.usize(inner, "hint_shape.strided")?)),
        }
    }

    fn drift_event(&self, v: &Value) -> Result<DriftEvent, LoadError> {
        let p = "drift";
        let fields = self.obj(v, p)?;
        self.no_unknown(fields, &["at_frac", "kind"], p)?;
        let at_frac = self.f64(self.req(v, fields, "at_frac", p)?, "drift.at_frac")?;
        let kind_v = self.req(v, fields, "kind", p)?;
        let (tag, inner) =
            self.single_variant(kind_v, &["data_shift", "add_queries"], "drift.kind")?;
        let kind = match tag {
            "data_shift" => {
                let inner_fields = self.obj(inner, "drift.kind.data_shift")?;
                self.no_unknown(inner_fields, &["days"], "drift.kind.data_shift")?;
                DriftKind::DataShift {
                    days: self.f64(
                        self.req(inner, inner_fields, "days", "drift.kind.data_shift")?,
                        "drift.kind.data_shift.days",
                    )?,
                }
            }
            _ => {
                let inner_fields = self.obj(inner, "drift.kind.add_queries")?;
                self.no_unknown(inner_fields, &["count"], "drift.kind.add_queries")?;
                DriftKind::AddQueries {
                    count: self.usize(
                        self.req(inner, inner_fields, "count", "drift.kind.add_queries")?,
                        "drift.kind.add_queries.count",
                    )?,
                }
            }
        };
        Ok(DriftEvent { at_frac, kind })
    }

    fn policy(&self, v: &Value) -> Result<PolicySpec, LoadError> {
        if let Node::Str(s) = &v.node {
            return match s.as_str() {
                "random" => Ok(PolicySpec::Random),
                "greedy" => Ok(PolicySpec::Greedy),
                "qo-advisor" => Ok(PolicySpec::QoAdvisor),
                "limeqo-wocensored" => Ok(PolicySpec::LimeQoAlsNoCensor),
                other => Err(self.err(
                    v.line,
                    "policy",
                    format!(
                        "unknown policy {other:?} (random, greedy, qo-advisor, \
                         limeqo-wocensored, or a limeqo_als/online_als table)"
                    ),
                )),
            };
        }
        let (tag, inner) = self.single_variant(v, &["limeqo_als", "online_als"], "policy")?;
        match tag {
            "limeqo_als" => {
                let p = "policy.limeqo_als";
                let fields = self.obj(inner, p)?;
                self.no_unknown(
                    fields,
                    &["rank", "drift", "incremental", "rescore_every", "incremental_als"],
                    p,
                )?;
                Ok(PolicySpec::LimeQoAls {
                    rank: self
                        .usize(self.req(inner, fields, "rank", p)?, "policy.limeqo_als.rank")?,
                    drift: self.drift_policy(self.req(inner, fields, "drift", p)?)?,
                    incremental: self.bool(
                        self.req(inner, fields, "incremental", p)?,
                        "policy.limeqo_als.incremental",
                    )?,
                    rescore_every: self.usize(
                        self.req(inner, fields, "rescore_every", p)?,
                        "policy.limeqo_als.rescore_every",
                    )?,
                    // Optional with default false so pre-existing corpus
                    // files need no edit (same pattern as `shards`).
                    incremental_als: match self.get(fields, "incremental_als") {
                        None => false,
                        Some(sv) => self.bool(sv, "policy.limeqo_als.incremental_als")?,
                    },
                })
            }
            _ => {
                let p = "policy.online_als";
                let fields = self.obj(inner, p)?;
                self.no_unknown(
                    fields,
                    &["rank", "explore_prob", "rho", "refresh_every", "cold_bonus"],
                    p,
                )?;
                Ok(PolicySpec::OnlineAls {
                    rank: self
                        .usize(self.req(inner, fields, "rank", p)?, "policy.online_als.rank")?,
                    explore_prob: self.f64(
                        self.req(inner, fields, "explore_prob", p)?,
                        "policy.online_als.explore_prob",
                    )?,
                    rho: self.f64(self.req(inner, fields, "rho", p)?, "policy.online_als.rho")?,
                    refresh_every: self.usize(
                        self.req(inner, fields, "refresh_every", p)?,
                        "policy.online_als.refresh_every",
                    )?,
                    cold_bonus: self.f64(
                        self.req(inner, fields, "cold_bonus", p)?,
                        "policy.online_als.cold_bonus",
                    )?,
                })
            }
        }
    }

    fn drift_policy(&self, v: &Value) -> Result<DriftPolicy, LoadError> {
        let p = "policy.limeqo_als.drift";
        let fields = self.obj(v, p)?;
        self.no_unknown(
            fields,
            &[
                "retain_priors",
                "prior_decay",
                "density_gate",
                "cold_row_bonus",
                "warm_start",
                "reverify_runner_up",
            ],
            p,
        )?;
        let q = |key: &str| format!("{p}.{key}");
        Ok(DriftPolicy {
            retain_priors: self
                .bool(self.req(v, fields, "retain_priors", p)?, &q("retain_priors"))?,
            prior_decay: self.f64(self.req(v, fields, "prior_decay", p)?, &q("prior_decay"))?,
            density_gate: self.f64(self.req(v, fields, "density_gate", p)?, &q("density_gate"))?,
            cold_row_bonus: self
                .f64(self.req(v, fields, "cold_row_bonus", p)?, &q("cold_row_bonus"))?,
            warm_start: self.bool(self.req(v, fields, "warm_start", p)?, &q("warm_start"))?,
            reverify_runner_up: self
                .bool(self.req(v, fields, "reverify_runner_up", p)?, &q("reverify_runner_up"))?,
        })
    }

    fn arrivals(&self, v: &Value) -> Result<ArrivalSpec, LoadError> {
        let p = "arrivals";
        let fields = self.obj(v, p)?;
        self.no_unknown(fields, &["count", "model", "burst", "concurrency", "rate"], p)?;
        let model = self.arrival_model(self.req(v, fields, "model", p)?)?;
        Ok(ArrivalSpec {
            count: self.usize(self.req(v, fields, "count", p)?, "arrivals.count")?,
            model,
            burst: match self.get(fields, "burst") {
                None => 1,
                Some(bv) => self.usize(bv, "arrivals.burst")?,
            },
            concurrency: match self.get(fields, "concurrency") {
                None => 1,
                Some(cv) => self.usize(cv, "arrivals.concurrency")?,
            },
            rate: match self.get(fields, "rate") {
                None => 0.0,
                Some(rv) => self.f64(rv, "arrivals.rate")?,
            },
        })
    }

    fn arrival_model(&self, v: &Value) -> Result<ArrivalModel, LoadError> {
        if let Node::Str(s) = &v.node {
            return match s.as_str() {
                "uniform" => Ok(ArrivalModel::Uniform),
                other => Err(self.err(
                    v.line,
                    "arrivals.model",
                    format!(
                        "unknown arrival model {other:?} \
                         (\"uniform\", or a zipf/replay/replay_csv table)"
                    ),
                )),
            };
        }
        let (tag, inner) =
            self.single_variant(v, &["zipf", "replay", "replay_csv"], "arrivals.model")?;
        match tag {
            "zipf" => {
                let fields = self.obj(inner, "arrivals.model.zipf")?;
                self.no_unknown(fields, &["exponent"], "arrivals.model.zipf")?;
                Ok(ArrivalModel::Zipf {
                    exponent: self.f64(
                        self.req(inner, fields, "exponent", "arrivals.model.zipf")?,
                        "arrivals.model.zipf.exponent",
                    )?,
                })
            }
            "replay" => {
                let fields = self.obj(inner, "arrivals.model.replay")?;
                self.no_unknown(fields, &["rows"], "arrivals.model.replay")?;
                let rows = self
                    .arr(
                        self.req(inner, fields, "rows", "arrivals.model.replay")?,
                        "arrivals.model.replay.rows",
                    )?
                    .iter()
                    .map(|r| self.usize(r, "arrivals.model.replay.rows"))
                    .collect::<Result<_, _>>()?;
                Ok(ArrivalModel::Replay { rows })
            }
            _ => {
                let rel = self.str(inner, "arrivals.model.replay_csv")?;
                let base = self.base_dir.ok_or_else(|| {
                    self.err(
                        inner.line,
                        "arrivals.model.replay_csv",
                        "replay_csv needs a file-based load (no base directory)",
                    )
                })?;
                let csv_path = base.join(rel);
                let rows = read_replay_csv(&csv_path).map_err(|e| LoadError {
                    path: e.path,
                    line: e.line,
                    msg: format!("arrivals.model.replay_csv: {}", e.msg),
                })?;
                Ok(ArrivalModel::Replay { rows })
            }
        }
    }
}

/// Read a replay trace CSV: one or more non-negative row indices per line,
/// comma-separated; blank lines and `#` comments ignored.
pub fn read_replay_csv(path: &Path) -> Result<Vec<usize>, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError {
        path: path.to_path_buf(),
        line: None,
        msg: format!("cannot read replay CSV: {e}"),
    })?;
    let mut rows = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        for cell in line.split(',') {
            let cell = cell.trim();
            if cell.is_empty() {
                continue;
            }
            let row: usize = cell.parse().map_err(|_| LoadError {
                path: path.to_path_buf(),
                line: Some(i + 1),
                msg: format!("invalid row index {cell:?}"),
            })?;
            rows.push(row);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Public parse/load API

fn decode(v: &Value, file: &Path, base_dir: Option<&Path>) -> Result<ScenarioSpec, LoadError> {
    Dec { file, base_dir }.spec(v)
}

/// Parse a JSON scenario from a string; `file` labels errors, `base_dir`
/// resolves `replay_csv` references (reject them when `None`).
pub fn parse_scenario_json(
    src: &str,
    file: &Path,
    base_dir: Option<&Path>,
) -> Result<ScenarioSpec, LoadError> {
    let v = JsonParser::parse(src).map_err(|(line, msg)| LoadError {
        path: file.to_path_buf(),
        line: Some(line),
        msg,
    })?;
    decode(&v, file, base_dir)
}

/// Parse a TOML scenario from a string; `file` labels errors, `base_dir`
/// resolves `replay_csv` references (reject them when `None`).
pub fn parse_scenario_toml(
    src: &str,
    file: &Path,
    base_dir: Option<&Path>,
) -> Result<ScenarioSpec, LoadError> {
    let v = TomlParser::parse(src).map_err(|(line, msg)| LoadError {
        path: file.to_path_buf(),
        line: Some(line),
        msg,
    })?;
    decode(&v, file, base_dir)
}

/// Load one scenario file (`.json` or `.toml`), run
/// [`ScenarioSpec::check`], and return the validated spec.
pub fn load_scenario(path: &Path) -> Result<ScenarioSpec, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError {
        path: path.to_path_buf(),
        line: None,
        msg: format!("cannot read scenario file: {e}"),
    })?;
    let base = path.parent();
    let spec = match path.extension().and_then(|e| e.to_str()) {
        Some("json") => parse_scenario_json(&text, path, base)?,
        Some("toml") => parse_scenario_toml(&text, path, base)?,
        _ => {
            return Err(LoadError {
                path: path.to_path_buf(),
                line: None,
                msg: "unknown extension (expected .json or .toml)".into(),
            })
        }
    };
    spec.check().map_err(|msg| LoadError { path: path.to_path_buf(), line: None, msg })?;
    Ok(spec)
}

/// Load every `*.json` / `*.toml` directly inside `dir` (subdirectories
/// such as `scenarios/broken/` are deliberately not descended into),
/// sorted by file name for deterministic ordering.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, ScenarioSpec)>, LoadError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LoadError {
        path: dir.to_path_buf(),
        line: None,
        msg: format!("cannot read corpus directory: {e}"),
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.is_file()
                && matches!(p.extension().and_then(|e| e.to_str()), Some("json") | Some("toml"))
        })
        .collect();
    paths.sort();
    let mut corpus = Vec::with_capacity(paths.len());
    for path in paths {
        let spec = load_scenario(&path)?;
        corpus.push((path, spec));
    }
    Ok(corpus)
}

// ---------------------------------------------------------------------------
// Serializers (canonical form; exact round trip)

fn num(v: f64) -> Node {
    Node::Num(v)
}

fn s(v: &str) -> Node {
    Node::Str(v.to_string())
}

fn obj(fields: Vec<(&str, Node)>) -> Node {
    Node::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), Value::new(v, 0))).collect())
}

fn arr(items: Vec<Node>) -> Node {
    Node::Arr(items.into_iter().map(|n| Value::new(n, 0)).collect())
}

fn spec_to_node(spec: &ScenarioSpec) -> Node {
    let workload = match &spec.workload {
        ScenarioWorkload::Sim(w) => {
            let mut sim = vec![
                ("name", s(&w.name)),
                ("n_queries", num(w.n_queries as f64)),
                (
                    "catalog",
                    obj(vec![
                        ("name", s(&w.catalog.name)),
                        ("n_tables", num(w.catalog.n_tables as f64)),
                        (
                            "rows_range",
                            arr(vec![num(w.catalog.rows_range.0), num(w.catalog.rows_range.1)]),
                        ),
                        (
                            "width_range",
                            arr(vec![num(w.catalog.width_range.0), num(w.catalog.width_range.1)]),
                        ),
                        ("index_prob", num(w.catalog.index_prob)),
                        ("fact_fraction", num(w.catalog.fact_fraction)),
                    ]),
                ),
                (
                    "class_mix",
                    arr(w
                        .class_mix
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("class", s(c.class.label())),
                                ("weight", num(c.weight)),
                                (
                                    "shape",
                                    s(match c.shape {
                                        JoinShape::Chain => "chain",
                                        JoinShape::Star => "star",
                                        JoinShape::Snowflake => "snowflake",
                                    }),
                                ),
                                (
                                    "n_tables",
                                    arr(vec![num(c.n_tables.0 as f64), num(c.n_tables.1 as f64)]),
                                ),
                                (
                                    "pred_sel_range",
                                    arr(vec![num(c.pred_sel_range.0), num(c.pred_sel_range.1)]),
                                ),
                                ("fanout", arr(vec![num(c.fanout.0), num(c.fanout.1)])),
                                ("pred_prob", num(c.pred_prob)),
                            ])
                        })
                        .collect()),
                ),
                ("target_default_total", num(w.target_default_total)),
            ];
            if let Some(t) = w.templates {
                sim.push(("templates", num(t as f64)));
            }
            sim.push(("seed", num(w.seed as f64)));
            obj(vec![("sim", obj(sim))])
        }
        ScenarioWorkload::Synthetic(w) => obj(vec![(
            "synthetic",
            obj(vec![
                ("n", num(w.n as f64)),
                ("k", num(w.k as f64)),
                ("rank", num(w.rank as f64)),
                ("default_inflation", num(w.default_inflation)),
                ("noise_sigma", num(w.noise_sigma)),
                ("seed", num(w.seed as f64)),
            ]),
        )]),
    };
    let hint_shape = match spec.hint_shape {
        HintShape::Full => s("full"),
        HintShape::Prefix(n) => obj(vec![("prefix", num(n as f64))]),
        HintShape::Strided(n) => obj(vec![("strided", num(n as f64))]),
    };
    let drift = arr(spec
        .drift
        .iter()
        .map(|e| {
            let kind = match e.kind {
                DriftKind::DataShift { days } => {
                    obj(vec![("data_shift", obj(vec![("days", num(days))]))])
                }
                DriftKind::AddQueries { count } => {
                    obj(vec![("add_queries", obj(vec![("count", num(count as f64))]))])
                }
            };
            obj(vec![("at_frac", num(e.at_frac)), ("kind", kind)])
        })
        .collect());
    let policy = match &spec.policy {
        PolicySpec::Random => s("random"),
        PolicySpec::Greedy => s("greedy"),
        PolicySpec::QoAdvisor => s("qo-advisor"),
        PolicySpec::LimeQoAlsNoCensor => s("limeqo-wocensored"),
        PolicySpec::LimeQoAls { rank, drift, incremental, rescore_every, incremental_als } => {
            let mut policy_fields = vec![
                ("rank", num(*rank as f64)),
                (
                    "drift",
                    obj(vec![
                        ("retain_priors", Node::Bool(drift.retain_priors)),
                        ("prior_decay", num(drift.prior_decay)),
                        ("density_gate", num(drift.density_gate)),
                        ("cold_row_bonus", num(drift.cold_row_bonus)),
                        ("warm_start", Node::Bool(drift.warm_start)),
                        ("reverify_runner_up", Node::Bool(drift.reverify_runner_up)),
                    ]),
                ),
                ("incremental", Node::Bool(*incremental)),
                ("rescore_every", num(*rescore_every as f64)),
            ];
            // Default omitted so pre-existing corpus files stay byte-stable
            // (same policy as `shards`).
            if *incremental_als {
                policy_fields.push(("incremental_als", Node::Bool(true)));
            }
            obj(vec![("limeqo_als", obj(policy_fields))])
        }
        PolicySpec::OnlineAls { rank, explore_prob, rho, refresh_every, cold_bonus } => {
            obj(vec![(
                "online_als",
                obj(vec![
                    ("rank", num(*rank as f64)),
                    ("explore_prob", num(*explore_prob)),
                    ("rho", num(*rho)),
                    ("refresh_every", num(*refresh_every as f64)),
                    ("cold_bonus", num(*cold_bonus)),
                ]),
            )])
        }
    };
    let mut fields = vec![
        ("name", s(&spec.name)),
        ("summary", s(&spec.summary)),
        ("workload", workload),
        ("hint_shape", hint_shape),
        ("drift", drift),
        ("policy", policy),
        ("budget_multiple", num(spec.budget_multiple)),
        ("batch", num(spec.batch as f64)),
        ("max_steps", num(spec.max_steps as f64)),
        ("seeds", arr(spec.seeds.iter().map(|&x| num(x as f64)).collect())),
    ];
    if let Some(a) = &spec.arrivals {
        let model = match &a.model {
            ArrivalModel::Uniform => s("uniform"),
            ArrivalModel::Zipf { exponent } => {
                obj(vec![("zipf", obj(vec![("exponent", num(*exponent))]))])
            }
            ArrivalModel::Replay { rows } => obj(vec![(
                "replay",
                obj(vec![("rows", arr(rows.iter().map(|&r| num(r as f64)).collect()))]),
            )]),
        };
        fields.push((
            "arrivals",
            obj(vec![
                ("count", num(a.count as f64)),
                ("model", model),
                ("burst", num(a.burst as f64)),
                ("concurrency", num(a.concurrency as f64)),
                ("rate", num(a.rate)),
            ]),
        ));
    }
    // Canonical form omits the default so pre-sharding files stay
    // byte-stable; any other value is load-bearing and must round-trip.
    if spec.shards != 1 {
        fields.push(("shards", num(spec.shards as f64)));
    }
    // Same omit-the-default policy: fault injection off is the pre-knob
    // canonical form, so the corpus stays byte-stable.
    if spec.probe_fail_rate != 0.0 {
        fields.push(("probe_fail_rate", num(spec.probe_fail_rate)));
    }
    if spec.probe_fail_seed != 0 {
        fields.push(("probe_fail_seed", num(spec.probe_fail_seed as f64)));
    }
    obj(fields)
}

fn escape_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json(out: &mut String, node: &Node, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match node {
        Node::Null => out.push_str("null"),
        Node::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        // `{}` on f64 is Rust's shortest-round-trip formatting: the printed
        // decimal re-parses to the identical bits, which is what makes the
        // spec -> file -> spec round trip exact.
        Node::Num(v) => out.push_str(&format!("{v}")),
        Node::Str(v) => escape_string(out, v),
        Node::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            let scalar = items.iter().all(|i| matches!(i.node, Node::Num(_) | Node::Str(_)));
            if scalar {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_json(out, &item.node, indent);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_json(out, &item.node, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Node::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_string(out, k);
                out.push_str(": ");
                write_json(out, &v.node, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialize a spec to the canonical JSON form ([`parse_scenario_json`] of
/// the result equals the input exactly).
pub fn to_json_string(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    write_json(&mut out, &spec_to_node(spec), 0);
    out.push('\n');
    out
}

fn toml_key(k: &str) -> String {
    let bare =
        !k.is_empty() && k.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if bare {
        k.to_string()
    } else {
        let mut out = String::new();
        escape_string(&mut out, k);
        out
    }
}

fn toml_scalar(out: &mut String, node: &Node) {
    match node {
        Node::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Node::Num(v) => out.push_str(&format!("{v}")),
        Node::Str(v) => escape_string(out, v),
        Node::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                toml_scalar(out, &item.node);
            }
            out.push(']');
        }
        Node::Null | Node::Obj(_) => unreachable!("handled by write_toml_table"),
    }
}

fn write_toml_table(out: &mut String, prefix: &str, fields: &[(String, Value)]) {
    // Scalars and scalar arrays first, then sub-tables, then arrays of
    // tables — the order TOML requires to keep keys inside their table.
    for (k, v) in fields {
        match &v.node {
            Node::Obj(_) => {}
            Node::Arr(items) if items.iter().any(|i| matches!(i.node, Node::Obj(_))) => {}
            Node::Null => {}
            _ => {
                out.push_str(&toml_key(k));
                out.push_str(" = ");
                toml_scalar(out, &v.node);
                out.push('\n');
            }
        }
    }
    for (k, v) in fields {
        let sub = if prefix.is_empty() { toml_key(k) } else { format!("{prefix}.{}", toml_key(k)) };
        match &v.node {
            Node::Obj(sub_fields) => {
                out.push('\n');
                out.push_str(&format!("[{sub}]\n"));
                write_toml_table(out, &sub, sub_fields);
            }
            Node::Arr(items) if items.iter().any(|i| matches!(i.node, Node::Obj(_))) => {
                for item in items {
                    let Node::Obj(sub_fields) = &item.node else {
                        unreachable!("mixed scalar/table array is never serialized")
                    };
                    out.push('\n');
                    out.push_str(&format!("[[{sub}]]\n"));
                    write_toml_table(out, &sub, sub_fields);
                }
            }
            _ => {}
        }
    }
}

/// Serialize a spec to the canonical TOML form ([`parse_scenario_toml`] of
/// the result equals the input exactly).
pub fn to_toml_string(spec: &ScenarioSpec) -> String {
    let Node::Obj(fields) = spec_to_node(spec) else { unreachable!("spec is a table") };
    let mut out = String::new();
    write_toml_table(&mut out, "", &fields);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::full_registry;
    use std::path::Path;

    fn label() -> &'static Path {
        Path::new("<test>")
    }

    #[test]
    fn json_round_trip_is_exact_for_every_registry_spec() {
        for spec in full_registry() {
            let text = to_json_string(&spec);
            let back = parse_scenario_json(&text, label(), None)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(back, spec, "JSON round trip diverged for {}", spec.name);
        }
    }

    #[test]
    fn toml_round_trip_is_exact_for_every_registry_spec() {
        for spec in full_registry() {
            let text = to_toml_string(&spec);
            let back = parse_scenario_toml(&text, label(), None)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(back, spec, "TOML round trip diverged for {}", spec.name);
        }
    }

    #[test]
    fn round_trip_preserves_new_arrival_knobs_and_replay() {
        let mut spec = crate::scenario::by_name("online-zipf").unwrap();
        spec.arrivals = Some(ArrivalSpec {
            count: 123,
            model: ArrivalModel::Replay { rows: vec![0, 5, 2, 5] },
            burst: 1,
            concurrency: 1,
            rate: 3.5,
        });
        let back = parse_scenario_json(&to_json_string(&spec), label(), None).unwrap();
        assert_eq!(back, spec);
        let back = parse_scenario_toml(&to_toml_string(&spec), label(), None).unwrap();
        assert_eq!(back, spec);
        spec.arrivals = Some(ArrivalSpec {
            count: 400,
            model: ArrivalModel::Zipf { exponent: 0.9 },
            burst: 4,
            concurrency: 3,
            rate: 0.0,
        });
        let back = parse_scenario_toml(&to_toml_string(&spec), label(), None).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn shards_round_trips_and_the_default_is_omitted() {
        let mut spec = crate::scenario::by_name("censor-hostile").unwrap();
        assert!(!to_json_string(&spec).contains("shards"), "default layout must stay implicit");
        spec.shards = 8;
        let text = to_json_string(&spec);
        assert!(text.contains("shards"), "{text}");
        let back = parse_scenario_json(&text, label(), None).unwrap();
        assert_eq!(back, spec);
        let back = parse_scenario_toml(&to_toml_string(&spec), label(), None).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn probe_fault_knobs_round_trip_and_the_defaults_are_omitted() {
        let mut spec = crate::scenario::by_name("censor-hostile").unwrap();
        assert!(
            !to_json_string(&spec).contains("probe_fail"),
            "fault-free must stay the implicit canonical form"
        );
        spec.probe_fail_rate = 0.125;
        spec.probe_fail_seed = 42;
        let text = to_json_string(&spec);
        assert!(text.contains("probe_fail_rate"), "{text}");
        assert!(text.contains("probe_fail_seed"), "{text}");
        let back = parse_scenario_json(&text, label(), None).unwrap();
        assert_eq!(back, spec);
        let back = parse_scenario_toml(&to_toml_string(&spec), label(), None).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn incremental_als_round_trips_and_the_default_is_omitted() {
        let mut spec = crate::scenario::by_name("hint-prefix-9").unwrap();
        assert!(
            !to_json_string(&spec).contains("incremental_als"),
            "default kernel path must stay implicit"
        );
        if let limeqo_core::scenario::PolicySpec::LimeQoAls { incremental_als, .. } =
            &mut spec.policy
        {
            *incremental_als = true;
        } else {
            panic!("hint-prefix-9 should carry a LimeQoAls policy");
        }
        let text = to_json_string(&spec);
        assert!(text.contains("incremental_als"), "{text}");
        let back = parse_scenario_json(&text, label(), None).unwrap();
        assert_eq!(back, spec);
        let back = parse_scenario_toml(&to_toml_string(&spec), label(), None).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn json_errors_carry_line_and_field_path() {
        let err = parse_scenario_json("{\n  \"name\": 3\n}", label(), None).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("name"), "{err}");
        assert!(err.msg.contains("expected a string"), "{err}");

        let err =
            parse_scenario_json("{\n  \"name\": \"x\",\n  oops\n}", label(), None).unwrap_err();
        assert_eq!(err.line, Some(3), "{err}");
    }

    #[test]
    fn unknown_keys_and_policies_are_rejected_with_location() {
        let spec = crate::scenario::by_name("censor-hostile").unwrap();
        let text = to_json_string(&spec).replace("\"batch\"", "\"batches\"");
        let err = parse_scenario_json(&text, label(), None).unwrap_err();
        assert!(err.msg.contains("batches"), "{err}");
        assert!(err.line.is_some());

        let text = to_json_string(&spec).replace("\"limeqo_als\"", "\"limeqo_ml\"");
        let err = parse_scenario_json(&text, label(), None).unwrap_err();
        assert!(err.msg.contains("policy"), "{err}");

        let text = to_json_string(&PolicyProbe::greedy_spec()).replace("\"greedy\"", "\"greedo\"");
        let err = parse_scenario_json(&text, label(), None).unwrap_err();
        assert!(err.msg.contains("unknown policy"), "{err}");
    }

    struct PolicyProbe;
    impl PolicyProbe {
        fn greedy_spec() -> ScenarioSpec {
            let mut spec = crate::scenario::by_name("censor-hostile").unwrap();
            spec.policy = limeqo_core::scenario::PolicySpec::Greedy;
            spec
        }
    }

    #[test]
    fn toml_errors_carry_line() {
        let err = parse_scenario_toml("name = \"x\"\nbatch = oops\n", label(), None).unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        let err = parse_scenario_toml("name = \"x\"\nname = \"y\"\n", label(), None).unwrap_err();
        assert_eq!(err.line, Some(2), "{err}");
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn toml_accepts_human_conveniences() {
        // Underscored numbers, comments, inline tables, dotted keys,
        // multi-line arrays — none emitted by the serializer, all legal
        // input.
        let text = r#"
# a hand-written scenario
name = "hand"
summary = "hand-written"
batch = 4
max_steps = 100_000
budget_multiple = 1.5
seeds = [
  1,
  2, # second seed
]
hint_shape = "full"
policy = "random"
workload.synthetic = { n = 30, k = 8, rank = 2, default_inflation = 2.0, noise_sigma = 0.1, seed = 7 }
"#;
        let spec = parse_scenario_toml(text, label(), None).unwrap();
        assert_eq!(spec.max_steps, 100_000);
        assert_eq!(spec.seeds, vec![1, 2]);
        assert!(matches!(spec.workload, ScenarioWorkload::Synthetic(ref s) if s.n == 30));
        spec.check().unwrap();
    }

    #[test]
    fn replay_csv_is_rejected_without_base_dir() {
        let text = r#"{
  "name": "r", "summary": "r",
  "workload": {"synthetic": {"n": 10, "k": 4, "rank": 2, "default_inflation": 2.0, "noise_sigma": 0.0, "seed": 1}},
  "policy": {"online_als": {"rank": 2, "explore_prob": 0.1, "rho": 1.2, "refresh_every": 16, "cold_bonus": 0.0}},
  "batch": 1, "max_steps": 1000, "seeds": [1],
  "arrivals": {"count": 10, "model": {"replay_csv": "trace.csv"}}
}"#;
        let err = parse_scenario_json(text, label(), None).unwrap_err();
        assert!(err.msg.contains("replay_csv"), "{err}");
    }

    #[test]
    fn replay_csv_loads_relative_to_spec_file() {
        let dir = std::env::temp_dir().join(format!("limeqo-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("trace.csv"), "# header comment\n0, 3\n2\n\n1\n").unwrap();
        let text = r#"{
  "name": "r", "summary": "r",
  "workload": {"synthetic": {"n": 10, "k": 4, "rank": 2, "default_inflation": 2.0, "noise_sigma": 0.0, "seed": 1}},
  "policy": {"online_als": {"rank": 2, "explore_prob": 0.1, "rho": 1.2, "refresh_every": 16, "cold_bonus": 0.0}},
  "batch": 1, "max_steps": 1000, "seeds": [1],
  "arrivals": {"count": 6, "model": {"replay_csv": "trace.csv"}}
}"#;
        let spec_path = dir.join("r.json");
        std::fs::write(&spec_path, text).unwrap();
        let spec = load_scenario(&spec_path).unwrap();
        assert_eq!(spec.arrivals.unwrap().model, ArrivalModel::Replay { rows: vec![0, 3, 2, 1] });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_scenario_applies_bounds_checks() {
        let dir = std::env::temp_dir().join(format!("limeqo-badspec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut spec = crate::scenario::by_name("censor-hostile").unwrap();
        spec.seeds.clear();
        let path = dir.join("bad.json");
        std::fs::write(&path, to_json_string(&spec)).unwrap();
        let err = load_scenario(&path).unwrap_err();
        assert!(err.msg.contains("seed"), "{err}");
        assert_eq!(err.path, path);
        std::fs::remove_dir_all(&dir).ok();
    }
}
