//! The cost-based query optimizer.
//!
//! A Selinger-style dynamic program over left-deep join orders: `dp[S]` is
//! the cheapest (estimated-world) plan joining exactly the table subset `S`,
//! extended one table at a time through connected join edges (cross joins
//! only when the graph leaves no alternative). Beyond
//! [`Optimizer::DP_TABLE_LIMIT`] tables the optimizer falls back to a greedy
//! heuristic, mirroring PostgreSQL's GEQO threshold.
//!
//! Hints act exactly like PostgreSQL's `enable_*` flags: disabled operators
//! are still enumerated but carry [`crate::cost::CostParams::disable_cost`]
//! in the estimated world, so the optimizer avoids them unless no
//! alternative exists.

use crate::catalog::Catalog;
use crate::hints::HintConfig;
use crate::plan::{join_cost, scan_cost, JoinInputs, JoinMethod, NodeStats, PlanTree, ScanMethod};
use crate::query::{Query, World};

/// The planner. Borrows the catalog; one instance plans any number of
/// queries under any hints.
#[derive(Debug, Clone, Copy)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
}

/// Backtracking record for one DP cell.
#[derive(Debug, Clone, Copy)]
enum BuildStep {
    Leaf { tref: usize, method: ScanMethod },
    Join { prev_mask: u32, inner: usize, method: JoinMethod, inner_lookup: bool },
}

#[derive(Debug, Clone, Copy)]
struct DpEntry {
    cost: f64,
    rows: f64,
    step: BuildStep,
}

/// Best standalone scan of one table reference in the estimated world.
#[derive(Debug, Clone, Copy)]
struct BestScan {
    method: ScanMethod,
    rows: f64,
    cost: f64,
}

const ALL_SCANS: [ScanMethod; 3] = [ScanMethod::Seq, ScanMethod::Index, ScanMethod::IndexOnly];
const ALL_JOINS: [JoinMethod; 3] = [JoinMethod::Hash, JoinMethod::Merge, JoinMethod::NestLoop];

impl<'a> Optimizer<'a> {
    /// Queries with more tables than this use the greedy planner (PostgreSQL
    /// uses GEQO past `geqo_threshold = 12`).
    pub const DP_TABLE_LIMIT: usize = 12;

    /// Create a planner over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer { catalog }
    }

    /// Plan `query` under `hint`, returning the chosen physical plan with
    /// estimated-world annotations filled in. Always succeeds: sequential
    /// scans and every join method are universally applicable (disabled
    /// operators are merely penalized).
    pub fn plan(&self, query: &Query, hint: HintConfig) -> PlanTree {
        let n = query.n_tables();
        assert!(n >= 1, "query must reference at least one table");
        let scans = self.best_scans(query, hint);
        if n == 1 {
            let s = &scans[0];
            return PlanTree::Scan {
                table_ref: 0,
                method: s.method,
                est: NodeStats { rows: s.rows, cost: s.cost },
                actual: NodeStats::default(),
            };
        }
        if n <= Self::DP_TABLE_LIMIT {
            self.plan_dp(query, hint, &scans)
        } else {
            self.plan_greedy(query, hint, &scans)
        }
    }

    /// The estimated cost of the plan the optimizer would pick — the number
    /// the QO-Advisor baseline ranks unexplored cells by.
    pub fn estimated_cost(&self, query: &Query, hint: HintConfig) -> f64 {
        self.plan(query, hint).est().cost
    }

    fn best_scans(&self, query: &Query, hint: HintConfig) -> Vec<BestScan> {
        (0..query.n_tables())
            .map(|i| {
                let mut best: Option<BestScan> = None;
                for m in ALL_SCANS {
                    if let Some((rows, cost)) =
                        scan_cost(query, i, m, self.catalog, hint, World::Estimated)
                    {
                        if best.map_or(true, |b| cost < b.cost) {
                            best = Some(BestScan { method: m, rows, cost });
                        }
                    }
                }
                best.expect("seq scan is always available")
            })
            .collect()
    }

    /// Whether any edge connecting `inner` to `mask` has an index on the
    /// inner side (enables index nested loops), plus sortedness for merge.
    fn inner_edge_info(&self, query: &Query, mask: u32, inner: usize) -> (bool, bool) {
        let mut indexed = false;
        for e in &query.joins {
            let inner_side_indexed = if e.a == inner && mask & (1 << e.b) != 0 {
                e.a_indexed
            } else if e.b == inner && mask & (1 << e.a) != 0 {
                e.b_indexed
            } else {
                continue;
            };
            indexed |= inner_side_indexed;
        }
        // A join-key index can deliver the inner sorted for merge join.
        (indexed, indexed)
    }

    #[allow(clippy::too_many_arguments)]
    fn join_candidate(
        &self,
        query: &Query,
        hint: HintConfig,
        scans: &[BestScan],
        mask: u32,
        entry_cost: f64,
        entry_rows: f64,
        inner: usize,
        method: JoinMethod,
    ) -> (f64, f64, bool) {
        let new_mask = mask | (1 << inner);
        let out_rows = query.cardinality(new_mask, self.catalog, World::Estimated);
        let (inner_join_indexed, inner_sorted) = self.inner_edge_info(query, mask, inner);
        let inputs = JoinInputs {
            outer_rows: entry_rows,
            outer_cost: entry_cost,
            inner_rows: scans[inner].rows,
            inner_cost: scans[inner].cost,
            out_rows,
            inner_join_indexed,
            inner_sorted,
        };
        let jc = join_cost(method, inputs, self.catalog, hint, World::Estimated);
        (jc.cost, jc.out_rows, jc.inner_lookup)
    }

    fn plan_dp(&self, query: &Query, hint: HintConfig, scans: &[BestScan]) -> PlanTree {
        let n = query.n_tables();
        let full: u32 = (1u32 << n) - 1;
        let mut dp: Vec<Option<DpEntry>> = vec![None; (full as usize) + 1];
        for (i, s) in scans.iter().enumerate() {
            dp[1usize << i] = Some(DpEntry {
                cost: s.cost,
                rows: s.rows,
                step: BuildStep::Leaf { tref: i, method: s.method },
            });
        }
        for mask in 1..=full {
            let Some(entry) = dp[mask as usize] else { continue };
            if mask == full {
                break;
            }
            // Prefer connected extensions; fall back to cross joins only if
            // nothing connects (disconnected join graph).
            let connected: Vec<usize> =
                (0..n).filter(|&j| mask & (1 << j) == 0 && query.connected_to(mask, j)).collect();
            let candidates: Vec<usize> = if connected.is_empty() {
                (0..n).filter(|&j| mask & (1 << j) == 0).collect()
            } else {
                connected
            };
            for j in candidates {
                let new_mask = mask | (1 << j);
                for method in ALL_JOINS {
                    let (cost, rows, inner_lookup) = self.join_candidate(
                        query, hint, scans, mask, entry.cost, entry.rows, j, method,
                    );
                    let better = dp[new_mask as usize].map_or(true, |e| cost < e.cost);
                    if better {
                        dp[new_mask as usize] = Some(DpEntry {
                            cost,
                            rows,
                            step: BuildStep::Join {
                                prev_mask: mask,
                                inner: j,
                                method,
                                inner_lookup,
                            },
                        });
                    }
                }
            }
        }
        self.reconstruct(scans, &dp, full)
    }

    fn reconstruct(&self, scans: &[BestScan], dp: &[Option<DpEntry>], mask: u32) -> PlanTree {
        let entry = dp[mask as usize].expect("dp cell must be populated");
        match entry.step {
            BuildStep::Leaf { tref, method } => PlanTree::Scan {
                table_ref: tref,
                method,
                est: NodeStats { rows: entry.rows, cost: entry.cost },
                actual: NodeStats::default(),
            },
            BuildStep::Join { prev_mask, inner, method, inner_lookup } => {
                let left = self.reconstruct(scans, dp, prev_mask);
                let s = &scans[inner];
                let right = PlanTree::Scan {
                    table_ref: inner,
                    method: s.method,
                    est: NodeStats { rows: s.rows, cost: s.cost },
                    actual: NodeStats::default(),
                };
                PlanTree::Join {
                    method,
                    inner_lookup,
                    left: Box::new(left),
                    right: Box::new(right),
                    est: NodeStats { rows: entry.rows, cost: entry.cost },
                    actual: NodeStats::default(),
                }
            }
        }
    }

    fn plan_greedy(&self, query: &Query, hint: HintConfig, scans: &[BestScan]) -> PlanTree {
        let n = query.n_tables();
        // Start from the smallest estimated scan output (classic heuristic).
        let start =
            (0..n).min_by(|&a, &b| scans[a].rows.partial_cmp(&scans[b].rows).unwrap()).unwrap();
        let mut mask: u32 = 1 << start;
        let mut plan = PlanTree::Scan {
            table_ref: start,
            method: scans[start].method,
            est: NodeStats { rows: scans[start].rows, cost: scans[start].cost },
            actual: NodeStats::default(),
        };
        while mask != (1u32 << n) - 1 {
            let connected: Vec<usize> =
                (0..n).filter(|&j| mask & (1 << j) == 0 && query.connected_to(mask, j)).collect();
            let candidates: Vec<usize> = if connected.is_empty() {
                (0..n).filter(|&j| mask & (1 << j) == 0).collect()
            } else {
                connected
            };
            let cur = plan.est();
            let mut best: Option<(f64, f64, usize, JoinMethod, bool)> = None;
            for &j in &candidates {
                for method in ALL_JOINS {
                    let (cost, rows, lookup) = self
                        .join_candidate(query, hint, scans, mask, cur.cost, cur.rows, j, method);
                    if best.map_or(true, |(c, ..)| cost < c) {
                        best = Some((cost, rows, j, method, lookup));
                    }
                }
            }
            let (cost, rows, j, method, inner_lookup) = best.expect("candidate must exist");
            let s = &scans[j];
            plan = PlanTree::Join {
                method,
                inner_lookup,
                left: Box::new(plan),
                right: Box::new(PlanTree::Scan {
                    table_ref: j,
                    method: s.method,
                    est: NodeStats { rows: s.rows, cost: s.cost },
                    actual: NodeStats::default(),
                }),
                est: NodeStats { rows, cost },
                actual: NodeStats::default(),
            };
            mask |= 1 << j;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogSpec};
    use crate::hints::HintSpace;
    use crate::query::{generate_query, JoinShape, QueryClass, QueryGenParams};
    use limeqo_linalg::rng::SeededRng;

    fn catalog(seed: u64) -> Catalog {
        Catalog::generate(
            &CatalogSpec {
                name: "opt".into(),
                n_tables: 14,
                rows_range: (1e3, 3e6),
                width_range: (60.0, 250.0),
                index_prob: 0.5,
                fact_fraction: 0.3,
            },
            &mut SeededRng::new(seed),
        )
    }

    fn query(cat: &Catalog, n: usize, class: QueryClass, seed: u64) -> Query {
        generate_query(
            0,
            &QueryGenParams {
                class,
                n_tables: n,
                shape: JoinShape::Chain,
                pred_sel_range: (0.005, 0.4),
                fanout: QueryGenParams::DEFAULT_FANOUT,
                pred_prob: QueryGenParams::DEFAULT_PRED_PROB,
                template: 0,
            },
            cat,
            &mut SeededRng::new(seed),
        )
    }

    #[test]
    fn plan_covers_all_tables() {
        let cat = catalog(1);
        for n in 1..=6 {
            let q = query(&cat, n, QueryClass::WellEstimated, 10 + n as u64);
            let plan = Optimizer::new(&cat).plan(&q, HintConfig::default_hint());
            let mut seen = vec![false; n];
            plan.visit(&mut |node| {
                if let PlanTree::Scan { table_ref, .. } = node {
                    seen[*table_ref] = true;
                }
            });
            assert!(seen.iter().all(|&s| s), "n={n}: {}", plan.render());
            assert_eq!(plan.join_count(), n - 1);
        }
    }

    #[test]
    fn default_hint_plan_is_cheapest_estimate() {
        // The default (unpenalized) plan's estimated cost must lower-bound
        // every hinted plan's true operator cost structure under the same
        // estimates, because hints only remove options.
        let cat = catalog(2);
        let q = query(&cat, 5, QueryClass::WellEstimated, 3);
        let opt = Optimizer::new(&cat);
        let default_cost = opt.estimated_cost(&q, HintConfig::default_hint());
        for h in HintSpace::all().configs() {
            let c = opt.estimated_cost(&q, *h);
            assert!(
                c >= default_cost - 1e-6,
                "hint {} beat default: {c} < {default_cost}",
                h.tag()
            );
        }
    }

    #[test]
    fn disabling_all_used_joins_changes_plan() {
        let cat = catalog(3);
        let q = query(&cat, 5, QueryClass::WellEstimated, 4);
        let opt = Optimizer::new(&cat);
        let default_plan = opt.plan(&q, HintConfig::default_hint());
        // Collect join methods used by the default plan, then disable them.
        let mut used_hash = false;
        let mut used_nl = false;
        let mut used_merge = false;
        default_plan.visit(&mut |node| {
            if let PlanTree::Join { method, .. } = node {
                match method {
                    JoinMethod::Hash => used_hash = true,
                    JoinMethod::NestLoop => used_nl = true,
                    JoinMethod::Merge => used_merge = true,
                }
            }
        });
        let hint = HintConfig {
            hash_join: !used_hash,
            nest_loop: !used_nl,
            merge_join: !used_merge,
            ..HintConfig::default_hint()
        };
        // At least one method family must remain enabled for a valid hint;
        // if all three were used, skip (hint would be invalid).
        if hint.is_valid() {
            let hinted = opt.plan(&q, hint);
            let mut reused_disabled = false;
            hinted.visit(&mut |node| {
                if let PlanTree::Join { method, .. } = node {
                    let disabled = match method {
                        JoinMethod::Hash => !hint.hash_join,
                        JoinMethod::NestLoop => !hint.nest_loop,
                        JoinMethod::Merge => !hint.merge_join,
                    };
                    reused_disabled |= disabled;
                }
            });
            assert!(!reused_disabled, "plan kept a disabled join: {}", hinted.render());
        }
    }

    #[test]
    fn greedy_used_above_dp_limit() {
        let cat = catalog(4);
        let q = query(&cat, 14, QueryClass::WellEstimated, 5);
        assert!(q.n_tables() > Optimizer::DP_TABLE_LIMIT);
        let plan = Optimizer::new(&cat).plan(&q, HintConfig::default_hint());
        assert_eq!(plan.join_count(), 13);
    }

    #[test]
    fn dp_beats_or_matches_greedy() {
        // On DP-sized queries, exhaustive left-deep DP can never be worse
        // than the greedy heuristic.
        let cat = catalog(5);
        for seed in 0..10 {
            let q = query(&cat, 7, QueryClass::WellEstimated, 100 + seed);
            let opt = Optimizer::new(&cat);
            let scans = opt.best_scans(&q, HintConfig::default_hint());
            let dp_cost = opt.plan_dp(&q, HintConfig::default_hint(), &scans).est().cost;
            let greedy_cost = opt.plan_greedy(&q, HintConfig::default_hint(), &scans).est().cost;
            assert!(dp_cost <= greedy_cost + 1e-6, "dp {dp_cost} greedy {greedy_cost}");
        }
    }

    #[test]
    fn single_table_plan_is_scan() {
        let cat = catalog(6);
        let q = query(&cat, 1, QueryClass::WellEstimated, 7);
        let plan = Optimizer::new(&cat).plan(&q, HintConfig::default_hint());
        assert!(matches!(plan, PlanTree::Scan { .. }));
    }

    #[test]
    fn estimated_cost_finite_for_all_49_hints() {
        let cat = catalog(7);
        let q = query(&cat, 6, QueryClass::NestLoopTrap, 8);
        let opt = Optimizer::new(&cat);
        for h in HintSpace::all().configs() {
            let c = opt.estimated_cost(&q, *h);
            assert!(c.is_finite() && c > 0.0);
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let cat = catalog(8);
        let q = query(&cat, 6, QueryClass::IndexTrap, 9);
        let opt = Optimizer::new(&cat);
        let a = opt.plan(&q, HintConfig::default_hint()).render();
        let b = opt.plan(&q, HintConfig::default_hint()).render();
        assert_eq!(a, b);
    }
}
