//! Property-based scenario generation: random-but-valid [`ScenarioSpec`]s
//! and a deterministic shrinker for failures.
//!
//! The generator maps a 64-bit case seed to one spec; the same seed always
//! yields the same spec, so a failing case is replayed by its seed alone
//! (`scenario fuzz --replay SEED`). Every generated spec satisfies
//! [`ScenarioSpec::check`] by construction and is sized to run in well
//! under a second, so a CI smoke of a handful of cases stays cheap while
//! the `--ignored` tier can afford hundreds.
//!
//! Generated specs are *calibrated*: synthetic workloads keep
//! `default_inflation >= 1.4` so the "LimeQO beats Random drift-free"
//! invariant has real headroom to assert against, mirroring how the
//! hand-written registry scenarios were tuned in PRs 2–3. Claim-carrying
//! Sim workloads run 3–5 seeds so the checker can compare *medians* —
//! the luck-robust form of the invariant. The generator also fuzzes the
//! workload-matrix shard count ([`ScenarioSpec::shards`]), continuously
//! spot-checking the sharded-equivalence contract.
//!
//! The shrinker ([`shrink`]) is a fixed candidate ladder, not generic
//! structural shrinking: each rung proposes a strictly simpler spec
//! (fewer seeds, no drift, full hint space, smaller matrix, calmer
//! arrivals) and keeps it only if the caller's predicate still fails and
//! [`ScenarioSpec::check`] still passes. That is enough to turn a noisy
//! random spec into a minimal reproducer worth committing to
//! `scenarios/broken/`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenario::{
    ArrivalModel, ArrivalSpec, DriftEvent, DriftKind, HintShape, ScenarioSpec, ScenarioWorkload,
    SyntheticSpec,
};
use crate::workloads::WorkloadSpec;
use limeqo_core::scenario::PolicySpec;
use limeqo_core::store::DriftPolicy;

/// Domain-separation salt so fuzz streams never collide with the
/// scenario engines' own seeded streams.
const FUZZ_SALT: u64 = 0xF022_5EED;

/// Generate the random-but-valid spec for `case_seed`. Deterministic:
/// the seed is the whole reproducer.
pub fn generate(case_seed: u64) -> ScenarioSpec {
    let mut rng = StdRng::seed_from_u64(case_seed ^ FUZZ_SALT);
    let online = rng.gen_range(0..4u32) == 0;
    let spec =
        if online { gen_online(case_seed, &mut rng) } else { gen_offline(case_seed, &mut rng) };
    debug_assert!(spec.check().is_ok(), "generator produced an invalid spec: {:?}", spec.check());
    spec
}

fn gen_workload(rng: &mut StdRng, calibrated: bool) -> ScenarioWorkload {
    // Sim workloads pay an n_queries x 49 oracle build per seed, so they
    // stay tiny; synthetic matrices are cheap and carry the size range.
    //
    // `calibrated` marks specs whose policy carries the LimeQO-beats-
    // Random claim. Synthetic matrices are the claim's home regime (the
    // low-rank structure holds by construction, n is big enough for the
    // signal to beat sampling noise). Tiny sim workloads have heavy-tailed
    // defaults — one row can carry half the workload, so on any *single*
    // seed Random genuinely wins by luck. They still carry the claim now,
    // but only under the luck-robust multi-seed-median invariant (see
    // `gen_offline`): the median over >= 3 seeds washes out single-seed
    // luck while a policy regression (losing the low-rank signal entirely)
    // still shifts every seed and trips it.
    if calibrated && rng.gen_range(0..10u32) < 3 {
        return ScenarioWorkload::Sim(WorkloadSpec::tiny(
            rng.gen_range(24..=48usize),
            rng.gen_range(1..=1u64 << 32),
        ));
    }
    if calibrated || rng.gen_range(0..10u32) < 7 {
        let k = rng.gen_range(6..=16usize);
        ScenarioWorkload::Synthetic(SyntheticSpec {
            n: if calibrated { rng.gen_range(64..=160usize) } else { rng.gen_range(24..=120usize) },
            k,
            rank: rng.gen_range(1..=4usize.min(k - 1)),
            default_inflation: rng.gen_range(1.5..3.0),
            noise_sigma: if calibrated { rng.gen_range(0.0..0.3) } else { rng.gen_range(0.0..0.4) },
            seed: rng.gen_range(1..=1u64 << 32),
        })
    } else {
        ScenarioWorkload::Sim(WorkloadSpec::tiny(
            rng.gen_range(16..=40usize),
            rng.gen_range(1..=1u64 << 32),
        ))
    }
}

/// The shard-count axis: mostly unsharded (the historical layout), with
/// the sharded layouts mixed in. Sharding is pinned bit-identical to the
/// unsharded engine, so any invariant failure found at `shards > 1` is a
/// real policy/runner bug, not a sharding artifact — and the fuzzer
/// doubles as a continuous spot-check of that equivalence (the runner's
/// monotone/ordering invariants would catch a divergent trajectory).
fn gen_shards(rng: &mut StdRng) -> usize {
    [1usize, 1, 2, 4][rng.gen_range(0..4usize)]
}

fn gen_hint_shape(rng: &mut StdRng, workload: &ScenarioWorkload) -> HintShape {
    let full_k = match workload {
        ScenarioWorkload::Sim(_) => crate::hints::HintSpace::all().len(),
        ScenarioWorkload::Synthetic(s) => s.k,
    };
    match rng.gen_range(0..5u32) {
        0 => HintShape::Prefix(rng.gen_range(2..=full_k)),
        1 => HintShape::Strided(rng.gen_range(1..=3usize)),
        _ => HintShape::Full,
    }
}

fn gen_seeds(rng: &mut StdRng) -> Vec<u64> {
    (0..rng.gen_range(1..=2usize)).map(|_| rng.gen_range(1..10_000u64)).collect()
}

fn gen_offline(case_seed: u64, rng: &mut StdRng) -> ScenarioSpec {
    // LimeQoAlsNoCensor is deliberately absent: the no-censoring ablation
    // genuinely loses to Random on workloads where probes are expensive —
    // the fuzzer found that on its first run, and the counterexample is
    // pinned as scenarios/broken/no-censor-loses.json rather than
    // generated fresh every time.
    let policy = match rng.gen_range(0..8u32) {
        0 => PolicySpec::Random,
        1 => PolicySpec::Greedy,
        2 => PolicySpec::QoAdvisor,
        3 => PolicySpec::limeqo_legacy(),
        // Incremental Eq. 6 re-ranking at fuzzed cadences. Cached per-row
        // scores are invalidated on the store's global *completion epoch*
        // (bumped whenever any cell completes), so lazy cadences no longer
        // tunnel on a stale argmin. The fuzzer originally found that
        // collapse at `rescore_every: 8`: the cache keyed on `row_rev`
        // alone, so a cached `None` locked a row out of the candidate set
        // until its own observations changed — which never happened for a
        // row the ranking ignored. The reproducer graduated from
        // scenarios/broken/incremental-tunnel.json to the registry
        // regression scenario `incremental-tunnel` when the epoch fix
        // landed; every cadence here is in the design envelope now.
        4 => PolicySpec::LimeQoAls {
            rank: rng.gen_range(2..=5usize),
            drift: DriftPolicy::default(),
            incremental: true,
            rescore_every: [1usize, 2, 4, 8][rng.gen_range(0..4usize)],
            incremental_als: false,
        },
        _ => PolicySpec::limeqo(),
    };
    let calibrated = policy.expects_to_beat_random();
    let workload = gen_workload(rng, calibrated);
    // Rank 4–5 on a tiny Sim catalog is outside the calibrated envelope:
    // with ~30 rows and no low-rank ground truth, the over-parameterized
    // factor model fits noise and loses to Random by *median* margins
    // (the 1,200-seed sweep measured up to 2.15x) that no meaningful
    // collapse bound could absorb. Clamping after the draw keeps the RNG
    // stream — and so every other generated case — unchanged.
    let policy = match (&workload, policy) {
        (
            ScenarioWorkload::Sim(_),
            PolicySpec::LimeQoAls { rank, drift, incremental, rescore_every, incremental_als },
        ) => PolicySpec::LimeQoAls {
            rank: rank.min(3),
            drift,
            incremental,
            rescore_every,
            incremental_als,
        },
        (_, p) => p,
    };
    let hint_shape = gen_hint_shape(rng, &workload);
    // Drift only on simulated workloads (data shift needs a catalog), and
    // only sometimes — drift-free cases keep the LimeQO-vs-Random
    // invariant armed.
    let drift = if matches!(workload, ScenarioWorkload::Sim(_)) && rng.gen_range(0..5u32) < 2 {
        let n = workload.n_queries();
        let at_frac = rng.gen_range(0.2..0.8);
        let kind = if rng.gen_range(0..2u32) == 0 {
            DriftKind::DataShift { days: rng.gen_range(90.0..730.0) }
        } else {
            DriftKind::AddQueries { count: rng.gen_range(1..=(n / 4).max(1)) }
        };
        vec![DriftEvent { at_frac, kind }]
    } else {
        Vec::new()
    };
    let shaped = {
        // Probe spec for shaped_columns; fields below are placeholders.
        let probe = ScenarioSpec {
            name: "probe".into(),
            summary: String::new(),
            workload: workload.clone(),
            hint_shape,
            drift: vec![],
            policy: PolicySpec::Random,
            budget_multiple: 1.0,
            batch: 1,
            max_steps: 1,
            seeds: vec![1],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        };
        probe.shaped_columns().expect("generated shape is in bounds")
    };
    let cells = workload.n_queries() * shaped;
    // Claim-carrying Sim workloads are luck-prone per seed (heavy-tailed
    // defaults), so they run 3–5 seeds and the checker compares medians;
    // synthetic claim-carriers keep the historic 2-seed mean comparison.
    let claim_seeds =
        if matches!(workload, ScenarioWorkload::Sim(_)) { rng.gen_range(3..=5usize) } else { 2 };
    let mut spec = ScenarioSpec {
        name: format!("fuzz-{case_seed:016x}"),
        summary: format!("fuzzer case {case_seed:#x} (offline)"),
        workload,
        hint_shape,
        drift,
        policy,
        // Claim-carrying specs get the budget and the seed averaging the
        // claim was calibrated with; baselines roam freely.
        budget_multiple: if calibrated { rng.gen_range(1.5..4.0) } else { rng.gen_range(0.5..4.0) },
        // Calibrated batches stay small: batch 16 against a tiny matrix
        // forces Eq. 6 to commit to 16 cells per model refit, which can
        // burn a modest budget before the completion learns anything.
        batch: if calibrated {
            [4usize, 8][rng.gen_range(0..2usize)].min(cells)
        } else {
            [4usize, 8, 16][rng.gen_range(0..3usize)].min(cells)
        },
        max_steps: 100_000,
        seeds: if calibrated {
            (0..claim_seeds).map(|_| rng.gen_range(1..10_000u64)).collect()
        } else {
            gen_seeds(rng)
        },
        arrivals: None,
        shards: gen_shards(rng),
        probe_fail_rate: 0.0,
        probe_fail_seed: 0,
    };
    // Incremental-ALS axis: the flag is drawn *after* every existing
    // offline draw, so all previously generated cases keep their specs
    // (the same stream-preserving discipline as the rank clamp above).
    // Incremental updates carry the same LimeQO-beats-Random claim as the
    // full refit — the bounded-deviation contract (PERF.md §Kernels) says
    // a dirty-row re-solve must not move the outcome past the tolerance —
    // so the fuzzer keeps the invariant armed on that path too.
    if let PolicySpec::LimeQoAls { drift, incremental_als, .. } = &mut spec.policy {
        if rng.gen_range(0..4u32) == 0 {
            *incremental_als = true;
            // Incremental fitting implies warm starting; mirror that in
            // the spec so serialized reproducers read literally.
            drift.warm_start = true;
        }
    }
    // Probe-fault axis: drawn after every existing offline draw (same
    // stream-preserving discipline as the incremental-ALS flag above).
    // Rare and mild — the claim checker still has to pass under injected
    // failures because retries re-issue the probes, but a heavy rate on a
    // tight budget would turn claim checks into coin flips.
    if rng.gen_range(0..5u32) == 0 {
        spec.probe_fail_rate = rng.gen_range(0.02..0.15);
        spec.probe_fail_seed = rng.gen_range(1..1_000_000u64);
    }
    spec
}

fn gen_online(case_seed: u64, rng: &mut StdRng) -> ScenarioSpec {
    let workload = gen_workload(rng, true);
    let n = workload.n_queries();
    let policy = PolicySpec::OnlineAls {
        rank: rng.gen_range(2..=5usize),
        explore_prob: rng.gen_range(0.05..0.3),
        rho: rng.gen_range(1.05..1.5),
        refresh_every: [16usize, 32, 64][rng.gen_range(0..3usize)],
        cold_bonus: if rng.gen_range(0..2u32) == 0 { 0.0 } else { rng.gen_range(0.01..0.1) },
    };
    let model = match rng.gen_range(0..4u32) {
        0 | 1 => ArrivalModel::Uniform,
        2 => ArrivalModel::Zipf { exponent: rng.gen_range(0.8..1.6) },
        _ => ArrivalModel::Replay {
            rows: (0..rng.gen_range(16..=64usize)).map(|_| rng.gen_range(0..n)).collect(),
        },
    };
    let replay = matches!(model, ArrivalModel::Replay { .. });
    let arrivals = ArrivalSpec {
        count: rng.gen_range(300..=1200usize),
        burst: if replay { 1 } else { rng.gen_range(1..=4usize) },
        concurrency: if replay { 1 } else { rng.gen_range(1..=3usize) },
        rate: if rng.gen_range(0..2u32) == 0 { 0.0 } else { rng.gen_range(0.5..4.0) },
        model,
    };
    ScenarioSpec {
        name: format!("fuzz-{case_seed:016x}"),
        summary: format!("fuzzer case {case_seed:#x} (online)"),
        workload,
        hint_shape: HintShape::Full,
        drift: Vec::new(),
        policy,
        budget_multiple: 0.0,
        batch: 1,
        max_steps: 100_000,
        seeds: gen_seeds(rng),
        arrivals: Some(arrivals),
        shards: gen_shards(rng),
        probe_fail_rate: 0.0,
        probe_fail_seed: 0,
    }
}

/// One rung of the shrink ladder: propose a strictly simpler spec, or
/// `None` when the rung does not apply.
type Rung = fn(&ScenarioSpec) -> Option<ScenarioSpec>;

fn rungs() -> Vec<Rung> {
    vec![
        |s| {
            (s.seeds.len() > 1).then(|| {
                let mut t = s.clone();
                t.seeds.truncate(1);
                t
            })
        },
        |s| {
            (!s.drift.is_empty()).then(|| {
                let mut t = s.clone();
                t.drift.clear();
                t
            })
        },
        // Sharding is bit-identical by contract, so a failure should
        // reproduce unsharded; if it does not, the rung is rejected and
        // the reproducer keeps its shard count — itself a loud signal.
        |s| {
            (s.shards > 1).then(|| {
                let mut t = s.clone();
                t.shards = 1;
                t
            })
        },
        // Injected probe failures perturb the exploration order, so try
        // the fault-free run early; a reproducer that keeps the rate means
        // the bug only shows under faults — worth knowing immediately.
        |s| {
            (s.probe_fail_rate != 0.0).then(|| {
                let mut t = s.clone();
                t.probe_fail_rate = 0.0;
                t.probe_fail_seed = 0;
                t
            })
        },
        // Incremental factor updates are bounded-deviation by contract, so
        // a failure should normally reproduce on the full-refit path; a
        // reproducer that keeps the flag through this rung is itself a
        // loud signal (the incremental path diverged past its bound).
        |s| match &s.policy {
            PolicySpec::LimeQoAls { incremental_als: true, .. } => {
                let mut t = s.clone();
                if let PolicySpec::LimeQoAls { incremental_als, .. } = &mut t.policy {
                    *incremental_als = false;
                }
                Some(t)
            }
            _ => None,
        },
        |s| {
            (s.hint_shape != HintShape::Full).then(|| {
                let mut t = s.clone();
                t.hint_shape = HintShape::Full;
                t
            })
        },
        |s| match &s.workload {
            ScenarioWorkload::Synthetic(w) if w.n > 8 => {
                let mut t = s.clone();
                let mut w = w.clone();
                w.n = (w.n / 2).max(8);
                w.rank = w.rank.min(w.n.min(w.k));
                t.workload = ScenarioWorkload::Synthetic(w);
                Some(t)
            }
            _ => None,
        },
        |s| match &s.workload {
            ScenarioWorkload::Synthetic(w) if w.k > 4 => {
                let mut t = s.clone();
                let mut w = w.clone();
                w.k = (w.k / 2).max(4);
                w.rank = w.rank.min(w.k - 1);
                t.workload = ScenarioWorkload::Synthetic(w);
                Some(t)
            }
            _ => None,
        },
        |s| match &s.workload {
            ScenarioWorkload::Synthetic(w) if w.noise_sigma != 0.0 => {
                let mut t = s.clone();
                let mut w = w.clone();
                w.noise_sigma = 0.0;
                t.workload = ScenarioWorkload::Synthetic(w);
                Some(t)
            }
            _ => None,
        },
        |s| match &s.workload {
            ScenarioWorkload::Sim(w) if w.n_queries > 16 => {
                let mut t = s.clone();
                t.workload =
                    ScenarioWorkload::Sim(WorkloadSpec::tiny((w.n_queries / 2).max(16), w.seed));
                Some(t)
            }
            _ => None,
        },
        |s| match &s.arrivals {
            Some(a) if a.count > 64 => {
                let mut t = s.clone();
                t.arrivals.as_mut().expect("just matched").count = (a.count / 2).max(64);
                Some(t)
            }
            _ => None,
        },
        |s| match &s.arrivals {
            Some(a) if a.burst != 1 || a.concurrency != 1 || a.rate != 0.0 => {
                let mut t = s.clone();
                let a = t.arrivals.as_mut().expect("just matched");
                a.burst = 1;
                a.concurrency = 1;
                a.rate = 0.0;
                Some(t)
            }
            _ => None,
        },
        |s| match &s.arrivals {
            Some(a) if !matches!(a.model, ArrivalModel::Uniform) => {
                let mut t = s.clone();
                t.arrivals.as_mut().expect("just matched").model = ArrivalModel::Uniform;
                Some(t)
            }
            _ => None,
        },
        |s| {
            (s.batch > 1).then(|| {
                let mut t = s.clone();
                t.batch = (t.batch / 2).max(1);
                t
            })
        },
    ]
}

/// Shrink a failing spec: repeatedly apply the simplification ladder,
/// keeping a candidate only when it is still valid and `fails` still
/// returns `true` for it. Returns the simplest failing spec found. The
/// caller guarantees `fails(spec)` is `true` on entry; `fails` is the
/// expensive part (it re-runs the scenario), so the ladder is bounded
/// and deterministic.
pub fn shrink(spec: &ScenarioSpec, fails: &mut dyn FnMut(&ScenarioSpec) -> bool) -> ScenarioSpec {
    let ladder = rungs();
    let mut best = spec.clone();
    // Each full pass can unlock further rungs (halving n twice, etc.);
    // the sizes are log-bounded so a small pass cap is plenty.
    for _ in 0..12 {
        let mut improved = false;
        for rung in &ladder {
            while let Some(candidate) = rung(&best) {
                if candidate.check().is_ok() && fails(&candidate) {
                    best = candidate;
                    improved = true;
                } else {
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_always_valid() {
        for seed in 0..256u64 {
            let spec = generate(seed);
            spec.check().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(generate(seed), generate(seed));
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_specs_round_trip_through_both_formats() {
        use crate::scenario_file::{
            parse_scenario_json, parse_scenario_toml, to_json_string, to_toml_string,
        };
        let label = std::path::Path::new("<fuzz>");
        for seed in 0..64u64 {
            let spec = generate(seed);
            let back = parse_scenario_json(&to_json_string(&spec), label, None).unwrap();
            assert_eq!(back, spec, "JSON round trip for fuzz seed {seed}");
            let back = parse_scenario_toml(&to_toml_string(&spec), label, None).unwrap();
            assert_eq!(back, spec, "TOML round trip for fuzz seed {seed}");
        }
    }

    #[test]
    fn generator_mixes_online_and_offline_cases() {
        let specs: Vec<_> = (0..64u64).map(generate).collect();
        assert!(specs.iter().any(|s| s.arrivals.is_some()));
        assert!(specs.iter().any(|s| s.arrivals.is_none()));
        assert!(specs.iter().any(|s| matches!(s.workload, ScenarioWorkload::Sim(_))));
        assert!(specs.iter().any(|s| matches!(s.workload, ScenarioWorkload::Synthetic(_))));
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_spec() {
        // Failure predicate: any synthetic workload with n >= 16 "fails";
        // the shrinker should halve n down to the last value that still
        // satisfies the predicate and flatten every orthogonal knob.
        let start = (0..)
            .map(generate)
            .find(|s| matches!(&s.workload, ScenarioWorkload::Synthetic(w) if w.n >= 64))
            .expect("generator produces a big synthetic case");
        let mut calls = 0usize;
        let shrunk = shrink(&start, &mut |s| {
            calls += 1;
            matches!(&s.workload, ScenarioWorkload::Synthetic(w) if w.n >= 16)
        });
        match &shrunk.workload {
            ScenarioWorkload::Synthetic(w) => {
                // Halving stops when the next halving would cross the
                // predicate's n >= 16 boundary, so the result lands in
                // [16, 31].
                assert!((16..32).contains(&w.n), "n shrunk to {}", w.n);
                assert_eq!(w.noise_sigma, 0.0);
                assert_eq!(w.k, 4);
            }
            other => panic!("workload kind changed: {other:?}"),
        }
        assert_eq!(shrunk.seeds.len(), 1);
        assert!(shrunk.drift.is_empty());
        assert_eq!(shrunk.hint_shape, HintShape::Full);
        assert_eq!(shrunk.batch, 1);
        assert!(calls < 200, "shrink must stay bounded, used {calls} calls");
        shrunk.check().unwrap();
    }

    #[test]
    fn shrink_keeps_the_original_when_nothing_simpler_fails() {
        let spec = generate(7);
        let shrunk = shrink(&spec, &mut |s| s == &spec);
        assert_eq!(shrunk, spec);
    }
}
