//! Cost model parameters, shared by planning (estimated world) and
//! execution (true world).
//!
//! The constants mirror PostgreSQL's planner defaults (`seq_page_cost = 1`,
//! `random_page_cost = 4`, `cpu_tuple_cost = 0.01`, ...). Planning and
//! execution use the *same formulas*; they differ only in which cardinalities
//! they plug in (estimated vs. true) and in the planning-only
//! [`CostParams::disable_cost`] penalty for hint-disabled operators — the
//! same mechanism PostgreSQL uses for `enable_* = off`.

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Cost of a sequentially fetched page (PostgreSQL default 1.0).
    pub seq_page_cost: f64,
    /// Cost of a randomly fetched page (PostgreSQL default 4.0).
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple (PostgreSQL default 0.01).
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry (PostgreSQL default 0.005).
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of evaluating one operator/expression (PostgreSQL 0.0025).
    pub cpu_operator_cost: f64,
    /// Bytes per disk page (PostgreSQL 8 KiB).
    pub page_size_bytes: f64,
    /// Number of tuples that fit in hash-join memory before spilling
    /// (a rows-denominated stand-in for `work_mem`).
    pub work_mem_rows: f64,
    /// Planning-time penalty charged per use of a hint-disabled operator.
    /// Never charged at execution time.
    pub disable_cost: f64,
    /// Seconds per cost unit — the machine-speed calibration knob. Workload
    /// builders tune this so the default-hint total matches the paper's
    /// Table 1.
    pub time_per_cost_unit: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            page_size_bytes: 8192.0,
            work_mem_rows: 150_000.0,
            disable_cost: 1.0e10,
            time_per_cost_unit: 1.0e-5,
        }
    }
}

impl CostParams {
    /// Number of heap pages occupied by `rows` tuples of width `row_width`.
    pub fn pages(&self, rows: f64, row_width: f64) -> f64 {
        (rows * row_width / self.page_size_bytes).max(1.0)
    }

    /// Convert planner cost units into seconds of execution time.
    pub fn cost_to_seconds(&self, cost: f64) -> f64 {
        cost * self.time_per_cost_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgres() {
        let p = CostParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
    }

    #[test]
    fn pages_is_at_least_one() {
        let p = CostParams::default();
        assert_eq!(p.pages(0.0, 100.0), 1.0);
        assert!(p.pages(1e6, 100.0) > 1.0);
    }

    #[test]
    fn cost_to_seconds_scales_linearly() {
        let p = CostParams::default();
        assert!((p.cost_to_seconds(2e5) - 2.0 * p.cost_to_seconds(1e5)).abs() < 1e-12);
    }
}
