//! The hint interface: PostgreSQL's six `enable_*` operator knobs.
//!
//! LimeQO "uses the same 49 hints as Bao, which are based on six
//! configuration parameters where we can enable or disable hash join, merge
//! join, nested loop join, index scan, sequential scan, and index-only scan"
//! (§5). 2⁶ = 64 raw combinations, minus those that disable *all* join
//! operators or *all* scan operators (the optimizer could not produce a plan
//! at zero disable-penalty) leaves (2³−1) × (2³−1) = 49 valid hint sets.

/// One hint set: which physical operators the optimizer may use freely.
///
/// Disabled operators are still *plannable* — like PostgreSQL, the optimizer
/// charges them a large `disable_cost` penalty at planning time, and the
/// penalty never appears in execution time. The default configuration
/// (everything enabled, [`HintConfig::default_hint`]) reproduces the vanilla
/// optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HintConfig {
    /// `enable_hashjoin`
    pub hash_join: bool,
    /// `enable_mergejoin`
    pub merge_join: bool,
    /// `enable_nestloop`
    pub nest_loop: bool,
    /// `enable_seqscan`
    pub seq_scan: bool,
    /// `enable_indexscan`
    pub index_scan: bool,
    /// `enable_indexonlyscan`
    pub index_only_scan: bool,
}

impl HintConfig {
    /// The default hint: every operator enabled (vanilla PostgreSQL).
    pub fn default_hint() -> Self {
        HintConfig {
            hash_join: true,
            merge_join: true,
            nest_loop: true,
            seq_scan: true,
            index_scan: true,
            index_only_scan: true,
        }
    }

    /// True when at least one join operator and one scan operator remain
    /// enabled — the validity rule that yields 49 configurations.
    pub fn is_valid(&self) -> bool {
        (self.hash_join || self.merge_join || self.nest_loop)
            && (self.seq_scan || self.index_scan || self.index_only_scan)
    }

    /// Pack into a 6-bit mask (bit order: hash, merge, nl, seq, idx, idx-only).
    pub fn to_bits(&self) -> u8 {
        (self.hash_join as u8)
            | (self.merge_join as u8) << 1
            | (self.nest_loop as u8) << 2
            | (self.seq_scan as u8) << 3
            | (self.index_scan as u8) << 4
            | (self.index_only_scan as u8) << 5
    }

    /// Unpack from a 6-bit mask.
    pub fn from_bits(bits: u8) -> Self {
        HintConfig {
            hash_join: bits & 1 != 0,
            merge_join: bits & 2 != 0,
            nest_loop: bits & 4 != 0,
            seq_scan: bits & 8 != 0,
            index_scan: bits & 16 != 0,
            index_only_scan: bits & 32 != 0,
        }
    }

    /// ±1 feature encoding of the six knobs, used by the BayesQO baseline's
    /// surrogate model and by diagnostics.
    pub fn feature_vec(&self) -> [f64; 6] {
        let f = |b: bool| if b { 1.0 } else { -1.0 };
        [
            f(self.hash_join),
            f(self.merge_join),
            f(self.nest_loop),
            f(self.seq_scan),
            f(self.index_scan),
            f(self.index_only_scan),
        ]
    }

    /// Short human-readable tag, e.g. `hm-s-i` (enabled initials, `-` for
    /// disabled), in knob order hash/merge/nestloop/seq/index/indexonly.
    pub fn tag(&self) -> String {
        let mut s = String::with_capacity(6);
        s.push(if self.hash_join { 'h' } else { '-' });
        s.push(if self.merge_join { 'm' } else { '-' });
        s.push(if self.nest_loop { 'n' } else { '-' });
        s.push(if self.seq_scan { 's' } else { '-' });
        s.push(if self.index_scan { 'i' } else { '-' });
        s.push(if self.index_only_scan { 'o' } else { '-' });
        s
    }
}

impl Default for HintConfig {
    fn default() -> Self {
        Self::default_hint()
    }
}

/// The enumerated hint space: all 49 valid configurations, default first.
#[derive(Debug, Clone)]
pub struct HintSpace {
    configs: Vec<HintConfig>,
}

impl HintSpace {
    /// Enumerate the 49 valid hint sets. The default hint (all enabled) is
    /// always index 0, matching the paper's convention that column 0 of the
    /// workload matrix is the default plan.
    pub fn all() -> Self {
        let mut configs = vec![HintConfig::default_hint()];
        for bits in 0..64u8 {
            let c = HintConfig::from_bits(bits);
            if c.is_valid() && c != HintConfig::default_hint() {
                configs.push(c);
            }
        }
        HintSpace { configs }
    }

    /// Number of hint sets (49 for the full space).
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the space is empty (never, for [`HintSpace::all`]).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The hint set at `idx`.
    pub fn get(&self, idx: usize) -> HintConfig {
        self.configs[idx]
    }

    /// All configurations in order.
    pub fn configs(&self) -> &[HintConfig] {
        &self.configs
    }

    /// Index of the default hint (always 0).
    pub fn default_index(&self) -> usize {
        0
    }

    /// Restrict the space to the configurations at `indices` (scenario
    /// hint-space shapes: deployments often expose only a vetted hint
    /// subset). The default hint is prepended if `indices` omits index 0,
    /// preserving the column-0-is-default convention.
    pub fn subset(&self, indices: &[usize]) -> HintSpace {
        let mut configs = vec![self.configs[0]];
        for &i in indices {
            assert!(i < self.configs.len(), "hint index {i} out of range");
            if i != 0 {
                configs.push(self.configs[i]);
            }
        }
        HintSpace { configs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_49_valid_hints() {
        assert_eq!(HintSpace::all().len(), 49);
    }

    #[test]
    fn default_hint_is_first_and_all_enabled() {
        let space = HintSpace::all();
        let d = space.get(0);
        assert_eq!(d, HintConfig::default_hint());
        assert!(d.hash_join && d.merge_join && d.nest_loop);
        assert!(d.seq_scan && d.index_scan && d.index_only_scan);
    }

    #[test]
    fn subset_keeps_default_first() {
        let space = HintSpace::all();
        let sub = space.subset(&[5, 12, 0, 48]);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.get(0), HintConfig::default_hint());
        assert_eq!(sub.get(1), space.get(5));
        assert_eq!(sub.get(3), space.get(48));
        let no_default = space.subset(&[3, 7]);
        assert_eq!(no_default.len(), 3);
        assert_eq!(no_default.get(0), HintConfig::default_hint());
    }

    #[test]
    fn no_config_disables_all_joins_or_all_scans() {
        for c in HintSpace::all().configs() {
            assert!(c.hash_join || c.merge_join || c.nest_loop, "{c:?}");
            assert!(c.seq_scan || c.index_scan || c.index_only_scan, "{c:?}");
        }
    }

    #[test]
    fn configs_are_distinct() {
        let space = HintSpace::all();
        let mut bits: Vec<u8> = space.configs().iter().map(|c| c.to_bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 49);
    }

    #[test]
    fn bits_round_trip() {
        for c in HintSpace::all().configs() {
            assert_eq!(HintConfig::from_bits(c.to_bits()), *c);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let no_joins = HintConfig {
            hash_join: false,
            merge_join: false,
            nest_loop: false,
            ..HintConfig::default_hint()
        };
        assert!(!no_joins.is_valid());
        let no_scans = HintConfig {
            seq_scan: false,
            index_scan: false,
            index_only_scan: false,
            ..HintConfig::default_hint()
        };
        assert!(!no_scans.is_valid());
    }

    #[test]
    fn tag_format() {
        assert_eq!(HintConfig::default_hint().tag(), "hmnsio");
        let c = HintConfig { nest_loop: false, index_scan: false, ..HintConfig::default_hint() };
        assert_eq!(c.tag(), "hm-s-o");
    }
}
