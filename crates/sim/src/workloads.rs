//! Workload generators calibrated to the paper's Table 1, and the oracle
//! matrices that drive offline exploration.
//!
//! | Workload | Queries | Default | Optimal | Headroom |
//! |----------|---------|---------|---------|----------|
//! | JOB      | 113     | 181 s   | 68 s    | 2.66×    |
//! | CEB      | 3133    | 2.94 h  | 1.02 h  | 2.88×    |
//! | Stack    | 6191    | 1.46 h  | 1.09 h  | 1.34×    |
//! | DSB      | 1040    | 4.75 h  | 2.74 h  | 1.73×    |
//!
//! Each generator draws queries from a mixture of [`QueryClass`]es whose
//! estimation-error profiles reproduce the workload's headroom, then
//! calibrates the simulator's machine speed
//! ([`crate::cost::CostParams::time_per_cost_unit`]) so the default-hint
//! total matches Table 1 exactly. The *optimal* total and the per-hint
//! structure are emergent, recorded in EXPERIMENTS.md.
//!
//! [`Workload::build_oracle`] plans and "executes" every (query, hint) cell
//! in parallel, producing the full true-latency matrix `W` (which real
//! deployments never see — exploration observes it cell by cell) together
//! with the optimizer's estimated cost matrix (used by the QO-Advisor
//! baseline and the TCNN features).

use crate::catalog::{Catalog, CatalogSpec};
use crate::executor::{Executor, STARTUP_SECONDS};
use crate::hints::HintSpace;
use crate::optimizer::Optimizer;
use crate::plan::PlanTree;
use crate::query::{generate_query, JoinShape, Query, QueryClass, QueryGenParams};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// One component of a workload's query-class mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMix {
    /// Query class (error profile).
    pub class: QueryClass,
    /// Relative weight within the mixture.
    pub weight: f64,
    /// Join graph shape for queries of this component.
    pub shape: JoinShape,
    /// Range of table counts (inclusive).
    pub n_tables: (usize, usize),
    /// Log-uniform range of true predicate selectivities.
    pub pred_sel_range: (f64, f64),
    /// Log-normal `(mu, sigma)` of join-edge fanout for this component.
    pub fanout: (f64, f64),
    /// Probability that a table carries a local predicate.
    pub pred_prob: f64,
}

/// Specification of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (`job`, `ceb`, `stack`, `dsb`, ...).
    pub name: String,
    /// Number of queries (workload matrix rows).
    pub n_queries: usize,
    /// Catalog shape.
    pub catalog: CatalogSpec,
    /// Query class mixture.
    pub class_mix: Vec<ClassMix>,
    /// Target total latency of the default hint, in seconds (Table 1's
    /// "Default" column); the machine-speed knob is calibrated to hit it.
    pub target_default_total: f64,
    /// If set, generate this many templates and instantiate
    /// `n_queries / templates` parameterized variants of each (DSB-style).
    pub templates: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// JOB-like workload: 113 queries on an IMDb-like catalog, dominated by
    /// correlated-join underestimation (the nested-loop trap).
    pub fn job() -> Self {
        WorkloadSpec {
            name: "job".into(),
            n_queries: 113,
            catalog: imdb_catalog_spec(),
            class_mix: imdb_class_mix(0.36),
            target_default_total: 181.0,
            templates: None,
            seed: 0x150459, // calibrated: headroom 2.81x vs paper 2.66x
        }
    }

    /// CEB-like workload: 3133 queries on the same IMDb-like catalog.
    pub fn ceb() -> Self {
        WorkloadSpec {
            name: "ceb".into(),
            n_queries: 3133,
            catalog: imdb_catalog_spec(),
            class_mix: imdb_class_mix(0.52),
            target_default_total: 2.94 * 3600.0,
            templates: None,
            seed: 0x9f05b, // calibrated: headroom 2.89x vs paper 2.88x
        }
    }

    /// Stack-like workload (2019 snapshot): 6191 mostly well-estimated
    /// queries — small headroom (1.34×).
    pub fn stack() -> Self {
        WorkloadSpec {
            name: "stack".into(),
            n_queries: 6191,
            catalog: CatalogSpec {
                name: "stack-sim".into(),
                n_tables: 14,
                rows_range: (5e4, 4e7),
                width_range: (60.0, 500.0),
                index_prob: 0.6,
                fact_fraction: 0.3,
            },
            class_mix: vec![
                ClassMix {
                    class: QueryClass::WellEstimated,
                    weight: 0.75,
                    shape: JoinShape::Chain,
                    n_tables: (2, 6),
                    pred_sel_range: (2e-4, 0.05),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.6,
                },
                ClassMix {
                    class: QueryClass::NestLoopTrap,
                    weight: 0.07,
                    shape: JoinShape::Chain,
                    n_tables: (3, 5),
                    pred_sel_range: (0.02, 0.4),
                    fanout: (0.35, 0.5),
                    pred_prob: 0.35,
                },
                ClassMix {
                    class: QueryClass::IndexTrap,
                    weight: 0.10,
                    shape: JoinShape::Chain,
                    n_tables: (2, 5),
                    pred_sel_range: (0.01, 0.2),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.85,
                },
                ClassMix {
                    class: QueryClass::MissedIndex,
                    weight: 0.08,
                    shape: JoinShape::Chain,
                    n_tables: (2, 5),
                    pred_sel_range: (2e-4, 5e-3),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.9,
                },
            ],
            target_default_total: 1.46 * 3600.0,
            templates: None,
            seed: 0xf5e3, // calibrated: headroom 1.28x vs paper 1.34x
        }
    }

    /// Stack 2017 snapshot: same query set, smaller database (the paper's
    /// default total was 1.16 h vs 1.46 h for 2019). Used by the data-shift
    /// experiments together with [`crate::drift`].
    pub fn stack_2017() -> Self {
        let mut s = Self::stack();
        s.name = "stack-2017".into();
        s.target_default_total = 1.16 * 3600.0;
        s
    }

    /// DSB-like workload: 52 templates × 20 parameterized instances on a
    /// star-schema catalog.
    pub fn dsb() -> Self {
        WorkloadSpec {
            name: "dsb".into(),
            n_queries: 1040,
            catalog: CatalogSpec {
                name: "dsb-sim".into(),
                n_tables: 16,
                rows_range: (1e4, 3e7),
                width_range: (80.0, 350.0),
                index_prob: 0.55,
                fact_fraction: 0.25,
            },
            class_mix: vec![
                ClassMix {
                    class: QueryClass::WellEstimated,
                    weight: 0.30,
                    shape: JoinShape::Star,
                    n_tables: (3, 8),
                    pred_sel_range: (1e-3, 0.1),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.6,
                },
                ClassMix {
                    class: QueryClass::NestLoopTrap,
                    weight: 0.32,
                    shape: JoinShape::Snowflake,
                    n_tables: (4, 9),
                    pred_sel_range: (0.02, 0.4),
                    fanout: (0.8, 0.6),
                    pred_prob: 0.35,
                },
                ClassMix {
                    class: QueryClass::MissedIndex,
                    weight: 0.22,
                    shape: JoinShape::Star,
                    n_tables: (3, 7),
                    pred_sel_range: (2e-4, 5e-3),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.9,
                },
                ClassMix {
                    class: QueryClass::IndexTrap,
                    weight: 0.16,
                    shape: JoinShape::Star,
                    n_tables: (3, 7),
                    pred_sel_range: (0.01, 0.2),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.85,
                },
            ],
            target_default_total: 4.75 * 3600.0,
            templates: Some(52),
            seed: 0x149c9, // calibrated: headroom 1.72x vs paper 1.73x
        }
    }

    /// Shrink the workload to `frac` of its queries (and default total),
    /// preserving the class mixture — used to keep neural experiments
    /// tractable on CPU. `--full` flags on the figure binaries restore 1.0.
    pub fn scaled(mut self, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0);
        let n = ((self.n_queries as f64 * frac).round() as usize).max(8);
        self.target_default_total *= n as f64 / self.n_queries as f64;
        self.n_queries = n;
        if let Some(t) = self.templates {
            self.templates = Some(((t as f64 * frac).round() as usize).clamp(2, n));
        }
        self
    }

    /// Small synthetic workload for unit/integration tests.
    pub fn tiny(n_queries: usize, seed: u64) -> Self {
        WorkloadSpec {
            name: format!("tiny-{n_queries}"),
            n_queries,
            catalog: CatalogSpec {
                name: "tiny-sim".into(),
                n_tables: 8,
                rows_range: (1e4, 3e6),
                width_range: (50.0, 200.0),
                index_prob: 0.5,
                fact_fraction: 0.3,
            },
            class_mix: vec![
                ClassMix {
                    class: QueryClass::NestLoopTrap,
                    weight: 0.4,
                    shape: JoinShape::Chain,
                    n_tables: (3, 6),
                    pred_sel_range: (0.02, 0.4),
                    fanout: (0.6, 0.6),
                    pred_prob: 0.35,
                },
                ClassMix {
                    class: QueryClass::WellEstimated,
                    weight: 0.4,
                    shape: JoinShape::Chain,
                    n_tables: (2, 5),
                    pred_sel_range: (1e-3, 0.2),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.6,
                },
                ClassMix {
                    class: QueryClass::MissedIndex,
                    weight: 0.2,
                    shape: JoinShape::Chain,
                    n_tables: (2, 5),
                    pred_sel_range: (2e-4, 5e-3),
                    fanout: (0.3, 0.5),
                    pred_prob: 0.9,
                },
            ],
            target_default_total: 60.0,
            templates: None,
            seed,
        }
    }

    /// Materialize the workload: catalog + queries (not yet the oracle).
    pub fn build(&self) -> Workload {
        let mut rng = SeededRng::new(self.seed);
        let catalog = Catalog::generate(&self.catalog, &mut rng.fork(1));
        let mut qrng = rng.fork(2);

        let total_w: f64 = self.class_mix.iter().map(|c| c.weight).sum();
        let pick_mix = |r: &mut SeededRng| -> &ClassMix {
            let mut x = r.uniform(0.0, total_w);
            for m in &self.class_mix {
                if x < m.weight {
                    return m;
                }
                x -= m.weight;
            }
            self.class_mix.last().expect("non-empty mix")
        };

        let mut queries = Vec::with_capacity(self.n_queries);
        match self.templates {
            None => {
                for id in 0..self.n_queries {
                    let mix = pick_mix(&mut qrng);
                    let params = QueryGenParams {
                        class: mix.class,
                        n_tables: qrng.index(mix.n_tables.1 - mix.n_tables.0 + 1) + mix.n_tables.0,
                        shape: mix.shape,
                        pred_sel_range: mix.pred_sel_range,
                        fanout: mix.fanout,
                        pred_prob: mix.pred_prob,
                        template: id,
                    };
                    queries.push(generate_query(id, &params, &catalog, &mut qrng));
                }
            }
            Some(n_templates) => {
                // DSB style: generate templates, then parameterized
                // instances that share structure but re-draw selectivities.
                let per = self.n_queries.div_ceil(n_templates);
                let mut id = 0;
                for t in 0..n_templates {
                    let mix = pick_mix(&mut qrng);
                    let params = QueryGenParams {
                        class: mix.class,
                        n_tables: qrng.index(mix.n_tables.1 - mix.n_tables.0 + 1) + mix.n_tables.0,
                        shape: mix.shape,
                        pred_sel_range: mix.pred_sel_range,
                        fanout: mix.fanout,
                        pred_prob: mix.pred_prob,
                        template: t,
                    };
                    let proto = generate_query(id, &params, &catalog, &mut qrng);
                    for _ in 0..per {
                        if id >= self.n_queries {
                            break;
                        }
                        queries.push(instantiate_template(&proto, id, &mut qrng));
                        id += 1;
                    }
                }
            }
        }
        Workload { spec: self.clone(), catalog, queries, hints: HintSpace::all() }
    }
}

/// Derive a parameterized instance of a template query: same join graph,
/// jittered predicate selectivities, freshly drawn estimation errors.
fn instantiate_template(proto: &Query, id: usize, rng: &mut SeededRng) -> Query {
    let profile = proto.class.error_profile();
    let mut q = proto.clone();
    q.id = id;
    for t in &mut q.tables {
        t.sel_true = (t.sel_true * rng.log_normal(0.0, 0.6)).clamp(1e-8, 1.0);
        let err = rng.log_normal(profile.pred_err_mu, profile.pred_err_sigma);
        t.sel_est = (t.sel_true * err).clamp(1e-8, 1.0);
    }
    for e in &mut q.joins {
        e.sel_true = (e.sel_true * rng.log_normal(0.0, 0.25)).clamp(1e-12, 1.0);
        let err = rng.log_normal(profile.join_err_mu, profile.join_err_sigma);
        e.sel_est = (e.sel_true * err).clamp(1e-12, 1.0);
    }
    q.noise_seed = rng.raw().next_u64();
    q
}

use rand::RngCore;

/// A fully materialized workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The spec this workload was built from.
    pub spec: WorkloadSpec,
    /// Generated catalog (with calibrated machine speed after
    /// [`Workload::build_oracle`] runs).
    pub catalog: Catalog,
    /// Queries (workload matrix rows).
    pub queries: Vec<Query>,
    /// The 49-hint space (workload matrix columns).
    pub hints: HintSpace,
}

/// Ground-truth matrices for a workload — the quantities exploration
/// observes cell by cell.
#[derive(Debug, Clone)]
pub struct OracleMatrices {
    /// True latency (seconds) of every (query, hint) cell.
    pub true_latency: Mat,
    /// Optimizer-estimated plan cost of every cell (includes disable
    /// penalties when the optimizer was forced into a disabled operator).
    pub est_cost: Mat,
    /// Total default-hint latency (column 0 sum).
    pub default_total: f64,
    /// Total latency under the per-row best hint (Table 1's "Optimal").
    pub optimal_total: f64,
}

impl OracleMatrices {
    /// Headroom ratio Default/Optimal.
    pub fn headroom(&self) -> f64 {
        self.default_total / self.optimal_total
    }
}

impl Workload {
    /// Number of queries (matrix rows).
    pub fn n(&self) -> usize {
        self.queries.len()
    }

    /// Number of hints (matrix columns, 49).
    pub fn k(&self) -> usize {
        self.hints.len()
    }

    /// Append a write-bound ETL query (paper §5.1's Greedy-trap experiment:
    /// a 576.5 s COPY-style query whose latency no hint can improve).
    pub fn add_etl_query(&mut self, write_seconds: f64) {
        let id = self.queries.len();
        let mut rng = SeededRng::new(self.spec.seed ^ 0xE71 ^ id as u64);
        let params = QueryGenParams {
            class: QueryClass::Etl,
            n_tables: 2,
            shape: JoinShape::Chain,
            pred_sel_range: (0.5, 1.0),
            fanout: QueryGenParams::DEFAULT_FANOUT,
            pred_prob: QueryGenParams::DEFAULT_PRED_PROB,
            template: id,
        };
        let mut q = generate_query(id, &params, &self.catalog, &mut rng);
        q.etl_write_seconds = write_seconds;
        self.queries.push(q);
    }

    /// Plan cell (query `qi`, hint `hi`) and annotate both worlds — used for
    /// on-demand TCNN featurization without storing 300 k plan trees.
    pub fn plan_cell(&self, qi: usize, hi: usize) -> PlanTree {
        let q = &self.queries[qi];
        let mut plan = Optimizer::new(&self.catalog).plan(q, self.hints.get(hi));
        Executor::new(&self.catalog).annotate_true(&mut plan, q);
        plan
    }

    /// Plan and execute every cell, calibrating the machine-speed constant
    /// so the default-hint total equals the spec target. Parallelized over
    /// queries with scoped threads.
    pub fn build_oracle(&mut self) -> OracleMatrices {
        let n = self.n();
        let k = self.k();
        // Pass 1: true cost units, noise factors, estimated costs.
        let mut cost_units = vec![0.0f64; n * k];
        let mut noise = vec![0.0f64; n * k];
        let mut est_cost = vec![0.0f64; n * k];

        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        let chunk = (n + threads - 1) / threads.max(1);
        let catalog = &self.catalog;
        let hints = &self.hints;
        let queries = &self.queries;

        crossbeam::thread::scope(|scope| {
            let mut cu_rest: &mut [f64] = &mut cost_units;
            let mut nz_rest: &mut [f64] = &mut noise;
            let mut ec_rest: &mut [f64] = &mut est_cost;
            let mut start = 0usize;
            while start < n {
                let rows = chunk.min(n - start);
                let (cu, cu_next) = cu_rest.split_at_mut(rows * k);
                let (nz, nz_next) = nz_rest.split_at_mut(rows * k);
                let (ec, ec_next) = ec_rest.split_at_mut(rows * k);
                cu_rest = cu_next;
                nz_rest = nz_next;
                ec_rest = ec_next;
                let q_slice = &queries[start..start + rows];
                scope.spawn(move |_| {
                    let opt = Optimizer::new(catalog);
                    let exec = Executor::new(catalog);
                    for (r, q) in q_slice.iter().enumerate() {
                        for h in 0..k {
                            let mut plan = opt.plan(q, hints.get(h));
                            let est = plan.est();
                            let stats = exec.annotate_true(&mut plan, q);
                            cu[r * k + h] = stats.cost;
                            nz[r * k + h] = crate::executor::noise_factor(q.noise_seed, h);
                            ec[r * k + h] = est.cost;
                        }
                    }
                });
                start += rows;
            }
        })
        .expect("oracle build threads");

        // Calibrate seconds-per-cost-unit against the default column:
        //   target = Σ_i etl_i + noise_i0·(cu_i0·tpu + STARTUP)
        let mut fixed = 0.0;
        let mut weighted_cu = 0.0;
        for (i, q) in self.queries.iter().enumerate() {
            fixed += q.etl_write_seconds + noise[i * k] * STARTUP_SECONDS;
            weighted_cu += noise[i * k] * cost_units[i * k];
        }
        let target = self.spec.target_default_total;
        let tpu = ((target - fixed) / weighted_cu).max(1e-12);
        self.catalog.params.time_per_cost_unit = tpu;

        let mut lat = Mat::zeros(n, k);
        for i in 0..n {
            let etl = self.queries[i].etl_write_seconds;
            for h in 0..k {
                lat[(i, h)] =
                    etl + noise[i * k + h] * (cost_units[i * k + h] * tpu + STARTUP_SECONDS);
            }
        }
        let est = Mat::from_vec(n, k, est_cost).expect("shape");
        let default_total: f64 = (0..n).map(|i| lat[(i, 0)]).sum();
        let optimal_total: f64 =
            (0..n).map(|i| lat.row_min(i).map(|(_, v)| v).unwrap_or(0.0)).sum();
        OracleMatrices { true_latency: lat, est_cost: est, default_total, optimal_total }
    }
}

fn imdb_catalog_spec() -> CatalogSpec {
    CatalogSpec {
        name: "imdb-sim".into(),
        n_tables: 21,
        rows_range: (1e4, 4e7),
        width_range: (40.0, 300.0),
        index_prob: 0.5,
        fact_fraction: 0.25,
    }
}

fn imdb_class_mix(nl_weight: f64) -> Vec<ClassMix> {
    vec![
        ClassMix {
            class: QueryClass::NestLoopTrap,
            weight: nl_weight,
            shape: JoinShape::Snowflake,
            n_tables: (4, 10),
            pred_sel_range: (0.02, 0.4),
            fanout: (0.6, 0.6),
            pred_prob: 0.35,
        },
        ClassMix {
            class: QueryClass::IndexTrap,
            weight: 0.15,
            shape: JoinShape::Chain,
            n_tables: (3, 8),
            pred_sel_range: (0.01, 0.2),
            fanout: (0.3, 0.5),
            pred_prob: 0.85,
        },
        ClassMix {
            class: QueryClass::MissedIndex,
            weight: 0.15,
            shape: JoinShape::Chain,
            n_tables: (3, 8),
            pred_sel_range: (2e-4, 5e-3),
            fanout: (0.3, 0.5),
            pred_prob: 0.9,
        },
        ClassMix {
            class: QueryClass::WellEstimated,
            weight: 1.0 - nl_weight - 0.30,
            shape: JoinShape::Chain,
            n_tables: (3, 9),
            pred_sel_range: (1e-3, 0.1),
            fanout: (0.3, 0.5),
            pred_prob: 0.6,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_builds() {
        let mut w = WorkloadSpec::tiny(20, 7).build();
        assert_eq!(w.n(), 20);
        assert_eq!(w.k(), 49);
        let o = w.build_oracle();
        assert_eq!(o.true_latency.shape(), (20, 49));
        assert!(o.default_total > 0.0);
        assert!(o.optimal_total > 0.0);
        assert!(o.optimal_total <= o.default_total + 1e-9);
    }

    #[test]
    fn default_total_calibrated_to_target() {
        let mut w = WorkloadSpec::tiny(25, 8).build();
        let o = w.build_oracle();
        let target = w.spec.target_default_total;
        assert!(
            (o.default_total - target).abs() / target < 1e-6,
            "default {} target {}",
            o.default_total,
            target
        );
    }

    #[test]
    fn oracle_is_deterministic() {
        let mut w1 = WorkloadSpec::tiny(15, 9).build();
        let mut w2 = WorkloadSpec::tiny(15, 9).build();
        let o1 = w1.build_oracle();
        let o2 = w2.build_oracle();
        assert_eq!(o1.true_latency.as_slice(), o2.true_latency.as_slice());
        assert_eq!(o1.est_cost.as_slice(), o2.est_cost.as_slice());
    }

    #[test]
    fn all_latencies_positive() {
        let mut w = WorkloadSpec::tiny(15, 10).build();
        let o = w.build_oracle();
        assert!(o.true_latency.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn workload_has_headroom() {
        let mut w = WorkloadSpec::tiny(40, 11).build();
        let o = w.build_oracle();
        assert!(o.headroom() > 1.1, "headroom {}", o.headroom());
    }

    #[test]
    fn etl_query_appended_and_flat() {
        let mut w = WorkloadSpec::tiny(10, 12).build();
        w.add_etl_query(500.0);
        assert_eq!(w.n(), 11);
        let o = w.build_oracle();
        let row = 10;
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for h in 0..w.k() {
            let v = o.true_latency[(row, h)];
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min > 450.0);
        assert!(max / min < 1.25, "etl spread {min}..{max}");
    }

    #[test]
    fn scaled_spec_shrinks() {
        let s = WorkloadSpec::ceb().scaled(0.1);
        assert!((s.n_queries as f64 - 313.0).abs() <= 1.0);
        assert!(s.target_default_total < 0.11 * 2.94 * 3600.0);
    }

    #[test]
    fn template_instances_share_structure() {
        let mut spec = WorkloadSpec::tiny(20, 13);
        spec.templates = Some(4);
        let w = spec.build();
        assert_eq!(w.n(), 20);
        // Instances of the same template join identical table sets.
        let by_template: Vec<Vec<&Query>> =
            (0..4).map(|t| w.queries.iter().filter(|q| q.template == t).collect()).collect();
        for group in by_template {
            assert!(!group.is_empty());
            let tables: Vec<usize> = group[0].tables.iter().map(|t| t.table).collect();
            for q in &group {
                let qt: Vec<usize> = q.tables.iter().map(|t| t.table).collect();
                assert_eq!(qt, tables);
            }
        }
    }

    #[test]
    fn plan_cell_annotates_both_worlds() {
        let w = WorkloadSpec::tiny(5, 14).build();
        let plan = w.plan_cell(0, 3);
        assert!(plan.est().cost > 0.0);
        assert!(plan.actual().cost > 0.0);
    }
}
