//! Simulated DBMS substrate for the LimeQO reproduction.
//!
//! The paper evaluates against PostgreSQL 16.1 on the IMDb, StackExchange,
//! and DSB datasets. This crate replaces that stack with a self-contained,
//! deterministic simulator that preserves everything LimeQO actually relies
//! on (see DESIGN.md §3):
//!
//! * a **catalog** of tables with row counts, widths, index metadata and
//!   statistics ([`catalog`]),
//! * an **SPJ query model** with join graphs, predicate selectivities, and a
//!   per-query *cardinality-estimation error profile* ([`query`]) — the
//!   error profile is what opens the gap between PostgreSQL's default plan
//!   and the best hinted plan,
//! * the **49-hint interface**: six `enable_*` operator knobs, all
//!   combinations that keep at least one join and one scan operator
//!   ([`hints`]),
//! * a **Selinger-style dynamic-programming optimizer** that plans with
//!   *estimated* cardinalities and honors hint configurations through
//!   PostgreSQL's `disable_cost` mechanism ([`optimizer`]),
//! * an **executor** that charges the same cost formulas with *true*
//!   cardinalities and converts cost units to seconds ([`executor`]),
//! * **workload generators** calibrated to the paper's Table 1 — JOB, CEB,
//!   Stack and DSB lookalikes ([`workloads`]),
//! * a **data drift model** that grows tables and perturbs selectivities
//!   over simulated days ([`drift`]),
//! * a **scenario engine** of declarative workload × drift × hint-shape ×
//!   policy specs and a registry of named scenarios beyond the paper's
//!   four workloads ([`scenario`]),
//! * **plan featurization** for the tree convolutional neural networks
//!   ([`features`]).
//!
//! The main entry point is [`workloads::Workload`]: build one from a spec,
//! then call [`workloads::Workload::build_oracle`] to materialize the true
//! latency and estimated cost matrices that drive offline exploration.

#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod drift;
pub mod executor;
pub mod features;
pub mod hints;
pub mod optimizer;
pub mod plan;
pub mod query;
pub mod scenario;
pub mod scenario_file;
pub mod scenario_fuzz;
pub mod workloads;

pub use catalog::{Catalog, Column, Table};
pub use cost::CostParams;
pub use executor::Executor;
pub use features::{featurize_plan, FeatureNorm, PlanFeatures, NODE_FEATURE_DIM};
pub use hints::{HintConfig, HintSpace};
pub use optimizer::Optimizer;
pub use plan::{JoinMethod, PlanTree, ScanMethod};
pub use query::{JoinEdge, Query, QueryClass, TableRef};
pub use scenario::{
    ArrivalModel, ArrivalSpec, DriftEvent, DriftKind, HintShape, ScenarioSpec, ScenarioWorkload,
    SyntheticSpec,
};
pub use scenario_file::{load_corpus, load_scenario, to_json_string, to_toml_string, LoadError};
pub use workloads::{OracleMatrices, Workload, WorkloadSpec};
