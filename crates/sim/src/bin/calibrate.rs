//! Calibration diagnostic: per-workload and per-class headroom report.
//!
//! Usage: `cargo run --release -p limeqo-sim --bin calibrate [job|ceb|stack|dsb|tiny] [scale]`

use limeqo_sim::query::QueryClass;
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("tiny");
    if name == "sweep" {
        let target = args.get(2).map(|s| s.as_str()).unwrap_or("job");
        let n_seeds: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12);
        for s in 0..n_seeds {
            let mut spec = match target {
                "ceb" => WorkloadSpec::ceb(),
                "stack" => WorkloadSpec::stack(),
                "dsb" => WorkloadSpec::dsb(),
                _ => WorkloadSpec::job(),
            };
            spec.seed = spec.seed.wrapping_add(s.wrapping_mul(0x9E37));
            let mut w = spec.build();
            let o = w.build_oracle();
            println!("seed+{s}: headroom={:.2}x optimal={:.1}s", o.headroom(), o.optimal_total);
        }
        return;
    }
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let spec = match name {
        "job" => WorkloadSpec::job(),
        "ceb" => WorkloadSpec::ceb(),
        "stack" => WorkloadSpec::stack(),
        "dsb" => WorkloadSpec::dsb(),
        _ => WorkloadSpec::tiny(60, 5),
    };
    let spec = if scale < 1.0 { spec.scaled(scale) } else { spec };
    let t0 = std::time::Instant::now();
    let mut w = spec.build();
    let o = w.build_oracle();
    println!("{}: n={} k={} built in {:.1?}", w.spec.name, w.n(), w.k(), t0.elapsed());
    println!(
        "default_total={:.1}s optimal_total={:.1}s headroom={:.2}x  (avg default {:.2}s)",
        o.default_total,
        o.optimal_total,
        o.headroom(),
        o.default_total / w.n() as f64
    );
    // Per-class breakdown.
    for class in [
        QueryClass::NestLoopTrap,
        QueryClass::IndexTrap,
        QueryClass::MissedIndex,
        QueryClass::WellEstimated,
    ] {
        let idx: Vec<usize> = (0..w.n()).filter(|&i| w.queries[i].class == class).collect();
        if idx.is_empty() {
            continue;
        }
        let def: f64 = idx.iter().map(|&i| o.true_latency[(i, 0)]).sum();
        let opt: f64 = idx.iter().map(|&i| o.true_latency.row_min(i).unwrap().1).sum();
        println!(
            "  {:>10}: {:4} queries  default={:8.1}s optimal={:8.1}s headroom={:5.2}x",
            class.label(),
            idx.len(),
            def,
            opt,
            def / opt
        );
    }
    // Low-rank check (Fig. 14): top-5 singular values' energy share.
    let svd = limeqo_linalg::svd_thin(&o.true_latency).expect("svd");
    let total: f64 = svd.s.iter().map(|x| x * x).sum();
    let top5: f64 = svd.s.iter().take(5).map(|x| x * x).sum();
    let top1: f64 = svd.s[0] * svd.s[0];
    println!(
        "svd: top1 energy {:.1}% top5 energy {:.1}% (s1={:.1} s5={:.3} s10={:.4})",
        100.0 * top1 / total,
        100.0 * top5 / total,
        svd.s[0],
        svd.s[4],
        svd.s[9]
    );
    // Also on log-latencies, which is what completion quality depends on
    // for the smaller cells.
    let logm = o.true_latency.map(|v| (1.0 + v).ln());
    let svdl = limeqo_linalg::svd_thin(&logm).expect("svd");
    let totl: f64 = svdl.s.iter().map(|x| x * x).sum();
    let top5l: f64 = svdl.s.iter().take(5).map(|x| x * x).sum();
    println!("svd(log): top5 energy {:.1}%", 100.0 * top5l / totl);
    // Latency distribution of default column.
    let mut defaults: Vec<f64> = (0..w.n()).map(|i| o.true_latency[(i, 0)]).collect();
    defaults.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| defaults[((defaults.len() - 1) as f64 * p) as usize];
    println!(
        "default latency: p10={:.3}s p50={:.3}s p90={:.3}s p99={:.3}s max={:.3}s",
        pct(0.1),
        pct(0.5),
        pct(0.9),
        pct(0.99),
        defaults[defaults.len() - 1]
    );
}

// Seed sweep helper compiled into the same binary: run with
// `calibrate sweep <job|ceb|stack|dsb> <n_seeds>`.
