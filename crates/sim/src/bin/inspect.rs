//! Deep-dive diagnostic: print per-hint plans and latencies for one query.
use limeqo_sim::executor::Executor;
use limeqo_sim::optimizer::Optimizer;
use limeqo_sim::query::{QueryClass, World};
use limeqo_sim::workloads::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let class = args.get(1).map(|s| s.as_str()).unwrap_or("nl-trap");
    let mut w = WorkloadSpec::tiny(60, 5).build();
    let _ = w.build_oracle();
    let want = match class {
        "idx-trap" => QueryClass::IndexTrap,
        "missed-idx" => QueryClass::MissedIndex,
        "well-est" => QueryClass::WellEstimated,
        _ => QueryClass::NestLoopTrap,
    };
    // Find the trap query with the largest default latency.
    let opt = Optimizer::new(&w.catalog);
    let exec = Executor::new(&w.catalog);
    let mut cand: Vec<usize> = (0..w.n()).filter(|&i| w.queries[i].class == want).collect();
    cand.sort_by(|&a, &b| {
        let la =
            exec.latency_seconds(&mut opt.plan(&w.queries[a], w.hints.get(0)), &w.queries[a], 0);
        let lb =
            exec.latency_seconds(&mut opt.plan(&w.queries[b], w.hints.get(0)), &w.queries[b], 0);
        lb.partial_cmp(&la).unwrap()
    });
    let qi = cand[0];
    let q = &w.queries[qi];
    println!("query {} class {:?} tables {}", qi, q.class, q.n_tables());
    for (i, t) in q.tables.iter().enumerate() {
        let tab = &w.catalog.tables[t.table];
        println!(
            "  t{i}: rows={:.0} sel_true={:.4} sel_est={:.4} idx={} corr {:.2}/{:.2}",
            tab.rows, t.sel_true, t.sel_est, t.pred_indexed, t.corr_true, t.corr_est
        );
    }
    for e in &q.joins {
        println!(
            "  edge {}-{}: sel_true={:.2e} sel_est={:.2e} (ratio {:.2}) aidx={} bidx={}",
            e.a,
            e.b,
            e.sel_true,
            e.sel_est,
            e.sel_est / e.sel_true,
            e.a_indexed,
            e.b_indexed
        );
    }
    let full = (1u32 << q.n_tables()) - 1;
    println!(
        "  full card: true={:.3e} est={:.3e}",
        q.cardinality(full, &w.catalog, World::True),
        q.cardinality(full, &w.catalog, World::Estimated)
    );
    // All 49 hints.
    let mut rows: Vec<(usize, f64, String)> = (0..w.k())
        .map(|h| {
            let mut plan = opt.plan(q, w.hints.get(h));
            let lat = exec.latency_seconds(&mut plan, q, h);
            (h, lat, format!("{} [{}]", plan.render(), w.hints.get(h).tag()))
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "default: lat={:.3}s  {}",
        rows.iter().find(|r| r.0 == 0).unwrap().1,
        rows.iter().find(|r| r.0 == 0).unwrap().2
    );
    for (h, lat, desc) in rows.iter().take(5) {
        println!("  best h{h}: {lat:.3}s  {desc}");
    }
    for (h, lat, desc) in rows.iter().rev().take(2) {
        println!("  worst h{h}: {lat:.3}s  {desc}");
    }
}
