//! Physical plans and the operator cost formulas.
//!
//! A [`PlanTree`] is a binary tree of scans and joins, as produced by the
//! optimizer for left-deep join orders. The cost formulas here are the
//! *single source of truth* for both worlds: the optimizer charges them with
//! estimated cardinalities (plus `disable_cost` for hint-disabled
//! operators), the executor charges the identical formulas with true
//! cardinalities and no penalties. They are shaped after PostgreSQL's
//! `costsize.c`: sequential scans pay per page + per tuple, index scans pay
//! random pages modulated by index/heap correlation, hash joins pay
//! build + probe with a spill multiplier past `work_mem`, merge joins pay
//! sorts for unsorted inputs, and nested loops pay per-outer-row inner
//! access — a cheap index lookup when available, a rescan otherwise.

use crate::catalog::Catalog;
use crate::hints::HintConfig;
use crate::query::{Query, World};

/// Access path for a base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanMethod {
    /// Full sequential heap scan.
    Seq,
    /// B-tree index scan on the predicate column.
    Index,
    /// Covering (index-only) scan.
    IndexOnly,
}

/// Join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    /// Hash join: build on inner, probe with outer.
    Hash,
    /// Sort-merge join.
    Merge,
    /// Nested loop; the inner side may be an index lookup or a rescan.
    NestLoop,
}

/// Per-node annotation (cost and cardinality for whichever world the tree
/// was costed in).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Output rows of this node.
    pub rows: f64,
    /// Cumulative cost up to and including this node.
    pub cost: f64,
}

/// A physical plan.
#[derive(Debug, Clone)]
pub enum PlanTree {
    /// Leaf: scan of one table reference.
    Scan {
        /// Index into [`Query::tables`].
        table_ref: usize,
        /// Chosen access path.
        method: ScanMethod,
        /// Estimated-world stats (filled by the optimizer).
        est: NodeStats,
        /// True-world stats (filled by the executor).
        actual: NodeStats,
    },
    /// Internal node: join of two subplans.
    Join {
        /// Join algorithm.
        method: JoinMethod,
        /// Whether a nested loop drives an index lookup on the inner side
        /// (vs. a rescan of a materialized inner).
        inner_lookup: bool,
        /// Outer subplan.
        left: Box<PlanTree>,
        /// Inner subplan (a base-table scan in left-deep plans).
        right: Box<PlanTree>,
        /// Estimated-world stats.
        est: NodeStats,
        /// True-world stats.
        actual: NodeStats,
    },
}

impl PlanTree {
    /// Root estimated stats.
    pub fn est(&self) -> NodeStats {
        match self {
            PlanTree::Scan { est, .. } | PlanTree::Join { est, .. } => *est,
        }
    }

    /// Root true stats.
    pub fn actual(&self) -> NodeStats {
        match self {
            PlanTree::Scan { actual, .. } | PlanTree::Join { actual, .. } => *actual,
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        match self {
            PlanTree::Scan { .. } => 1,
            PlanTree::Join { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    /// Number of joins in the tree.
    pub fn join_count(&self) -> usize {
        match self {
            PlanTree::Scan { .. } => 0,
            PlanTree::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// Depth-first preorder visit.
    pub fn visit(&self, f: &mut impl FnMut(&PlanTree)) {
        f(self);
        if let PlanTree::Join { left, right, .. } = self {
            left.visit(f);
            right.visit(f);
        }
    }

    /// One-line plan rendering, e.g. `HJ(NL*(Seq(0),Idx(1)),Seq(2))`.
    pub fn render(&self) -> String {
        match self {
            PlanTree::Scan { table_ref, method, .. } => {
                let m = match method {
                    ScanMethod::Seq => "Seq",
                    ScanMethod::Index => "Idx",
                    ScanMethod::IndexOnly => "IdxO",
                };
                format!("{m}({table_ref})")
            }
            PlanTree::Join { method, inner_lookup, left, right, .. } => {
                let m = match method {
                    JoinMethod::Hash => "HJ",
                    JoinMethod::Merge => "MJ",
                    JoinMethod::NestLoop => {
                        if *inner_lookup {
                            "NL*"
                        } else {
                            "NL"
                        }
                    }
                };
                format!("{m}({},{})", left.render(), right.render())
            }
        }
    }
}

/// Scan cost and output cardinality for table-ref `tref_idx` of `query`.
///
/// Returns `(output_rows, cost)`; `None` when the access path does not exist
/// (no index). Hint-disabled but existing paths get `disable_cost` added in
/// the estimated world only.
pub fn scan_cost(
    query: &Query,
    tref_idx: usize,
    method: ScanMethod,
    catalog: &Catalog,
    hint: HintConfig,
    world: World,
) -> Option<(f64, f64)> {
    let p = &catalog.params;
    let tref = &query.tables[tref_idx];
    let table = &catalog.tables[tref.table];
    let (sel, corr) = match world {
        World::True => (tref.sel_true, tref.corr_true),
        World::Estimated => (tref.sel_est, tref.corr_est),
    };
    let rows = table.rows;
    let pages = table.pages(p);
    let out_rows = (rows * sel).max(1.0);

    let (mut cost, enabled) = match method {
        ScanMethod::Seq => {
            let c = pages * p.seq_page_cost + rows * (p.cpu_tuple_cost + p.cpu_operator_cost);
            (c, hint.seq_scan)
        }
        ScanMethod::Index => {
            if !tref.pred_indexed {
                return None;
            }
            let tuples = out_rows;
            // Correlated portion reads a dense page range; uncorrelated
            // portion pays one random page per tuple (capped at the heap).
            let page_fetches =
                corr * (sel * pages).max(1.0) + (1.0 - corr) * tuples.min(pages * 4.0);
            let c = page_fetches * p.random_page_cost
                + tuples * (p.cpu_index_tuple_cost + p.cpu_tuple_cost);
            (c, hint.index_scan)
        }
        ScanMethod::IndexOnly => {
            if !(tref.pred_indexed && tref.covering) {
                return None;
            }
            // Index-only scans touch only index pages (~256 entries/page),
            // mostly sequentially.
            let idx_pages = (out_rows / 256.0).max(1.0);
            let c = idx_pages * p.seq_page_cost * 2.0 + out_rows * p.cpu_index_tuple_cost;
            (c, hint.index_only_scan)
        }
    };
    if world == World::Estimated && !enabled {
        cost += p.disable_cost;
    }
    Some((out_rows, cost))
}

/// Inputs for costing one join node.
#[derive(Debug, Clone, Copy)]
pub struct JoinInputs {
    /// Outer (left) output rows.
    pub outer_rows: f64,
    /// Outer cumulative cost.
    pub outer_cost: f64,
    /// Inner (right) output rows *after* its local predicate.
    pub inner_rows: f64,
    /// Inner cumulative cost (of the inner's chosen standalone scan).
    pub inner_cost: f64,
    /// Join output rows (from [`Query::cardinality`] of the merged set).
    pub out_rows: f64,
    /// Whether the inner side's join column has an index (enables
    /// index-nested-loop).
    pub inner_join_indexed: bool,
    /// Whether the inner scan delivers rows sorted by the join key (an
    /// index scan on the join column) — lets merge join skip the inner sort.
    pub inner_sorted: bool,
}

/// Result of costing one join alternative.
#[derive(Debug, Clone, Copy)]
pub struct JoinCost {
    /// Total cumulative cost of the join node.
    pub cost: f64,
    /// Output rows.
    pub out_rows: f64,
    /// For nested loops: whether the index-lookup flavour was used.
    pub inner_lookup: bool,
}

/// Nested-loop flavour selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NlFlavor {
    /// Pick the cheaper of index-lookup and rescan (planning).
    Auto,
    /// Charge the index-lookup flavour (execution of a planned lookup NL).
    ForceLookup,
    /// Charge the rescan flavour.
    ForceRescan,
}

/// Cost one join alternative, letting the planner pick the cheaper
/// nested-loop flavour.
pub fn join_cost(
    method: JoinMethod,
    inputs: JoinInputs,
    catalog: &Catalog,
    hint: HintConfig,
    world: World,
) -> JoinCost {
    join_cost_flavored(method, inputs, catalog, hint, world, NlFlavor::Auto)
}

/// Cost one join alternative with an explicit nested-loop flavour. The
/// executor uses this to charge exactly the plan the optimizer committed to.
pub fn join_cost_flavored(
    method: JoinMethod,
    inputs: JoinInputs,
    catalog: &Catalog,
    hint: HintConfig,
    world: World,
    flavor: NlFlavor,
) -> JoinCost {
    let p = &catalog.params;
    let JoinInputs { outer_rows, outer_cost, inner_rows, inner_cost, out_rows, .. } = inputs;
    let emit = out_rows * p.cpu_tuple_cost * 0.5;

    let (cost, inner_lookup, enabled) = match method {
        JoinMethod::Hash => {
            let build = inner_cost + inner_rows * (p.cpu_tuple_cost * 1.1 + p.cpu_operator_cost);
            let probe = outer_rows * (p.cpu_tuple_cost + p.cpu_operator_cost);
            // Spill multiplier past work_mem: extra batches re-read/write.
            let spill = if inner_rows > p.work_mem_rows {
                1.0 + 0.45 * (inner_rows / p.work_mem_rows).log2().max(0.0)
            } else {
                1.0
            };
            (outer_cost + (build + probe) * spill + emit, false, hint.hash_join)
        }
        JoinMethod::Merge => {
            let sort = |n: f64| 2.2 * n * n.max(2.0).log2() * p.cpu_operator_cost;
            let outer_sort = sort(outer_rows);
            let inner_sort = if inputs.inner_sorted { 0.0 } else { sort(inner_rows) };
            let merge_pass = (outer_rows + inner_rows) * p.cpu_tuple_cost * 0.55;
            (
                outer_cost + inner_cost + outer_sort + inner_sort + merge_pass + emit,
                false,
                hint.merge_join,
            )
        }
        JoinMethod::NestLoop => {
            // Index-lookup flavour: per outer row, one index descent plus
            // matched-tuple fetches.
            let lookup = if inputs.inner_join_indexed && flavor != NlFlavor::ForceRescan {
                let matches_per_outer = (out_rows / outer_rows.max(1.0)).max(0.0);
                let per_outer = p.random_page_cost * 1.15
                    + p.cpu_index_tuple_cost * 2.0
                    + matches_per_outer * (p.cpu_tuple_cost + p.random_page_cost * 0.25);
                Some(outer_cost + outer_rows * per_outer + emit)
            } else {
                None
            };
            // Rescan flavour: materialized inner re-scanned per outer row.
            let rescan = outer_cost
                + inner_cost
                + outer_rows * inner_rows * p.cpu_operator_cost * 0.33
                + emit;
            match (lookup, flavor) {
                (Some(l), NlFlavor::ForceLookup) => (l, true, hint.nest_loop),
                (Some(l), _) if l <= rescan => (l, true, hint.nest_loop),
                _ => (rescan, false, hint.nest_loop),
            }
        }
    };
    let penalty = if world == World::Estimated && !enabled { p.disable_cost } else { 0.0 };
    JoinCost { cost: cost + penalty, out_rows, inner_lookup }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogSpec};
    use crate::query::{generate_query, JoinShape, QueryClass, QueryGenParams};
    use limeqo_linalg::rng::SeededRng;

    fn setup() -> (Query, Catalog) {
        let cat = Catalog::generate(
            &CatalogSpec {
                name: "t".into(),
                n_tables: 8,
                rows_range: (1e4, 1e6),
                width_range: (60.0, 200.0),
                index_prob: 0.6,
                fact_fraction: 0.25,
            },
            &mut SeededRng::new(2),
        );
        let q = generate_query(
            0,
            &QueryGenParams {
                class: QueryClass::WellEstimated,
                n_tables: 4,
                shape: JoinShape::Chain,
                pred_sel_range: (0.01, 0.3),
                fanout: QueryGenParams::DEFAULT_FANOUT,
                pred_prob: QueryGenParams::DEFAULT_PRED_PROB,
                template: 0,
            },
            &cat,
            &mut SeededRng::new(3),
        );
        (q, cat)
    }

    #[test]
    fn seq_scan_always_available() {
        let (q, cat) = setup();
        for i in 0..q.tables.len() {
            let r =
                scan_cost(&q, i, ScanMethod::Seq, &cat, HintConfig::default_hint(), World::True);
            assert!(r.is_some());
            let (rows, cost) = r.unwrap();
            assert!(rows >= 1.0 && cost > 0.0);
        }
    }

    #[test]
    fn disabled_seq_scan_penalized_in_est_world_only() {
        let (q, cat) = setup();
        let hint = HintConfig { seq_scan: false, ..HintConfig::default_hint() };
        let (_, est) = scan_cost(&q, 0, ScanMethod::Seq, &cat, hint, World::Estimated).unwrap();
        let (_, tru) = scan_cost(&q, 0, ScanMethod::Seq, &cat, hint, World::True).unwrap();
        assert!(est > cat.params.disable_cost * 0.99);
        assert!(tru < cat.params.disable_cost * 0.01);
    }

    #[test]
    fn index_scan_requires_index() {
        let (mut q, cat) = setup();
        q.tables[0].pred_indexed = false;
        assert!(scan_cost(&q, 0, ScanMethod::Index, &cat, HintConfig::default_hint(), World::True)
            .is_none());
    }

    #[test]
    fn index_only_requires_covering() {
        let (mut q, cat) = setup();
        q.tables[0].pred_indexed = true;
        q.tables[0].covering = false;
        assert!(scan_cost(
            &q,
            0,
            ScanMethod::IndexOnly,
            &cat,
            HintConfig::default_hint(),
            World::True
        )
        .is_none());
    }

    #[test]
    fn correlated_index_scan_cheaper_than_uncorrelated() {
        let (mut q, cat) = setup();
        q.tables[0].pred_indexed = true;
        q.tables[0].sel_true = 0.05;
        q.tables[0].corr_true = 0.95;
        let (_, good) =
            scan_cost(&q, 0, ScanMethod::Index, &cat, HintConfig::default_hint(), World::True)
                .unwrap();
        q.tables[0].corr_true = 0.0;
        let (_, bad) =
            scan_cost(&q, 0, ScanMethod::Index, &cat, HintConfig::default_hint(), World::True)
                .unwrap();
        assert!(bad > good * 1.5, "bad {bad} good {good}");
    }

    #[test]
    fn nested_loop_prefers_index_lookup_for_small_outer() {
        let (_, cat) = setup();
        let inputs = JoinInputs {
            outer_rows: 10.0,
            outer_cost: 100.0,
            inner_rows: 1e6,
            inner_cost: 1e4,
            out_rows: 20.0,
            inner_join_indexed: true,
            inner_sorted: false,
        };
        let j =
            join_cost(JoinMethod::NestLoop, inputs, &cat, HintConfig::default_hint(), World::True);
        assert!(j.inner_lookup);
        // Must beat hash join for a 10-row outer.
        let h = join_cost(JoinMethod::Hash, inputs, &cat, HintConfig::default_hint(), World::True);
        assert!(j.cost < h.cost, "nl {} hash {}", j.cost, h.cost);
    }

    #[test]
    fn hash_join_wins_for_large_both_sides() {
        let (_, cat) = setup();
        let inputs = JoinInputs {
            outer_rows: 5e5,
            outer_cost: 1e4,
            inner_rows: 5e5,
            inner_cost: 1e4,
            out_rows: 5e5,
            inner_join_indexed: true,
            inner_sorted: false,
        };
        let h = join_cost(JoinMethod::Hash, inputs, &cat, HintConfig::default_hint(), World::True);
        let n =
            join_cost(JoinMethod::NestLoop, inputs, &cat, HintConfig::default_hint(), World::True);
        let m = join_cost(JoinMethod::Merge, inputs, &cat, HintConfig::default_hint(), World::True);
        assert!(h.cost < n.cost, "hash {} nl {}", h.cost, n.cost);
        assert!(h.cost < m.cost, "hash {} merge {}", h.cost, m.cost);
    }

    #[test]
    fn spill_multiplier_kicks_in() {
        let (_, cat) = setup();
        let small = JoinInputs {
            outer_rows: 1000.0,
            outer_cost: 0.0,
            inner_rows: cat.params.work_mem_rows * 0.9,
            inner_cost: 0.0,
            out_rows: 1000.0,
            inner_join_indexed: false,
            inner_sorted: false,
        };
        let big = JoinInputs { inner_rows: cat.params.work_mem_rows * 16.0, ..small };
        let cs = join_cost(JoinMethod::Hash, small, &cat, HintConfig::default_hint(), World::True);
        let cb = join_cost(JoinMethod::Hash, big, &cat, HintConfig::default_hint(), World::True);
        // Big inner costs more than 16x the small one due to spill.
        assert!(cb.cost > cs.cost * 16.0);
    }

    #[test]
    fn disabled_join_penalty_planning_only() {
        let (_, cat) = setup();
        let hint = HintConfig { nest_loop: false, ..HintConfig::default_hint() };
        let inputs = JoinInputs {
            outer_rows: 10.0,
            outer_cost: 1.0,
            inner_rows: 100.0,
            inner_cost: 1.0,
            out_rows: 10.0,
            inner_join_indexed: true,
            inner_sorted: false,
        };
        let est = join_cost(JoinMethod::NestLoop, inputs, &cat, hint, World::Estimated);
        let tru = join_cost(JoinMethod::NestLoop, inputs, &cat, hint, World::True);
        assert!(est.cost > cat.params.disable_cost * 0.99);
        assert!(tru.cost < 1e6);
    }

    #[test]
    fn merge_join_skips_sorted_inner_sort() {
        let (_, cat) = setup();
        let unsorted = JoinInputs {
            outer_rows: 1e5,
            outer_cost: 0.0,
            inner_rows: 1e5,
            inner_cost: 0.0,
            out_rows: 1e5,
            inner_join_indexed: false,
            inner_sorted: false,
        };
        let sorted = JoinInputs { inner_sorted: true, ..unsorted };
        let cu =
            join_cost(JoinMethod::Merge, unsorted, &cat, HintConfig::default_hint(), World::True);
        let cs =
            join_cost(JoinMethod::Merge, sorted, &cat, HintConfig::default_hint(), World::True);
        assert!(cs.cost < cu.cost);
    }

    #[test]
    fn render_and_counts() {
        let scan = |i| PlanTree::Scan {
            table_ref: i,
            method: ScanMethod::Seq,
            est: NodeStats::default(),
            actual: NodeStats::default(),
        };
        let plan = PlanTree::Join {
            method: JoinMethod::Hash,
            inner_lookup: false,
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            est: NodeStats::default(),
            actual: NodeStats::default(),
        };
        assert_eq!(plan.render(), "HJ(Seq(0),Seq(1))");
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.join_count(), 1);
    }
}
