//! Catalog: tables, columns, statistics, and index metadata.
//!
//! The catalog plays the role of PostgreSQL's `pg_class`/`pg_statistic` for
//! the simulator: it holds everything the optimizer's cost model reads
//! (row counts, tuple widths, index presence, index/heap correlation) and
//! everything the executor needs to charge true costs. Catalogs are
//! generated deterministically from a seed by the workload builders and can
//! be *grown* by the drift model ([`crate::drift`]).

use crate::cost::CostParams;
use limeqo_linalg::rng::SeededRng;

/// A column with the statistics the cost model consumes.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (diagnostics only).
    pub name: String,
    /// Number of distinct values.
    pub ndv: f64,
    /// Whether a B-tree index exists on this column.
    pub indexed: bool,
    /// Index/heap correlation in [0, 1]: 1 means the heap is perfectly
    /// ordered by this column (index range scans touch few pages), 0 means
    /// every index probe is a random heap page.
    pub correlation: f64,
}

/// A base table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (diagnostics only).
    pub name: String,
    /// Cardinality (true row count).
    pub rows: f64,
    /// Average tuple width in bytes.
    pub row_width: f64,
    /// Columns with statistics.
    pub columns: Vec<Column>,
    /// Daily multiplicative growth rate used by the drift model
    /// (e.g. 0.001 = +0.1 %/day). Fact tables grow, dimensions barely move.
    pub daily_growth: f64,
}

impl Table {
    /// Number of heap pages under `params`.
    pub fn pages(&self, params: &CostParams) -> f64 {
        params.pages(self.rows, self.row_width)
    }
}

/// A generated database catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Human-readable name, e.g. `imdb-sim`.
    pub name: String,
    /// Tables; [`crate::query::TableRef::table`] indexes into this.
    pub tables: Vec<Table>,
    /// Cost model constants for this database.
    pub params: CostParams,
}

/// Shape parameters for random catalog generation.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogSpec {
    /// Catalog name.
    pub name: String,
    /// Number of tables.
    pub n_tables: usize,
    /// Row counts are drawn log-uniformly from this range.
    pub rows_range: (f64, f64),
    /// Tuple widths are drawn uniformly from this range (bytes).
    pub width_range: (f64, f64),
    /// Probability that any given column is indexed.
    pub index_prob: f64,
    /// Fraction of tables that are "fact" tables (largest rows, higher
    /// growth under drift).
    pub fact_fraction: f64,
}

impl Catalog {
    /// Generate a catalog from a spec, deterministically from `rng`.
    pub fn generate(spec: &CatalogSpec, rng: &mut SeededRng) -> Catalog {
        let (lo, hi) = spec.rows_range;
        let (log_lo, log_hi) = (lo.ln(), hi.ln());
        let mut tables = Vec::with_capacity(spec.n_tables);
        for t in 0..spec.n_tables {
            let is_fact = (t as f64) < spec.fact_fraction * spec.n_tables as f64;
            // Fact tables sit in the upper half of the size range.
            let u = if is_fact { rng.uniform(0.6, 1.0) } else { rng.uniform(0.0, 0.7) };
            let rows = (log_lo + u * (log_hi - log_lo)).exp();
            let n_cols = 3 + rng.index(5);
            let mut columns = Vec::with_capacity(n_cols);
            for c in 0..n_cols {
                // Primary-key-ish first column: always indexed, near-unique,
                // well correlated (heap roughly in insertion order).
                let (indexed, ndv, correlation) = if c == 0 {
                    (true, rows.max(1.0), rng.uniform(0.85, 1.0))
                } else {
                    (
                        rng.chance(spec.index_prob),
                        (rows * rng.uniform(0.001, 0.5)).max(2.0),
                        rng.uniform(0.0, 0.9),
                    )
                };
                columns.push(Column { name: format!("t{t}_c{c}"), ndv, indexed, correlation });
            }
            tables.push(Table {
                name: format!("{}_{t}", spec.name),
                rows,
                row_width: rng.uniform(spec.width_range.0, spec.width_range.1),
                columns,
                daily_growth: if is_fact {
                    rng.uniform(0.0006, 0.0016)
                } else {
                    rng.uniform(0.00002, 0.0002)
                },
            });
        }
        Catalog { name: spec.name.clone(), tables, params: CostParams::default() }
    }

    /// Total number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CatalogSpec {
        CatalogSpec {
            name: "test".into(),
            n_tables: 12,
            rows_range: (1e3, 1e7),
            width_range: (40.0, 400.0),
            index_prob: 0.4,
            fact_fraction: 0.25,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(&spec(), &mut SeededRng::new(3));
        let b = Catalog::generate(&spec(), &mut SeededRng::new(3));
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(b.tables.iter()) {
            assert_eq!(ta.rows, tb.rows);
            assert_eq!(ta.row_width, tb.row_width);
            assert_eq!(ta.columns.len(), tb.columns.len());
        }
    }

    #[test]
    fn row_counts_within_spec_range() {
        let c = Catalog::generate(&spec(), &mut SeededRng::new(4));
        for t in &c.tables {
            assert!(t.rows >= 1e3 * 0.99 && t.rows <= 1e7 * 1.01, "rows {}", t.rows);
        }
    }

    #[test]
    fn first_column_always_indexed() {
        let c = Catalog::generate(&spec(), &mut SeededRng::new(5));
        for t in &c.tables {
            assert!(t.columns[0].indexed);
            assert!(t.columns[0].ndv >= t.rows * 0.99);
        }
    }

    #[test]
    fn fact_tables_grow_faster() {
        let c = Catalog::generate(&spec(), &mut SeededRng::new(6));
        let max_dim_growth = c.tables.iter().skip(3).map(|t| t.daily_growth).fold(0.0, f64::max);
        let min_fact_growth =
            c.tables.iter().take(3).map(|t| t.daily_growth).fold(f64::MAX, f64::min);
        assert!(min_fact_growth > max_dim_growth);
    }

    #[test]
    fn pages_positive() {
        let c = Catalog::generate(&spec(), &mut SeededRng::new(7));
        for t in &c.tables {
            assert!(t.pages(&c.params) >= 1.0);
        }
    }
}
