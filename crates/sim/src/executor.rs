//! The execution engine: charges plans their *true* cost.
//!
//! Execution walks the plan the optimizer committed to and applies the same
//! cost formulas as planning, but with true cardinalities and correlations
//! and without any `disable_cost` penalties — disabled operators run at full
//! speed once planned, exactly as in PostgreSQL. The root true cost is
//! converted to seconds and multiplied by a deterministic per-(query, hint)
//! noise factor: the paper executes each pair five times and takes the
//! median, so the reproduction models that median directly (re-executing a
//! cell returns the same latency).

use crate::catalog::Catalog;
use crate::hints::HintConfig;
use crate::plan::{
    join_cost_flavored, scan_cost, JoinInputs, JoinMethod, NlFlavor, NodeStats, PlanTree,
    ScanMethod,
};
use crate::query::{Query, World};
use limeqo_linalg::rng::SeededRng;

/// Fixed per-query startup latency in seconds (parse/plan/network).
pub const STARTUP_SECONDS: f64 = 0.002;

/// Standard deviation of the log-normal latency noise.
pub const NOISE_SIGMA: f64 = 0.03;

/// The execution engine. Borrows the catalog; stateless otherwise.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
}

impl<'a> Executor<'a> {
    /// Create an executor over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor { catalog }
    }

    /// Fill in the true-world [`NodeStats`] of every node and return the
    /// root `(rows, cost)`.
    pub fn annotate_true(&self, plan: &mut PlanTree, query: &Query) -> NodeStats {
        self.walk(plan, query).1
    }

    /// Returns `(subtree_mask, root_stats)`.
    fn walk(&self, plan: &mut PlanTree, query: &Query) -> (u32, NodeStats) {
        match plan {
            PlanTree::Scan { table_ref, method, actual, .. } => {
                let (rows, cost) = scan_cost(
                    query,
                    *table_ref,
                    *method,
                    self.catalog,
                    HintConfig::default_hint(),
                    World::True,
                )
                .unwrap_or_else(|| {
                    // The optimizer only emits available access paths; if a
                    // drifted catalog dropped an index, degrade to seq scan.
                    scan_cost(
                        query,
                        *table_ref,
                        ScanMethod::Seq,
                        self.catalog,
                        HintConfig::default_hint(),
                        World::True,
                    )
                    .expect("seq scan always available")
                });
                *actual = NodeStats { rows, cost };
                (1u32 << *table_ref, *actual)
            }
            PlanTree::Join { method, inner_lookup, left, right, actual, .. } => {
                let method = *method;
                let inner_lookup = *inner_lookup;
                let (lmask, lstats) = self.walk(left, query);
                let (rmask, rstats) = self.walk(right, query);
                let mask = lmask | rmask;
                let out_rows = query.cardinality(mask, self.catalog, World::True);
                // Inner-side edge metadata mirrors the optimizer's view.
                let inner_tref = match right.as_ref() {
                    PlanTree::Scan { table_ref, .. } => *table_ref,
                    // Left-deep plans always scan on the inner; bushy plans
                    // (not currently generated) treat the subtree as
                    // unindexed input.
                    _ => usize::MAX,
                };
                let (indexed, sorted) = if inner_tref != usize::MAX {
                    inner_edge_info(query, lmask, inner_tref)
                } else {
                    (false, false)
                };
                let flavor = match (method, inner_lookup) {
                    (JoinMethod::NestLoop, true) => NlFlavor::ForceLookup,
                    (JoinMethod::NestLoop, false) => NlFlavor::ForceRescan,
                    _ => NlFlavor::Auto,
                };
                let jc = join_cost_flavored(
                    method,
                    JoinInputs {
                        outer_rows: lstats.rows,
                        outer_cost: lstats.cost,
                        inner_rows: rstats.rows,
                        inner_cost: rstats.cost,
                        out_rows,
                        inner_join_indexed: indexed,
                        inner_sorted: sorted,
                    },
                    self.catalog,
                    HintConfig::default_hint(),
                    World::True,
                    flavor,
                );
                *actual = NodeStats { rows: jc.out_rows, cost: jc.cost };
                (mask, *actual)
            }
        }
    }

    /// True latency in seconds of `plan` for `query` under hint index
    /// `hint_idx` (the index only seeds the noise stream).
    pub fn latency_seconds(&self, plan: &mut PlanTree, query: &Query, hint_idx: usize) -> f64 {
        let stats = self.annotate_true(plan, query);
        let base = self.catalog.params.cost_to_seconds(stats.cost) + STARTUP_SECONDS;
        let noise = noise_factor(query.noise_seed, hint_idx);
        // ETL/COPY-style queries are dominated by hint-independent output
        // cost (paper §5.1: "almost entirely bounded by write speed").
        query.etl_write_seconds + base * noise
    }
}

/// Deterministic log-normal noise for a (query, hint) pair.
pub fn noise_factor(noise_seed: u64, hint_idx: usize) -> f64 {
    let mut rng =
        SeededRng::new(noise_seed ^ (hint_idx as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    rng.log_normal(0.0, NOISE_SIGMA)
}

fn inner_edge_info(query: &Query, outer_mask: u32, inner: usize) -> (bool, bool) {
    let mut indexed = false;
    for e in &query.joins {
        let side = if e.a == inner && outer_mask & (1 << e.b) != 0 {
            e.a_indexed
        } else if e.b == inner && outer_mask & (1 << e.a) != 0 {
            e.b_indexed
        } else {
            continue;
        };
        indexed |= side;
    }
    (indexed, indexed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogSpec};
    use crate::hints::HintSpace;
    use crate::optimizer::Optimizer;
    use crate::query::{generate_query, JoinShape, QueryClass, QueryGenParams};

    fn setup(class: QueryClass, seed: u64) -> (Query, Catalog) {
        let cat = Catalog::generate(
            &CatalogSpec {
                name: "exec".into(),
                n_tables: 10,
                rows_range: (1e4, 2e6),
                width_range: (60.0, 220.0),
                index_prob: 0.5,
                fact_fraction: 0.3,
            },
            &mut SeededRng::new(seed),
        );
        let q = generate_query(
            0,
            &QueryGenParams {
                class,
                n_tables: 5,
                shape: JoinShape::Chain,
                pred_sel_range: (0.005, 0.3),
                fanout: QueryGenParams::DEFAULT_FANOUT,
                pred_prob: QueryGenParams::DEFAULT_PRED_PROB,
                template: 0,
            },
            &cat,
            &mut SeededRng::new(seed + 1),
        );
        (q, cat)
    }

    #[test]
    fn latency_positive_and_deterministic() {
        let (q, cat) = setup(QueryClass::WellEstimated, 20);
        let opt = Optimizer::new(&cat);
        let exec = Executor::new(&cat);
        let mut p1 = opt.plan(&q, HintConfig::default_hint());
        let mut p2 = opt.plan(&q, HintConfig::default_hint());
        let l1 = exec.latency_seconds(&mut p1, &q, 0);
        let l2 = exec.latency_seconds(&mut p2, &q, 0);
        assert!(l1 > 0.0);
        assert_eq!(l1, l2);
    }

    #[test]
    fn true_cost_never_includes_disable_penalty() {
        let (q, cat) = setup(QueryClass::WellEstimated, 21);
        let opt = Optimizer::new(&cat);
        let exec = Executor::new(&cat);
        for (idx, h) in HintSpace::all().configs().iter().enumerate() {
            let mut plan = opt.plan(&q, *h);
            let lat = exec.latency_seconds(&mut plan, &q, idx);
            assert!(lat < 1e5, "hint {} latency {lat}", h.tag());
        }
    }

    #[test]
    fn nestloop_trap_default_is_beatable() {
        // For trap queries the default plan should be substantially slower
        // than the best hinted plan (this is the paper's headroom source).
        let mut found_headroom = false;
        for seed in 0..12 {
            let (q, cat) = setup(QueryClass::NestLoopTrap, 100 + seed);
            let opt = Optimizer::new(&cat);
            let exec = Executor::new(&cat);
            let space = HintSpace::all();
            let lats: Vec<f64> = space
                .configs()
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    let mut plan = opt.plan(&q, *h);
                    exec.latency_seconds(&mut plan, &q, i)
                })
                .collect();
            let default = lats[0];
            let best = lats.iter().cloned().fold(f64::MAX, f64::min);
            if default > best * 1.5 {
                found_headroom = true;
                break;
            }
        }
        assert!(found_headroom, "no trap query showed >1.5x headroom");
    }

    #[test]
    fn etl_latency_flat_across_hints() {
        let (mut q, cat) = setup(QueryClass::Etl, 22);
        q.etl_write_seconds = 500.0;
        let opt = Optimizer::new(&cat);
        let exec = Executor::new(&cat);
        let space = HintSpace::all();
        let lats: Vec<f64> = space
            .configs()
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let mut plan = opt.plan(&q, *h);
                exec.latency_seconds(&mut plan, &q, i)
            })
            .collect();
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        let max = lats.iter().cloned().fold(0.0, f64::max);
        // Write cost dominates: spread under 20%.
        assert!(max / min < 1.2, "min {min} max {max}");
    }

    #[test]
    fn noise_factor_close_to_one() {
        for s in 0..200u64 {
            let f = noise_factor(s, (s % 49) as usize);
            assert!(f > 0.8 && f < 1.25, "noise {f}");
        }
    }

    #[test]
    fn annotate_fills_all_nodes() {
        let (q, cat) = setup(QueryClass::WellEstimated, 23);
        let mut plan = Optimizer::new(&cat).plan(&q, HintConfig::default_hint());
        Executor::new(&cat).annotate_true(&mut plan, &q);
        plan.visit(&mut |n| {
            let a = n.actual();
            assert!(a.rows >= 1.0 && a.cost > 0.0);
        });
    }
}
