//! The scenario engine's environment side: declarative [`ScenarioSpec`]s —
//! workload × drift schedule × hint-space shape × policy + budget × seeds —
//! and a registry of named scenarios well beyond the paper's four
//! workloads.
//!
//! The paper certifies LimeQO on exactly four workload points (Table 1).
//! Offline optimizers live or die on everything those four points hold
//! fixed: query-frequency skew, latency tail shape, mid-run drift, hint
//! availability, exploration-budget regimes. Each [`ScenarioSpec`] in
//! [`registry`] pins one of those axes; the bench crate's scenario runner
//! executes them and `tests/tests/scenarios.rs` locks their summaries in a
//! golden file so later scale/speed PRs regress against the whole matrix,
//! not just the paper's tables.
//!
//! This module is *data only*: building oracles, running policies, and
//! aggregating metrics live in `limeqo-bench::scenario_runner`. Keeping
//! specs declarative means a scenario is printable, diffable, and cheap to
//! enumerate — adding one is a single registry entry (see README.md).

use crate::catalog::CatalogSpec;
use crate::query::{JoinShape, QueryClass};
use crate::workloads::{ClassMix, WorkloadSpec};
use limeqo_core::scenario::PolicySpec;
use limeqo_core::store::DriftPolicy;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// The environment a scenario explores.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioWorkload {
    /// A full simulated-DBMS workload (catalog, optimizer, executor).
    Sim(WorkloadSpec),
    /// A synthetic low-rank latency matrix with no planner behind it —
    /// used where the DBMS layer is irrelevant noise: scale scenarios
    /// (10 k-query matrices) and censoring-shape scenarios that need exact
    /// control over the default column's position in each row.
    Synthetic(SyntheticSpec),
}

impl ScenarioWorkload {
    /// Row count the scenario's matrix will have.
    pub fn n_queries(&self) -> usize {
        match self {
            ScenarioWorkload::Sim(spec) => spec.n_queries,
            ScenarioWorkload::Synthetic(spec) => spec.n,
        }
    }
}

/// Generator for a synthetic low-rank true-latency matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Rows (queries).
    pub n: usize,
    /// Columns (hints) before the hint shape is applied.
    pub k: usize,
    /// Rank of the noise-free base `Q Hᵀ`.
    pub rank: usize,
    /// Multiplier applied to column 0 — the synthetic headroom knob.
    /// Values near 1 make the default nearly optimal per row, which is the
    /// censoring-hostile regime: almost every probe exceeds the row-best
    /// timeout and lands as a censored cell.
    pub default_inflation: f64,
    /// Lognormal σ of the per-cell noise on top of the low-rank base.
    pub noise_sigma: f64,
    /// Generator seed (independent of the exploration seeds).
    pub seed: u64,
}

impl SyntheticSpec {
    /// Materialize the true-latency matrix.
    pub fn build_latency(&self) -> Mat {
        let mut rng = SeededRng::new(self.seed ^ 0x5CE7_A210);
        let q = rng.uniform_mat(self.n, self.rank, 0.5, 2.0);
        let h = rng.uniform_mat(self.k, self.rank, 0.2, 1.5);
        let mut lat = q.matmul_t(&h).expect("rank dims agree");
        if self.noise_sigma > 0.0 {
            for v in lat.as_mut_slice() {
                *v *= rng.log_normal(0.0, self.noise_sigma);
            }
        }
        for i in 0..self.n {
            lat[(i, 0)] *= self.default_inflation;
        }
        lat
    }
}

/// Which columns of the full hint space a scenario exposes.
///
/// Real deployments rarely expose all 49 hint sets — fleet operators vet a
/// handful of safe configurations. The shape is applied before the oracle
/// is built, so both the exploration matrix and the optimal total are
/// defined over the restricted space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintShape {
    /// The full space (49 hints for the simulator).
    Full,
    /// The first `n` hints (default always included).
    Prefix(usize),
    /// Every `stride`-th hint starting at the default.
    Strided(usize),
}

impl HintShape {
    /// Column indices into the full `k`-wide space this shape keeps.
    pub fn indices(&self, full_k: usize) -> Vec<usize> {
        match *self {
            HintShape::Full => (0..full_k).collect(),
            HintShape::Prefix(n) => {
                assert!(n >= 2 && n <= full_k, "prefix must keep >= 2 of {full_k} hints");
                (0..n).collect()
            }
            HintShape::Strided(stride) => {
                assert!(stride >= 1, "stride must be >= 1");
                (0..full_k).step_by(stride).collect()
            }
        }
    }
}

/// One scheduled mid-run change of the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// When the event fires, as a fraction of the offline budget.
    pub at_frac: f64,
    /// What changes.
    pub kind: DriftKind,
}

/// The two drift flavours the paper studies (§5.3, §5.4), schedulable at
/// any budget fraction and composable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftKind {
    /// §5.4 complete data shift: the database ages `days` (growth +
    /// selectivity walk); the oracle is rebuilt uncalibrated and swapped
    /// in, keeping each query's cached best hint.
    DataShift {
        /// Simulated days between the snapshots.
        days: f64,
    },
    /// §5.3 workload shift: `count` held-back queries arrive; their
    /// default plans are observed online (uncharged).
    AddQueries {
        /// Number of arriving queries.
        count: usize,
    },
}

/// Arrival process for online-exploration scenarios.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalModel {
    /// Every query equally likely per arrival.
    Uniform,
    /// Zipf-skewed query frequencies: query popularity rank `r` (a seeded
    /// permutation of the rows) arrives with probability ∝ `1/r^exponent`.
    /// Production workloads are almost never uniform; skew concentrates
    /// observations on hot rows and starves the matrix of cold-row cells.
    Zipf {
        /// Skew exponent (1.0–1.3 is typical of production query logs).
        exponent: f64,
    },
    /// Replay an explicit row trace — e.g. loaded from a CSV query log via
    /// the scenario-file loader's `replay_csv` key. The trace cycles when
    /// `count` exceeds its length, so a captured log can drive arbitrarily
    /// long runs.
    Replay {
        /// Row indices in arrival order.
        rows: Vec<usize>,
    },
}

/// Arrival trace configuration for online scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// Arrivals served per seeded run.
    pub count: usize,
    /// Which rows arrive how often.
    pub model: ArrivalModel,
    /// Consecutive arrivals that repeat each drawn row (≥ 1). Models
    /// clients that re-issue the same query in quick succession — bursts
    /// concentrate observations even under a uniform row draw. `1` is the
    /// historical one-draw-per-arrival behaviour and leaves traces
    /// bit-identical to earlier releases.
    pub burst: usize,
    /// Independent client streams interleaved round-robin (≥ 1). Each
    /// stream draws rows from its own derived RNG; stream 0 uses the
    /// historical seed, so `1` reproduces the single-stream traces
    /// bit for bit.
    pub concurrency: usize,
    /// Mean arrival rate in queries per simulated second for open-loop
    /// queue-wait accounting; `0` is the historical closed loop (no
    /// queueing metrics). The interarrival RNG is salted separately from
    /// the row draws, so enabling a rate never changes which rows arrive.
    pub rate: f64,
}

impl ArrivalSpec {
    /// An arrival spec with the default knobs: single stream, no bursts,
    /// closed loop. This is the shape every pre-corpus scenario used.
    pub fn new(count: usize, model: ArrivalModel) -> Self {
        ArrivalSpec { count, model, burst: 1, concurrency: 1, rate: 0.0 }
    }

    /// Generate the deterministic arrival trace for one seeded run.
    pub fn trace(&self, n_rows: usize, seed: u64) -> Vec<usize> {
        assert!(n_rows > 0, "arrival trace needs at least one query");
        if let ArrivalModel::Replay { rows } = &self.model {
            // Replay is literal: the trace IS the data, cycled to `count`.
            assert!(!rows.is_empty(), "replay trace must not be empty");
            assert!(rows.iter().all(|&r| r < n_rows), "replay rows in range");
            return (0..self.count).map(|i| rows[i % rows.len()]).collect();
        }
        if self.concurrency <= 1 {
            return self.stream(n_rows, seed ^ 0xA221_7AB5, self.count);
        }
        // `concurrency` independent client streams with derived seeds,
        // merged round-robin so the interleaving is deterministic. Extra
        // arrivals (count % c) go to the earliest streams.
        let c = self.concurrency;
        let streams: Vec<Vec<usize>> = (0..c)
            .map(|i| {
                let len = self.count / c + usize::from(i < self.count % c);
                let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64);
                self.stream(n_rows, seed ^ 0xA221_7AB5 ^ salt, len)
            })
            .collect();
        let mut merged = Vec::with_capacity(self.count);
        let mut idx = 0;
        while merged.len() < self.count {
            let (stream, pos) = (idx % c, idx / c);
            if pos < streams[stream].len() {
                merged.push(streams[stream][pos]);
            }
            idx += 1;
        }
        merged
    }

    /// One client stream: `count` arrivals drawn from `model`, repeating
    /// each draw `burst` times. `burst == 1` performs exactly one RNG draw
    /// per arrival — the historical trace sequence.
    fn stream(&self, n_rows: usize, seed: u64, count: usize) -> Vec<usize> {
        let mut rng = SeededRng::new(seed);
        let burst = self.burst.max(1);
        let mut out = Vec::with_capacity(count);
        match &self.model {
            ArrivalModel::Uniform => {
                while out.len() < count {
                    let row = rng.index(n_rows);
                    for _ in 0..burst {
                        if out.len() == count {
                            break;
                        }
                        out.push(row);
                    }
                }
            }
            ArrivalModel::Zipf { exponent } => {
                // Popularity rank -> row via a seeded permutation, then
                // inverse-CDF sampling over the Zipf weights.
                let mut rows: Vec<usize> = (0..n_rows).collect();
                rng.shuffle(&mut rows);
                let weights: Vec<f64> =
                    (0..n_rows).map(|r| 1.0 / ((r + 1) as f64).powf(*exponent)).collect();
                let total: f64 = weights.iter().sum();
                let mut cdf = Vec::with_capacity(n_rows);
                let mut acc = 0.0;
                for w in &weights {
                    acc += w / total;
                    cdf.push(acc);
                }
                while out.len() < count {
                    let x = rng.uniform(0.0, 1.0);
                    let rank = cdf.partition_point(|&c| c < x).min(n_rows - 1);
                    let row = rows[rank];
                    for _ in 0..burst {
                        if out.len() == count {
                            break;
                        }
                        out.push(row);
                    }
                }
            }
            ArrivalModel::Replay { .. } => unreachable!("replay handled in trace()"),
        }
        out
    }

    /// Exponential interarrival gaps (simulated seconds) for the open-loop
    /// queue model; empty when `rate == 0` (closed loop). Salted apart
    /// from the row draws so turning the rate on never shifts the trace.
    pub fn interarrival_gaps(&self, seed: u64) -> Vec<f64> {
        if self.rate <= 0.0 {
            return Vec::new();
        }
        let mut rng = SeededRng::new(seed ^ 0x0B5E_41E5);
        (0..self.count).map(|_| -(1.0 - rng.uniform(0.0, 1.0)).ln() / self.rate).collect()
    }
}

/// A fully declarative scenario: everything the runner needs to reproduce
/// a run bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique registry name (metrics keys derive from it).
    pub name: String,
    /// One-line description shown by `scenario --list`.
    pub summary: String,
    /// The environment.
    pub workload: ScenarioWorkload,
    /// Hint-space shape applied before the oracle is built.
    pub hint_shape: HintShape,
    /// Mid-run drift events, fired in `at_frac` order.
    pub drift: Vec<DriftEvent>,
    /// The exploration technique.
    pub policy: PolicySpec,
    /// Offline budget as a multiple of the workload's default total
    /// (ignored by online scenarios, which are arrival-bounded).
    pub budget_multiple: f64,
    /// Exploration batch m (cells per step).
    pub batch: usize,
    /// Hard cap on offline exploration steps, threaded into
    /// `ExploreConfig::max_steps`. The budget is the intended stop; the
    /// cap bounds worst-case runtime when α-clamped timeouts make each
    /// step arbitrarily cheap (which matters at the 100k-query scale).
    /// Use `100_000` (the harness default) when no cap is wanted.
    pub max_steps: usize,
    /// Seeds; deterministic per-seed runs, metrics are seed means.
    pub seeds: Vec<u64>,
    /// Arrival process — present iff `policy.is_online()`.
    pub arrivals: Option<ArrivalSpec>,
    /// Workload-matrix shard count (1 = the unsharded layout). Purely a
    /// scale-out knob: any value produces a bit-identical run (the sharded
    /// equivalence contract pinned by the runner's sharded verifier), so
    /// this never moves a golden — it only changes which per-shard indexes
    /// and ALS batches back the run.
    pub shards: usize,
    /// Probability that an issued offline probe fails at the transport
    /// level instead of returning a latency (chaos knob; 0 = off, the
    /// default, under which runs are bit-identical to specs written
    /// before the knob existed). Failed probes are retried with bounded
    /// deterministic backoff; see `ExploreConfig::probe_fail_rate`.
    pub probe_fail_rate: f64,
    /// Seed component for the injected-fault stream, letting fault
    /// placement vary independently of the policy seed.
    pub probe_fail_seed: u64,
}

impl ScenarioSpec {
    /// Total queries scheduled to arrive via `AddQueries` events.
    pub fn arriving_queries(&self) -> usize {
        self.drift
            .iter()
            .map(|e| match e.kind {
                DriftKind::AddQueries { count } => count,
                DriftKind::DataShift { .. } => 0,
            })
            .sum()
    }

    /// Number of hint columns the scenario's matrix will have after the
    /// hint shape is applied, or an error when the shape is out of bounds
    /// for the workload's full hint space.
    pub fn shaped_columns(&self) -> Result<usize, String> {
        let full_k = match &self.workload {
            // The simulated DBMS always exposes the 49-hint interface.
            ScenarioWorkload::Sim(_) => crate::hints::HintSpace::all().len(),
            ScenarioWorkload::Synthetic(spec) => spec.k,
        };
        match self.hint_shape {
            HintShape::Full => Ok(full_k),
            HintShape::Prefix(n) => {
                if n < 2 || n > full_k {
                    Err(format!("hint_shape: prefix must keep >= 2 of {full_k} hints, got {n}"))
                } else {
                    Ok(n)
                }
            }
            HintShape::Strided(stride) => {
                if stride < 1 {
                    Err("hint_shape: stride must be >= 1".into())
                } else {
                    Ok((0..full_k).step_by(stride).len())
                }
            }
        }
    }

    /// Check the spec's internal consistency, returning an actionable
    /// message that names the offending field. This is the load-time gate
    /// for corpus files and the fuzzer's validity filter; [`Self::validate`]
    /// is the panicking wrapper the registry uses.
    pub fn check(&self) -> Result<(), String> {
        let fail = |msg: String| -> Result<(), String> { Err(format!("{}: {msg}", self.name)) };
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.seeds.is_empty() {
            return fail("seeds: at least one seed".into());
        }
        // JSON numbers are f64; a seed above 2^53 would not survive the
        // spec -> file -> spec round trip exactly.
        const MAX_EXACT: u64 = 1 << 53;
        for &s in &self.seeds {
            if s > MAX_EXACT {
                return fail(format!("seeds: seed {s} exceeds 2^53 (not exact in a config file)"));
            }
        }
        if self.batch < 1 {
            return fail("batch: batch >= 1".into());
        }
        if self.max_steps < 1 {
            return fail("max_steps: max_steps >= 1".into());
        }
        if self.shards < 1 || self.shards > 1 << 16 {
            return fail(format!("shards: shards must be in 1..=65536, got {}", self.shards));
        }
        if !self.probe_fail_rate.is_finite()
            || self.probe_fail_rate < 0.0
            || self.probe_fail_rate > 0.9
        {
            return fail(format!(
                "probe_fail_rate: must be finite and in 0.0..=0.9, got {}",
                self.probe_fail_rate
            ));
        }
        if self.probe_fail_rate > 0.0 && self.policy.is_online() {
            return fail("probe_fail_rate: offline probe-fault injection only".into());
        }
        if self.probe_fail_seed > MAX_EXACT {
            return fail("probe_fail_seed: exceeds 2^53 (not exact in a config file)".into());
        }
        match &self.workload {
            ScenarioWorkload::Sim(spec) => {
                if spec.n_queries == 0 {
                    return fail("workload: n_queries >= 1".into());
                }
                if spec.seed > MAX_EXACT {
                    return fail("workload.seed: exceeds 2^53 (not exact in a config file)".into());
                }
            }
            ScenarioWorkload::Synthetic(spec) => {
                if spec.n == 0 {
                    return fail("workload.n: n >= 1".into());
                }
                if spec.k < 2 {
                    return fail("workload.k: need the default plus >= 1 hint column".into());
                }
                if spec.rank < 1 || spec.rank > spec.n.min(spec.k) {
                    return fail(format!(
                        "workload.rank: rank must be in 1..=min(n, k), got {}",
                        spec.rank
                    ));
                }
                if !spec.default_inflation.is_finite() || spec.default_inflation <= 0.0 {
                    return fail("workload.default_inflation: must be finite and > 0".into());
                }
                if !spec.noise_sigma.is_finite() || spec.noise_sigma < 0.0 {
                    return fail("workload.noise_sigma: must be finite and >= 0".into());
                }
                if spec.seed > MAX_EXACT {
                    return fail("workload.seed: exceeds 2^53 (not exact in a config file)".into());
                }
            }
        }
        let n = self.workload.n_queries();
        let shaped_k = match self.shaped_columns() {
            Ok(k) => k,
            Err(msg) => return fail(msg),
        };
        if self.batch > n * shaped_k {
            return fail(format!(
                "batch: batch {} exceeds the {n}x{shaped_k} matrix size",
                self.batch
            ));
        }
        if self.policy.is_online() != self.arrivals.is_some() {
            return fail("arrivals: arrivals present iff the policy is online".into());
        }
        if self.policy.is_online() {
            // The online runner is arrival-driven and does not process
            // drift schedules; a drift event there would be silently
            // ignored, which is worse than rejecting the spec.
            if !self.drift.is_empty() {
                return fail("drift: drift schedules are not supported for online policies".into());
            }
        } else if !self.budget_multiple.is_finite() || self.budget_multiple <= 0.0 {
            return fail("budget_multiple: positive budget".into());
        }
        if let Some(arrivals) = &self.arrivals {
            if arrivals.count == 0 {
                return fail("arrivals.count: at least one arrival".into());
            }
            if arrivals.burst < 1 {
                return fail("arrivals.burst: burst >= 1".into());
            }
            if arrivals.concurrency < 1 {
                return fail("arrivals.concurrency: concurrency >= 1".into());
            }
            if !arrivals.rate.is_finite() || arrivals.rate < 0.0 {
                return fail("arrivals.rate: must be finite and >= 0".into());
            }
            match &arrivals.model {
                ArrivalModel::Uniform => {}
                ArrivalModel::Zipf { exponent } => {
                    if !exponent.is_finite() || *exponent <= 0.0 {
                        return fail(
                            "arrivals.model.exponent: zipf exponent must be finite and > 0".into(),
                        );
                    }
                }
                ArrivalModel::Replay { rows } => {
                    if rows.is_empty() {
                        return fail("arrivals.model.rows: replay trace must not be empty".into());
                    }
                    if let Some(&bad) = rows.iter().find(|&&r| r >= n) {
                        return fail(format!(
                            "arrivals.model.rows: replay row {bad} out of range for {n} queries"
                        ));
                    }
                    if arrivals.burst != 1 || arrivals.concurrency != 1 {
                        return fail(
                            "arrivals.model: replay traces fix burst and concurrency at 1".into(),
                        );
                    }
                }
            }
        }
        if self.arriving_queries() >= n {
            return fail("drift: arriving queries must leave an initial workload".into());
        }
        let mut last = 0.0;
        for e in &self.drift {
            if !(e.at_frac > 0.0 && e.at_frac < 1.0) {
                return fail("drift: drift events fire strictly inside the budget".into());
            }
            if e.at_frac < last {
                return fail("drift: drift events sorted by at_frac".into());
            }
            last = e.at_frac;
            if matches!(e.kind, DriftKind::DataShift { .. })
                && !matches!(self.workload, ScenarioWorkload::Sim(_))
            {
                return fail("drift: data shift needs a simulated workload".into());
            }
        }
        Ok(())
    }

    /// Sanity-check the spec's internal consistency (panics on violation).
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

/// A small heavy-tailed workload: a few enormous snowflake joins with big
/// fanout variance over a mostly cheap body — the latency tail regime the
/// paper's calibrated workloads smooth over.
fn heavy_tail_spec(n_queries: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "heavy-tail".into(),
        n_queries,
        catalog: CatalogSpec {
            name: "heavy-tail-sim".into(),
            n_tables: 12,
            rows_range: (1e4, 8e7),
            width_range: (50.0, 400.0),
            index_prob: 0.45,
            fact_fraction: 0.35,
        },
        class_mix: vec![
            ClassMix {
                class: QueryClass::WellEstimated,
                weight: 0.7,
                shape: JoinShape::Chain,
                n_tables: (2, 4),
                pred_sel_range: (1e-3, 0.05),
                fanout: (0.3, 0.4),
                pred_prob: 0.6,
            },
            ClassMix {
                class: QueryClass::NestLoopTrap,
                weight: 0.3,
                shape: JoinShape::Snowflake,
                n_tables: (6, 10),
                pred_sel_range: (0.05, 0.6),
                fanout: (1.1, 0.9),
                pred_prob: 0.3,
            },
        ],
        target_default_total: 300.0,
        templates: None,
        seed,
    }
}

/// A near-zero-headroom workload: every query well estimated, so the
/// default plan is already close to optimal and exploration has almost
/// nothing to win. Pins that LimeQO degrades gracefully instead of
/// thrashing when there is no low-rank signal worth chasing.
fn tiny_headroom_spec(n_queries: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "tiny-headroom".into(),
        n_queries,
        catalog: CatalogSpec {
            name: "tiny-headroom-sim".into(),
            n_tables: 10,
            rows_range: (1e4, 5e6),
            width_range: (50.0, 250.0),
            index_prob: 0.6,
            fact_fraction: 0.3,
        },
        class_mix: vec![ClassMix {
            class: QueryClass::WellEstimated,
            weight: 1.0,
            shape: JoinShape::Chain,
            n_tables: (2, 5),
            pred_sel_range: (1e-3, 0.1),
            fanout: (0.3, 0.4),
            pred_prob: 0.6,
        }],
        target_default_total: 90.0,
        templates: None,
        seed,
    }
}

/// The named scenario registry — the matrix the golden suite pins.
///
/// Every entry must stay fast enough for `cargo test` (a few seconds at
/// opt-level 2); heavyweight variants belong behind the `scenario` bin's
/// `--full` flag, not in here.
pub fn registry() -> Vec<ScenarioSpec> {
    let specs = vec![
        ScenarioSpec {
            name: "job-mini".into(),
            summary: "JOB-like mini workload, LimeQO at 2x default budget (paper baseline)".into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::job().scaled(0.35)),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::limeqo(),
            budget_multiple: 2.0,
            batch: 16,
            max_steps: 100_000,
            seeds: vec![11, 12],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "heavy-tail".into(),
            summary: "heavy-tailed latency classes: a few huge snowflake joins over a cheap body"
                .into(),
            workload: ScenarioWorkload::Sim(heavy_tail_spec(48, 0x4EA7)),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::limeqo(),
            budget_multiple: 1.5,
            batch: 16,
            max_steps: 100_000,
            seeds: vec![21, 22],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "tiny-headroom".into(),
            summary: "all queries well-estimated: almost nothing for exploration to win".into(),
            workload: ScenarioWorkload::Sim(tiny_headroom_spec(40, 0x71D0)),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::limeqo(),
            budget_multiple: 1.0,
            batch: 16,
            max_steps: 100_000,
            seeds: vec![31, 32],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "template-drift".into(),
            summary: "templated workload; a third of the templates arrive mid-run (\u{a7}5.3)"
                .into(),
            workload: ScenarioWorkload::Sim({
                let mut spec = WorkloadSpec::tiny(48, 0x7E3A);
                spec.name = "template-drift".into();
                spec.templates = Some(8);
                spec
            }),
            hint_shape: HintShape::Full,
            drift: vec![DriftEvent { at_frac: 0.5, kind: DriftKind::AddQueries { count: 16 } }],
            policy: PolicySpec::limeqo(),
            budget_multiple: 2.0,
            batch: 16,
            max_steps: 100_000,
            seeds: vec![41, 42],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "data-shift".into(),
            summary: "complete data shift mid-run: two years of growth + drift (\u{a7}5.4)".into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(36, 0xD5_1F7)),
            hint_shape: HintShape::Full,
            drift: vec![DriftEvent { at_frac: 0.4, kind: DriftKind::DataShift { days: 730.0 } }],
            policy: PolicySpec::limeqo(),
            budget_multiple: 6.0,
            batch: 8,
            max_steps: 100_000,
            seeds: vec![51, 52],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "growing-catalog".into(),
            summary: "greedy explorer caught by a year of catalog growth under cached plans".into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(30, 0x69_0CA7)),
            hint_shape: HintShape::Full,
            drift: vec![DriftEvent { at_frac: 0.6, kind: DriftKind::DataShift { days: 365.0 } }],
            policy: PolicySpec::Greedy,
            budget_multiple: 1.5,
            batch: 8,
            max_steps: 100_000,
            seeds: vec![61],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "hint-prefix-9".into(),
            summary: "restricted hint space: only the first 9 of 49 hint sets are deployable"
                .into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(30, 0x9F_0E11)),
            hint_shape: HintShape::Prefix(9),
            drift: vec![],
            policy: PolicySpec::LimeQoAls {
                rank: 3,
                drift: DriftPolicy::default(),
                incremental: false,
                rescore_every: 0,
                incremental_als: false,
            },
            budget_multiple: 3.0,
            batch: 4,
            max_steps: 100_000,
            seeds: vec![71, 72, 73],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "censor-hostile".into(),
            summary: "default nearly optimal per row: almost every probe times out (censored)"
                .into(),
            workload: ScenarioWorkload::Synthetic(SyntheticSpec {
                n: 400,
                k: 49,
                rank: 5,
                default_inflation: 1.03,
                noise_sigma: 0.4,
                seed: 0xCE_50,
            }),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::limeqo(),
            budget_multiple: 1.0,
            batch: 32,
            max_steps: 100_000,
            seeds: vec![81, 82],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "large-matrix-10k".into(),
            summary: "10k-query synthetic low-rank matrix: the scale regime beyond Stack".into(),
            workload: ScenarioWorkload::Synthetic(SyntheticSpec {
                n: 10_000,
                k: 49,
                rank: 5,
                default_inflation: 2.5,
                noise_sigma: 0.1,
                seed: 0x10_000,
            }),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::limeqo(),
            budget_multiple: 0.25,
            batch: 512,
            max_steps: 100_000,
            seeds: vec![91],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "online-uniform".into(),
            summary: "online exploration (\u{a7}6): uniform arrivals, bounded \u{3c1}-regression"
                .into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(32, 0x0A11E)),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::OnlineAls {
                rank: 5,
                explore_prob: 0.15,
                rho: 1.2,
                refresh_every: 64,
                cold_bonus: 0.0,
            },
            budget_multiple: 0.0,
            batch: 1,
            max_steps: 100_000,
            seeds: vec![101, 102],
            arrivals: Some(ArrivalSpec::new(2500, ArrivalModel::Uniform)),
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "online-zipf".into(),
            summary: "online exploration under zipf(1.1) query-frequency skew".into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(48, 0x21FF)),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::OnlineAls {
                rank: 5,
                explore_prob: 0.15,
                rho: 1.2,
                refresh_every: 64,
                cold_bonus: 0.5,
            },
            budget_multiple: 0.0,
            batch: 1,
            max_steps: 100_000,
            seeds: vec![111, 112],
            arrivals: Some(ArrivalSpec::new(3000, ArrivalModel::Zipf { exponent: 1.1 })),
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "data-shift-retained".into(),
            summary: "two compounding data shifts with stale observations kept as censored priors"
                .into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(36, 0xD5_1F7)),
            hint_shape: HintShape::Full,
            drift: vec![
                DriftEvent { at_frac: 0.3, kind: DriftKind::DataShift { days: 365.0 } },
                DriftEvent { at_frac: 0.6, kind: DriftKind::DataShift { days: 365.0 } },
            ],
            // Explicit knobs (not `..Default::default()`): this scenario
            // pins the retention path itself, so the golden must not move
            // if the library defaults are retuned later.
            policy: PolicySpec::LimeQoAls {
                rank: 5,
                incremental: false,
                rescore_every: 0,
                incremental_als: false,
                drift: DriftPolicy {
                    retain_priors: true,
                    prior_decay: 0.5,
                    density_gate: 0.12,
                    cold_row_bonus: 0.25,
                    warm_start: true,
                    reverify_runner_up: false,
                },
            },
            budget_multiple: 6.0,
            batch: 8,
            max_steps: 100_000,
            // 16 seeds where the other scenarios use 2: the
            // retention-vs-cold-restart margin this scenario pins is ~1 %
            // of final latency (a ROADMAP open item), so a 2-seed mean is
            // noise-dominated — a per-seed scan measured ±2.5 s swings on
            // a ~74 s quantity, flipping the invariant on unlucky pairs.
            seeds: (51..=66).collect(),
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "incremental-tunnel".into(),
            summary: "fuzzer-found regression: lazy incremental re-score cadence must track the \
                      paper-exact ranking (completion-epoch cache invalidation)"
                .into(),
            // Promoted verbatim from scenarios/broken/incremental-tunnel
            // .json (fuzz case, seed 8591): at rescore_every 8 and batch 2
            // the old row_rev-keyed cache locked untouched rows out of the
            // candidate set and tunneled on a handful of heavy rows at
            // full-row-best timeouts, losing ~3x to Random. With cached
            // scores keyed on the store's completion epoch, any lazy
            // cadence reproduces the paper-exact ranking bit for bit. The
            // single fuzz seed lost to Random by per-seed luck even when
            // fixed (heavy-tailed tiny catalog); five seeds make the mean
            // land where the claim does.
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(41, 906721977)),
            hint_shape: HintShape::Strided(3),
            drift: vec![],
            policy: PolicySpec::LimeQoAls {
                rank: 5,
                drift: DriftPolicy::default(),
                incremental: true,
                rescore_every: 8,
                incremental_als: false,
            },
            budget_multiple: 3.1123988138271734,
            batch: 2,
            max_steps: 100_000,
            seeds: vec![1, 2, 3, 4, 5],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "zipf-cold-bonus".into(),
            summary: "zipf(1.1) arrivals with a strong cold-row exploration bonus".into(),
            workload: ScenarioWorkload::Sim(WorkloadSpec::tiny(48, 0x21FF)),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::OnlineAls {
                rank: 5,
                explore_prob: 0.15,
                rho: 1.2,
                refresh_every: 64,
                cold_bonus: 1.0,
            },
            budget_multiple: 0.0,
            batch: 1,
            max_steps: 100_000,
            seeds: vec![111, 112],
            arrivals: Some(ArrivalSpec::new(3000, ArrivalModel::Zipf { exponent: 1.1 })),
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "incremental-als".into(),
            summary: "incremental ALS factor updates: only dirty Q rows re-solved between rounds"
                .into(),
            // Pins the incremental-factor-update path (PERF.md §Kernels):
            // after the first full fit, each round re-solves only the rows
            // whose observations changed, against retained H. The golden
            // certifies the bounded-deviation contract holds end to end —
            // LimeQO with incremental updates must still beat Random here.
            workload: ScenarioWorkload::Synthetic(SyntheticSpec {
                n: 300,
                k: 25,
                rank: 4,
                default_inflation: 2.0,
                noise_sigma: 0.2,
                seed: 0x1AC5,
            }),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::LimeQoAls {
                rank: 4,
                drift: DriftPolicy { warm_start: true, ..DriftPolicy::default() },
                incremental: false,
                rescore_every: 0,
                incremental_als: true,
            },
            budget_multiple: 1.5,
            batch: 16,
            max_steps: 100_000,
            seeds: vec![121, 122],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
    ];
    for s in &specs {
        s.validate();
    }
    specs
}

/// Scenarios too heavy for the per-`cargo test` golden suite: the
/// 100k-query production-scale regime the parallel completion engine
/// exists for. Run with `scenario --scale`; pinned by the `#[ignore]`d
/// golden tests in `tests/tests/scenarios.rs` (slow tier,
/// `./ci.sh --ignored`) against `tests/golden/scale.golden`.
pub fn scale_registry() -> Vec<ScenarioSpec> {
    let scale_matrix = SyntheticSpec {
        n: 100_000,
        k: 49,
        rank: 5,
        default_inflation: 2.5,
        noise_sigma: 0.1,
        seed: 0x100_000,
    };
    let specs = vec![
        ScenarioSpec {
            name: "scale-100k".into(),
            summary: "100k queries x 49 hints offline: parallel ALS + incremental Eq. 6 ranking"
                .into(),
            workload: ScenarioWorkload::Synthetic(scale_matrix.clone()),
            hint_shape: HintShape::Full,
            // 20k of the queries arrive mid-run, exercising row growth at
            // scale; the budget is deliberately thin (production explores
            // a sliver of a 4.9M-cell matrix) and the step cap bounds the
            // worst case.
            drift: vec![DriftEvent { at_frac: 0.5, kind: DriftKind::AddQueries { count: 20_000 } }],
            // `rescore_every: 0`: the periodic full re-score was measured
            // at this scale and did not move the outcome (see ROADMAP) —
            // the pure incremental ranking stays the pinned configuration.
            policy: PolicySpec::LimeQoAls {
                rank: 5,
                drift: DriftPolicy::default(),
                incremental: true,
                rescore_every: 0,
                incremental_als: false,
            },
            budget_multiple: 0.05,
            batch: 4096,
            max_steps: 24,
            seeds: vec![1],
            arrivals: None,
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "scale-100k-zipf".into(),
            summary: "online zipf(1.1) arrivals over the 100k-query matrix, cold-row bonus on"
                .into(),
            workload: ScenarioWorkload::Synthetic(scale_matrix),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::OnlineAls {
                rank: 5,
                explore_prob: 0.15,
                rho: 1.2,
                refresh_every: 2048,
                cold_bonus: 0.5,
            },
            budget_multiple: 0.0,
            batch: 1,
            max_steps: 100_000,
            seeds: vec![7],
            arrivals: Some(ArrivalSpec::new(6000, ArrivalModel::Zipf { exponent: 1.1 })),
            shards: 1,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "scale-1m".into(),
            summary: "1M queries x 17 hints: the sharded multi-tenant tier, 8 row-range shards"
                .into(),
            workload: ScenarioWorkload::Synthetic(scale_1m_matrix()),
            hint_shape: HintShape::Full,
            drift: vec![],
            // Incremental ranking is mandatory at this size: a full
            // re-score touches all 1M rows per step. rank 3 keeps the
            // per-step ALS within the slow tier's time box. The thin
            // budget buys ~65k probes; spending them as eight 8k batches
            // rather than two 32k batches is what lets the model adapt —
            // a 2-round run leaves half the probes model-cold and loses
            // to Random at this sparsity.
            policy: PolicySpec::LimeQoAls {
                rank: 3,
                drift: DriftPolicy::default(),
                incremental: true,
                rescore_every: 0,
                incremental_als: false,
            },
            budget_multiple: 0.02,
            batch: 8192,
            max_steps: 12,
            seeds: vec![1],
            arrivals: None,
            shards: 8,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
        ScenarioSpec {
            name: "scale-1m-tenants".into(),
            summary: "the 1M-row matrix as 64 tenant shards sharing one service and factor model"
                .into(),
            workload: ScenarioWorkload::Synthetic(scale_1m_matrix()),
            hint_shape: HintShape::Full,
            drift: vec![],
            policy: PolicySpec::LimeQoAls {
                rank: 3,
                drift: DriftPolicy::default(),
                incremental: true,
                rescore_every: 0,
                incremental_als: false,
            },
            budget_multiple: 0.02,
            batch: 8192,
            max_steps: 12,
            seeds: vec![1],
            arrivals: None,
            shards: 64,
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        },
    ];
    for s in &specs {
        s.validate();
    }
    specs
}

/// The shared 1M-row synthetic matrix behind the `scale-1m*` scenarios.
/// 17 hints (not 49) keeps the slow tier's dense completion buffers near
/// 1M x 17 x 8 B ≈ 136 MB; the *matrix* itself is sparse and budgeted
/// separately (see PERF.md's memory-budget table).
fn scale_1m_matrix() -> SyntheticSpec {
    SyntheticSpec {
        n: 1_000_000,
        k: 17,
        rank: 3,
        default_inflation: 2.5,
        noise_sigma: 0.1,
        seed: 0x100_0000,
    }
}

/// The fast registry plus the scale registry, in that order.
pub fn full_registry() -> Vec<ScenarioSpec> {
    let mut specs = registry();
    specs.extend(scale_registry());
    specs
}

/// Look a scenario up by name (fast and scale registries).
pub fn by_name(name: &str) -> Option<ScenarioSpec> {
    full_registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_enough() {
        let specs = registry();
        assert!(specs.len() >= 8, "registry must stay ahead of the paper's four workloads");
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn by_name_roundtrip() {
        for spec in full_registry() {
            assert_eq!(by_name(&spec.name).expect("present").name, spec.name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn scale_registry_is_at_100k_and_distinct() {
        let scale = scale_registry();
        assert!(scale.iter().any(|s| s.name == "scale-100k"));
        for s in &scale {
            assert!(s.workload.n_queries() >= 100_000, "{} is not scale", s.name);
        }
        // The offline scale scenario must carry a real step cap — it is
        // what bounds the slow tier's worst case.
        let offline = by_name("scale-100k").unwrap();
        assert!(offline.max_steps < 100_000);
        assert!(matches!(offline.policy, PolicySpec::LimeQoAls { incremental: true, .. }));
        // Names must stay unique across BOTH registries.
        let names_owned = full_registry();
        let mut names: Vec<&str> = names_owned.iter().map(|s| s.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn synthetic_latency_is_positive_and_deterministic() {
        let spec = SyntheticSpec {
            n: 50,
            k: 12,
            rank: 3,
            default_inflation: 2.0,
            noise_sigma: 0.2,
            seed: 9,
        };
        let a = spec.build_latency();
        let b = spec.build_latency();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.as_slice().iter().all(|&v| v > 0.0));
        assert_eq!(a.shape(), (50, 12));
    }

    #[test]
    fn hint_shapes_index_correctly() {
        assert_eq!(HintShape::Full.indices(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(HintShape::Prefix(3).indices(49), vec![0, 1, 2]);
        assert_eq!(HintShape::Strided(20).indices(49), vec![0, 20, 40]);
    }

    #[test]
    fn zipf_trace_is_skewed_and_seeded() {
        let spec = ArrivalSpec::new(4000, ArrivalModel::Zipf { exponent: 1.2 });
        let a = spec.trace(30, 5);
        let b = spec.trace(30, 5);
        let c = spec.trace(30, 6);
        assert_eq!(a, b, "same seed, same trace");
        assert_ne!(a, c, "different seed, different trace");
        assert!(a.iter().all(|&r| r < 30));
        // The hottest row must dominate a uniform share by a wide margin.
        let mut counts = vec![0usize; 30];
        for &r in &a {
            counts[r] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 3 * a.len() / 30, "zipf skew too weak: max count {max}");
    }

    #[test]
    fn uniform_trace_covers_rows() {
        let spec = ArrivalSpec::new(2000, ArrivalModel::Uniform);
        let t = spec.trace(20, 3);
        let mut seen = [false; 20];
        for &r in &t {
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn arriving_queries_counted() {
        let spec = by_name("template-drift").unwrap();
        assert_eq!(spec.arriving_queries(), 16);
        assert_eq!(by_name("job-mini").unwrap().arriving_queries(), 0);
    }

    #[test]
    fn trace_knob_defaults_are_bit_compatible() {
        // burst = 1, concurrency = 1 must reproduce the historical trace
        // sequence exactly — the golden suite depends on it.
        for model in [ArrivalModel::Uniform, ArrivalModel::Zipf { exponent: 1.1 }] {
            let spec = ArrivalSpec::new(500, model);
            let knobbed = ArrivalSpec { burst: 1, concurrency: 1, rate: 2.0, ..spec.clone() };
            assert_eq!(spec.trace(40, 9), knobbed.trace(40, 9), "rate must not move the trace");
        }
    }

    #[test]
    fn burst_repeats_rows_in_blocks() {
        let base = ArrivalSpec::new(300, ArrivalModel::Uniform);
        let bursty = ArrivalSpec { burst: 3, ..base.clone() };
        let t = bursty.trace(25, 4);
        assert_eq!(t.len(), 300);
        for chunk in t.chunks(3) {
            assert!(chunk.iter().all(|&r| r == chunk[0]), "burst blocks repeat one row");
        }
        // The underlying draw sequence is the historical one: taking every
        // 3rd element reproduces the burst-free trace's first 100 draws.
        let plain = base.trace(25, 4);
        let firsts: Vec<usize> = t.chunks(3).map(|c| c[0]).collect();
        assert_eq!(firsts, plain[..100].to_vec());
    }

    #[test]
    fn concurrency_interleaves_independent_streams() {
        let base = ArrivalSpec::new(401, ArrivalModel::Uniform);
        let multi = ArrivalSpec { concurrency: 3, ..base.clone() };
        let t = multi.trace(30, 7);
        assert_eq!(t.len(), 401);
        assert!(t.iter().all(|&r| r < 30));
        // Stream 0 keeps the historical seed: its draws are a prefix of
        // the single-stream trace.
        let solo = base.trace(30, 7);
        let stream0: Vec<usize> = t.iter().copied().step_by(3).collect();
        assert_eq!(stream0.len(), 134);
        assert_eq!(stream0[..], solo[..134]);
        // The derived streams are genuinely different draws.
        let stream1: Vec<usize> = t.iter().copied().skip(1).step_by(3).collect();
        assert_ne!(stream0[..133], stream1[..133]);
    }

    #[test]
    fn replay_trace_cycles_and_is_literal() {
        let spec = ArrivalSpec::new(7, ArrivalModel::Replay { rows: vec![3, 1, 4] });
        assert_eq!(spec.trace(10, 99), vec![3, 1, 4, 3, 1, 4, 3]);
        // Seed-independent: the trace is data, not a draw.
        assert_eq!(spec.trace(10, 1), spec.trace(10, 2));
    }

    #[test]
    fn interarrival_gaps_follow_rate() {
        let closed = ArrivalSpec::new(1000, ArrivalModel::Uniform);
        assert!(closed.interarrival_gaps(3).is_empty());
        let open = ArrivalSpec { rate: 4.0, ..closed };
        let gaps = open.interarrival_gaps(3);
        assert_eq!(gaps.len(), 1000);
        assert!(gaps.iter().all(|&g| g.is_finite() && g >= 0.0));
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.25).abs() < 0.05, "mean gap {mean} should be ~1/rate");
        assert_eq!(gaps, open.interarrival_gaps(3), "seeded and deterministic");
    }

    fn base_offline() -> ScenarioSpec {
        by_name("censor-hostile").unwrap()
    }

    #[test]
    fn check_rejects_empty_seeds() {
        let mut spec = base_offline();
        spec.seeds.clear();
        assert!(spec.check().unwrap_err().contains("seeds"));
    }

    #[test]
    fn check_rejects_nonpositive_budget() {
        let mut spec = base_offline();
        spec.budget_multiple = 0.0;
        assert!(spec.check().unwrap_err().contains("budget"));
        spec.budget_multiple = f64::NAN;
        assert!(spec.check().unwrap_err().contains("budget"));
    }

    #[test]
    fn check_rejects_bad_zipf_exponent() {
        let mut spec = by_name("online-zipf").unwrap();
        spec.arrivals = Some(ArrivalSpec::new(100, ArrivalModel::Zipf { exponent: 0.0 }));
        assert!(spec.check().unwrap_err().contains("exponent"));
        spec.arrivals = Some(ArrivalSpec::new(100, ArrivalModel::Zipf { exponent: f64::INFINITY }));
        assert!(spec.check().unwrap_err().contains("exponent"));
    }

    #[test]
    fn check_rejects_batch_larger_than_matrix() {
        let mut spec = base_offline();
        spec.batch = 400 * 49 + 1;
        assert!(spec.check().unwrap_err().contains("batch"));
        spec.batch = 400 * 49;
        assert!(spec.check().is_ok());
    }

    #[test]
    fn check_rejects_zero_batch_and_steps() {
        let mut spec = base_offline();
        spec.batch = 0;
        assert!(spec.check().unwrap_err().contains("batch"));
        let mut spec = base_offline();
        spec.max_steps = 0;
        assert!(spec.check().unwrap_err().contains("max_steps"));
    }

    #[test]
    fn check_rejects_oversized_seed() {
        let mut spec = base_offline();
        spec.seeds = vec![(1u64 << 53) + 1];
        assert!(spec.check().unwrap_err().contains("2^53"));
    }

    #[test]
    fn check_rejects_bad_synthetic_fields() {
        let synth = |f: &dyn Fn(&mut SyntheticSpec)| {
            let mut spec = base_offline();
            if let ScenarioWorkload::Synthetic(s) = &mut spec.workload {
                f(s);
            }
            spec.check().unwrap_err()
        };
        assert!(synth(&|s| s.n = 0).contains("workload.n"));
        assert!(synth(&|s| s.k = 1).contains("workload.k"));
        assert!(synth(&|s| s.rank = 0).contains("rank"));
        assert!(synth(&|s| s.rank = 50).contains("rank"));
        assert!(synth(&|s| s.default_inflation = 0.0).contains("default_inflation"));
        assert!(synth(&|s| s.noise_sigma = -0.1).contains("noise_sigma"));
    }

    #[test]
    fn check_rejects_bad_hint_shape() {
        let mut spec = base_offline();
        spec.hint_shape = HintShape::Prefix(1);
        assert!(spec.check().unwrap_err().contains("hint_shape"));
        spec.hint_shape = HintShape::Prefix(50);
        assert!(spec.check().unwrap_err().contains("hint_shape"));
    }

    #[test]
    fn check_rejects_bad_arrival_knobs() {
        let online = |f: &dyn Fn(&mut ArrivalSpec)| {
            let mut spec = by_name("online-uniform").unwrap();
            if let Some(a) = &mut spec.arrivals {
                f(a);
            }
            spec.check().unwrap_err()
        };
        assert!(online(&|a| a.count = 0).contains("arrivals.count"));
        assert!(online(&|a| a.burst = 0).contains("burst"));
        assert!(online(&|a| a.concurrency = 0).contains("concurrency"));
        assert!(online(&|a| a.rate = -1.0).contains("rate"));
        assert!(online(&|a| a.model = ArrivalModel::Replay { rows: vec![] }).contains("replay"));
        assert!(
            online(&|a| a.model = ArrivalModel::Replay { rows: vec![32] }).contains("out of range")
        );
        assert!(online(&|a| {
            a.model = ArrivalModel::Replay { rows: vec![0] };
            a.burst = 2;
        })
        .contains("burst"));
    }

    #[test]
    #[should_panic(expected = "arrivals present iff")]
    fn validate_rejects_offline_spec_with_arrivals() {
        let mut spec = by_name("job-mini").unwrap();
        spec.arrivals = Some(ArrivalSpec::new(10, ArrivalModel::Uniform));
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "drift schedules are not supported for online")]
    fn validate_rejects_online_spec_with_drift() {
        let mut spec = by_name("online-uniform").unwrap();
        spec.drift = vec![DriftEvent { at_frac: 0.5, kind: DriftKind::DataShift { days: 365.0 } }];
        spec.validate();
    }
}
