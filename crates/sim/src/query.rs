//! The SPJ query model and per-query cardinality-estimation error profiles.
//!
//! A [`Query`] is a join graph over catalog tables with per-table predicate
//! selectivities and per-edge join selectivities. Each quantity exists in
//! two "worlds":
//!
//! * the **true** world — what execution actually encounters, and
//! * the **estimated** world — what the optimizer believes at planning time.
//!
//! The multiplicative gap between them is drawn from the query's
//! [`QueryClass`]. This is the simulator's stand-in for the real-world
//! phenomenon the paper exploits: PostgreSQL's default plans on JOB/CEB are
//! slow because correlated predicates make join cardinalities badly
//! underestimated, steering the optimizer into nested-loop disasters that a
//! `enable_nestloop=off` hint avoids. Queries of the same class respond to
//! hints the same way, which is precisely what makes the workload matrix
//! low-rank (paper §5.5.2).

use crate::catalog::Catalog;
use limeqo_linalg::rng::SeededRng;

/// Latent query class controlling join shape and estimation-error profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Join selectivities badly underestimated (correlated predicates). The
    /// default optimizer picks index nested loops whose true cost explodes;
    /// disabling nested loops is the winning hint. The dominant class in
    /// JOB/CEB-like workloads.
    NestLoopTrap,
    /// Index clustering overestimated: the planner believes an index scan is
    /// cheap but the heap order is adversarial, so each probe is a random
    /// page. Disabling index scans wins.
    IndexTrap,
    /// Predicate selectivities overestimated (planner expects many rows and
    /// chooses sequential scans / hash joins); in truth few rows qualify and
    /// index plans are far better. Disabling sequential scans wins.
    MissedIndex,
    /// Estimates are accurate; the default plan is near-optimal and hints
    /// offer little. The dominant class in Stack-like workloads.
    WellEstimated,
    /// Write-bound ETL/COPY-style query: latency is dominated by output
    /// cost, identical under every hint (paper §5.1's Greedy trap).
    Etl,
}

impl QueryClass {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueryClass::NestLoopTrap => "nl-trap",
            QueryClass::IndexTrap => "idx-trap",
            QueryClass::MissedIndex => "missed-idx",
            QueryClass::WellEstimated => "well-est",
            QueryClass::Etl => "etl",
        }
    }
}

/// A reference to one base table inside a query, with its local predicate.
#[derive(Debug, Clone)]
pub struct TableRef {
    /// Index into [`Catalog::tables`].
    pub table: usize,
    /// True fraction of rows passing the local predicate.
    pub sel_true: f64,
    /// Planner's believed selectivity.
    pub sel_est: f64,
    /// Whether the predicate column has a B-tree index.
    pub pred_indexed: bool,
    /// Whether an index-only scan can answer this table's role (covering
    /// index).
    pub covering: bool,
    /// True index/heap correlation for the predicate column.
    pub corr_true: f64,
    /// Planner's believed correlation.
    pub corr_est: f64,
}

/// An equi-join edge between two tables of the query.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// Index of the first table in [`Query::tables`].
    pub a: usize,
    /// Index of the second table in [`Query::tables`].
    pub b: usize,
    /// True join selectivity: `|A ⋈ B| = |A| · |B| · sel`.
    pub sel_true: f64,
    /// Planner's believed join selectivity.
    pub sel_est: f64,
    /// Whether side `a`'s join column is indexed (enables index nested-loop
    /// with `a` as inner).
    pub a_indexed: bool,
    /// Whether side `b`'s join column is indexed.
    pub b_indexed: bool,
}

/// One workload query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Stable id within the workload (row index of the workload matrix).
    pub id: usize,
    /// Latent class (drives the error profile; diagnostics + generators).
    pub class: QueryClass,
    /// Template id: DSB-style workloads instantiate many parameterized
    /// queries per template; other workloads give each query its own
    /// template id.
    pub template: usize,
    /// Tables with local predicates.
    pub tables: Vec<TableRef>,
    /// Equi-join edges; together with `tables` this is the join graph.
    pub joins: Vec<JoinEdge>,
    /// Extra write-bound seconds charged identically under every hint
    /// (non-zero only for [`QueryClass::Etl`]).
    pub etl_write_seconds: f64,
    /// Seed for the per-(query, hint) latency noise.
    pub noise_seed: u64,
}

impl Query {
    /// Number of tables joined.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Join edges fully contained in the table subset `mask` (bit i set =
    /// `tables[i]` present).
    pub fn edges_within(&self, mask: u32) -> impl Iterator<Item = &JoinEdge> {
        self.joins.iter().filter(move |e| mask & (1 << e.a) != 0 && mask & (1 << e.b) != 0)
    }

    /// Cardinality of the join over the table subset `mask`, in the chosen
    /// world, under the textbook independence assumption:
    /// `|S| = Π rows_i·sel_i · Π edge_sel` (clamped to ≥ 1 row).
    ///
    /// Estimation errors compound multiplicatively across edges — exactly
    /// the mechanism that makes deep join trees badly estimated in real
    /// optimizers.
    pub fn cardinality(&self, mask: u32, catalog: &Catalog, world: World) -> f64 {
        let mut card = 1.0f64;
        for (i, tr) in self.tables.iter().enumerate() {
            if mask & (1 << i) != 0 {
                let sel = match world {
                    World::True => tr.sel_true,
                    World::Estimated => tr.sel_est,
                };
                card *= catalog.tables[tr.table].rows * sel;
            }
        }
        for e in self.edges_within(mask) {
            card *= match world {
                World::True => e.sel_true,
                World::Estimated => e.sel_est,
            };
        }
        card.max(1.0)
    }

    /// Whether table `j` is connected by a join edge to any table in `mask`.
    pub fn connected_to(&self, mask: u32, j: usize) -> bool {
        self.joins
            .iter()
            .any(|e| (e.a == j && mask & (1 << e.b) != 0) || (e.b == j && mask & (1 << e.a) != 0))
    }
}

/// Which cardinalities a computation plugs into the cost formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum World {
    /// Planner's view (estimated selectivities, estimated correlations,
    /// hint disable-penalties apply).
    Estimated,
    /// Ground truth (true selectivities/correlations, no penalties).
    True,
}

/// Error-profile parameters for one query class, used by the generators.
#[derive(Debug, Clone, Copy)]
pub struct ErrorProfile {
    /// Mean of `ln(join-selectivity estimation factor)`; negative =
    /// underestimation.
    pub join_err_mu: f64,
    /// Std of the join error.
    pub join_err_sigma: f64,
    /// Mean of `ln(predicate-selectivity estimation factor)`.
    pub pred_err_mu: f64,
    /// Std of the predicate error.
    pub pred_err_sigma: f64,
    /// Additive bias applied to the *estimated* correlation (positive =
    /// planner believes the index is better-clustered than it is).
    pub corr_bias: f64,
}

impl QueryClass {
    /// The error profile that defines this class.
    pub fn error_profile(&self) -> ErrorProfile {
        match self {
            QueryClass::NestLoopTrap => ErrorProfile {
                join_err_mu: -1.5,
                join_err_sigma: 0.4,
                pred_err_mu: -0.3,
                pred_err_sigma: 0.2,
                corr_bias: 0.0,
            },
            QueryClass::IndexTrap => ErrorProfile {
                join_err_mu: -0.15,
                join_err_sigma: 0.15,
                pred_err_mu: 0.0,
                pred_err_sigma: 0.15,
                corr_bias: 0.85,
            },
            QueryClass::MissedIndex => ErrorProfile {
                join_err_mu: 0.1,
                join_err_sigma: 0.15,
                pred_err_mu: 2.3,
                pred_err_sigma: 0.5,
                corr_bias: -0.1,
            },
            QueryClass::WellEstimated => ErrorProfile {
                join_err_mu: 0.0,
                join_err_sigma: 0.08,
                pred_err_mu: 0.0,
                pred_err_sigma: 0.08,
                corr_bias: 0.0,
            },
            QueryClass::Etl => ErrorProfile {
                join_err_mu: 0.0,
                join_err_sigma: 0.05,
                pred_err_mu: 0.0,
                pred_err_sigma: 0.05,
                corr_bias: 0.0,
            },
        }
    }
}

/// Shape of a generated join graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinShape {
    /// Linear chain t0–t1–t2–…
    Chain,
    /// Star: every table joins t0 (fact-table-centric, DSB-style).
    Star,
    /// Chain plus a few random chords.
    Snowflake,
}

/// Parameters for generating a single query.
#[derive(Debug, Clone)]
pub struct QueryGenParams {
    /// Class (error profile).
    pub class: QueryClass,
    /// Number of tables to join.
    pub n_tables: usize,
    /// Join graph shape.
    pub shape: JoinShape,
    /// Range of true predicate selectivities (log-uniform).
    pub pred_sel_range: (f64, f64),
    /// Log-normal fanout of join edges: `|A ⋈ B| ≈ min-side · fanout`,
    /// `fanout ~ exp(N(mu, sigma))`. Trap-heavy workloads use larger
    /// fanouts so intermediate results stay big enough for plan choice to
    /// matter.
    pub fanout: (f64, f64),
    /// Probability that a table carries a local predicate at all. Real JOB
    /// queries filter only a handful of their 4–17 tables; unfiltered
    /// tables keep intermediate results large, which is what makes join
    /// method choice matter.
    pub pred_prob: f64,
    /// Template id recorded on the query.
    pub template: usize,
}

impl QueryGenParams {
    /// The fanout used when a workload spec has no opinion.
    pub const DEFAULT_FANOUT: (f64, f64) = (0.45, 0.55);
    /// The predicate probability used when a spec has no opinion.
    pub const DEFAULT_PRED_PROB: f64 = 0.6;
}

/// Generate one query against `catalog`.
///
/// Join selectivities are derived from the join-column NDV in the classic
/// `1/max(ndv)` fashion, then nudged so that intermediate results neither
/// vanish nor explode; estimation errors are layered on top from the class
/// profile.
pub fn generate_query(
    id: usize,
    params: &QueryGenParams,
    catalog: &Catalog,
    rng: &mut SeededRng,
) -> Query {
    let profile = params.class.error_profile();
    let n = params.n_tables.min(catalog.tables.len()).max(1);
    let table_ids = rng.sample_indices(catalog.tables.len(), n);

    let mut tables = Vec::with_capacity(n);
    for &t in &table_ids {
        let tab = &catalog.tables[t];
        // Predicate on a random column of the table.
        let col = rng.index(tab.columns.len());
        let column = &tab.columns[col];
        let (sel_true, sel_est) = if rng.chance(params.pred_prob) {
            let (lo, hi) = params.pred_sel_range;
            let sel_true = (lo.ln() + rng.uniform(0.0, 1.0) * (hi.ln() - lo.ln())).exp();
            let err = rng.log_normal(profile.pred_err_mu, profile.pred_err_sigma);
            (sel_true, (sel_true * err).clamp(1e-8, 1.0))
        } else {
            // No local predicate: the table passes through unfiltered.
            (1.0, 1.0)
        };
        let corr_true = column.correlation;
        let corr_est = (corr_true + profile.corr_bias).clamp(0.0, 1.0);
        tables.push(TableRef {
            table: t,
            sel_true,
            sel_est,
            pred_indexed: column.indexed,
            covering: column.indexed && rng.chance(0.5),
            corr_true,
            corr_est,
        });
    }

    let mut joins = Vec::new();
    let (fanout_mu, fanout_sigma) = params.fanout;
    let add_edge = |a: usize, b: usize, rng: &mut SeededRng, joins: &mut Vec<JoinEdge>| {
        let ta = &catalog.tables[tables[a].table];
        let tb = &catalog.tables[tables[b].table];
        // Join on near-key columns: baseline selectivity 1/max(rows), which
        // makes |A ⋈ B| ≈ min-side cardinality; the fanout factor lets some
        // joins expand as many-to-many joins do in IMDb.
        let fanout = rng.log_normal(fanout_mu, fanout_sigma).clamp(0.2, 40.0);
        let sel_true = (fanout / ta.rows.max(tb.rows)).min(1.0);
        let err = rng.log_normal(profile.join_err_mu, profile.join_err_sigma);
        let sel_est = (sel_true * err).clamp(1e-12, 1.0);
        // Join columns: probability of an index on the join key is high —
        // joins overwhelmingly run on key columns.
        joins.push(JoinEdge {
            a,
            b,
            sel_true,
            sel_est,
            a_indexed: rng.chance(0.85),
            b_indexed: rng.chance(0.85),
        });
    };

    match params.shape {
        JoinShape::Chain => {
            for i in 1..n {
                add_edge(i - 1, i, rng, &mut joins);
            }
        }
        JoinShape::Star => {
            for i in 1..n {
                add_edge(0, i, rng, &mut joins);
            }
        }
        JoinShape::Snowflake => {
            for i in 1..n {
                add_edge(i - 1, i, rng, &mut joins);
            }
            let extra = (n / 3).min(3);
            for _ in 0..extra {
                let a = rng.index(n);
                let b = rng.index(n);
                if a != b && !joins.iter().any(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
                {
                    add_edge(a.min(b), a.max(b), rng, &mut joins);
                }
            }
        }
    }

    Query {
        id,
        class: params.class,
        template: params.template,
        tables,
        joins,
        etl_write_seconds: 0.0,
        noise_seed: rng.raw().next_u64(),
    }
}

use rand::RngCore;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogSpec};

    fn catalog() -> Catalog {
        Catalog::generate(
            &CatalogSpec {
                name: "t".into(),
                n_tables: 10,
                rows_range: (1e3, 1e6),
                width_range: (50.0, 200.0),
                index_prob: 0.5,
                fact_fraction: 0.3,
            },
            &mut SeededRng::new(1),
        )
    }

    fn gen(class: QueryClass, shape: JoinShape, n: usize, seed: u64) -> (Query, Catalog) {
        let cat = catalog();
        let params = QueryGenParams {
            class,
            n_tables: n,
            shape,
            pred_sel_range: (0.001, 0.5),
            fanout: QueryGenParams::DEFAULT_FANOUT,
            pred_prob: QueryGenParams::DEFAULT_PRED_PROB,
            template: 0,
        };
        let q = generate_query(0, &params, &cat, &mut SeededRng::new(seed));
        (q, cat)
    }

    #[test]
    fn chain_has_n_minus_1_edges() {
        let (q, _) = gen(QueryClass::WellEstimated, JoinShape::Chain, 5, 2);
        assert_eq!(q.tables.len(), 5);
        assert_eq!(q.joins.len(), 4);
    }

    #[test]
    fn star_edges_touch_center() {
        let (q, _) = gen(QueryClass::WellEstimated, JoinShape::Star, 6, 3);
        assert!(q.joins.iter().all(|e| e.a == 0));
    }

    #[test]
    fn nestloop_trap_underestimates_joins() {
        // Averaged over many edges, the estimated join selectivity must sit
        // well below the truth for the trap class.
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for seed in 0..30 {
            let (q, _) = gen(QueryClass::NestLoopTrap, JoinShape::Chain, 6, seed);
            for e in &q.joins {
                ratio_sum += (e.sel_est / e.sel_true).ln();
                count += 1;
            }
        }
        let mean_log_ratio = ratio_sum / count as f64;
        assert!(mean_log_ratio < -0.7, "mean log ratio {mean_log_ratio}");
    }

    #[test]
    fn well_estimated_is_nearly_unbiased() {
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for seed in 0..30 {
            let (q, _) = gen(QueryClass::WellEstimated, JoinShape::Chain, 6, seed);
            for e in &q.joins {
                ratio_sum += (e.sel_est / e.sel_true).ln();
                count += 1;
            }
        }
        let mean = ratio_sum / count as f64;
        assert!(mean.abs() < 0.12, "mean log ratio {mean}");
    }

    #[test]
    fn index_trap_inflates_estimated_correlation() {
        let (q, _) = gen(QueryClass::IndexTrap, JoinShape::Chain, 5, 7);
        for t in &q.tables {
            assert!(t.corr_est >= t.corr_true);
        }
    }

    #[test]
    fn cardinality_monotone_in_subset() {
        let (q, cat) = gen(QueryClass::WellEstimated, JoinShape::Chain, 4, 9);
        let single = q.cardinality(0b0001, &cat, World::True);
        assert!(single >= 1.0);
        // Full-set cardinality is at least 1 (clamped).
        let full = q.cardinality(0b1111, &cat, World::True);
        assert!(full >= 1.0);
    }

    #[test]
    fn connected_to_respects_edges() {
        let (q, _) = gen(QueryClass::WellEstimated, JoinShape::Chain, 4, 10);
        assert!(q.connected_to(0b0001, 1)); // chain edge 0-1
        assert!(!q.connected_to(0b0001, 3)); // 3 joins only 2
    }

    #[test]
    fn generation_deterministic() {
        let (q1, _) = gen(QueryClass::NestLoopTrap, JoinShape::Snowflake, 7, 42);
        let (q2, _) = gen(QueryClass::NestLoopTrap, JoinShape::Snowflake, 7, 42);
        assert_eq!(q1.tables.len(), q2.tables.len());
        for (a, b) in q1.joins.iter().zip(q2.joins.iter()) {
            assert_eq!(a.sel_true, b.sel_true);
            assert_eq!(a.sel_est, b.sel_est);
        }
    }
}
