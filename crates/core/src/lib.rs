//! LimeQO core: offline query optimization via low-rank matrix completion.
//!
//! This crate implements the paper's contribution:
//!
//! * [`matrix::WorkloadMatrix`] — the partially observed workload matrix
//!   `W̃` with complete, censored (timed-out) and unobserved cells, plus the
//!   derived mask matrix `M` and timeout matrix `T` (paper Eqs. 1–5),
//! * [`complete`] — predictive models that fill in the unobserved cells:
//!   censored alternating least squares (Algorithm 2), singular value
//!   thresholding, and nuclear-norm minimization via Soft-Impute (§5.5.5),
//! * [`policy`] — active-learning exploration policies: Random, Greedy,
//!   LimeQO (Algorithm 1), and the QO-Advisor / Bao-Cache / BayesQO
//!   baselines of §5,
//! * [`engine`] — the tick-driven exploration engine: an event-step state
//!   machine (`step(Event) -> Vec<Action>`) that both harnesses and the
//!   `limeqo-svc` daemon drive, plus the [`engine::AdmissionScheduler`]
//!   cadence policy,
//! * [`explore`] — the offline exploration harness: simulated-time
//!   accounting (each executed cell charges `min(true latency, timeout)`
//!   seconds, Eq. 3), wall-clock overhead metering for the predictive
//!   models, workload shift (§5.3) and data shift (§5.4) events,
//! * [`fault`] — deterministic fault injection: the [`fault::Storage`]
//!   trait persist talks to disk through, the real [`fault::FsStorage`],
//!   and the scripted [`fault::FaultStorage`] wrapper chaos tests use to
//!   inject replayable I/O failures,
//! * [`persist`] — durable engine state: an append-only, checksummed
//!   journal of input events plus periodic full-state snapshots with GC;
//!   [`persist::DurableEngine`] recovers from any kill point and resumes
//!   bit-identically,
//! * [`store`] — the adaptive observation layer: [`store::ObservationStore`]
//!   wraps the matrix with drift-aware bookkeeping (censored priors demoted
//!   from stale observations, per-row fresh-density counts, shift epochs)
//!   and [`store::DriftPolicy`] carries the retention / density-gate /
//!   cold-row-bonus / warm-start knobs,
//! * [`select`] — the sublinear candidate-selection subsystem: uniform
//!   sampling without replacement over the matrix's Fenwick rank index
//!   (no candidate materialization) and bounded top-m heap selection,
//!   which every policy's selection path routes through,
//! * [`metrics`] — latency-vs-exploration-time curves and the summary
//!   statistics the paper's figures report,
//! * [`scenario`] — declarative [`scenario::PolicySpec`]s, the policy side
//!   of the scenario engine (`limeqo-sim` declares the environments, the
//!   bench runner executes the cross product).
//!
//! The crate is DBMS-agnostic: the exploration harness only sees an
//! [`explore::Oracle`] of true latencies, which `limeqo-sim` provides from
//! its simulated PostgreSQL, and which tests provide from synthetic
//! matrices. This mirrors the paper's design constraint that LimeQO "does
//! not make assumptions about the underlying DBMS".

#![warn(missing_docs)]

pub mod complete;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod matrix;
pub mod metrics;
pub mod online;
pub mod persist;
pub mod policy;
pub mod scenario;
pub mod select;
pub mod store;

pub use complete::{AlsCompleter, Completer, NucCompleter, SvtCompleter};
pub use engine::{Action, AdmissionScheduler, Engine, Event, RetryPolicy};
pub use explore::{ExploreConfig, Explorer, MatOracle, Oracle, TraceEntry};
pub use fault::{
    FaultAt, FaultKind, FaultProbe, FaultScript, FaultStorage, FsStorage, OpClass, ScriptedFault,
    Storage, StorageFile,
};
pub use matrix::{Cell, WorkloadMatrix};
pub use metrics::{Curve, CurvePoint};
pub use online::{OnlineConfig, OnlineExplorer, OnlineStats};
pub use persist::{DurableConfig, DurableEngine, PersistError};
pub use policy::{CellChoice, Policy, PolicyCtx};
pub use scenario::PolicySpec;
pub use store::{DriftPolicy, ObservationError, ObservationStore, PriorKind};
