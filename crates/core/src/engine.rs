//! The tick-driven exploration engine.
//!
//! Historically the crate had two run-to-completion harnesses —
//! [`crate::explore::Explorer`] (the offline Algorithm 1 loop) and
//! [`crate::online::OnlineExplorer`] (the arrival-driven gambler) — each
//! owning its loop, clock, and matrix. A long-lived optimizer service
//! cannot run to completion: query arrivals, observation reports, and
//! hint requests come in continuously and the process must be able to
//! stop and resume between any two of them.
//!
//! [`Engine`] is the shared mechanism both harnesses now wrap: a pure
//! event-step state machine with an explicit [`Engine::step`]`(Event) ->
//! Vec<Action>` API. The engine owns everything that must survive a
//! restart — the [`ObservationStore`], the policy/completer model state,
//! the RNG, the simulated clock, and the exploration trace — and *nothing*
//! that belongs to the environment (the oracle, the latency-vs-time curve,
//! time budgets). Drivers execute [`Action::Probe`] directives against
//! whatever runs queries for them (a [`crate::explore::MatOracle`] in the
//! harnesses, a real DBMS in a deployment) and feed the results back as
//! [`Event::Observation`]s.
//!
//! Determinism contract: the engine is a deterministic function of its
//! initial state and the event sequence. Two engines built identically and
//! fed the same events produce bit-identical stores, traces, and actions —
//! the legacy `run()` loops are thin drivers that feed events in the old
//! fixed order, so the refactor moves no goldens. The same property is
//! what makes the journal in [`crate::persist`] sufficient for crash
//! recovery.
//!
//! Cadence decisions (when to probe another batch, when to refresh the
//! model) live in the [`AdmissionScheduler`], not in the mechanism, so a
//! service can swap in a different schedule without touching the
//! exploration semantics.

use crate::complete::Completer;
use crate::explore::{ExploreConfig, TraceEntry};
use crate::matrix::{Cell, WorkloadMatrix};
use crate::online::{OnlineConfig, OnlineStats};
use crate::policy::{CellChoice, Policy, PolicyCtx};
use crate::store::{DriftPolicy, ObservationStore};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// An input to the engine. Mutating events (everything except
/// [`Event::HintRequest`]) are exactly what the durability journal records:
/// replaying them against a snapshot reproduces the engine bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Timer tick: ask the policy for the next offline probe batch
    /// (overhead-metered). Emits one [`Action::Probe`] per selected cell.
    Tick,
    /// A probe finished: the executed latency, or the timeout bound if the
    /// probe was cancelled (`censored`). Resolves a pending [`Action::Probe`]
    /// from either a tick (offline) or a gambling arrival (online).
    Observation {
        /// Query (row) probed.
        row: usize,
        /// Hint (column) probed.
        col: usize,
        /// Measured latency, or the timeout bound when censored.
        value: f64,
        /// Whether the probe hit its timeout.
        censored: bool,
    },
    /// A query arrived and must be served (online mode). Emits either a
    /// [`Action::Recommend`] immediately or a [`Action::Probe`] gamble whose
    /// observation produces the recommendation.
    Arrival {
        /// Query (row) that arrived.
        row: usize,
    },
    /// Workload shift (§5.3): new queries appended, each with its
    /// already-measured default-plan latency.
    AddQueries {
        /// Default-plan latency of each appended query, in order.
        defaults: Vec<f64>,
    },
    /// Data shift (§5.4): the underlying data changed. Retention (see
    /// [`DriftPolicy`]) is applied to the stale observations, then the
    /// online re-measurements are recorded in order. Build the observation
    /// list with [`data_shift_observations`].
    DataShift {
        /// Active row count after the shift (may shrink).
        new_rows: usize,
        /// Fresh `(row, col, latency)` measurements taken online against
        /// the new data, recorded after retention is applied.
        observations: Vec<(usize, usize, f64)>,
    },
    /// Read-only request for the current best hint of a query. Never
    /// journaled: it mutates nothing, not even the RNG.
    HintRequest {
        /// Query (row) to recommend for.
        row: usize,
    },
}

impl Event {
    /// Whether the event leaves the engine state untouched (and therefore
    /// needs no journal record).
    pub fn is_read_only(&self) -> bool {
        matches!(self, Event::HintRequest { .. })
    }
}

/// An output directive. The engine never talks to an oracle or a DBMS —
/// it asks its driver to, through these.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Execute query `row` with hint `col`, aborting after `timeout`
    /// seconds; report the result back as an [`Event::Observation`].
    Probe {
        /// Query (row) to execute.
        row: usize,
        /// Hint (column) to execute.
        col: usize,
        /// Abort past this many seconds (the cell becomes censored).
        timeout: f64,
    },
    /// Serve query `row` with hint `col`; `latency` is what the arrival
    /// experienced (for a cancelled gamble it includes the wasted budget).
    Recommend {
        /// Query (row) served.
        row: usize,
        /// Hint (column) served.
        col: usize,
        /// Latency the arrival experienced.
        latency: f64,
    },
    /// The completion model was re-fit on the current matrix. Informational:
    /// lets a service surface refresh cadence without polling.
    ModelRefreshed,
}

/// Cadence policy: decides when the engine probes another offline round and
/// when the online completion model is re-fit. Split from the [`Engine`]
/// mechanism so a service can change schedules without touching exploration
/// semantics. The defaults pin the legacy harness behavior exactly.
#[derive(Debug, Clone)]
pub struct AdmissionScheduler {
    /// Online: re-fit the completion model every this many gamble attempts.
    refresh_every: usize,
    /// Gamble attempts since the last re-fit (starts saturated so the first
    /// gamble always refreshes).
    since_refresh: usize,
    /// Offline: per-run safety valve — at most this many rounds per driver
    /// run, however large the budget.
    max_steps: usize,
    /// Rounds admitted in the current driver run; reset by
    /// [`AdmissionScheduler::start_run`]. Deliberately *per-run* state (the
    /// legacy `run_until` counted steps locally), so it is not persisted:
    /// recovery starts a fresh run.
    run_steps: usize,
}

impl AdmissionScheduler {
    fn new(max_steps: usize, refresh_every: usize) -> Self {
        AdmissionScheduler { refresh_every, since_refresh: usize::MAX / 2, max_steps, run_steps: 0 }
    }

    /// Begin a driver run: resets the per-run round counter.
    pub fn start_run(&mut self) {
        self.run_steps = 0;
    }

    /// Offline admission: may the driver probe another round, given the
    /// clock and its budget? Counts the round when admitted.
    pub fn admit_round(&mut self, time_spent: f64, budget: f64) -> bool {
        if time_spent >= budget || self.run_steps >= self.max_steps {
            return false;
        }
        self.run_steps += 1;
        true
    }

    /// Online admission: re-fit the model for this gamble? Replicates the
    /// legacy cadence exactly — refresh when no predictions exist or the
    /// period elapsed; the staleness counter advances per gamble either way.
    fn admit_refresh(&mut self, have_predictions: bool) -> bool {
        let refresh = !have_predictions || self.since_refresh >= self.refresh_every;
        if refresh {
            self.since_refresh = 0;
        }
        self.since_refresh += 1;
        refresh
    }

    pub(crate) fn persist_state(&self) -> u64 {
        self.since_refresh as u64
    }

    pub(crate) fn restore_state(&mut self, since_refresh: u64) {
        self.since_refresh = since_refresh as usize;
    }
}

/// An issued online gamble awaiting its observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingGamble {
    pub(crate) row: usize,
    pub(crate) col: usize,
    pub(crate) incumbent_col: usize,
    pub(crate) incumbent_lat: f64,
}

/// The event-driven exploration engine. See the module docs for the
/// mechanism/driver split; construct with [`Engine::offline`] or
/// [`Engine::online`].
pub struct Engine<'a> {
    pub(crate) store: ObservationStore,
    pub(crate) policy: Option<Box<dyn Policy + 'a>>,
    pub(crate) completer: Option<Box<dyn Completer + Send + 'a>>,
    est_cost: Option<&'a Mat>,
    pub(crate) batch: usize,
    pub(crate) retention: DriftPolicy,
    pub(crate) online_cfg: Option<OnlineConfig>,
    pub(crate) scheduler: AdmissionScheduler,
    pub(crate) rng: SeededRng,
    /// Simulated offline exploration seconds spent (Eq. 3).
    pub(crate) time_spent: f64,
    /// Wall-clock model overhead seconds (Figs. 7/13). Informational: not
    /// part of the determinism contract and not persisted exactly.
    pub(crate) overhead: f64,
    pub(crate) cells_executed: usize,
    pub(crate) trace: Vec<TraceEntry>,
    /// Offline probes issued but not yet observed. After recovery these are
    /// re-emitted so the driver can re-execute them (at-least-once
    /// delivery; the store update is idempotent because the oracle is
    /// deterministic).
    pub(crate) pending: Vec<CellChoice>,
    pub(crate) predictions: Option<Mat>,
    pub(crate) gamble: Option<PendingGamble>,
    pub(crate) stats: OnlineStats,
}

impl<'a> Engine<'a> {
    /// An offline engine: ticks run the policy, probes are charged to the
    /// simulated clock. Seed derivation (`seed ^ 0xEE77`) matches the
    /// legacy [`crate::explore::Explorer`] exactly.
    pub fn offline(
        store: ObservationStore,
        policy: Box<dyn Policy + 'a>,
        est_cost: Option<&'a Mat>,
        cfg: &ExploreConfig,
    ) -> Self {
        Engine {
            store,
            policy: Some(policy),
            completer: None,
            est_cost,
            batch: cfg.batch,
            retention: cfg.retention,
            online_cfg: None,
            scheduler: AdmissionScheduler::new(cfg.max_steps, usize::MAX),
            rng: SeededRng::new(cfg.seed ^ 0xEE77),
            time_spent: 0.0,
            overhead: 0.0,
            cells_executed: 0,
            trace: Vec::new(),
            pending: Vec::new(),
            predictions: None,
            gamble: None,
            stats: OnlineStats::default(),
        }
    }

    /// An online engine: arrivals are served, gambles probe unverified
    /// hints under the ρ-bounded budget. Seed derivation (`seed ^ 0x0411E`)
    /// matches the legacy [`crate::online::OnlineExplorer`] exactly.
    pub fn online(
        store: ObservationStore,
        completer: Box<dyn Completer + Send + 'a>,
        cfg: &OnlineConfig,
    ) -> Self {
        Engine {
            store,
            policy: None,
            completer: Some(completer),
            est_cost: None,
            batch: 0,
            retention: DriftPolicy::legacy(),
            scheduler: AdmissionScheduler::new(usize::MAX, cfg.refresh_every),
            rng: SeededRng::new(cfg.seed ^ 0x0411E),
            online_cfg: Some(cfg.clone()),
            time_spent: 0.0,
            overhead: 0.0,
            cells_executed: 0,
            trace: Vec::new(),
            pending: Vec::new(),
            predictions: None,
            gamble: None,
            stats: OnlineStats::default(),
        }
    }

    /// Process one event, returning the directives the driver must act on.
    pub fn step(&mut self, event: Event) -> Vec<Action> {
        match event {
            Event::Tick => self.on_tick(),
            Event::Observation { row, col, value, censored } => {
                self.on_observation(row, col, value, censored)
            }
            Event::Arrival { row } => self.on_arrival(row),
            Event::AddQueries { defaults } => self.on_add_queries(&defaults),
            Event::DataShift { new_rows, observations } => {
                self.on_data_shift(new_rows, &observations)
            }
            Event::HintRequest { row } => self.on_hint_request(row),
        }
    }

    fn on_tick(&mut self) -> Vec<Action> {
        let started = std::time::Instant::now();
        let selection = {
            let ctx = PolicyCtx {
                wm: self.store.matrix(),
                est_cost: self.est_cost,
                store: Some(&self.store),
            };
            self.policy.as_mut().expect("Event::Tick requires an offline policy").select(
                &ctx,
                self.batch,
                &mut self.rng,
            )
        };
        self.overhead += started.elapsed().as_secs_f64();
        self.pending.extend_from_slice(&selection);
        selection
            .into_iter()
            .map(|c| Action::Probe { row: c.row, col: c.col, timeout: c.timeout })
            .collect()
    }

    fn on_observation(
        &mut self,
        row: usize,
        col: usize,
        value: f64,
        censored: bool,
    ) -> Vec<Action> {
        if let Some(g) = self.gamble {
            if g.row == row && g.col == col {
                self.gamble = None;
                return self.resolve_gamble(g, value, censored);
            }
        }
        if let Some(pos) = self.pending.iter().position(|c| c.row == row && c.col == col) {
            self.pending.remove(pos);
        }
        if censored {
            self.store.record_censored(row, col, value);
        } else {
            self.store.record_complete(row, col, value);
        }
        self.time_spent += value;
        self.trace.push(TraceEntry { row, col, charged: value, censored });
        self.cells_executed += 1;
        Vec::new()
    }

    fn resolve_gamble(&mut self, g: PendingGamble, value: f64, censored: bool) -> Vec<Action> {
        let (experienced, served_col) = if censored {
            // Cancelled at the bound; the incumbent reruns. The arrival
            // paid budget + incumbent — still within (ρ + 1)× worst case,
            // and the bound is recorded for the model.
            self.store.record_censored(g.row, g.col, value);
            self.stats.cancelled += 1;
            (value + g.incumbent_lat, g.incumbent_col)
        } else {
            self.store.record_complete(g.row, g.col, value);
            if value < g.incumbent_lat {
                self.stats.wins += 1;
            }
            (value, g.col)
        };
        self.stats.total_latency += experienced;
        vec![Action::Recommend { row: g.row, col: served_col, latency: experienced }]
    }

    fn on_arrival(&mut self, row: usize) -> Vec<Action> {
        let cfg = self.online_cfg.clone().expect("Event::Arrival requires an online engine");
        let wm = self.store.matrix();
        let (incumbent_col, incumbent_lat) = wm.row_best(row).expect("default always observed");
        // The default column is observed at construction and a gamble never
        // re-probes a completed cell, so cell (row, 0) still holds the
        // default latency the legacy explorer read from its oracle.
        let default_lat = match wm.cell(row, WorkloadMatrix::DEFAULT_HINT) {
            Cell::Complete(v) => v,
            _ => unreachable!("default column is always complete"),
        };
        self.stats.arrivals += 1;
        self.stats.default_latency += default_lat;
        self.stats.incumbent_latency += incumbent_lat;

        let explore_prob = if cfg.cold_bonus > 0.0 {
            let observed = wm.row_observed_count(row).max(1);
            (cfg.explore_prob + cfg.cold_bonus / (observed as f64).sqrt()).min(1.0)
        } else {
            cfg.explore_prob
        };
        let gamble = self.rng.chance(explore_prob);
        if !gamble {
            self.stats.total_latency += incumbent_lat;
            return vec![Action::Recommend { row, col: incumbent_col, latency: incumbent_lat }];
        }
        self.stats.explored += 1;
        let mut actions = Vec::new();
        if self.scheduler.admit_refresh(self.predictions.is_some()) {
            let started = std::time::Instant::now();
            self.predictions = Some(
                self.completer
                    .as_mut()
                    .expect("online engine needs a completer")
                    .complete(self.store.matrix()),
            );
            self.overhead += started.elapsed().as_secs_f64();
            actions.push(Action::ModelRefreshed);
        }
        let pred = self.predictions.as_ref().expect("predictions fresh");
        let wm = self.store.matrix();

        // Best predicted not-yet-verified hint for this query.
        let mut cand: Option<(usize, f64)> = None;
        for col in 0..wm.n_cols() {
            if matches!(wm.cell(row, col), Cell::Complete(_)) {
                continue;
            }
            let p = pred[(row, col)];
            if cand.map_or(true, |(_, b)| p < b) {
                cand = Some((col, p));
            }
        }
        // Serve the incumbent unless the model predicts a real win.
        let gamble_col = match cand {
            Some((col, predicted)) if predicted < incumbent_lat => col,
            _ => {
                self.stats.total_latency += incumbent_lat;
                actions.push(Action::Recommend { row, col: incumbent_col, latency: incumbent_lat });
                return actions;
            }
        };
        let budget = cfg.rho * incumbent_lat;
        self.gamble = Some(PendingGamble { row, col: gamble_col, incumbent_col, incumbent_lat });
        actions.push(Action::Probe { row, col: gamble_col, timeout: budget });
        actions
    }

    fn on_add_queries(&mut self, defaults: &[f64]) -> Vec<Action> {
        self.store.add_rows(defaults.len());
        let base = self.store.matrix().n_rows() - defaults.len();
        for (i, &d) in defaults.iter().enumerate() {
            self.store.record_complete(base + i, WorkloadMatrix::DEFAULT_HINT, d);
        }
        Vec::new()
    }

    fn on_data_shift(
        &mut self,
        new_rows: usize,
        observations: &[(usize, usize, f64)],
    ) -> Vec<Action> {
        let same_rows = new_rows == self.store.matrix().n_rows();
        let retain = self.retention.retain_priors && same_rows;
        if retain {
            self.store.demote_to_priors(self.retention.prior_decay);
        } else if same_rows {
            self.store.discard_all();
        } else {
            // The new data exposes fewer rows, which priors cannot
            // describe: discard at the new shape (epoch still advances —
            // the post-shift matrix is starved either way).
            self.store.discard_resized(new_rows);
        }
        for &(row, col, value) in observations {
            self.store.record_complete(row, col, value);
        }
        // Queued probes describe the old data; in the legacy driver order
        // every batch is fully observed before a shift, so this is a no-op
        // there — it only matters for a service shifted mid-round.
        self.pending.clear();
        self.predictions = None;
        Vec::new()
    }

    fn on_hint_request(&self, row: usize) -> Vec<Action> {
        match self.store.matrix().row_best(row) {
            Some((col, latency)) => vec![Action::Recommend { row, col, latency }],
            None => Vec::new(),
        }
    }

    /// Offline admission helper for drivers: combines the scheduler's
    /// per-run cap with the time budget.
    pub fn admit_round(&mut self, budget: f64) -> bool {
        let t = self.time_spent;
        self.scheduler.admit_round(t, budget)
    }

    /// The cadence scheduler (mutable, e.g. to [`AdmissionScheduler::start_run`]).
    pub fn scheduler_mut(&mut self) -> &mut AdmissionScheduler {
        &mut self.scheduler
    }

    /// The observation store.
    pub fn store(&self) -> &ObservationStore {
        &self.store
    }

    /// The partially observed workload matrix.
    pub fn wm(&self) -> &WorkloadMatrix {
        self.store.matrix()
    }

    /// Simulated offline exploration seconds spent.
    pub fn time_spent(&self) -> f64 {
        self.time_spent
    }

    /// Wall-clock model overhead seconds.
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Cells executed so far (complete + censored).
    pub fn cells_executed(&self) -> usize {
        self.cells_executed
    }

    /// Every offline execution in order — the run's exploration trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Accumulated online statistics (zeroed for offline engines).
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Probes issued but not yet observed. After [`crate::persist`]
    /// recovery the driver must re-execute these (the journal may have
    /// recorded the tick but lost some of its observations).
    pub fn pending(&self) -> &[CellChoice] {
        &self.pending
    }

    /// All probes the engine is waiting on, including an online gamble in
    /// flight (its ρ-bounded timeout is recomputed from the stored
    /// incumbent). After recovery the driver re-executes these and feeds
    /// the results back as `Observation` events — at-least-once delivery
    /// is safe because the oracle is deterministic and observations are
    /// idempotent.
    pub fn outstanding_probes(&self) -> Vec<CellChoice> {
        let mut probes = self.pending.clone();
        if let (Some(g), Some(cfg)) = (&self.gamble, &self.online_cfg) {
            probes.push(CellChoice { row: g.row, col: g.col, timeout: cfg.rho * g.incumbent_lat });
        }
        probes
    }

    /// Point the engine at a new environment's cost estimates (data shift).
    pub fn set_est_cost(&mut self, est_cost: Option<&'a Mat>) {
        self.est_cost = est_cost;
    }

    /// The drift-retention configuration.
    pub fn retention(&self) -> &DriftPolicy {
        &self.retention
    }
}

/// Build the online re-measurement list for a data shift, in the exact
/// order the legacy harness observed them: per row, the default plan, then
/// the cached best hint (if distinct). With
/// [`DriftPolicy::reverify_runner_up`] set (and retention active), the best
/// *surviving* stale completed plan — the row's strongest value-prior after
/// the cached best — is also re-measured, so it re-enters the matrix as a
/// fresh observation instead of waiting for offline re-probing.
///
/// `probe(row, col)` measures a cell against the *new* data.
pub fn data_shift_observations(
    wm: &WorkloadMatrix,
    retention: &DriftPolicy,
    new_rows: usize,
    probe: impl Fn(usize, usize) -> f64,
) -> Vec<(usize, usize, f64)> {
    let same_rows = new_rows == wm.n_rows();
    let reverify = retention.retain_priors && retention.reverify_runner_up && same_rows;
    let mut obs = Vec::new();
    for i in 0..new_rows {
        let best = wm.row_best(i).map(|(c, _)| c);
        obs.push((i, WorkloadMatrix::DEFAULT_HINT, probe(i, WorkloadMatrix::DEFAULT_HINT)));
        if let Some(b) = best {
            if b != WorkloadMatrix::DEFAULT_HINT {
                obs.push((i, b, probe(i, b)));
            }
        }
        if reverify {
            let mut runner: Option<(usize, f64)> = None;
            for &col32 in wm.observed_cols(i) {
                let c = col32 as usize;
                if c == WorkloadMatrix::DEFAULT_HINT || Some(c) == best {
                    continue;
                }
                if let Cell::Complete(v) = wm.cell(i, c) {
                    if runner.map_or(true, |(_, rv)| v < rv) {
                        runner = Some((c, v));
                    }
                }
            }
            if let Some((c, _)) = runner {
                obs.push((i, c, probe(i, c)));
            }
        }
    }
    obs
}
