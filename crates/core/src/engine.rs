//! The tick-driven exploration engine.
//!
//! Historically the crate had two run-to-completion harnesses —
//! [`crate::explore::Explorer`] (the offline Algorithm 1 loop) and
//! [`crate::online::OnlineExplorer`] (the arrival-driven gambler) — each
//! owning its loop, clock, and matrix. A long-lived optimizer service
//! cannot run to completion: query arrivals, observation reports, and
//! hint requests come in continuously and the process must be able to
//! stop and resume between any two of them.
//!
//! [`Engine`] is the shared mechanism both harnesses now wrap: a pure
//! event-step state machine with an explicit [`Engine::step`]`(Event) ->
//! Vec<Action>` API. The engine owns everything that must survive a
//! restart — the [`ObservationStore`], the policy/completer model state,
//! the RNG, the simulated clock, and the exploration trace — and *nothing*
//! that belongs to the environment (the oracle, the latency-vs-time curve,
//! time budgets). Drivers execute [`Action::Probe`] directives against
//! whatever runs queries for them (a [`crate::explore::MatOracle`] in the
//! harnesses, a real DBMS in a deployment) and feed the results back as
//! [`Event::Observation`]s.
//!
//! Determinism contract: the engine is a deterministic function of its
//! initial state and the event sequence. Two engines built identically and
//! fed the same events produce bit-identical stores, traces, and actions —
//! the legacy `run()` loops are thin drivers that feed events in the old
//! fixed order, so the refactor moves no goldens. The same property is
//! what makes the journal in [`crate::persist`] sufficient for crash
//! recovery.
//!
//! Cadence decisions (when to probe another batch, when to refresh the
//! model) live in the [`AdmissionScheduler`], not in the mechanism, so a
//! service can swap in a different schedule without touching the
//! exploration semantics.

use crate::complete::Completer;
use crate::explore::{ExploreConfig, TraceEntry};
use crate::matrix::{Cell, WorkloadMatrix};
use crate::online::{OnlineConfig, OnlineStats};
use crate::policy::{CellChoice, Policy, PolicyCtx};
use crate::store::{DriftPolicy, ObservationStore};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// An input to the engine. Mutating events (everything except
/// [`Event::HintRequest`]) are exactly what the durability journal records:
/// replaying them against a snapshot reproduces the engine bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Timer tick: ask the policy for the next offline probe batch
    /// (overhead-metered). Emits one [`Action::Probe`] per selected cell.
    Tick,
    /// A probe finished: the executed latency, or the timeout bound if the
    /// probe was cancelled (`censored`). Resolves a pending [`Action::Probe`]
    /// from either a tick (offline) or a gambling arrival (online).
    Observation {
        /// Query (row) probed.
        row: usize,
        /// Hint (column) probed.
        col: usize,
        /// Measured latency, or the timeout bound when censored.
        value: f64,
        /// Whether the probe hit its timeout.
        censored: bool,
    },
    /// A query arrived and must be served (online mode). Emits either a
    /// [`Action::Recommend`] immediately or a [`Action::Probe`] gamble whose
    /// observation produces the recommendation.
    Arrival {
        /// Query (row) that arrived.
        row: usize,
    },
    /// Workload shift (§5.3): new queries appended, each with its
    /// already-measured default-plan latency.
    AddQueries {
        /// Default-plan latency of each appended query, in order.
        defaults: Vec<f64>,
    },
    /// Data shift (§5.4): the underlying data changed. Retention (see
    /// [`DriftPolicy`]) is applied to the stale observations, then the
    /// online re-measurements are recorded in order. Build the observation
    /// list with [`data_shift_observations`].
    DataShift {
        /// Active row count after the shift (may shrink).
        new_rows: usize,
        /// Fresh `(row, col, latency)` measurements taken online against
        /// the new data, recorded after retention is applied.
        observations: Vec<(usize, usize, f64)>,
    },
    /// A probe errored or timed out at the transport level — no latency,
    /// not even a censored bound, came back. The engine schedules a
    /// bounded retry with deterministic exponential backoff (counted in
    /// ticks, see [`RetryPolicy`]); an online gamble falls back to its
    /// incumbent immediately. Journaled like any other mutating event so
    /// recovery replays the same retry schedule bit for bit.
    ProbeFailed {
        /// Query (row) whose probe failed.
        row: usize,
        /// Hint (column) whose probe failed.
        col: usize,
    },
    /// Read-only request for the current best hint of a query. Never
    /// journaled: it mutates nothing, not even the RNG.
    HintRequest {
        /// Query (row) to recommend for.
        row: usize,
    },
}

impl Event {
    /// Whether the event leaves the engine state untouched (and therefore
    /// needs no journal record).
    pub fn is_read_only(&self) -> bool {
        matches!(self, Event::HintRequest { .. })
    }
}

/// An output directive. The engine never talks to an oracle or a DBMS —
/// it asks its driver to, through these.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Execute query `row` with hint `col`, aborting after `timeout`
    /// seconds; report the result back as an [`Event::Observation`].
    Probe {
        /// Query (row) to execute.
        row: usize,
        /// Hint (column) to execute.
        col: usize,
        /// Abort past this many seconds (the cell becomes censored).
        timeout: f64,
    },
    /// Serve query `row` with hint `col`; `latency` is what the arrival
    /// experienced (for a cancelled gamble it includes the wasted budget).
    Recommend {
        /// Query (row) served.
        row: usize,
        /// Hint (column) served.
        col: usize,
        /// Latency the arrival experienced.
        latency: f64,
    },
    /// The completion model was re-fit on the current matrix. Informational:
    /// lets a service surface refresh cadence without polling.
    ModelRefreshed,
}

/// Cadence policy: decides when the engine probes another offline round and
/// when the online completion model is re-fit. Split from the [`Engine`]
/// mechanism so a service can change schedules without touching exploration
/// semantics. The defaults pin the legacy harness behavior exactly.
#[derive(Debug, Clone)]
pub struct AdmissionScheduler {
    /// Online: re-fit the completion model every this many gamble attempts.
    refresh_every: usize,
    /// Gamble attempts since the last re-fit (starts saturated so the first
    /// gamble always refreshes).
    since_refresh: usize,
    /// Offline: per-run safety valve — at most this many rounds per driver
    /// run, however large the budget.
    max_steps: usize,
    /// Rounds admitted in the current driver run; reset by
    /// [`AdmissionScheduler::start_run`]. Deliberately *per-run* state (the
    /// legacy `run_until` counted steps locally), so it is not persisted:
    /// recovery starts a fresh run.
    run_steps: usize,
}

impl AdmissionScheduler {
    fn new(max_steps: usize, refresh_every: usize) -> Self {
        AdmissionScheduler { refresh_every, since_refresh: usize::MAX / 2, max_steps, run_steps: 0 }
    }

    /// Begin a driver run: resets the per-run round counter.
    pub fn start_run(&mut self) {
        self.run_steps = 0;
    }

    /// Offline admission: may the driver probe another round, given the
    /// clock and its budget? Counts the round when admitted.
    pub fn admit_round(&mut self, time_spent: f64, budget: f64) -> bool {
        if time_spent >= budget || self.run_steps >= self.max_steps {
            return false;
        }
        self.run_steps += 1;
        true
    }

    /// Online admission: re-fit the model for this gamble? Replicates the
    /// legacy cadence exactly — refresh when no predictions exist or the
    /// period elapsed; the staleness counter advances per gamble either way.
    fn admit_refresh(&mut self, have_predictions: bool) -> bool {
        let refresh = !have_predictions || self.since_refresh >= self.refresh_every;
        if refresh {
            self.since_refresh = 0;
        }
        self.since_refresh += 1;
        refresh
    }

    pub(crate) fn persist_state(&self) -> u64 {
        self.since_refresh as u64
    }

    pub(crate) fn restore_state(&mut self, since_refresh: u64) {
        self.since_refresh = since_refresh as usize;
    }
}

/// An issued online gamble awaiting its observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingGamble {
    pub(crate) row: usize,
    pub(crate) col: usize,
    pub(crate) incumbent_col: usize,
    pub(crate) incumbent_lat: f64,
}

/// Bounded-retry policy for failed probes ([`Event::ProbeFailed`]).
///
/// Backoff is *deterministic and tick-denominated*: a probe that has
/// failed `k` times is re-issued `backoff_base << (k - 1)` ticks after the
/// failure (1, 2, 4, … ticks with the default base), never by wall clock.
/// Because the schedule is a pure function of journaled events, crash
/// recovery replays the exact same retries at the exact same ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Give up on a cell after this many failed attempts beyond the first
    /// (the cell stays unobserved; the policy may re-select it later).
    pub max_retries: usize,
    /// Base backoff in ticks; doubles per consecutive failure.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, backoff_base: 1 }
    }
}

/// A failed probe waiting out its backoff before re-issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RetryProbe {
    pub(crate) row: usize,
    pub(crate) col: usize,
    pub(crate) timeout: f64,
    /// Re-issue at the first tick where `ticks >= due_tick`.
    pub(crate) due_tick: u64,
}

/// The event-driven exploration engine. See the module docs for the
/// mechanism/driver split; construct with [`Engine::offline`] or
/// [`Engine::online`].
pub struct Engine<'a> {
    pub(crate) store: ObservationStore,
    pub(crate) policy: Option<Box<dyn Policy + 'a>>,
    pub(crate) completer: Option<Box<dyn Completer + Send + 'a>>,
    est_cost: Option<&'a Mat>,
    pub(crate) batch: usize,
    pub(crate) retention: DriftPolicy,
    pub(crate) online_cfg: Option<OnlineConfig>,
    pub(crate) scheduler: AdmissionScheduler,
    pub(crate) rng: SeededRng,
    /// Simulated offline exploration seconds spent (Eq. 3).
    pub(crate) time_spent: f64,
    /// Wall-clock model overhead seconds (Figs. 7/13). Informational: not
    /// part of the determinism contract and not persisted exactly.
    pub(crate) overhead: f64,
    pub(crate) cells_executed: usize,
    pub(crate) trace: Vec<TraceEntry>,
    /// Offline probes issued but not yet observed. After recovery these are
    /// re-emitted so the driver can re-execute them (at-least-once
    /// delivery; the store update is idempotent because the oracle is
    /// deterministic).
    pub(crate) pending: Vec<CellChoice>,
    pub(crate) predictions: Option<Mat>,
    pub(crate) gamble: Option<PendingGamble>,
    pub(crate) stats: OnlineStats,
    /// Static retry configuration (not persisted; part of the config tag).
    pub(crate) retry: RetryPolicy,
    /// Ticks processed — the denomination retry backoff counts in.
    pub(crate) ticks: u64,
    /// Failed probes waiting out their backoff.
    pub(crate) retry_queue: Vec<RetryProbe>,
    /// Consecutive-failure counts per cell still being retried.
    pub(crate) fail_counts: Vec<(usize, usize, u32)>,
    /// Total [`Event::ProbeFailed`]s accepted.
    pub(crate) probe_failures: usize,
    /// Probes re-issued after backoff.
    pub(crate) probe_retries: usize,
    /// Probes abandoned after exhausting `retry.max_retries`.
    pub(crate) probes_dropped: usize,
}

impl<'a> Engine<'a> {
    /// An offline engine: ticks run the policy, probes are charged to the
    /// simulated clock. Seed derivation (`seed ^ 0xEE77`) matches the
    /// legacy [`crate::explore::Explorer`] exactly.
    pub fn offline(
        store: ObservationStore,
        policy: Box<dyn Policy + 'a>,
        est_cost: Option<&'a Mat>,
        cfg: &ExploreConfig,
    ) -> Self {
        Engine {
            store,
            policy: Some(policy),
            completer: None,
            est_cost,
            batch: cfg.batch,
            retention: cfg.retention,
            online_cfg: None,
            scheduler: AdmissionScheduler::new(cfg.max_steps, usize::MAX),
            rng: SeededRng::new(cfg.seed ^ 0xEE77),
            time_spent: 0.0,
            overhead: 0.0,
            cells_executed: 0,
            trace: Vec::new(),
            pending: Vec::new(),
            predictions: None,
            gamble: None,
            stats: OnlineStats::default(),
            retry: cfg.retry,
            ticks: 0,
            retry_queue: Vec::new(),
            fail_counts: Vec::new(),
            probe_failures: 0,
            probe_retries: 0,
            probes_dropped: 0,
        }
    }

    /// An online engine: arrivals are served, gambles probe unverified
    /// hints under the ρ-bounded budget. Seed derivation (`seed ^ 0x0411E`)
    /// matches the legacy [`crate::online::OnlineExplorer`] exactly.
    pub fn online(
        store: ObservationStore,
        completer: Box<dyn Completer + Send + 'a>,
        cfg: &OnlineConfig,
    ) -> Self {
        Engine {
            store,
            policy: None,
            completer: Some(completer),
            est_cost: None,
            batch: 0,
            retention: DriftPolicy::legacy(),
            scheduler: AdmissionScheduler::new(usize::MAX, cfg.refresh_every),
            rng: SeededRng::new(cfg.seed ^ 0x0411E),
            online_cfg: Some(cfg.clone()),
            time_spent: 0.0,
            overhead: 0.0,
            cells_executed: 0,
            trace: Vec::new(),
            pending: Vec::new(),
            predictions: None,
            gamble: None,
            stats: OnlineStats::default(),
            retry: RetryPolicy::default(),
            ticks: 0,
            retry_queue: Vec::new(),
            fail_counts: Vec::new(),
            probe_failures: 0,
            probe_retries: 0,
            probes_dropped: 0,
        }
    }

    /// Process one event, returning the directives the driver must act on.
    pub fn step(&mut self, event: Event) -> Vec<Action> {
        match event {
            Event::Tick => self.on_tick(),
            Event::Observation { row, col, value, censored } => {
                self.on_observation(row, col, value, censored)
            }
            Event::Arrival { row } => self.on_arrival(row),
            Event::AddQueries { defaults } => self.on_add_queries(&defaults),
            Event::DataShift { new_rows, observations } => {
                self.on_data_shift(new_rows, &observations)
            }
            Event::ProbeFailed { row, col } => self.on_probe_failed(row, col),
            Event::HintRequest { row } => self.on_hint_request(row),
        }
    }

    fn on_tick(&mut self) -> Vec<Action> {
        self.ticks += 1;
        // Re-issue retries whose backoff has elapsed, in schedule order.
        // Fault-free this queue is always empty, so the legacy tick is
        // reproduced exactly (no extra RNG draws, no action reordering).
        let mut actions = Vec::new();
        let mut i = 0;
        while i < self.retry_queue.len() {
            if self.retry_queue[i].due_tick <= self.ticks {
                let r = self.retry_queue.remove(i);
                self.pending.push(CellChoice { row: r.row, col: r.col, timeout: r.timeout });
                self.probe_retries += 1;
                actions.push(Action::Probe { row: r.row, col: r.col, timeout: r.timeout });
            } else {
                i += 1;
            }
        }
        let started = std::time::Instant::now();
        let mut selection = {
            let ctx = PolicyCtx {
                wm: self.store.matrix(),
                est_cost: self.est_cost,
                store: Some(&self.store),
            };
            self.policy.as_mut().expect("Event::Tick requires an offline policy").select(
                &ctx,
                self.batch,
                &mut self.rng,
            )
        };
        self.overhead += started.elapsed().as_secs_f64();
        // A cell already in flight or awaiting retry must not be probed a
        // second time (a duplicate observation would double-charge the
        // clock). No-op fault-free: both lists are empty at tick time in
        // the synchronous drivers.
        selection.retain(|c| {
            !self.pending.iter().any(|p| p.row == c.row && p.col == c.col)
                && !self.retry_queue.iter().any(|r| r.row == c.row && r.col == c.col)
        });
        self.pending.extend_from_slice(&selection);
        actions.extend(selection.into_iter().map(|c| Action::Probe {
            row: c.row,
            col: c.col,
            timeout: c.timeout,
        }));
        actions
    }

    fn on_observation(
        &mut self,
        row: usize,
        col: usize,
        value: f64,
        censored: bool,
    ) -> Vec<Action> {
        // A non-finite or negative latency is a transport failure wearing
        // an observation's clothes — route it through the failure path
        // before it can poison the store (and the ALS factors downstream).
        if !value.is_finite() || value < 0.0 {
            return self.on_probe_failed(row, col);
        }
        if let Some(g) = self.gamble {
            if g.row == row && g.col == col {
                self.gamble = None;
                return self.resolve_gamble(g, value, censored);
            }
        }
        if let Some(pos) = self.pending.iter().position(|c| c.row == row && c.col == col) {
            self.pending.remove(pos);
        }
        self.clear_fail_count(row, col);
        if censored {
            self.store.record_censored(row, col, value);
        } else {
            self.store.record_complete(row, col, value);
        }
        self.time_spent += value;
        self.trace.push(TraceEntry { row, col, charged: value, censored });
        self.cells_executed += 1;
        Vec::new()
    }

    fn on_probe_failed(&mut self, row: usize, col: usize) -> Vec<Action> {
        if let Some(g) = self.gamble {
            if g.row == row && g.col == col {
                // A failed gamble reruns the incumbent: the arrival paid
                // the incumbent's latency, nothing enters the matrix.
                self.gamble = None;
                self.probe_failures += 1;
                self.stats.total_latency += g.incumbent_lat;
                return vec![Action::Recommend {
                    row: g.row,
                    col: g.incumbent_col,
                    latency: g.incumbent_lat,
                }];
            }
        }
        let Some(pos) = self.pending.iter().position(|c| c.row == row && c.col == col) else {
            // Unknown probe (stale or duplicate failure report): ignore.
            return Vec::new();
        };
        let choice = self.pending.remove(pos);
        self.probe_failures += 1;
        let failures = self.bump_fail_count(row, col);
        if (failures as usize) <= self.retry.max_retries {
            let shift = u32::min(failures - 1, 32);
            let due = self.ticks + (self.retry.backoff_base << shift);
            self.retry_queue.push(RetryProbe { row, col, timeout: choice.timeout, due_tick: due });
        } else {
            // Out of retries: abandon the cell (it stays unobserved, so
            // the policy is free to re-select it in a later round).
            self.probes_dropped += 1;
            self.clear_fail_count(row, col);
        }
        Vec::new()
    }

    fn bump_fail_count(&mut self, row: usize, col: usize) -> u32 {
        if let Some(e) = self.fail_counts.iter_mut().find(|(r, c, _)| *r == row && *c == col) {
            e.2 += 1;
            return e.2;
        }
        self.fail_counts.push((row, col, 1));
        1
    }

    fn clear_fail_count(&mut self, row: usize, col: usize) {
        self.fail_counts.retain(|&(r, c, _)| r != row || c != col);
    }

    fn resolve_gamble(&mut self, g: PendingGamble, value: f64, censored: bool) -> Vec<Action> {
        let (experienced, served_col) = if censored {
            // Cancelled at the bound; the incumbent reruns. The arrival
            // paid budget + incumbent — still within (ρ + 1)× worst case,
            // and the bound is recorded for the model.
            self.store.record_censored(g.row, g.col, value);
            self.stats.cancelled += 1;
            (value + g.incumbent_lat, g.incumbent_col)
        } else {
            self.store.record_complete(g.row, g.col, value);
            if value < g.incumbent_lat {
                self.stats.wins += 1;
            }
            (value, g.col)
        };
        self.stats.total_latency += experienced;
        vec![Action::Recommend { row: g.row, col: served_col, latency: experienced }]
    }

    fn on_arrival(&mut self, row: usize) -> Vec<Action> {
        let cfg = self.online_cfg.clone().expect("Event::Arrival requires an online engine");
        let wm = self.store.matrix();
        let (incumbent_col, incumbent_lat) = wm.row_best(row).expect("default always observed");
        // The default column is observed at construction and a gamble never
        // re-probes a completed cell, so cell (row, 0) still holds the
        // default latency the legacy explorer read from its oracle.
        let default_lat = match wm.cell(row, WorkloadMatrix::DEFAULT_HINT) {
            Cell::Complete(v) => v,
            _ => unreachable!("default column is always complete"),
        };
        self.stats.arrivals += 1;
        self.stats.default_latency += default_lat;
        self.stats.incumbent_latency += incumbent_lat;

        let explore_prob = if cfg.cold_bonus > 0.0 {
            let observed = wm.row_observed_count(row).max(1);
            (cfg.explore_prob + cfg.cold_bonus / (observed as f64).sqrt()).min(1.0)
        } else {
            cfg.explore_prob
        };
        let gamble = self.rng.chance(explore_prob);
        if !gamble {
            self.stats.total_latency += incumbent_lat;
            return vec![Action::Recommend { row, col: incumbent_col, latency: incumbent_lat }];
        }
        self.stats.explored += 1;
        let mut actions = Vec::new();
        if self.scheduler.admit_refresh(self.predictions.is_some()) {
            let started = std::time::Instant::now();
            self.predictions = Some(
                self.completer
                    .as_mut()
                    .expect("online engine needs a completer")
                    .complete(self.store.matrix()),
            );
            self.overhead += started.elapsed().as_secs_f64();
            actions.push(Action::ModelRefreshed);
        }
        let pred = self.predictions.as_ref().expect("predictions fresh");
        let wm = self.store.matrix();

        // Best predicted not-yet-verified hint for this query.
        let mut cand: Option<(usize, f64)> = None;
        for col in 0..wm.n_cols() {
            if matches!(wm.cell(row, col), Cell::Complete(_)) {
                continue;
            }
            let p = pred[(row, col)];
            if cand.map_or(true, |(_, b)| p < b) {
                cand = Some((col, p));
            }
        }
        // Serve the incumbent unless the model predicts a real win.
        let gamble_col = match cand {
            Some((col, predicted)) if predicted < incumbent_lat => col,
            _ => {
                self.stats.total_latency += incumbent_lat;
                actions.push(Action::Recommend { row, col: incumbent_col, latency: incumbent_lat });
                return actions;
            }
        };
        let budget = cfg.rho * incumbent_lat;
        self.gamble = Some(PendingGamble { row, col: gamble_col, incumbent_col, incumbent_lat });
        actions.push(Action::Probe { row, col: gamble_col, timeout: budget });
        actions
    }

    fn on_add_queries(&mut self, defaults: &[f64]) -> Vec<Action> {
        self.store.add_rows(defaults.len());
        let base = self.store.matrix().n_rows() - defaults.len();
        for (i, &d) in defaults.iter().enumerate() {
            self.store.record_complete(base + i, WorkloadMatrix::DEFAULT_HINT, d);
        }
        Vec::new()
    }

    fn on_data_shift(
        &mut self,
        new_rows: usize,
        observations: &[(usize, usize, f64)],
    ) -> Vec<Action> {
        let same_rows = new_rows == self.store.matrix().n_rows();
        let retain = self.retention.retain_priors && same_rows;
        if retain {
            self.store.demote_to_priors(self.retention.prior_decay);
        } else if same_rows {
            self.store.discard_all();
        } else {
            // The new data exposes fewer rows, which priors cannot
            // describe: discard at the new shape (epoch still advances —
            // the post-shift matrix is starved either way).
            self.store.discard_resized(new_rows);
        }
        for &(row, col, value) in observations {
            self.store.record_complete(row, col, value);
        }
        // Queued probes describe the old data; in the legacy driver order
        // every batch is fully observed before a shift, so this is a no-op
        // there — it only matters for a service shifted mid-round. Retries
        // and their failure counts describe the old data too.
        self.pending.clear();
        self.retry_queue.clear();
        self.fail_counts.clear();
        self.predictions = None;
        Vec::new()
    }

    fn on_hint_request(&self, row: usize) -> Vec<Action> {
        match self.store.matrix().row_best(row) {
            Some((col, latency)) => vec![Action::Recommend { row, col, latency }],
            None => Vec::new(),
        }
    }

    /// Offline admission helper for drivers: combines the scheduler's
    /// per-run cap with the time budget.
    pub fn admit_round(&mut self, budget: f64) -> bool {
        let t = self.time_spent;
        self.scheduler.admit_round(t, budget)
    }

    /// The cadence scheduler (mutable, e.g. to [`AdmissionScheduler::start_run`]).
    pub fn scheduler_mut(&mut self) -> &mut AdmissionScheduler {
        &mut self.scheduler
    }

    /// The observation store.
    pub fn store(&self) -> &ObservationStore {
        &self.store
    }

    /// The partially observed workload matrix.
    pub fn wm(&self) -> &WorkloadMatrix {
        self.store.matrix()
    }

    /// Simulated offline exploration seconds spent.
    pub fn time_spent(&self) -> f64 {
        self.time_spent
    }

    /// Wall-clock model overhead seconds.
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Cells executed so far (complete + censored).
    pub fn cells_executed(&self) -> usize {
        self.cells_executed
    }

    /// Every offline execution in order — the run's exploration trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Accumulated online statistics (zeroed for offline engines).
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Probes issued but not yet observed. After [`crate::persist`]
    /// recovery the driver must re-execute these (the journal may have
    /// recorded the tick but lost some of its observations).
    pub fn pending(&self) -> &[CellChoice] {
        &self.pending
    }

    /// Failed probes still waiting out their backoff. A driver whose tick
    /// produced no actions should keep ticking while this is non-zero —
    /// the retries become due within the bounded backoff horizon.
    pub fn retry_pending(&self) -> usize {
        self.retry_queue.len()
    }

    /// Total [`Event::ProbeFailed`]s accepted (gamble and offline).
    pub fn probe_failures(&self) -> usize {
        self.probe_failures
    }

    /// Probes re-issued after their backoff elapsed.
    pub fn probe_retries(&self) -> usize {
        self.probe_retries
    }

    /// Probes abandoned after exhausting [`RetryPolicy::max_retries`].
    pub fn probes_dropped(&self) -> usize {
        self.probes_dropped
    }

    /// All probes the engine is waiting on, including an online gamble in
    /// flight (its ρ-bounded timeout is recomputed from the stored
    /// incumbent). After recovery the driver re-executes these and feeds
    /// the results back as `Observation` events — at-least-once delivery
    /// is safe because the oracle is deterministic and observations are
    /// idempotent.
    pub fn outstanding_probes(&self) -> Vec<CellChoice> {
        let mut probes = self.pending.clone();
        if let (Some(g), Some(cfg)) = (&self.gamble, &self.online_cfg) {
            probes.push(CellChoice { row: g.row, col: g.col, timeout: cfg.rho * g.incumbent_lat });
        }
        probes
    }

    /// Point the engine at a new environment's cost estimates (data shift).
    pub fn set_est_cost(&mut self, est_cost: Option<&'a Mat>) {
        self.est_cost = est_cost;
    }

    /// The drift-retention configuration.
    pub fn retention(&self) -> &DriftPolicy {
        &self.retention
    }
}

/// Build the online re-measurement list for a data shift, in the exact
/// order the legacy harness observed them: per row, the default plan, then
/// the cached best hint (if distinct). With
/// [`DriftPolicy::reverify_runner_up`] set (and retention active), the best
/// *surviving* stale completed plan — the row's strongest value-prior after
/// the cached best — is also re-measured, so it re-enters the matrix as a
/// fresh observation instead of waiting for offline re-probing.
///
/// `probe(row, col)` measures a cell against the *new* data.
pub fn data_shift_observations(
    wm: &WorkloadMatrix,
    retention: &DriftPolicy,
    new_rows: usize,
    probe: impl Fn(usize, usize) -> f64,
) -> Vec<(usize, usize, f64)> {
    let same_rows = new_rows == wm.n_rows();
    let reverify = retention.retain_priors && retention.reverify_runner_up && same_rows;
    let mut obs = Vec::new();
    for i in 0..new_rows {
        let best = wm.row_best(i).map(|(c, _)| c);
        obs.push((i, WorkloadMatrix::DEFAULT_HINT, probe(i, WorkloadMatrix::DEFAULT_HINT)));
        if let Some(b) = best {
            if b != WorkloadMatrix::DEFAULT_HINT {
                obs.push((i, b, probe(i, b)));
            }
        }
        if reverify {
            let mut runner: Option<(usize, f64)> = None;
            for &col32 in wm.observed_cols(i) {
                let c = col32 as usize;
                if c == WorkloadMatrix::DEFAULT_HINT || Some(c) == best {
                    continue;
                }
                if let Cell::Complete(v) = wm.cell(i, c) {
                    if runner.map_or(true, |(_, rv)| v < rv) {
                        runner = Some((c, v));
                    }
                }
            }
            if let Some((c, _)) = runner {
                obs.push((i, c, probe(i, c)));
            }
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RandomPolicy;

    fn offline_engine(retry: RetryPolicy) -> Engine<'static> {
        let store = ObservationStore::with_defaults(&[10.0, 8.0, 12.0], 4);
        let cfg = ExploreConfig { batch: 1, seed: 9, retry, ..Default::default() };
        Engine::offline(store, Box::new(RandomPolicy), None, &cfg)
    }

    fn first_probe(actions: &[Action]) -> Option<(usize, usize, f64)> {
        actions.iter().find_map(|a| match *a {
            Action::Probe { row, col, timeout } => Some((row, col, timeout)),
            _ => None,
        })
    }

    #[test]
    fn failed_probes_retry_on_the_exponential_backoff_schedule() {
        let mut e = offline_engine(RetryPolicy { max_retries: 3, backoff_base: 1 });
        let (row, col, timeout) = first_probe(&e.step(Event::Tick)).expect("batch of 1");
        // Failure #1 at tick 1: due at 1 + (1 << 0) = tick 2.
        assert!(e.step(Event::ProbeFailed { row, col }).is_empty());
        assert_eq!((e.probe_failures(), e.retry_pending()), (1, 1));
        let actions = e.step(Event::Tick); // tick 2: due
        assert_eq!(actions.first(), Some(&Action::Probe { row, col, timeout }));
        assert_eq!(e.probe_retries(), 1);
        // Failure #2 at tick 2: due at 2 + (1 << 1) = tick 4.
        e.step(Event::ProbeFailed { row, col });
        let tick3 = e.step(Event::Tick);
        assert_ne!(first_probe(&tick3).map(|(r, c, _)| (r, c)), Some((row, col)));
        assert_eq!(e.probe_retries(), 1, "backoff not elapsed at tick 3");
        let tick4 = e.step(Event::Tick);
        assert_eq!(tick4.first(), Some(&Action::Probe { row, col, timeout }));
        assert_eq!(e.probe_retries(), 2);
    }

    #[test]
    fn probes_drop_after_max_retries_and_the_cell_stays_selectable() {
        let mut e = offline_engine(RetryPolicy { max_retries: 1, backoff_base: 1 });
        let (row, col, _) = first_probe(&e.step(Event::Tick)).expect("batch of 1");
        e.step(Event::ProbeFailed { row, col });
        e.step(Event::Tick); // re-issue the single allowed retry
        assert_eq!(e.probe_retries(), 1);
        e.step(Event::ProbeFailed { row, col });
        assert_eq!(e.probes_dropped(), 1);
        assert_eq!(e.retry_pending(), 0);
        // Abandoned, not poisoned: the cell is still unobserved, so the
        // policy may pick it again from scratch in a later round.
        assert_eq!(e.wm().cell(row, col), Cell::Unobserved);
        assert!(e.fail_counts.is_empty(), "drop must clear the failure count");
    }

    #[test]
    fn non_finite_observations_take_the_failure_path() {
        let mut e = offline_engine(RetryPolicy::default());
        let (row, col, _) = first_probe(&e.step(Event::Tick)).expect("batch of 1");
        let (spent, cells) = (e.time_spent(), e.cells_executed());
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            e.step(Event::Observation { row, col, value: bad, censored: false });
        }
        // Only the first report hit a pending probe; the rest were stale
        // duplicates. Nothing was charged, recorded, or traced.
        assert_eq!(e.probe_failures(), 1);
        assert_eq!(e.retry_pending(), 1);
        assert_eq!(e.wm().cell(row, col), Cell::Unobserved);
        assert_eq!((e.time_spent(), e.cells_executed()), (spent, cells));
        assert!(e.trace().is_empty());
    }

    #[test]
    fn unknown_probe_failures_are_ignored() {
        let mut e = offline_engine(RetryPolicy::default());
        e.step(Event::Tick);
        assert!(e.step(Event::ProbeFailed { row: 2, col: 3 }).is_empty());
        assert_eq!(e.probe_failures(), 0);
        assert_eq!(e.retry_pending(), 0);
    }

    #[test]
    fn a_successful_retry_clears_the_failure_count() {
        let mut e = offline_engine(RetryPolicy { max_retries: 2, backoff_base: 1 });
        let (row, col, timeout) = first_probe(&e.step(Event::Tick)).expect("batch of 1");
        e.step(Event::ProbeFailed { row, col });
        e.step(Event::Tick);
        e.step(Event::Observation { row, col, value: timeout.min(1.0), censored: false });
        assert!(e.fail_counts.is_empty());
        assert!(matches!(e.wm().cell(row, col), Cell::Complete(_)));
    }

    /// A fixed-prediction completer: makes the online gamble decision
    /// deterministic without an ALS fit.
    struct FlatCompleter(f64);
    impl Completer for FlatCompleter {
        fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
            Mat::from_fn(wm.n_rows(), wm.n_cols(), |_, _| self.0)
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    #[test]
    fn a_failed_gamble_serves_the_incumbent() {
        let store = ObservationStore::with_defaults(&[10.0], 3);
        let cfg = OnlineConfig { explore_prob: 1.0, ..Default::default() };
        let mut e = Engine::online(store, Box::new(FlatCompleter(1.0)), &cfg);
        let actions = e.step(Event::Arrival { row: 0 });
        let (row, col, _) = first_probe(&actions).expect("prediction 1.0 < incumbent 10.0");
        let out = e.step(Event::ProbeFailed { row, col });
        assert_eq!(
            out,
            vec![Action::Recommend { row: 0, col: WorkloadMatrix::DEFAULT_HINT, latency: 10.0 }]
        );
        assert_eq!(e.probe_failures(), 1);
        // The arrival paid the incumbent; nothing entered the matrix.
        assert_eq!(e.stats().total_latency, 10.0);
        assert_eq!(e.wm().cell(0, col), Cell::Unobserved);
        assert_eq!(e.retry_pending(), 0, "gambles fall back, they do not retry");
    }
}
