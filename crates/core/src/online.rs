//! Online exploration over the hint space — the paper's §6 future-work
//! item ("investigate techniques for online exploration over the space of
//! hints and plans leveraging the low-rank structure, complementing the
//! offline exploration of our current approach").
//!
//! Instead of a dedicated offline window, queries are optimized *as they
//! arrive*: each arrival normally serves its best verified hint, but with
//! a small probability the system gambles on the completed matrix's best
//! predicted unverified hint — guarded by a bounded-regression timeout
//! `ρ × current best` so a wrong gamble costs at most a ρ−1 fraction of
//! the incumbent latency, after which the plan is cancelled, the incumbent
//! re-run, and the cell recorded as censored. This keeps a hard per-query
//! regression bound of `ρ×` (configurable, e.g. 1.2 = at most 20 % worse
//! than the verified plan on an exploring arrival) while steadily filling
//! the workload matrix for free.

use crate::complete::Completer;
use crate::engine::{Action, Engine, Event};
use crate::explore::Oracle;
use crate::matrix::WorkloadMatrix;
use crate::store::ObservationStore;

/// Configuration of the online explorer.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Probability that an arrival explores instead of serving the
    /// incumbent.
    pub explore_prob: f64,
    /// Bounded-regression factor ρ: an exploring arrival may spend at most
    /// `ρ × incumbent` before being cancelled (then the incumbent runs).
    pub rho: f64,
    /// Re-complete the matrix every this many arrivals (model refresh).
    pub refresh_every: usize,
    /// Cold-row exploration bonus weight. Under skewed (Zipf) arrivals,
    /// cold rows arrive so rarely that a flat `explore_prob` leaves them
    /// stuck on their default plan; with the bonus, query `q` explores
    /// with probability `min(1, explore_prob + cold_bonus / √(observed
    /// cells in q's row))` — rare arrivals of cold rows are spent on
    /// exploration, and the boost anneals away as the row fills in.
    /// 0 disables the bonus (the flat legacy behavior).
    pub cold_bonus: f64,
    /// RNG seed.
    pub seed: u64,
    /// Workload-matrix shard count (1 = the unsharded layout). A pure
    /// scale-out knob — any value serves bit-identical arrivals (the
    /// sharded equivalence contract).
    pub shards: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            explore_prob: 0.1,
            rho: 1.2,
            refresh_every: 64,
            cold_bonus: 0.0,
            seed: 0,
            shards: 1,
        }
    }
}

/// Outcome statistics of an online run.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    /// Arrivals served.
    pub arrivals: usize,
    /// Arrivals that explored an unverified hint.
    pub explored: usize,
    /// Explorations that found a faster verified plan.
    pub wins: usize,
    /// Explorations cancelled at the ρ-timeout (bounded regression paid).
    pub cancelled: usize,
    /// Total latency actually experienced by arrivals (including gamble
    /// overheads and incumbent re-runs after cancellations).
    pub total_latency: f64,
    /// Total latency if every arrival had served the default plan.
    pub default_latency: f64,
    /// Total latency if every arrival had served its current incumbent
    /// (pure exploitation).
    pub incumbent_latency: f64,
}

impl OnlineStats {
    /// Worst-case per-arrival regression actually incurred, as a fraction
    /// of the incumbent latency (≤ ρ − 1 by construction).
    pub fn regression_bound(&self, rho: f64) -> f64 {
        rho - 1.0
    }
}

/// Online explorer: serves arrivals, gambles occasionally, learns always.
///
/// Since the engine refactor this is a thin driver over
/// [`crate::engine::Engine`]: each [`OnlineExplorer::serve`] feeds an
/// `Arrival` event, executes any gamble probe directive against the oracle
/// under its ρ-bounded timeout, and reports the result back as an
/// `Observation`. The event trajectory — RNG draws, refresh cadence,
/// matrix updates, statistics — is pinned byte-identical to the old
/// in-place loop.
pub struct OnlineExplorer<'a> {
    oracle: &'a dyn Oracle,
    engine: Engine<'a>,
}

impl<'a> OnlineExplorer<'a> {
    /// Create an online explorer; the default column is observed up front
    /// (it has been served before).
    pub fn new(
        oracle: &'a dyn Oracle,
        completer: Box<dyn Completer + Send>,
        cfg: OnlineConfig,
    ) -> Self {
        let (n, k) = oracle.shape();
        let defaults: Vec<f64> =
            (0..n).map(|i| oracle.true_latency(i, WorkloadMatrix::DEFAULT_HINT)).collect();
        let store = ObservationStore::with_defaults_sharded(&defaults, k, cfg.shards);
        OnlineExplorer { oracle, engine: Engine::online(store, completer, &cfg) }
    }

    /// The growing workload matrix (shared shape with the oracle).
    pub fn wm(&self) -> &WorkloadMatrix {
        self.engine.wm()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &OnlineStats {
        self.engine.stats()
    }

    /// The wrapped event-driven engine.
    pub fn engine(&self) -> &Engine<'a> {
        &self.engine
    }

    /// Serve one arrival of query `row`; returns the latency the user
    /// experienced.
    pub fn serve(&mut self, row: usize) -> f64 {
        let actions = self.engine.step(Event::Arrival { row });
        let mut experienced = None;
        for action in actions {
            match action {
                Action::Probe { row, col, timeout } => {
                    // Execute the gamble under the ρ-bounded budget.
                    let truth = self.oracle.true_latency(row, col);
                    let censored = truth > timeout;
                    let value = if censored { timeout } else { truth };
                    let follow = self.engine.step(Event::Observation { row, col, value, censored });
                    for f in follow {
                        if let Action::Recommend { latency, .. } = f {
                            experienced = Some(latency);
                        }
                    }
                }
                Action::Recommend { latency, .. } => experienced = Some(latency),
                Action::ModelRefreshed => {}
            }
        }
        experienced.expect("an arrival always resolves to a recommendation")
    }

    /// Serve a whole arrival trace.
    pub fn serve_trace(&mut self, rows: &[usize]) {
        for &r in rows {
            self.serve(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::AlsCompleter;
    use crate::explore::MatOracle;
    use limeqo_linalg::rng::SeededRng;

    fn oracle(n: usize, k: usize, seed: u64) -> MatOracle {
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_mat(n, 3, 0.5, 2.0);
        let h = rng.uniform_mat(k, 3, 0.2, 1.5);
        let mut lat = q.matmul_t(&h).unwrap();
        for i in 0..n {
            lat[(i, 0)] = lat[(i, 0)] * 2.5 + 0.5;
        }
        MatOracle::new(lat, None)
    }

    fn run(explore_prob: f64, arrivals: usize, seed: u64) -> OnlineStats {
        let o = oracle(30, 10, seed);
        let cfg = OnlineConfig { explore_prob, seed, ..Default::default() };
        let mut ex = OnlineExplorer::new(&o, Box::new(AlsCompleter::paper_default(seed)), cfg);
        let mut rng = SeededRng::new(seed ^ 77);
        let trace: Vec<usize> = (0..arrivals).map(|_| rng.index(30)).collect();
        ex.serve_trace(&trace);
        ex.stats().clone()
    }

    #[test]
    fn pure_exploitation_equals_incumbents() {
        let s = run(0.0, 500, 1);
        assert_eq!(s.explored, 0);
        assert!((s.total_latency - s.incumbent_latency).abs() < 1e-9);
        // Without exploration, incumbents stay at the default.
        assert!((s.total_latency - s.default_latency).abs() < 1e-9);
    }

    #[test]
    fn exploration_beats_default_over_time() {
        let s = run(0.15, 3000, 2);
        assert!(s.explored > 0);
        assert!(
            s.total_latency < s.default_latency,
            "online exploration should pay for itself: {} vs {}",
            s.total_latency,
            s.default_latency
        );
    }

    #[test]
    fn per_arrival_regression_bounded_by_rho() {
        // Every arrival's experienced latency is at most
        // rho * incumbent + incumbent (cancelled gamble + rerun).
        let o = oracle(20, 8, 3);
        let cfg = OnlineConfig { explore_prob: 1.0, rho: 1.2, seed: 4, ..Default::default() };
        let mut ex = OnlineExplorer::new(&o, Box::new(AlsCompleter::paper_default(5)), cfg);
        for arrival in 0..500 {
            let row = arrival % 20;
            let incumbent = ex.wm().row_best(row).unwrap().1;
            let experienced = ex.serve(row);
            assert!(
                experienced <= 1.2 * incumbent + incumbent + 1e-9,
                "arrival {arrival}: {experienced} vs bound {}",
                2.2 * incumbent
            );
        }
        assert!(ex.stats().cancelled + ex.stats().wins > 0);
    }

    #[test]
    fn cold_bonus_explores_cold_rows_harder() {
        // Zipf-like trace: rows 0-2 hot, the rest arrive once in a while.
        let o = oracle(20, 10, 11);
        let trace: Vec<usize> =
            (0..2000).map(|i| if i % 10 < 7 { i % 3 } else { 3 + i % 17 }).collect();
        let run = |cold_bonus: f64| {
            let cfg =
                OnlineConfig { explore_prob: 0.1, cold_bonus, seed: 12, ..Default::default() };
            let mut ex = OnlineExplorer::new(&o, Box::new(AlsCompleter::paper_default(13)), cfg);
            ex.serve_trace(&trace);
            // How many cold rows (3..20) found a better-than-default plan.
            (3..20).filter(|&r| ex.wm().row_best(r).is_some_and(|(c, _)| c != 0)).count()
        };
        let flat = run(0.0);
        let boosted = run(0.8);
        assert!(
            boosted > flat,
            "cold bonus should improve more cold rows: flat {flat}, boosted {boosted}"
        );
    }

    #[test]
    fn matrix_fills_up_as_a_side_effect() {
        let o = oracle(15, 8, 6);
        let cfg = OnlineConfig { explore_prob: 0.5, seed: 7, ..Default::default() };
        let mut ex = OnlineExplorer::new(&o, Box::new(AlsCompleter::paper_default(8)), cfg);
        let before = ex.wm().complete_count() + ex.wm().censored_count();
        let mut rng = SeededRng::new(9);
        let trace: Vec<usize> = (0..800).map(|_| rng.index(15)).collect();
        ex.serve_trace(&trace);
        let after = ex.wm().complete_count() + ex.wm().censored_count();
        assert!(after > before + 10, "matrix should fill: {before} -> {after}");
    }
}
