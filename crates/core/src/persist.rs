//! Durable engine state: append-only event journal + periodic snapshots.
//!
//! The [`crate::engine::Engine`] is a deterministic function of its initial
//! state and its input events, so durability is state-machine replication
//! against the local disk:
//!
//! * every mutating [`Event`] is appended to a *journal* (write-ahead: the
//!   record is written and flushed before the event is applied),
//! * periodically the *full* engine state — store, model state, RNG
//!   position, clock, trace, pending probes — is written to a *snapshot*,
//!   after which a fresh journal segment starts and old segments are
//!   garbage-collected,
//! * [`DurableEngine::recover`] loads the newest valid snapshot and
//!   replays its journal tail, resuming **bit-identically at any kill
//!   point** — the restart extension of the PERF.md determinism contract.
//!
//! # On-disk format (version `v1`)
//!
//! A state directory holds `snap-<N>.snap` and `wal-<N>.log` files, where
//! `N` is the count of events applied when the snapshot was taken;
//! `wal-<N>.log` records the events *after* snapshot `N`. Both are
//! line-oriented UTF-8:
//!
//! ```text
//! snap-N.snap:   limeqo-snap v1 <N>
//!                <payload tokens, one line>
//!                crc <crc32-hex of the payload line>
//!
//! wal-N.log:     limeqo-wal v1 <N>
//!                <crc32-hex of body> <body tokens>        (one per event)
//! ```
//!
//! Floats are serialized as the 16-hex-digit big-endian [`f64::to_bits`]
//! image, so round-trips are bit-exact by construction. Every record and
//! every snapshot carries a CRC-32 (IEEE): a torn or corrupted journal
//! tail is detected, truncated, and re-derived by the driver (the engine
//! re-issues the lost probes via [`Engine::outstanding_probes`]); a torn
//! snapshot is skipped in favor of the previous one, whose journal segment
//! is retained by GC exactly for this purpose (`keep_snapshots ≥ 2`).
//!
//! # Durability stance
//!
//! Journal appends are flushed to the OS (`write(2)`) per record but not
//! `fsync`ed — surviving process death (SIGKILL, abort) is the contract;
//! surviving power loss mid-write is what the checksums degrade gracefully
//! under. Snapshots are fsynced and renamed into place atomically. This
//! keeps the append amortized cost well under the perf gate (< 5 % of
//! `policy.sample_s`, enforced by `limeqo-bench perf`).
//!
//! # Fault tolerance
//!
//! All file I/O goes through the [`crate::fault::Storage`] trait
//! ([`crate::fault::FsStorage`] in production, a scripted
//! [`crate::fault::FaultStorage`] in chaos tests). When an append or the
//! post-snapshot segment swap fails, the journal is *poisoned*
//! ([`DurableEngine::poisoned`]): [`DurableEngine::step`] refuses further
//! events with [`PersistError::Poisoned`] rather than journaling into a
//! segment recovery would ignore. A degraded caller can keep the engine
//! advancing in memory with [`DurableEngine::step_degraded`] and restore
//! durability with [`DurableEngine::rearm`], which snapshots the current
//! in-memory state and opens a fresh segment.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::engine::{Action, Engine, Event, PendingGamble, RetryProbe};
use crate::explore::TraceEntry;
use crate::fault::{FsStorage, Storage, StorageFile};
use crate::policy::CellChoice;
use crate::store::ObservationStore;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// Errors from snapshot/journal encode, decode, and recovery.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Structurally invalid or checksum-failing data.
    Corrupt(String),
    /// The journal was poisoned by an earlier persist failure; only
    /// [`DurableEngine::step_degraded`] / [`DurableEngine::rearm`] make
    /// progress from here. Carries the original failure's message.
    Poisoned(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            PersistError::Poisoned(msg) => write!(f, "journal poisoned by earlier failure: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Shorthand result.
pub type Result<T> = std::result::Result<T, PersistError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte string, as used by every journal record and
/// snapshot payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Token encoder/decoder.

/// Space-separated token encoder for snapshot payloads and journal record
/// bodies. Floats are written as their bit pattern in hex, so decoding is
/// bit-exact.
#[derive(Debug, Default)]
pub struct Enc {
    buf: String,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
    }

    /// Append an unsigned integer.
    pub fn u(&mut self, v: u64) {
        self.sep();
        let _ = write!(self.buf, "{v}");
    }

    /// Append a usize.
    pub fn i(&mut self, v: usize) {
        self.u(v as u64);
    }

    /// Append a float, bit-exactly.
    pub fn f(&mut self, v: f64) {
        self.sep();
        let _ = write!(self.buf, "{:016x}", v.to_bits());
    }

    /// Append a bool (`0`/`1`).
    pub fn b(&mut self, v: bool) {
        self.u(v as u64);
    }

    /// Append an arbitrary string, hex-encoded (tokens must not contain
    /// whitespace).
    pub fn s(&mut self, v: &str) {
        self.sep();
        if v.is_empty() {
            self.buf.push('-');
            return;
        }
        for b in v.as_bytes() {
            let _ = write!(self.buf, "{b:02x}");
        }
    }

    /// Append a dense matrix: rows, cols, then every entry bit-exactly.
    pub fn mat(&mut self, m: &Mat) {
        self.i(m.rows());
        self.i(m.cols());
        for &v in m.as_slice() {
            self.f(v);
        }
    }

    /// The encoded payload.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Borrow the payload so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Matching decoder over a token line.
pub struct Dec<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Dec<'a> {
    /// Decode from an encoded payload line.
    pub fn new(line: &'a str) -> Self {
        Dec { toks: line.split_ascii_whitespace() }
    }

    fn next(&mut self) -> Result<&'a str> {
        self.toks.next().ok_or_else(|| PersistError::Corrupt("unexpected end of record".into()))
    }

    /// Read an unsigned integer.
    pub fn u(&mut self) -> Result<u64> {
        let t = self.next()?;
        t.parse().map_err(|_| PersistError::Corrupt(format!("bad u64 token {t:?}")))
    }

    /// Read a usize.
    pub fn i(&mut self) -> Result<usize> {
        Ok(self.u()? as usize)
    }

    /// Read a float written by [`Enc::f`].
    pub fn f(&mut self) -> Result<f64> {
        let t = self.next()?;
        let bits = u64::from_str_radix(t, 16)
            .map_err(|_| PersistError::Corrupt(format!("bad f64 token {t:?}")))?;
        Ok(f64::from_bits(bits))
    }

    /// Read a bool.
    pub fn b(&mut self) -> Result<bool> {
        match self.u()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(PersistError::Corrupt(format!("bad bool token {v}"))),
        }
    }

    /// Read a string written by [`Enc::s`].
    pub fn s(&mut self) -> Result<String> {
        let t = self.next()?;
        if t == "-" {
            return Ok(String::new());
        }
        if t.len() % 2 != 0 {
            return Err(PersistError::Corrupt("odd-length hex string".into()));
        }
        let mut out = Vec::with_capacity(t.len() / 2);
        for i in (0..t.len()).step_by(2) {
            let b = u8::from_str_radix(&t[i..i + 2], 16)
                .map_err(|_| PersistError::Corrupt("bad hex string".into()))?;
            out.push(b);
        }
        String::from_utf8(out).map_err(|_| PersistError::Corrupt("non-UTF-8 string".into()))
    }

    /// Read a matrix written by [`Enc::mat`].
    pub fn mat(&mut self) -> Result<Mat> {
        let rows = self.i()?;
        let cols = self.i()?;
        let count = rows
            .checked_mul(cols)
            .ok_or_else(|| PersistError::Corrupt("matrix shape overflow".into()))?;
        if count > 1 << 28 {
            return Err(PersistError::Corrupt("implausible matrix size".into()));
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(self.f()?);
        }
        Mat::from_vec(rows, cols, data)
            .map_err(|e| PersistError::Corrupt(format!("matrix rebuild: {e:?}")))
    }

    /// Assert the record is fully consumed.
    pub fn finish(mut self) -> Result<()> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(PersistError::Corrupt(format!("trailing token {t:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Event codec (journal record bodies).

/// Encode a mutating event as a journal record body.
pub fn encode_event(event: &Event) -> String {
    let mut e = Enc::new();
    match event {
        Event::Tick => e.s("T"),
        Event::Observation { row, col, value, censored } => {
            e.s("O");
            e.i(*row);
            e.i(*col);
            e.f(*value);
            e.b(*censored);
        }
        Event::Arrival { row } => {
            e.s("A");
            e.i(*row);
        }
        Event::AddQueries { defaults } => {
            e.s("Q");
            e.i(defaults.len());
            for &d in defaults {
                e.f(d);
            }
        }
        Event::DataShift { new_rows, observations } => {
            e.s("D");
            e.i(*new_rows);
            e.i(observations.len());
            for &(r, c, v) in observations {
                e.i(r);
                e.i(c);
                e.f(v);
            }
        }
        Event::ProbeFailed { row, col } => {
            e.s("F");
            e.i(*row);
            e.i(*col);
        }
        Event::HintRequest { .. } => unreachable!("read-only events are never journaled"),
    }
    e.finish()
}

/// Decode a journal record body.
pub fn decode_event(body: &str) -> Result<Event> {
    let mut d = Dec::new(body);
    let tag = d.s()?;
    let event = match tag.as_str() {
        "T" => Event::Tick,
        "O" => Event::Observation { row: d.i()?, col: d.i()?, value: d.f()?, censored: d.b()? },
        "A" => Event::Arrival { row: d.i()? },
        "Q" => {
            let len = d.i()?;
            let mut defaults = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                defaults.push(d.f()?);
            }
            Event::AddQueries { defaults }
        }
        "D" => {
            let new_rows = d.i()?;
            let len = d.i()?;
            let mut observations = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                observations.push((d.i()?, d.i()?, d.f()?));
            }
            Event::DataShift { new_rows, observations }
        }
        "F" => Event::ProbeFailed { row: d.i()?, col: d.i()? },
        t => return Err(PersistError::Corrupt(format!("unknown event tag {t:?}"))),
    };
    d.finish()?;
    Ok(event)
}

// ---------------------------------------------------------------------------
// Engine state codec.

const SNAP_MAGIC: &str = "limeqo-snap v1";
const WAL_MAGIC: &str = "limeqo-wal v1";

fn save_rng(enc: &mut Enc, rng: &SeededRng) {
    let (words, spare) = rng.state();
    for w in words {
        enc.u(w);
    }
    match spare {
        Some(v) => {
            enc.b(true);
            enc.f(v);
        }
        None => enc.b(false),
    }
}

fn load_rng(dec: &mut Dec<'_>) -> Result<SeededRng> {
    let words = [dec.u()?, dec.u()?, dec.u()?, dec.u()?];
    let spare = if dec.b()? { Some(dec.f()?) } else { None };
    Ok(SeededRng::restore((words, spare)))
}

/// Serialize the full mutable engine state. The *configuration* (policy
/// spec, batch, seeds, retention) is not included — the recovering caller
/// rebuilds an identically configured engine first and `config_tag` guards
/// against mismatches.
fn save_engine(enc: &mut Enc, engine: &Engine<'_>) {
    engine.store.save_state(enc);
    save_rng(enc, &engine.rng);
    enc.f(engine.time_spent);
    enc.f(engine.overhead);
    enc.i(engine.cells_executed);
    enc.i(engine.trace.len());
    for t in &engine.trace {
        enc.i(t.row);
        enc.i(t.col);
        enc.f(t.charged);
        enc.b(t.censored);
    }
    enc.i(engine.pending.len());
    for p in &engine.pending {
        enc.i(p.row);
        enc.i(p.col);
        enc.f(p.timeout);
    }
    enc.u(engine.scheduler.persist_state());
    match &engine.predictions {
        Some(m) => {
            enc.b(true);
            enc.mat(m);
        }
        None => enc.b(false),
    }
    match &engine.gamble {
        Some(g) => {
            enc.b(true);
            enc.i(g.row);
            enc.i(g.col);
            enc.i(g.incumbent_col);
            enc.f(g.incumbent_lat);
        }
        None => enc.b(false),
    }
    let s = &engine.stats;
    enc.i(s.arrivals);
    enc.i(s.explored);
    enc.i(s.wins);
    enc.i(s.cancelled);
    enc.f(s.total_latency);
    enc.f(s.default_latency);
    enc.f(s.incumbent_latency);
    // Retry machinery: the tick clock the backoff counts in, the queue of
    // probes waiting out their backoff, and the per-cell failure counts.
    enc.u(engine.ticks);
    enc.i(engine.retry_queue.len());
    for r in &engine.retry_queue {
        enc.i(r.row);
        enc.i(r.col);
        enc.f(r.timeout);
        enc.u(r.due_tick);
    }
    enc.i(engine.fail_counts.len());
    for &(row, col, n) in &engine.fail_counts {
        enc.i(row);
        enc.i(col);
        enc.u(n as u64);
    }
    enc.i(engine.probe_failures);
    enc.i(engine.probe_retries);
    enc.i(engine.probes_dropped);
    // Model state lives with whichever component the engine owns.
    enc.b(engine.policy.is_some());
    if let Some(p) = &engine.policy {
        p.save_state(enc);
    }
    enc.b(engine.completer.is_some());
    if let Some(c) = &engine.completer {
        c.save_state(enc);
    }
}

/// Overwrite a freshly constructed engine's mutable state from a snapshot.
fn load_engine(dec: &mut Dec<'_>, engine: &mut Engine<'_>) -> Result<()> {
    engine.store = ObservationStore::load_state(dec)?;
    engine.rng = load_rng(dec)?;
    engine.time_spent = dec.f()?;
    engine.overhead = dec.f()?;
    engine.cells_executed = dec.i()?;
    let n = dec.i()?;
    engine.trace = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        engine.trace.push(TraceEntry {
            row: dec.i()?,
            col: dec.i()?,
            charged: dec.f()?,
            censored: dec.b()?,
        });
    }
    let n = dec.i()?;
    engine.pending = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        engine.pending.push(CellChoice { row: dec.i()?, col: dec.i()?, timeout: dec.f()? });
    }
    let since_refresh = dec.u()?;
    engine.scheduler.restore_state(since_refresh);
    engine.predictions = if dec.b()? { Some(dec.mat()?) } else { None };
    engine.gamble = if dec.b()? {
        Some(PendingGamble {
            row: dec.i()?,
            col: dec.i()?,
            incumbent_col: dec.i()?,
            incumbent_lat: dec.f()?,
        })
    } else {
        None
    };
    engine.stats.arrivals = dec.i()?;
    engine.stats.explored = dec.i()?;
    engine.stats.wins = dec.i()?;
    engine.stats.cancelled = dec.i()?;
    engine.stats.total_latency = dec.f()?;
    engine.stats.default_latency = dec.f()?;
    engine.stats.incumbent_latency = dec.f()?;
    engine.ticks = dec.u()?;
    let n = dec.i()?;
    engine.retry_queue = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        engine.retry_queue.push(RetryProbe {
            row: dec.i()?,
            col: dec.i()?,
            timeout: dec.f()?,
            due_tick: dec.u()?,
        });
    }
    let n = dec.i()?;
    engine.fail_counts = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        engine.fail_counts.push((dec.i()?, dec.i()?, dec.u()? as u32));
    }
    engine.probe_failures = dec.i()?;
    engine.probe_retries = dec.i()?;
    engine.probes_dropped = dec.i()?;
    let has_policy = dec.b()?;
    if has_policy != engine.policy.is_some() {
        return Err(PersistError::Corrupt("snapshot/engine policy mode mismatch".into()));
    }
    if let Some(p) = &mut engine.policy {
        p.load_state(dec)?;
    }
    let has_completer = dec.b()?;
    if has_completer != engine.completer.is_some() {
        return Err(PersistError::Corrupt("snapshot/engine completer mode mismatch".into()));
    }
    if let Some(c) = &mut engine.completer {
        c.load_state(dec)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Durable engine.

/// Snapshot cadence and retention configuration.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Take a snapshot automatically after this many journaled events
    /// (0 = only on explicit [`DurableEngine::snapshot`] / shutdown).
    pub snapshot_every: usize,
    /// Snapshots retained by GC (older snapshots and their journal
    /// segments are deleted). Minimum 1; keep ≥ 2 so a torn newest
    /// snapshot still leaves a recoverable older one.
    pub keep_snapshots: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig { snapshot_every: 256, keep_snapshots: 2 }
    }
}

/// An [`Engine`] wrapped with write-ahead journaling and snapshotting.
///
/// Construction: [`DurableEngine::create`] for a fresh state directory,
/// [`DurableEngine::recover`] to resume an existing one. Both take the
/// engine *already built* with its static configuration (policy, seeds,
/// batch, retention) — the durable layer persists only the mutable state,
/// and a `config_tag` string fingerprints the configuration so recovery
/// with a mismatched build fails loudly instead of diverging silently.
pub struct DurableEngine<'a> {
    engine: Engine<'a>,
    storage: Box<dyn Storage>,
    dir: PathBuf,
    config_tag: String,
    dcfg: DurableConfig,
    wal: Box<dyn StorageFile>,
    events_since_snapshot: usize,
    /// Mutating events applied since creation (== snapshot/wal indices).
    event_index: u64,
    /// Set when a persist failure made the current journal segment
    /// unusable; cleared by a successful [`DurableEngine::rearm`].
    poisoned: bool,
    /// Message of the most recent persist failure, if any.
    last_persist_error: Option<String>,
}

fn snap_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("snap-{index}.snap"))
}

fn wal_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index}.log"))
}

fn open_wal(
    storage: &dyn Storage,
    dir: &Path,
    index: u64,
) -> std::io::Result<Box<dyn StorageFile>> {
    let mut w = storage.create(&wal_path(dir, index))?;
    w.append(format!("{WAL_MAGIC} {index}\n").as_bytes())?;
    Ok(w)
}

/// List snapshot indices present in `dir`, ascending.
fn list_snapshots(storage: &dyn Storage, dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for name in storage.list_dir(dir)? {
        if let Some(idx) = name.strip_prefix("snap-").and_then(|s| s.strip_suffix(".snap")) {
            if let Ok(i) = idx.parse() {
                out.push(i);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Write `snap-<index>.snap` atomically (tmp + fsync + rename).
fn write_snapshot_file(
    storage: &dyn Storage,
    dir: &Path,
    index: u64,
    config_tag: &str,
    engine: &Engine<'_>,
) -> Result<()> {
    let mut enc = Enc::new();
    enc.s(config_tag);
    save_engine(&mut enc, engine);
    let payload = enc.finish();
    let crc = crc32(payload.as_bytes());
    let content = format!("{SNAP_MAGIC} {index}\n{payload}\ncrc {crc:08x}\n");
    let tmp = dir.join(format!("snap-{index}.tmp"));
    {
        let mut f = storage.create(&tmp)?;
        f.append(content.as_bytes())?;
        f.sync()?;
    }
    storage.rename(&tmp, &snap_path(dir, index))?;
    Ok(())
}

/// Read and validate `snap-<index>.snap`, returning its payload line.
fn read_snapshot(storage: &dyn Storage, dir: &Path, index: u64) -> Result<String> {
    let bytes = storage.read(&snap_path(dir, index))?;
    let text = String::from_utf8(bytes)
        .map_err(|_| PersistError::Corrupt(format!("snapshot {index} is not UTF-8")))?;
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header != format!("{SNAP_MAGIC} {index}") {
        return Err(PersistError::Corrupt(format!("bad snapshot header {header:?}")));
    }
    let payload =
        lines.next().ok_or_else(|| PersistError::Corrupt("snapshot missing payload".into()))?;
    let crc_line =
        lines.next().ok_or_else(|| PersistError::Corrupt("snapshot missing checksum".into()))?;
    let expect = crc_line
        .strip_prefix("crc ")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| PersistError::Corrupt("bad snapshot checksum line".into()))?;
    if crc32(payload.as_bytes()) != expect {
        return Err(PersistError::Corrupt(format!("snapshot {index} checksum mismatch")));
    }
    Ok(payload.to_string())
}

/// Replay `wal-<index>.log` into `engine`, truncating any torn or corrupt
/// tail. Returns the replayed event count and the journal reopened for
/// appending at the end of its valid prefix.
fn replay_wal(
    storage: &dyn Storage,
    dir: &Path,
    index: u64,
    engine: &mut Engine<'_>,
) -> Result<(u64, Box<dyn StorageFile>)> {
    let path = wal_path(dir, index);
    if !storage.exists(&path) {
        // Segment never created (killed inside snapshot()); start fresh.
        return Ok((0, open_wal(storage, dir, index)?));
    }
    let bytes = storage.read(&path)?;
    let header_end = bytes.iter().position(|&b| b == b'\n');
    let expected_header = format!("{WAL_MAGIC} {index}");
    let mut pos = match header_end {
        Some(end) if bytes[..end] == *expected_header.as_bytes() => end + 1,
        Some(end) => {
            // A complete but wrong header is not a torn write.
            let got = String::from_utf8_lossy(&bytes[..end]).into_owned();
            return Err(PersistError::Corrupt(format!("bad journal header {got:?}")));
        }
        None => {
            // Torn mid-header: rewrite the segment from scratch.
            return Ok((0, open_wal(storage, dir, index)?));
        }
    };
    let mut replayed = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        // A record is valid only if it is newline-terminated, UTF-8,
        // well-formed, and checksums clean; anything else is a torn tail
        // and everything from here on is dropped.
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else { break };
        let Ok(line) = std::str::from_utf8(&rest[..nl]) else { break };
        let Some((crc_hex, body)) = line.split_once(' ') else { break };
        let Ok(expect) = u32::from_str_radix(crc_hex, 16) else { break };
        if crc32(body.as_bytes()) != expect {
            break;
        }
        let Ok(event) = decode_event(body) else { break };
        let _ = engine.step(event);
        replayed += 1;
        pos += nl + 1;
    }
    let file = storage.open_truncated(&path, pos as u64)?;
    Ok((replayed, file))
}

impl<'a> DurableEngine<'a> {
    /// Initialize a fresh state directory: writes snapshot 0 of the given
    /// engine and opens its first journal segment. Fails if the directory
    /// already holds snapshots (use [`DurableEngine::recover`]).
    pub fn create(
        dir: impl Into<PathBuf>,
        engine: Engine<'a>,
        config_tag: &str,
        dcfg: DurableConfig,
    ) -> Result<Self> {
        Self::create_with(Box::new(FsStorage), dir, engine, config_tag, dcfg)
    }

    /// [`DurableEngine::create`] against an explicit [`Storage`]
    /// implementation (production uses [`FsStorage`]; chaos tests inject
    /// a [`crate::fault::FaultStorage`]).
    pub fn create_with(
        storage: Box<dyn Storage>,
        dir: impl Into<PathBuf>,
        engine: Engine<'a>,
        config_tag: &str,
        dcfg: DurableConfig,
    ) -> Result<Self> {
        let dir = dir.into();
        storage.create_dir_all(&dir)?;
        if !list_snapshots(storage.as_ref(), &dir)?.is_empty() {
            return Err(PersistError::Corrupt(format!(
                "state directory {} already initialized; use recover",
                dir.display()
            )));
        }
        write_snapshot_file(storage.as_ref(), &dir, 0, config_tag, &engine)?;
        let wal = open_wal(storage.as_ref(), &dir, 0)?;
        Ok(DurableEngine {
            engine,
            storage,
            dir,
            config_tag: config_tag.to_string(),
            dcfg,
            wal,
            events_since_snapshot: 0,
            event_index: 0,
            poisoned: false,
            last_persist_error: None,
        })
    }

    /// Resume from an existing state directory. `engine` must be freshly
    /// constructed with the *same configuration* the directory was created
    /// under (same `config_tag`); its mutable state is overwritten from
    /// the newest valid snapshot, then the journal tail is replayed. A
    /// torn newest snapshot falls back to the previous one; a torn journal
    /// tail is truncated. Returns the durable engine plus the probes still
    /// outstanding at the kill point, which the driver must re-execute.
    pub fn recover(
        dir: impl Into<PathBuf>,
        engine: Engine<'a>,
        config_tag: &str,
        dcfg: DurableConfig,
    ) -> Result<(Self, Vec<CellChoice>)> {
        Self::recover_with(Box::new(FsStorage), dir, engine, config_tag, dcfg)
    }

    /// [`DurableEngine::recover`] against an explicit [`Storage`]
    /// implementation.
    pub fn recover_with(
        storage: Box<dyn Storage>,
        dir: impl Into<PathBuf>,
        mut engine: Engine<'a>,
        config_tag: &str,
        dcfg: DurableConfig,
    ) -> Result<(Self, Vec<CellChoice>)> {
        let dir = dir.into();
        let snaps = list_snapshots(storage.as_ref(), &dir)?;
        if snaps.is_empty() {
            return Err(PersistError::Corrupt(format!(
                "no snapshots in {} (use create for a fresh directory)",
                dir.display()
            )));
        }
        let mut chosen = None;
        let mut last_err = None;
        for &idx in snaps.iter().rev() {
            match read_snapshot(storage.as_ref(), &dir, idx) {
                Ok(payload) => {
                    chosen = Some((idx, payload));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (snap_idx, payload) = match chosen {
            Some(c) => c,
            None => {
                return Err(last_err
                    .unwrap_or_else(|| PersistError::Corrupt("no readable snapshot found".into())))
            }
        };
        let mut dec = Dec::new(&payload);
        let tag = dec.s()?;
        if tag != config_tag {
            return Err(PersistError::Corrupt(format!(
                "config mismatch: directory was created under {tag:?}, recovering engine is \
                 {config_tag:?}"
            )));
        }
        load_engine(&mut dec, &mut engine)?;
        dec.finish()?;
        let (replayed, wal) = replay_wal(storage.as_ref(), &dir, snap_idx, &mut engine)?;
        let pending = engine.outstanding_probes();
        let de = DurableEngine {
            engine,
            storage,
            dir,
            config_tag: config_tag.to_string(),
            dcfg,
            wal,
            events_since_snapshot: replayed as usize,
            event_index: snap_idx + replayed,
            poisoned: false,
            last_persist_error: None,
        };
        Ok((de, pending))
    }

    /// The wrapped engine (read-only).
    pub fn engine(&self) -> &Engine<'a> {
        &self.engine
    }

    /// Total mutating events applied since the directory was created.
    pub fn event_index(&self) -> u64 {
        self.event_index
    }

    /// Whether the journal is poisoned (a persist failure left the
    /// current segment unusable). While poisoned, [`DurableEngine::step`]
    /// refuses events; use [`DurableEngine::step_degraded`] /
    /// [`DurableEngine::rearm`].
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Message of the most recent persist failure, if any. Cleared by a
    /// successful [`DurableEngine::rearm`].
    pub fn last_persist_error(&self) -> Option<&str> {
        self.last_persist_error.as_deref()
    }

    /// Journal (write-ahead) and apply one event. Read-only events bypass
    /// the journal entirely. On `Err` the event has **not** been applied:
    /// a failed append returns [`PersistError::Io`] and poisons the
    /// journal; further calls return [`PersistError::Poisoned`] until
    /// [`DurableEngine::rearm`] succeeds.
    pub fn step(&mut self, event: Event) -> Result<Vec<Action>> {
        if event.is_read_only() {
            return Ok(self.engine.step(event));
        }
        if self.poisoned {
            return Err(PersistError::Poisoned(
                self.last_persist_error.clone().unwrap_or_else(|| "journal poisoned".into()),
            ));
        }
        let body = encode_event(&event);
        let record = format!("{:08x} {body}\n", crc32(body.as_bytes()));
        if let Err(e) = self.wal.append(record.as_bytes()) {
            // The segment now ends in an undefined prefix of this record;
            // the CRC framing makes that recoverable on disk, but further
            // appends here would interleave garbage — poison the WAL.
            let err = PersistError::Io(e);
            self.poisoned = true;
            self.last_persist_error = Some(err.to_string());
            return Err(err);
        }
        let actions = self.engine.step(event);
        self.event_index += 1;
        self.events_since_snapshot += 1;
        if self.dcfg.snapshot_every > 0 && self.events_since_snapshot >= self.dcfg.snapshot_every {
            if let Err(e) = self.snapshot() {
                // The event itself is journaled; a failed snapshot write
                // retries at the next boundary (the counter keeps
                // growing). The one unrecoverable case — snapshot written
                // but no fresh segment — has already poisoned the WAL
                // inside snapshot(), which the next step() surfaces.
                self.last_persist_error = Some(e.to_string());
            }
        }
        Ok(actions)
    }

    /// Apply one event **without journaling** — degraded mode after a
    /// persist failure. The in-memory engine keeps advancing (and stays
    /// deterministic); at each snapshot-cadence boundary a
    /// [`DurableEngine::rearm`] is attempted automatically. Returns the
    /// engine's actions and whether this step re-armed durability.
    pub fn step_degraded(&mut self, event: Event) -> (Vec<Action>, bool) {
        if event.is_read_only() {
            return (self.engine.step(event), false);
        }
        // Bypassing the journal makes the current segment incomplete by
        // definition, even if the caller degraded for another reason.
        self.poisoned = true;
        let actions = self.engine.step(event);
        self.event_index += 1;
        self.events_since_snapshot += 1;
        let mut rearmed = false;
        if self.dcfg.snapshot_every > 0 && self.events_since_snapshot >= self.dcfg.snapshot_every {
            match self.rearm() {
                Ok(()) => rearmed = true,
                Err(e) => self.last_persist_error = Some(e.to_string()),
            }
        }
        (actions, rearmed)
    }

    /// Attempt to restore durability after a persist failure: snapshot
    /// the *current* in-memory state (capturing everything applied while
    /// degraded) and open a fresh journal segment. On success the engine
    /// is fully durable again and the poisoned flag clears.
    pub fn rearm(&mut self) -> Result<()> {
        // No sync of the old segment: it is poisoned and may well be the
        // thing that errors. The snapshot supersedes it entirely.
        write_snapshot_file(
            self.storage.as_ref(),
            &self.dir,
            self.event_index,
            &self.config_tag,
            &self.engine,
        )?;
        let wal = open_wal(self.storage.as_ref(), &self.dir, self.event_index)?;
        self.wal = wal;
        self.events_since_snapshot = 0;
        self.poisoned = false;
        self.last_persist_error = None;
        let _ = self.gc();
        Ok(())
    }

    /// Snapshot now: flush + fsync the current journal segment, write the
    /// snapshot atomically, start a fresh segment, GC old checkpoints.
    pub fn snapshot(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(PersistError::Poisoned(
                self.last_persist_error.clone().unwrap_or_else(|| "journal poisoned".into()),
            ));
        }
        self.wal.sync()?;
        write_snapshot_file(
            self.storage.as_ref(),
            &self.dir,
            self.event_index,
            &self.config_tag,
            &self.engine,
        )?;
        match open_wal(self.storage.as_ref(), &self.dir, self.event_index) {
            Ok(wal) => {
                self.wal = wal;
                self.events_since_snapshot = 0;
            }
            Err(e) => {
                // The snapshot is durable but no fresh segment accepts
                // appends. Journaling into the superseded segment would
                // silently drop events on recovery (recovery replays
                // wal-<newest snap>), so poison instead.
                let err = PersistError::Io(e);
                self.poisoned = true;
                self.last_persist_error = Some(err.to_string());
                return Err(err);
            }
        }
        // GC is best-effort: a failed delete costs disk, not correctness.
        let _ = self.gc();
        Ok(())
    }

    fn gc(&self) -> Result<()> {
        let storage = self.storage.as_ref();
        let snaps = list_snapshots(storage, &self.dir)?;
        let keep = self.dcfg.keep_snapshots.max(1);
        if snaps.len() <= keep {
            return Ok(());
        }
        let cutoff = snaps[snaps.len() - keep];
        for &i in &snaps[..snaps.len() - keep] {
            let _ = storage.remove(&snap_path(&self.dir, i));
        }
        // A wal segment wal-<i> is only replayable on top of snap-<i>;
        // segments below the oldest kept snapshot are dead.
        for name in storage.list_dir(&self.dir)? {
            if let Some(idx) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".log")) {
                if let Ok(i) = idx.parse::<u64>() {
                    if i < cutoff {
                        let _ = storage.remove(&self.dir.join(&name));
                    }
                }
            }
        }
        Ok(())
    }

    /// Flush the journal to the OS and fsync it (graceful shutdown).
    pub fn shutdown(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(PersistError::Poisoned(
                self.last_persist_error.clone().unwrap_or_else(|| "journal poisoned".into()),
            ));
        }
        self.wal.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreConfig;
    use crate::matrix::WorkloadMatrix;
    use crate::policy::LimeQoPolicy;
    use limeqo_linalg::rng::SeededRng;
    use std::fs::{self, OpenOptions};
    use std::io::Write as _;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("limeqo-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn truth_matrix(n: usize, k: usize, seed: u64) -> Mat {
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_mat(n, 3, 0.5, 2.0);
        let h = rng.uniform_mat(k, 3, 0.2, 1.5);
        let mut lat = q.matmul_t(&h).unwrap();
        for i in 0..n {
            lat[(i, 0)] = lat[(i, 0)] * 2.0 + 0.5;
        }
        lat
    }

    /// A fresh engine with the exact configuration every test run shares
    /// (reference, durable, and recovered instances must match).
    fn fresh_engine(truth: &Mat) -> Engine<'static> {
        let (n, k) = truth.shape();
        let defaults: Vec<f64> = (0..n).map(|i| truth[(i, 0)]).collect();
        let store = ObservationStore::new(WorkloadMatrix::with_defaults(&defaults, k));
        let cfg = ExploreConfig { batch: 4, seed: 9, ..Default::default() };
        Engine::offline(store, Box::new(LimeQoPolicy::with_als(9)), None, &cfg)
    }

    fn observe(truth: &Mat, row: usize, col: usize, timeout: f64) -> Event {
        let t = truth[(row, col)];
        let censored = t > timeout;
        Event::Observation { row, col, value: if censored { timeout } else { t }, censored }
    }

    fn feed_plain(engine: &mut Engine<'_>, truth: &Mat, actions: Vec<Action>) {
        for a in actions {
            if let Action::Probe { row, col, timeout } = a {
                engine.step(observe(truth, row, col, timeout));
            }
        }
    }

    fn drive_plain(engine: &mut Engine<'_>, truth: &Mat, ticks: usize) {
        for _ in 0..ticks {
            let actions = engine.step(Event::Tick);
            feed_plain(engine, truth, actions);
        }
    }

    fn feed_durable(de: &mut DurableEngine<'_>, truth: &Mat, actions: Vec<Action>) {
        for a in actions {
            if let Action::Probe { row, col, timeout } = a {
                de.step(observe(truth, row, col, timeout)).unwrap();
            }
        }
    }

    fn drive_durable(de: &mut DurableEngine<'_>, truth: &Mat, ticks: usize) {
        for _ in 0..ticks {
            let actions = de.step(Event::Tick).unwrap();
            feed_durable(de, truth, actions);
        }
    }

    fn trace_bits(engine: &Engine<'_>) -> Vec<(usize, usize, u64, bool)> {
        engine.trace().iter().map(|t| (t.row, t.col, t.charged.to_bits(), t.censored)).collect()
    }

    #[test]
    fn crc32_matches_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn token_codec_roundtrips_bit_exactly() {
        let mut enc = Enc::new();
        enc.u(u64::MAX);
        enc.i(0);
        enc.f(-0.0);
        enc.f(f64::INFINITY);
        enc.f(1.0 / 3.0);
        enc.b(true);
        enc.s("");
        enc.s("limeqo: spec { a = 1 }");
        enc.mat(&Mat::from_vec(2, 2, vec![1.5, -2.5, 0.0, 9.0]).unwrap());
        let line = enc.finish();
        let mut dec = Dec::new(&line);
        assert_eq!(dec.u().unwrap(), u64::MAX);
        assert_eq!(dec.i().unwrap(), 0);
        assert_eq!(dec.f().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.f().unwrap(), f64::INFINITY);
        assert_eq!(dec.f().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert!(dec.b().unwrap());
        assert_eq!(dec.s().unwrap(), "");
        assert_eq!(dec.s().unwrap(), "limeqo: spec { a = 1 }");
        let m = dec.mat().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 1)], 9.0);
        dec.finish().unwrap();
    }

    #[test]
    fn event_codec_roundtrips_every_variant() {
        let events = vec![
            Event::Tick,
            Event::Observation { row: 3, col: 7, value: 0.125, censored: true },
            Event::Arrival { row: 11 },
            Event::AddQueries { defaults: vec![1.0, 2.5, 0.75] },
            Event::DataShift { new_rows: 20, observations: vec![(0, 0, 1.5), (1, 3, 0.25)] },
            Event::ProbeFailed { row: 5, col: 2 },
        ];
        for e in events {
            let body = encode_event(&e);
            let back = decode_event(&body).unwrap();
            assert_eq!(format!("{e:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn snapshot_recover_resumes_bit_identically() {
        let truth = truth_matrix(24, 8, 42);
        let mut reference = fresh_engine(&truth);
        drive_plain(&mut reference, &truth, 8);

        let dir = test_dir("roundtrip");
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        drive_durable(&mut de, &truth, 4);
        de.snapshot().unwrap();
        drive_durable(&mut de, &truth, 1);
        drop(de); // kill between rounds, no shutdown

        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        assert!(outstanding.is_empty(), "no probes were in flight at the kill");
        drive_durable(&mut de, &truth, 3);
        assert_eq!(trace_bits(de.engine()), trace_bits(&reference));
        assert_eq!(
            de.engine().time_spent().to_bits(),
            reference.time_spent().to_bits(),
            "simulated clock must recover exactly"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_tick_kill_reissues_outstanding_probes() {
        let truth = truth_matrix(24, 8, 43);
        let mut reference = fresh_engine(&truth);
        drive_plain(&mut reference, &truth, 8);

        let dir = test_dir("midtick");
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        drive_durable(&mut de, &truth, 3);
        // The tick is journaled but its observations never arrive: the
        // process dies while the probes are executing.
        let probes_before: Vec<Action> = de.step(Event::Tick).unwrap();
        drop(de);

        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        let expected: Vec<CellChoice> = probes_before
            .iter()
            .filter_map(|a| match *a {
                Action::Probe { row, col, timeout } => Some(CellChoice { row, col, timeout }),
                _ => None,
            })
            .collect();
        assert_eq!(outstanding, expected, "recovery must re-issue the lost probes");
        for p in outstanding {
            de.step(observe(&truth, p.row, p.col, p.timeout)).unwrap();
        }
        drive_durable(&mut de, &truth, 4);
        assert_eq!(trace_bits(de.engine()), trace_bits(&reference));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_rewritten() {
        let truth = truth_matrix(24, 8, 44);
        let mut reference = fresh_engine(&truth);
        drive_plain(&mut reference, &truth, 8);

        let dir = test_dir("torn");
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        drive_durable(&mut de, &truth, 5);
        drop(de);
        // Simulate a torn write: a half-record without its newline, after
        // a full record whose checksum does not match its body.
        let wal = dir.join("wal-0.log");
        let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
        writeln!(f, "00000000 T").unwrap();
        write!(f, "deadbeef O 3 ").unwrap();
        drop(f);

        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        assert!(outstanding.is_empty());
        drive_durable(&mut de, &truth, 3);
        assert_eq!(trace_bits(de.engine()), trace_bits(&reference));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_checkpoint() {
        let truth = truth_matrix(24, 8, 45);
        let mut reference = fresh_engine(&truth);
        drive_plain(&mut reference, &truth, 8);

        let dir = test_dir("tornsnap");
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        drive_durable(&mut de, &truth, 4);
        let idx = de.event_index();
        de.snapshot().unwrap();
        drop(de);
        // Flip a payload byte in the newest snapshot: its checksum fails,
        // so recovery must fall back to snap-0 and replay wal-0 instead.
        let snap = dir.join(format!("snap-{idx}.snap"));
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        fs::write(&snap, bytes).unwrap();

        let (mut de, _) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        drive_durable(&mut de, &truth, 4);
        assert_eq!(trace_bits(de.engine()), trace_bits(&reference));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_bounds_checkpoints_and_config_mismatch_is_rejected() {
        let truth = truth_matrix(16, 6, 46);
        let dir = test_dir("gc");
        let dcfg = DurableConfig { snapshot_every: 7, keep_snapshots: 2 };
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag-a", dcfg.clone()).unwrap();
        drive_durable(&mut de, &truth, 12);
        drop(de);
        let snaps = list_snapshots(&FsStorage, &dir).unwrap();
        assert!(snaps.len() <= 2, "gc must keep at most keep_snapshots: {snaps:?}");
        let wal_count = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().starts_with("wal-"))
            .count();
        assert!(wal_count <= 2, "dead journal segments must be collected");

        let err = match DurableEngine::recover(&dir, fresh_engine(&truth), "tag-b", dcfg) {
            Err(e) => e,
            Ok(_) => panic!("recover must reject a mismatched configuration"),
        };
        assert!(
            matches!(err, PersistError::Corrupt(ref m) if m.contains("config mismatch")),
            "got {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_works_from_the_single_kept_snapshot() {
        // keep_snapshots = 1 is the floor GC clamps to: after every
        // snapshot, exactly one checkpoint survives and there is no older
        // one to fall back to. Recovery must still resume bit-identically
        // from that lone snapshot plus its journal tail.
        let truth = truth_matrix(24, 8, 47);
        let mut reference = fresh_engine(&truth);
        drive_plain(&mut reference, &truth, 9);

        let dir = test_dir("minkeep");
        let dcfg = DurableConfig { snapshot_every: 0, keep_snapshots: 1 };
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag", dcfg.clone()).unwrap();
        drive_durable(&mut de, &truth, 3);
        de.snapshot().unwrap();
        drive_durable(&mut de, &truth, 3);
        de.snapshot().unwrap();
        drive_durable(&mut de, &truth, 2);
        drop(de); // kill with a non-empty tail on the lone snapshot

        let snaps = list_snapshots(&FsStorage, &dir).unwrap();
        assert_eq!(snaps.len(), 1, "gc must keep exactly the minimum: {snaps:?}");

        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "tag", dcfg).unwrap();
        assert!(outstanding.is_empty());
        drive_durable(&mut de, &truth, 1);
        assert_eq!(trace_bits(de.engine()), trace_bits(&reference));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_at_the_snapshot_boundary_recovers_bit_identically() {
        // Die immediately after snapshot(): the newest journal segment
        // holds only its header — the durable history ends exactly at the
        // snapshot record. Recovery must load that snapshot, replay zero
        // events, and continue as if nothing happened.
        let truth = truth_matrix(24, 8, 48);
        let mut reference = fresh_engine(&truth);
        drive_plain(&mut reference, &truth, 8);

        let dir = test_dir("snapboundary");
        let mut de =
            DurableEngine::create(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        drive_durable(&mut de, &truth, 5);
        let idx = de.event_index();
        de.snapshot().unwrap();
        drop(de); // nothing journaled after the snapshot

        let wal = fs::read_to_string(wal_path(&dir, idx)).unwrap();
        assert_eq!(
            wal.lines().count(),
            1,
            "the post-snapshot segment must hold only its header: {wal:?}"
        );

        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "tag", DurableConfig::default())
                .unwrap();
        assert!(outstanding.is_empty(), "no events past the snapshot, nothing in flight");
        assert_eq!(de.event_index(), idx, "recovery resumes at the snapshot's event index");
        drive_durable(&mut de, &truth, 3);
        assert_eq!(trace_bits(de.engine()), trace_bits(&reference));
        assert_eq!(
            de.engine().time_spent().to_bits(),
            reference.time_spent().to_bits(),
            "clock recovers exactly across a snapshot-boundary kill"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
