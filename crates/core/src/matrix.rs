//! The partially observed workload matrix `W̃` (paper §4.1).
//!
//! Rows are queries, columns are hints, and each cell is in one of three
//! states:
//!
//! * **unobserved** — never executed (the `∞` entries of Eq. 1),
//! * **complete** — executed to completion, latency known exactly,
//! * **censored** — executed but timed out; only a *lower bound* on the
//!   true latency is known (Eq. 5). These are the "first-class citizens"
//!   the censored techniques of §4.3 exploit.
//!
//! Column [`WorkloadMatrix::DEFAULT_HINT`] (0) is the default optimizer
//! plan; exploration harnesses observe it for every query up front, because
//! repetitive workloads execute the default plan in production anyway.
//!
//! ## The compact observed-cell index
//!
//! At production scale (the `scale-100k` scenario: 100 000 queries × 49
//! hints) the matrix is almost entirely unobserved, yet the original hot
//! paths — ALS assembly, the Eq. 6 score scan, the density gate, the
//! censored-fallback sweep — all walked every dense cell. The matrix now
//! maintains a CSR-style per-row index of observed columns
//! ([`WorkloadMatrix::observed_cols`], sorted ascending) alongside the
//! dense cell store, plus an incrementally maintained per-row best-complete
//! cache (so [`WorkloadMatrix::row_best`] is O(1)) and global
//! complete/censored counters. Every mutation flows through
//! [`WorkloadMatrix::set_complete`] / [`WorkloadMatrix::set_censored`] /
//! [`WorkloadMatrix::add_rows`], which keep the index consistent; the
//! index is pure acceleration — every accessor returns exactly what the
//! dense scan used to return, which the unit tests pin against naive
//! re-scans.
//!
//! ## The unobserved-count Fenwick index
//!
//! Beside the CSR index the matrix maintains a [`Fenwick`] tree over the
//! per-row *unobserved* counts (`k − observed_cols(row).len()`), updated
//! on the same three mutation paths. It gives the selection subsystem
//! ([`crate::select`]) global-rank → (row, col) lookup in O(log n + k):
//! [`WorkloadMatrix::unobserved_at_rank`] descends the tree to the row
//! holding the rank, then merge-walks the row's sorted observed columns
//! to the offset-th unobserved column. That is what lets
//! `sample_unobserved` draw uniform cells *without materializing* the
//! unobserved set — at the 100k×49 scale tier the old materialize+shuffle
//! path touched 4.9M tuples per step.

use limeqo_linalg::Fenwick;
use limeqo_linalg::Mat;

/// State of one (query, hint) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Never executed.
    Unobserved,
    /// Executed to completion with this latency (seconds).
    Complete(f64),
    /// Timed out: true latency is strictly greater than this bound.
    Censored(f64),
}

impl Cell {
    /// True when the cell has been executed (complete or censored).
    pub fn is_observed(&self) -> bool {
        !matches!(self, Cell::Unobserved)
    }
}

/// The partially observed workload matrix.
#[derive(Debug, Clone)]
pub struct WorkloadMatrix {
    n: usize,
    k: usize,
    cells: Vec<Cell>,
    /// CSR-style index: per-row observed (complete or censored) column
    /// indices, sorted ascending. Pure acceleration over `cells`.
    obs: Vec<Vec<u32>>,
    /// Per-row cached best completed cell `(col, latency)` — what a dense
    /// ascending-column scan would return ([`WorkloadMatrix::row_best`]).
    best: Vec<Option<(u32, f64)>>,
    /// Fenwick tree over per-row unobserved counts (`k - obs[row].len()`),
    /// the rank-selection index behind [`WorkloadMatrix::unobserved_at_rank`].
    unobs: Fenwick,
    /// Global completed-cell count.
    n_complete: usize,
    /// Global censored-cell count.
    n_censored: usize,
}

impl WorkloadMatrix {
    /// Column index of the default hint.
    pub const DEFAULT_HINT: usize = 0;

    /// Create an all-unobserved matrix.
    pub fn new(n: usize, k: usize) -> Self {
        WorkloadMatrix {
            n,
            k,
            cells: vec![Cell::Unobserved; n * k],
            obs: vec![Vec::new(); n],
            best: vec![None; n],
            unobs: Fenwick::from_counts(&vec![k as i64; n]),
            n_complete: 0,
            n_censored: 0,
        }
    }

    /// Create a matrix with the default column (hint 0) observed at the
    /// given latencies — the paper's starting condition ("we initially
    /// reveal the entries corresponding to the default plan").
    pub fn with_defaults(defaults: &[f64], k: usize) -> Self {
        let mut wm = WorkloadMatrix::new(defaults.len(), k);
        for (i, &d) in defaults.iter().enumerate() {
            wm.set_complete(i, Self::DEFAULT_HINT, d);
        }
        wm
    }

    /// Number of queries (rows).
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of hints (columns).
    pub fn n_cols(&self) -> usize {
        self.k
    }

    /// Cell state at (row, col).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> Cell {
        self.cells[row * self.k + col]
    }

    /// Record a completed execution.
    pub fn set_complete(&mut self, row: usize, col: usize, latency: f64) {
        assert!(latency >= 0.0, "latency must be non-negative");
        let idx = row * self.k + col;
        let prev = self.cells[idx];
        self.cells[idx] = Cell::Complete(latency);
        match prev {
            Cell::Unobserved => {
                self.index_insert(row, col);
                self.n_complete += 1;
            }
            Cell::Censored(_) => {
                self.n_censored -= 1;
                self.n_complete += 1;
            }
            Cell::Complete(_) => {}
        }
        // Maintain the best-complete cache with the dense scan's exact
        // semantics: ascending columns, strictly-smaller replaces (so the
        // lowest column wins ties).
        let col32 = col as u32;
        match self.best[row] {
            None => self.best[row] = Some((col32, latency)),
            Some((bc, bv)) if bc == col32 => {
                if latency <= bv {
                    self.best[row] = Some((bc, latency));
                } else {
                    // The incumbent best got slower: rescan the row.
                    self.best[row] = self.rescan_best(row);
                }
            }
            Some((bc, bv)) => {
                if latency < bv || (latency == bv && col32 < bc) {
                    self.best[row] = Some((col32, latency));
                }
            }
        }
    }

    /// Record a timed-out execution: the true latency exceeds `bound`.
    /// A tighter (larger) bound replaces a looser one; a completed
    /// observation is never downgraded to censored.
    pub fn set_censored(&mut self, row: usize, col: usize, bound: f64) {
        assert!(bound >= 0.0, "bound must be non-negative");
        let idx = row * self.k + col;
        match self.cells[idx] {
            Cell::Complete(_) => {}
            Cell::Censored(old) if old >= bound => {}
            prev => {
                if matches!(prev, Cell::Unobserved) {
                    self.index_insert(row, col);
                    self.n_censored += 1;
                }
                self.cells[idx] = Cell::Censored(bound);
            }
        }
    }

    /// Append `count` unobserved rows (new queries arriving, §5.3).
    pub fn add_rows(&mut self, count: usize) {
        self.n += count;
        self.cells.extend(std::iter::repeat(Cell::Unobserved).take(count * self.k));
        self.obs.extend(std::iter::repeat_with(Vec::new).take(count));
        self.best.extend(std::iter::repeat(None).take(count));
        for _ in 0..count {
            self.unobs.append(self.k as i64);
        }
    }

    /// Best (minimum-latency) *completed* cell of a row, the hint the
    /// online path would serve (censored cells are excluded: a timed-out
    /// plan is unverified and using it could regress). O(1) from the
    /// incrementally maintained cache.
    pub fn row_best(&self, row: usize) -> Option<(usize, f64)> {
        self.best[row].map(|(c, v)| (c as usize, v))
    }

    /// Observed (complete or censored) column indices of `row`, sorted
    /// ascending — the compact observed-cell index the ALS assembly, the
    /// Eq. 6 scan and the censored-fallback sweep iterate instead of the
    /// dense row.
    #[inline]
    pub fn observed_cols(&self, row: usize) -> &[u32] {
        &self.obs[row]
    }

    /// Number of observed cells in `row` (O(1)).
    #[inline]
    pub fn row_observed_count(&self, row: usize) -> usize {
        self.obs[row].len()
    }

    /// Unobserved column indices of `row`, ascending — the complement of
    /// [`WorkloadMatrix::observed_cols`], produced by merge-walking the
    /// index rather than matching every dense cell.
    pub fn unobserved_in_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let observed = &self.obs[row];
        let mut next_obs = 0usize;
        (0..self.k).filter(move |&c| {
            if observed.get(next_obs).is_some_and(|&o| o as usize == c) {
                next_obs += 1;
                false
            } else {
                true
            }
        })
    }

    fn index_insert(&mut self, row: usize, col: usize) {
        let col = col as u32;
        let list = &mut self.obs[row];
        match list.binary_search(&col) {
            Ok(_) => {}
            Err(pos) => {
                list.insert(pos, col);
                self.unobs.add(row, -1);
            }
        }
    }

    /// Dense-scan fallback for the best cache (only needed when the
    /// incumbent best cell is overwritten with a slower latency).
    fn rescan_best(&self, row: usize) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for &col in &self.obs[row] {
            if let Cell::Complete(v) = self.cell(row, col as usize) {
                if best.map_or(true, |(_, b)| v < b) {
                    best = Some((col, v));
                }
            }
        }
        best
    }

    /// `P(W̃)` (Eq. 2): the workload latency under the currently best
    /// observed hints. Rows with no completed cell contribute nothing
    /// (they have not entered the workload yet).
    pub fn total_best_latency(&self) -> f64 {
        (0..self.n).filter_map(|i| self.row_best(i).map(|(_, v)| v)).sum()
    }

    /// The observed-value matrix `W̃` with unobserved/censored cells as 0
    /// (pairs with [`WorkloadMatrix::mask`] in `M ⊙ W̃`).
    pub fn values(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for row in 0..self.n {
            for &col in &self.obs[row] {
                if let Cell::Complete(v) = self.cell(row, col as usize) {
                    m[(row, col as usize)] = v;
                }
            }
        }
        m
    }

    /// The mask matrix `M`: 1 for completed cells, 0 otherwise.
    pub fn mask(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for row in 0..self.n {
            for &col in &self.obs[row] {
                if matches!(self.cell(row, col as usize), Cell::Complete(_)) {
                    m[(row, col as usize)] = 1.0;
                }
            }
        }
        m
    }

    /// The timeout matrix `T`: censored bounds where known, 0 elsewhere.
    pub fn timeouts(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for row in 0..self.n {
            for &col in &self.obs[row] {
                if let Cell::Censored(b) = self.cell(row, col as usize) {
                    m[(row, col as usize)] = b;
                }
            }
        }
        m
    }

    /// Count of completed cells (O(1)).
    pub fn complete_count(&self) -> usize {
        self.n_complete
    }

    /// Count of censored cells (O(1)).
    pub fn censored_count(&self) -> usize {
        self.n_censored
    }

    /// Count of unobserved cells (O(1)).
    pub fn unobserved_count(&self) -> usize {
        self.n * self.k - self.n_complete - self.n_censored
    }

    /// True when no unobserved cells remain (Algorithm 1's `M ≠ 1`
    /// termination test).
    pub fn fully_observed(&self) -> bool {
        self.unobserved_count() == 0
    }

    /// Number of unobserved cells in `row` (O(1)).
    #[inline]
    pub fn row_unobserved_count(&self, row: usize) -> usize {
        self.k - self.obs[row].len()
    }

    /// The `rank`-th unobserved cell in row-major order, in O(log n + k):
    /// a Fenwick descent over the per-row unobserved counts finds the row,
    /// then a merge-walk over the row's sorted observed columns finds the
    /// offset-th unobserved column. Agrees exactly with
    /// `unobserved_cells().nth(rank)` (pinned by the unit tests) without
    /// materializing or scanning the unobserved set.
    ///
    /// # Panics
    /// Panics if `rank >= unobserved_count()`.
    pub fn unobserved_at_rank(&self, rank: usize) -> (usize, usize) {
        let (row, offset) = self.unobs.rank_select(rank as i64);
        (row, self.unobserved_col_at(row, offset as usize))
    }

    /// The `offset`-th unobserved column of `row` (ascending), via the
    /// merge-walk over the row's sorted observed columns — O(k).
    ///
    /// # Panics
    /// Panics if `offset >= row_unobserved_count(row)`.
    pub fn unobserved_col_at(&self, row: usize, offset: usize) -> usize {
        let mut remaining = offset;
        let observed = &self.obs[row];
        let mut next_obs = 0usize;
        for col in 0..self.k {
            if observed.get(next_obs).is_some_and(|&o| o as usize == col) {
                next_obs += 1;
                continue;
            }
            if remaining == 0 {
                return col;
            }
            remaining -= 1;
        }
        panic!("offset {offset} exceeds row {row}'s unobserved count")
    }

    /// Iterate over unobserved cell coordinates in row-major order,
    /// skipping fully observed rows in O(1) via the index.
    pub fn unobserved_cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n)
            .filter(move |&r| self.obs[r].len() < self.k)
            .flat_map(move |r| self.unobserved_in_row(r).map(move |c| (r, c)))
    }

    /// Rows that still have at least one unobserved cell.
    pub fn rows_with_unobserved(&self) -> Vec<usize> {
        (0..self.n).filter(|&r| self.obs[r].len() < self.k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_initialize_column_zero() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0], 4);
        assert_eq!(wm.n_rows(), 3);
        assert_eq!(wm.n_cols(), 4);
        assert_eq!(wm.cell(1, 0), Cell::Complete(2.0));
        assert_eq!(wm.cell(1, 1), Cell::Unobserved);
        assert_eq!(wm.complete_count(), 3);
    }

    #[test]
    fn row_best_ignores_censored() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0], 3);
        wm.set_censored(0, 1, 1.0); // timed out at 1s: NOT usable
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 2, 2.0);
        assert_eq!(wm.row_best(0), Some((2, 2.0)));
    }

    #[test]
    fn total_best_latency_sums_row_minima() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0, 10.0], 3);
        wm.set_complete(0, 1, 3.0);
        assert_eq!(wm.total_best_latency(), 13.0);
    }

    #[test]
    fn censored_bound_only_tightens() {
        let mut wm = WorkloadMatrix::new(1, 2);
        wm.set_censored(0, 0, 2.0);
        wm.set_censored(0, 0, 1.0); // looser: ignored
        assert_eq!(wm.cell(0, 0), Cell::Censored(2.0));
        wm.set_censored(0, 0, 3.0); // tighter: kept
        assert_eq!(wm.cell(0, 0), Cell::Censored(3.0));
    }

    #[test]
    fn complete_never_downgraded() {
        let mut wm = WorkloadMatrix::new(1, 1);
        wm.set_complete(0, 0, 4.0);
        wm.set_censored(0, 0, 10.0);
        assert_eq!(wm.cell(0, 0), Cell::Complete(4.0));
    }

    #[test]
    fn mask_values_timeouts_consistent() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 3);
        wm.set_censored(0, 1, 0.5);
        wm.set_complete(1, 2, 4.0);
        let m = wm.mask();
        let v = wm.values();
        let t = wm.timeouts();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0); // censored is NOT in the mask
        assert_eq!(v[(0, 1)], 0.0);
        assert_eq!(t[(0, 1)], 0.5);
        assert_eq!(v[(1, 2)], 4.0);
        assert_eq!(t[(1, 2)], 0.0);
    }

    #[test]
    fn add_rows_extends_unobserved() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0], 2);
        wm.add_rows(2);
        assert_eq!(wm.n_rows(), 3);
        assert_eq!(wm.cell(2, 0), Cell::Unobserved);
        // New rows without observations do not contribute to P.
        assert_eq!(wm.total_best_latency(), 1.0);
    }

    #[test]
    fn fully_observed_counts() {
        let mut wm = WorkloadMatrix::new(1, 2);
        assert!(!wm.fully_observed());
        wm.set_complete(0, 0, 1.0);
        wm.set_censored(0, 1, 2.0);
        assert!(wm.fully_observed());
        assert_eq!(wm.unobserved_count(), 0);
        assert_eq!(wm.censored_count(), 1);
    }

    /// Naive dense re-implementations of the indexed accessors, for
    /// equivalence pinning.
    fn naive_row_best(wm: &WorkloadMatrix, row: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for col in 0..wm.n_cols() {
            if let Cell::Complete(v) = wm.cell(row, col) {
                if best.map_or(true, |(_, b)| v < b) {
                    best = Some((col, v));
                }
            }
        }
        best
    }

    #[test]
    fn index_matches_dense_scans_under_random_mutation() {
        use limeqo_linalg::rng::SeededRng;
        let mut rng = SeededRng::new(0xC5_11);
        let (n, k) = (17, 7);
        let mut wm = WorkloadMatrix::new(n, k);
        for step in 0..600 {
            let row = rng.index(n);
            let col = rng.index(k);
            let v = rng.uniform(0.1, 10.0);
            if rng.chance(0.6) {
                wm.set_complete(row, col, v);
            } else {
                wm.set_censored(row, col, v);
            }
            if step % 97 == 0 {
                wm.add_rows(1);
            }
            // Cached row_best == dense scan, with identical tie-breaks.
            for r in 0..wm.n_rows() {
                assert_eq!(wm.row_best(r), naive_row_best(&wm, r), "row {r} at step {step}");
                // Index sorted, complete, and consistent with the cells.
                let obs = wm.observed_cols(r);
                assert!(obs.windows(2).all(|w| w[0] < w[1]), "unsorted index");
                let dense: Vec<u32> =
                    (0..k).filter(|&c| wm.cell(r, c).is_observed()).map(|c| c as u32).collect();
                assert_eq!(obs, dense.as_slice());
                let unob: Vec<usize> = wm.unobserved_in_row(r).collect();
                let dense_unob: Vec<usize> =
                    (0..k).filter(|&c| !wm.cell(r, c).is_observed()).collect();
                assert_eq!(unob, dense_unob);
            }
            // O(1) counters == dense counts.
            let complete = wm.cells.iter().filter(|c| matches!(c, Cell::Complete(_))).count();
            let censored = wm.cells.iter().filter(|c| matches!(c, Cell::Censored(_))).count();
            assert_eq!(wm.complete_count(), complete);
            assert_eq!(wm.censored_count(), censored);
            assert_eq!(wm.unobserved_count(), wm.n_rows() * k - complete - censored);
            // Fenwick rank lookup == row-major enumeration, at every rank.
            if step % 23 == 0 {
                let dense: Vec<(usize, usize)> = wm.unobserved_cells().collect();
                assert_eq!(dense.len(), wm.unobserved_count());
                for (rank, &cell) in dense.iter().enumerate() {
                    assert_eq!(wm.unobserved_at_rank(rank), cell, "rank {rank} at step {step}");
                }
            }
        }
    }

    #[test]
    fn unobserved_rank_lookup_covers_edges() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 1.0, 1.0], 3);
        // Rows 0..3 each have cols {1,2} unobserved: ranks enumerate
        // row-major.
        assert_eq!(wm.unobserved_at_rank(0), (0, 1));
        assert_eq!(wm.unobserved_at_rank(3), (1, 2));
        assert_eq!(wm.unobserved_at_rank(5), (2, 2));
        // Empty a middle row: its ranks vanish, later rows shift down.
        wm.set_complete(1, 1, 1.0);
        wm.set_censored(1, 2, 0.5);
        assert_eq!(wm.unobserved_at_rank(2), (2, 1));
        // Appended rows join the rank space at the tail.
        wm.add_rows(1);
        assert_eq!(wm.unobserved_at_rank(4), (3, 0));
        assert_eq!(wm.row_unobserved_count(3), 3);
        assert_eq!(wm.row_unobserved_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn unobserved_rank_out_of_range_panics() {
        let wm = WorkloadMatrix::with_defaults(&[1.0], 2);
        wm.unobserved_at_rank(1);
    }

    #[test]
    fn best_cache_survives_overwrite_of_the_incumbent() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0], 3);
        wm.set_complete(0, 1, 2.0);
        assert_eq!(wm.row_best(0), Some((1, 2.0)));
        // Overwrite the incumbent best with a slower value: the cache must
        // rescan and fall back to the default column.
        wm.set_complete(0, 1, 9.0);
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        // Ties resolve to the lowest column, exactly like the dense scan.
        wm.set_complete(0, 2, 5.0);
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 1, 5.0);
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 2, 4.0);
        assert_eq!(wm.row_best(0), Some((2, 4.0)));
    }

    #[test]
    fn observed_count_tracks_index() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 4);
        assert_eq!(wm.row_observed_count(0), 1);
        wm.set_censored(0, 2, 0.5);
        assert_eq!(wm.row_observed_count(0), 2);
        assert_eq!(wm.observed_cols(0), &[0, 2]);
        // Re-observing an already observed cell does not grow the index.
        wm.set_complete(0, 2, 1.0);
        assert_eq!(wm.row_observed_count(0), 2);
    }

    #[test]
    fn unobserved_iteration_and_rows() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 1.0], 3);
        wm.set_complete(0, 1, 1.0);
        wm.set_complete(0, 2, 1.0);
        let cells: Vec<_> = wm.unobserved_cells().collect();
        assert_eq!(cells, vec![(1, 1), (1, 2)]);
        assert_eq!(wm.rows_with_unobserved(), vec![1]);
    }
}
