//! The partially observed workload matrix `W̃` (paper §4.1).
//!
//! Rows are queries, columns are hints, and each cell is in one of three
//! states:
//!
//! * **unobserved** — never executed (the `∞` entries of Eq. 1),
//! * **complete** — executed to completion, latency known exactly,
//! * **censored** — executed but timed out; only a *lower bound* on the
//!   true latency is known (Eq. 5). These are the "first-class citizens"
//!   the censored techniques of §4.3 exploit.
//!
//! Column [`WorkloadMatrix::DEFAULT_HINT`] (0) is the default optimizer
//! plan; exploration harnesses observe it for every query up front, because
//! repetitive workloads execute the default plan in production anyway.

use limeqo_linalg::Mat;

/// State of one (query, hint) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Never executed.
    Unobserved,
    /// Executed to completion with this latency (seconds).
    Complete(f64),
    /// Timed out: true latency is strictly greater than this bound.
    Censored(f64),
}

impl Cell {
    /// True when the cell has been executed (complete or censored).
    pub fn is_observed(&self) -> bool {
        !matches!(self, Cell::Unobserved)
    }
}

/// The partially observed workload matrix.
#[derive(Debug, Clone)]
pub struct WorkloadMatrix {
    n: usize,
    k: usize,
    cells: Vec<Cell>,
}

impl WorkloadMatrix {
    /// Column index of the default hint.
    pub const DEFAULT_HINT: usize = 0;

    /// Create an all-unobserved matrix.
    pub fn new(n: usize, k: usize) -> Self {
        WorkloadMatrix { n, k, cells: vec![Cell::Unobserved; n * k] }
    }

    /// Create a matrix with the default column (hint 0) observed at the
    /// given latencies — the paper's starting condition ("we initially
    /// reveal the entries corresponding to the default plan").
    pub fn with_defaults(defaults: &[f64], k: usize) -> Self {
        let mut wm = WorkloadMatrix::new(defaults.len(), k);
        for (i, &d) in defaults.iter().enumerate() {
            wm.set_complete(i, Self::DEFAULT_HINT, d);
        }
        wm
    }

    /// Number of queries (rows).
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of hints (columns).
    pub fn n_cols(&self) -> usize {
        self.k
    }

    /// Cell state at (row, col).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> Cell {
        self.cells[row * self.k + col]
    }

    /// Record a completed execution.
    pub fn set_complete(&mut self, row: usize, col: usize, latency: f64) {
        assert!(latency >= 0.0, "latency must be non-negative");
        self.cells[row * self.k + col] = Cell::Complete(latency);
    }

    /// Record a timed-out execution: the true latency exceeds `bound`.
    /// A tighter (larger) bound replaces a looser one; a completed
    /// observation is never downgraded to censored.
    pub fn set_censored(&mut self, row: usize, col: usize, bound: f64) {
        assert!(bound >= 0.0, "bound must be non-negative");
        let cell = &mut self.cells[row * self.k + col];
        match *cell {
            Cell::Complete(_) => {}
            Cell::Censored(old) if old >= bound => {}
            _ => *cell = Cell::Censored(bound),
        }
    }

    /// Append `count` unobserved rows (new queries arriving, §5.3).
    pub fn add_rows(&mut self, count: usize) {
        self.n += count;
        self.cells.extend(std::iter::repeat(Cell::Unobserved).take(count * self.k));
    }

    /// Best (minimum-latency) *completed* cell of a row, the hint the
    /// online path would serve (censored cells are excluded: a timed-out
    /// plan is unverified and using it could regress).
    pub fn row_best(&self, row: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for col in 0..self.k {
            if let Cell::Complete(v) = self.cell(row, col) {
                if best.map_or(true, |(_, b)| v < b) {
                    best = Some((col, v));
                }
            }
        }
        best
    }

    /// `P(W̃)` (Eq. 2): the workload latency under the currently best
    /// observed hints. Rows with no completed cell contribute nothing
    /// (they have not entered the workload yet).
    pub fn total_best_latency(&self) -> f64 {
        (0..self.n).filter_map(|i| self.row_best(i).map(|(_, v)| v)).sum()
    }

    /// The observed-value matrix `W̃` with unobserved/censored cells as 0
    /// (pairs with [`WorkloadMatrix::mask`] in `M ⊙ W̃`).
    pub fn values(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for row in 0..self.n {
            for col in 0..self.k {
                if let Cell::Complete(v) = self.cell(row, col) {
                    m[(row, col)] = v;
                }
            }
        }
        m
    }

    /// The mask matrix `M`: 1 for completed cells, 0 otherwise.
    pub fn mask(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for row in 0..self.n {
            for col in 0..self.k {
                if matches!(self.cell(row, col), Cell::Complete(_)) {
                    m[(row, col)] = 1.0;
                }
            }
        }
        m
    }

    /// The timeout matrix `T`: censored bounds where known, 0 elsewhere.
    pub fn timeouts(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for row in 0..self.n {
            for col in 0..self.k {
                if let Cell::Censored(b) = self.cell(row, col) {
                    m[(row, col)] = b;
                }
            }
        }
        m
    }

    /// Count of completed cells.
    pub fn complete_count(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c, Cell::Complete(_))).count()
    }

    /// Count of censored cells.
    pub fn censored_count(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c, Cell::Censored(_))).count()
    }

    /// Count of unobserved cells.
    pub fn unobserved_count(&self) -> usize {
        self.cells.iter().filter(|c| matches!(c, Cell::Unobserved)).count()
    }

    /// True when no unobserved cells remain (Algorithm 1's `M ≠ 1`
    /// termination test).
    pub fn fully_observed(&self) -> bool {
        self.unobserved_count() == 0
    }

    /// Iterate over unobserved cell coordinates.
    pub fn unobserved_cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |r| {
            (0..self.k)
                .filter(move |&c| matches!(self.cell(r, c), Cell::Unobserved))
                .map(move |c| (r, c))
        })
    }

    /// Rows that still have at least one unobserved cell.
    pub fn rows_with_unobserved(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&r| (0..self.k).any(|c| matches!(self.cell(r, c), Cell::Unobserved)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_initialize_column_zero() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0], 4);
        assert_eq!(wm.n_rows(), 3);
        assert_eq!(wm.n_cols(), 4);
        assert_eq!(wm.cell(1, 0), Cell::Complete(2.0));
        assert_eq!(wm.cell(1, 1), Cell::Unobserved);
        assert_eq!(wm.complete_count(), 3);
    }

    #[test]
    fn row_best_ignores_censored() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0], 3);
        wm.set_censored(0, 1, 1.0); // timed out at 1s: NOT usable
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 2, 2.0);
        assert_eq!(wm.row_best(0), Some((2, 2.0)));
    }

    #[test]
    fn total_best_latency_sums_row_minima() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0, 10.0], 3);
        wm.set_complete(0, 1, 3.0);
        assert_eq!(wm.total_best_latency(), 13.0);
    }

    #[test]
    fn censored_bound_only_tightens() {
        let mut wm = WorkloadMatrix::new(1, 2);
        wm.set_censored(0, 0, 2.0);
        wm.set_censored(0, 0, 1.0); // looser: ignored
        assert_eq!(wm.cell(0, 0), Cell::Censored(2.0));
        wm.set_censored(0, 0, 3.0); // tighter: kept
        assert_eq!(wm.cell(0, 0), Cell::Censored(3.0));
    }

    #[test]
    fn complete_never_downgraded() {
        let mut wm = WorkloadMatrix::new(1, 1);
        wm.set_complete(0, 0, 4.0);
        wm.set_censored(0, 0, 10.0);
        assert_eq!(wm.cell(0, 0), Cell::Complete(4.0));
    }

    #[test]
    fn mask_values_timeouts_consistent() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 3);
        wm.set_censored(0, 1, 0.5);
        wm.set_complete(1, 2, 4.0);
        let m = wm.mask();
        let v = wm.values();
        let t = wm.timeouts();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0); // censored is NOT in the mask
        assert_eq!(v[(0, 1)], 0.0);
        assert_eq!(t[(0, 1)], 0.5);
        assert_eq!(v[(1, 2)], 4.0);
        assert_eq!(t[(1, 2)], 0.0);
    }

    #[test]
    fn add_rows_extends_unobserved() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0], 2);
        wm.add_rows(2);
        assert_eq!(wm.n_rows(), 3);
        assert_eq!(wm.cell(2, 0), Cell::Unobserved);
        // New rows without observations do not contribute to P.
        assert_eq!(wm.total_best_latency(), 1.0);
    }

    #[test]
    fn fully_observed_counts() {
        let mut wm = WorkloadMatrix::new(1, 2);
        assert!(!wm.fully_observed());
        wm.set_complete(0, 0, 1.0);
        wm.set_censored(0, 1, 2.0);
        assert!(wm.fully_observed());
        assert_eq!(wm.unobserved_count(), 0);
        assert_eq!(wm.censored_count(), 1);
    }

    #[test]
    fn unobserved_iteration_and_rows() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 1.0], 3);
        wm.set_complete(0, 1, 1.0);
        wm.set_complete(0, 2, 1.0);
        let cells: Vec<_> = wm.unobserved_cells().collect();
        assert_eq!(cells, vec![(1, 1), (1, 2)]);
        assert_eq!(wm.rows_with_unobserved(), vec![1]);
    }
}
