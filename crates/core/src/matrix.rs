//! The partially observed workload matrix `W̃` (paper §4.1).
//!
//! Rows are queries, columns are hints, and each cell is in one of three
//! states:
//!
//! * **unobserved** — never executed (the `∞` entries of Eq. 1),
//! * **complete** — executed to completion, latency known exactly,
//! * **censored** — executed but timed out; only a *lower bound* on the
//!   true latency is known (Eq. 5). These are the "first-class citizens"
//!   the censored techniques of §4.3 exploit.
//!
//! Column [`WorkloadMatrix::DEFAULT_HINT`] (0) is the default optimizer
//! plan; exploration harnesses observe it for every query up front, because
//! repetitive workloads execute the default plan in production anyway.
//!
//! ## Sharded sparse storage
//!
//! The matrix is partitioned into contiguous row-range **shards** (one by
//! default — the unsharded engine; N for the multi-tenant 1M-row tier,
//! where each shard is an independent tenant's row block). Each shard owns
//!
//! * a CSR-style per-row index of observed columns (sorted ascending) with
//!   a parallel per-row value array — the only cells that cost memory,
//! * a bit-packed censored mask (one bit per cell, addressed
//!   `local_row * k + col`, so inserts never shift bits),
//! * a per-row best-complete cache (O(1) [`WorkloadMatrix::row_best`]),
//! * a [`Fenwick`] tree over per-row *unobserved* counts, giving
//!   rank → (row, col) lookup in O(log rows + k) for uniform sampling
//!   without materializing the unobserved set.
//!
//! There is **no dense cell array**: at the 1M × 25 tier the old
//! 16-byte-per-cell dense store alone cost ~400 MB; the sparse layout costs
//! ~12 bytes per *observed* cell plus ~3 MB of censored bitmap and per-row
//! headers ([`WorkloadMatrix::mem_bytes`] reports the exact footprint).
//! Values stay `f64`: an `f32` store would halve that term but break the
//! bit-identity contract between sharded and unsharded runs, which is the
//! headline invariant of the sharding layer.
//!
//! Shard boundaries are pure layout: every accessor returns exactly what
//! the dense scan used to return regardless of the shard count (pinned by
//! the unit tests and by the sharded-vs-unsharded engine equivalence
//! tests). Global row-major rank order is preserved because shards are
//! contiguous and ascending, so `unobserved_at_rank` walks shards in order
//! subtracting each shard's Fenwick total.

use limeqo_linalg::Fenwick;
use limeqo_linalg::Mat;

/// State of one (query, hint) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Never executed.
    Unobserved,
    /// Executed to completion with this latency (seconds).
    Complete(f64),
    /// Timed out: true latency is strictly greater than this bound.
    Censored(f64),
}

impl Cell {
    /// True when the cell has been executed (complete or censored).
    pub fn is_observed(&self) -> bool {
        !matches!(self, Cell::Unobserved)
    }
}

/// One contiguous row-range partition of the matrix: its own observed-cell
/// CSR index, values, censored bitmap, best cache, and unobserved Fenwick.
#[derive(Debug, Clone)]
struct Shard {
    /// Global row index of this shard's local row 0.
    start: usize,
    /// Per-row observed (complete or censored) columns, sorted ascending.
    obs: Vec<Vec<u32>>,
    /// Per-row observed values, parallel to `obs`: the latency of a
    /// complete cell or the bound of a censored one.
    vals: Vec<Vec<f64>>,
    /// Bit-packed censored mask, addressed `local_row * k + col`. A set
    /// bit marks an *observed* cell as censored; bits of unobserved cells
    /// are always clear.
    cens: Vec<u64>,
    /// Per-row cached best completed cell `(col, latency)`.
    best: Vec<Option<(u32, f64)>>,
    /// Fenwick tree over per-row unobserved counts (`k - obs[r].len()`).
    unobs: Fenwick,
    n_complete: usize,
    n_censored: usize,
}

impl Shard {
    fn new(start: usize, rows: usize, k: usize) -> Self {
        Shard {
            start,
            obs: vec![Vec::new(); rows],
            vals: vec![Vec::new(); rows],
            cens: vec![0u64; (rows * k).div_ceil(64)],
            best: vec![None; rows],
            unobs: Fenwick::from_counts(&vec![k as i64; rows]),
            n_complete: 0,
            n_censored: 0,
        }
    }

    fn rows(&self) -> usize {
        self.obs.len()
    }

    #[inline]
    fn cens_bit(&self, local: usize, col: usize, k: usize) -> bool {
        let bit = local * k + col;
        self.cens[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    fn set_cens_bit(&mut self, local: usize, col: usize, k: usize, on: bool) {
        let bit = local * k + col;
        if on {
            self.cens[bit / 64] |= 1u64 << (bit % 64);
        } else {
            self.cens[bit / 64] &= !(1u64 << (bit % 64));
        }
    }

    /// Cell state of `(local, col)` via the CSR index + censored bitmap.
    fn cell(&self, local: usize, col: usize, k: usize) -> Cell {
        match self.obs[local].binary_search(&(col as u32)) {
            Err(_) => Cell::Unobserved,
            Ok(pos) => {
                let v = self.vals[local][pos];
                if self.cens_bit(local, col, k) {
                    Cell::Censored(v)
                } else {
                    Cell::Complete(v)
                }
            }
        }
    }

    fn add_rows(&mut self, count: usize, k: usize) {
        let rows = self.rows() + count;
        self.obs.extend(std::iter::repeat_with(Vec::new).take(count));
        self.vals.extend(std::iter::repeat_with(Vec::new).take(count));
        self.best.extend(std::iter::repeat(None).take(count));
        self.cens.resize((rows * k).div_ceil(64), 0);
        for _ in 0..count {
            self.unobs.append(k as i64);
        }
    }

    /// Heap footprint of this shard's indices in bytes (length-based, so
    /// the figure is deterministic across runs).
    fn mem_bytes(&self, _k: usize) -> usize {
        use std::mem::size_of;
        let per_row =
            size_of::<Vec<u32>>() + size_of::<Vec<f64>>() + size_of::<Option<(u32, f64)>>();
        let observed: usize = self.obs.iter().map(|o| o.len()).sum();
        self.rows() * per_row
            + observed * (size_of::<u32>() + size_of::<f64>())
            + self.cens.len() * size_of::<u64>()
            + (self.unobs.len() + 1) * size_of::<i64>()
    }
}

/// The partially observed workload matrix.
#[derive(Debug, Clone)]
pub struct WorkloadMatrix {
    n: usize,
    k: usize,
    /// Contiguous ascending row-range partitions; always at least one.
    shards: Vec<Shard>,
    /// Global completed-cell count.
    n_complete: usize,
    /// Global censored-cell count.
    n_censored: usize,
}

impl WorkloadMatrix {
    /// Column index of the default hint.
    pub const DEFAULT_HINT: usize = 0;

    /// Create an all-unobserved matrix with a single shard (the unsharded
    /// engine's layout).
    pub fn new(n: usize, k: usize) -> Self {
        Self::new_sharded(n, k, 1)
    }

    /// Create an all-unobserved matrix partitioned into `shards` contiguous
    /// near-equal row ranges (the first `n % shards` shards get one extra
    /// row). `shards` is clamped to at least 1; shards may be empty when
    /// `shards > n`.
    pub fn new_sharded(n: usize, k: usize, shards: usize) -> Self {
        let s = shards.max(1);
        let base = n / s;
        let rem = n % s;
        let mut out = Vec::with_capacity(s);
        let mut start = 0usize;
        for i in 0..s {
            let rows = base + usize::from(i < rem);
            out.push(Shard::new(start, rows, k));
            start += rows;
        }
        WorkloadMatrix { n, k, shards: out, n_complete: 0, n_censored: 0 }
    }

    /// Create a matrix partitioned at explicit tenant row counts: shard `i`
    /// holds `tenant_rows[i]` rows. At least one tenant is required.
    pub fn with_tenant_rows(tenant_rows: &[usize], k: usize) -> Self {
        assert!(!tenant_rows.is_empty(), "at least one tenant shard is required");
        let mut shards = Vec::with_capacity(tenant_rows.len());
        let mut start = 0usize;
        for &rows in tenant_rows {
            shards.push(Shard::new(start, rows, k));
            start += rows;
        }
        WorkloadMatrix { n: start, k, shards, n_complete: 0, n_censored: 0 }
    }

    /// Create a matrix with the default column (hint 0) observed at the
    /// given latencies — the paper's starting condition ("we initially
    /// reveal the entries corresponding to the default plan").
    pub fn with_defaults(defaults: &[f64], k: usize) -> Self {
        Self::with_defaults_sharded(defaults, k, 1)
    }

    /// [`WorkloadMatrix::with_defaults`] over a sharded layout.
    pub fn with_defaults_sharded(defaults: &[f64], k: usize, shards: usize) -> Self {
        let mut wm = WorkloadMatrix::new_sharded(defaults.len(), k, shards);
        for (i, &d) in defaults.iter().enumerate() {
            wm.set_complete(i, Self::DEFAULT_HINT, d);
        }
        wm
    }

    /// A fresh all-unobserved matrix with this matrix's exact shape *and*
    /// shard layout (used by the store's drift rebuilds, which must not
    /// change the partitioning).
    pub fn empty_like(&self) -> Self {
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            shards.push(Shard::new(s.start, s.rows(), self.k));
        }
        WorkloadMatrix { n: self.n, k: self.k, shards, n_complete: 0, n_censored: 0 }
    }

    /// A fresh all-unobserved matrix with `n` rows, this matrix's column
    /// count, and the same *shard count* re-partitioned evenly (row counts
    /// per shard change with `n`; the number of tenants does not).
    pub fn empty_resized(&self, n: usize) -> Self {
        WorkloadMatrix::new_sharded(n, self.k, self.shards.len())
    }

    /// Number of queries (rows).
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of hints (columns).
    pub fn n_cols(&self) -> usize {
        self.k
    }

    /// Number of shards (1 = the unsharded layout).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global `[start, end)` row range of every shard, ascending.
    pub fn shard_ranges(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| (s.start, s.start + s.rows())).collect()
    }

    /// Heap footprint of the matrix's sparse indices in bytes: per-row
    /// headers, observed-cell (col, value) pairs, censored bitmaps, best
    /// caches, and Fenwick trees. Length-based (not capacity-based), so
    /// the figure is deterministic; the `scale-1m` memory-budget test
    /// asserts against it.
    pub fn mem_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.mem_bytes(self.k)).sum()
    }

    /// Shard index holding global `row`.
    #[inline]
    fn shard_of(&self, row: usize) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        self.shards.partition_point(|s| s.start <= row) - 1
    }

    /// Cell state at (row, col).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> Cell {
        let s = &self.shards[self.shard_of(row)];
        s.cell(row - s.start, col, self.k)
    }

    /// Record a completed execution.
    pub fn set_complete(&mut self, row: usize, col: usize, latency: f64) {
        assert!(latency >= 0.0, "latency must be non-negative");
        let k = self.k;
        let si = self.shard_of(row);
        let shard = &mut self.shards[si];
        let local = row - shard.start;
        let col32 = col as u32;
        match shard.obs[local].binary_search(&col32) {
            Err(pos) => {
                shard.obs[local].insert(pos, col32);
                shard.vals[local].insert(pos, latency);
                shard.unobs.add(local, -1);
                shard.n_complete += 1;
                self.n_complete += 1;
            }
            Ok(pos) => {
                if shard.cens_bit(local, col, k) {
                    shard.set_cens_bit(local, col, k, false);
                    shard.n_censored -= 1;
                    shard.n_complete += 1;
                    self.n_censored -= 1;
                    self.n_complete += 1;
                }
                shard.vals[local][pos] = latency;
            }
        }
        // Maintain the best-complete cache with the dense scan's exact
        // semantics: ascending columns, strictly-smaller replaces (so the
        // lowest column wins ties).
        match shard.best[local] {
            None => shard.best[local] = Some((col32, latency)),
            Some((bc, bv)) if bc == col32 => {
                if latency <= bv {
                    shard.best[local] = Some((bc, latency));
                } else {
                    // The incumbent best got slower: rescan the row.
                    let rescanned = Self::rescan_best(shard, local, k);
                    shard.best[local] = rescanned;
                }
            }
            Some((bc, bv)) => {
                if latency < bv || (latency == bv && col32 < bc) {
                    shard.best[local] = Some((col32, latency));
                }
            }
        }
    }

    /// Record a timed-out execution: the true latency exceeds `bound`.
    /// A tighter (larger) bound replaces a looser one; a completed
    /// observation is never downgraded to censored.
    pub fn set_censored(&mut self, row: usize, col: usize, bound: f64) {
        assert!(bound >= 0.0, "bound must be non-negative");
        let k = self.k;
        let si = self.shard_of(row);
        let shard = &mut self.shards[si];
        let local = row - shard.start;
        let col32 = col as u32;
        match shard.obs[local].binary_search(&col32) {
            Err(pos) => {
                shard.obs[local].insert(pos, col32);
                shard.vals[local].insert(pos, bound);
                shard.set_cens_bit(local, col, k, true);
                shard.unobs.add(local, -1);
                shard.n_censored += 1;
                self.n_censored += 1;
            }
            Ok(pos) => {
                if shard.cens_bit(local, col, k) && shard.vals[local][pos] < bound {
                    shard.vals[local][pos] = bound;
                }
                // Complete cells and tighter-or-equal bounds are kept.
            }
        }
    }

    /// Append `count` unobserved rows (new queries arriving, §5.3) to the
    /// **last shard** — appended rows extend the final row range, exactly
    /// as the unsharded matrix grew at its tail.
    pub fn add_rows(&mut self, count: usize) {
        self.n += count;
        let k = self.k;
        self.shards.last_mut().expect("at least one shard").add_rows(count, k);
    }

    /// Best (minimum-latency) *completed* cell of a row, the hint the
    /// online path would serve (censored cells are excluded: a timed-out
    /// plan is unverified and using it could regress). O(1) from the
    /// incrementally maintained cache.
    pub fn row_best(&self, row: usize) -> Option<(usize, f64)> {
        let s = &self.shards[self.shard_of(row)];
        s.best[row - s.start].map(|(c, v)| (c as usize, v))
    }

    /// Observed (complete or censored) column indices of `row`, sorted
    /// ascending — the compact observed-cell index the ALS assembly, the
    /// Eq. 6 scan and the censored-fallback sweep iterate instead of the
    /// dense row.
    #[inline]
    pub fn observed_cols(&self, row: usize) -> &[u32] {
        let s = &self.shards[self.shard_of(row)];
        &s.obs[row - s.start]
    }

    /// Number of observed cells in `row` (O(1)).
    #[inline]
    pub fn row_observed_count(&self, row: usize) -> usize {
        self.observed_cols(row).len()
    }

    /// Unobserved column indices of `row`, ascending — the complement of
    /// [`WorkloadMatrix::observed_cols`], produced by merge-walking the
    /// index rather than matching every dense cell.
    pub fn unobserved_in_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let observed = self.observed_cols(row);
        let mut next_obs = 0usize;
        (0..self.k).filter(move |&c| {
            if observed.get(next_obs).is_some_and(|&o| o as usize == c) {
                next_obs += 1;
                false
            } else {
                true
            }
        })
    }

    /// Dense-scan fallback for the best cache (only needed when the
    /// incumbent best cell is overwritten with a slower latency).
    fn rescan_best(shard: &Shard, local: usize, k: usize) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (pos, &col) in shard.obs[local].iter().enumerate() {
            if !shard.cens_bit(local, col as usize, k) {
                let v = shard.vals[local][pos];
                if best.map_or(true, |(_, b)| v < b) {
                    best = Some((col, v));
                }
            }
        }
        best
    }

    /// `P(W̃)` (Eq. 2): the workload latency under the currently best
    /// observed hints. Rows with no completed cell contribute nothing
    /// (they have not entered the workload yet).
    pub fn total_best_latency(&self) -> f64 {
        (0..self.n).filter_map(|i| self.row_best(i).map(|(_, v)| v)).sum()
    }

    /// The observed-value matrix `W̃` with unobserved/censored cells as 0
    /// (pairs with [`WorkloadMatrix::mask`] in `M ⊙ W̃`).
    pub fn values(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for shard in &self.shards {
            for local in 0..shard.rows() {
                for (pos, &col) in shard.obs[local].iter().enumerate() {
                    if !shard.cens_bit(local, col as usize, self.k) {
                        m[(shard.start + local, col as usize)] = shard.vals[local][pos];
                    }
                }
            }
        }
        m
    }

    /// The mask matrix `M`: 1 for completed cells, 0 otherwise.
    pub fn mask(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for shard in &self.shards {
            for local in 0..shard.rows() {
                for &col in &shard.obs[local] {
                    if !shard.cens_bit(local, col as usize, self.k) {
                        m[(shard.start + local, col as usize)] = 1.0;
                    }
                }
            }
        }
        m
    }

    /// The timeout matrix `T`: censored bounds where known, 0 elsewhere.
    pub fn timeouts(&self) -> Mat {
        let mut m = Mat::zeros(self.n, self.k);
        for shard in &self.shards {
            for local in 0..shard.rows() {
                for (pos, &col) in shard.obs[local].iter().enumerate() {
                    if shard.cens_bit(local, col as usize, self.k) {
                        m[(shard.start + local, col as usize)] = shard.vals[local][pos];
                    }
                }
            }
        }
        m
    }

    /// Count of completed cells (O(1)).
    pub fn complete_count(&self) -> usize {
        self.n_complete
    }

    /// Count of censored cells (O(1)).
    pub fn censored_count(&self) -> usize {
        self.n_censored
    }

    /// Count of unobserved cells (O(1)).
    pub fn unobserved_count(&self) -> usize {
        self.n * self.k - self.n_complete - self.n_censored
    }

    /// True when no unobserved cells remain (Algorithm 1's `M ≠ 1`
    /// termination test).
    pub fn fully_observed(&self) -> bool {
        self.unobserved_count() == 0
    }

    /// Number of unobserved cells in `row` (O(1)).
    #[inline]
    pub fn row_unobserved_count(&self, row: usize) -> usize {
        self.k - self.observed_cols(row).len()
    }

    /// The `rank`-th unobserved cell in row-major order, in
    /// O(shards + log rows + k): shards are walked in ascending row order
    /// subtracting each one's Fenwick total, then a Fenwick descent inside
    /// the owning shard finds the local row and a merge-walk over the
    /// row's sorted observed columns finds the offset-th unobserved
    /// column. Agrees exactly with `unobserved_cells().nth(rank)` (pinned
    /// by the unit tests) at every shard count.
    ///
    /// # Panics
    /// Panics if `rank >= unobserved_count()`.
    pub fn unobserved_at_rank(&self, rank: usize) -> (usize, usize) {
        let total = self.unobserved_count();
        assert!(rank < total, "rank {rank} out of {total}");
        let mut rank = rank as i64;
        for shard in &self.shards {
            let t = shard.unobs.total();
            if rank < t {
                let (local, offset) = shard.unobs.rank_select(rank);
                let row = shard.start + local;
                return (row, self.unobserved_col_at(row, offset as usize));
            }
            rank -= t;
        }
        unreachable!("rank within total but not within any shard")
    }

    /// The `offset`-th unobserved column of `row` (ascending), via the
    /// merge-walk over the row's sorted observed columns — O(k).
    ///
    /// # Panics
    /// Panics if `offset >= row_unobserved_count(row)`.
    pub fn unobserved_col_at(&self, row: usize, offset: usize) -> usize {
        let mut remaining = offset;
        let observed = self.observed_cols(row);
        let mut next_obs = 0usize;
        for col in 0..self.k {
            if observed.get(next_obs).is_some_and(|&o| o as usize == col) {
                next_obs += 1;
                continue;
            }
            if remaining == 0 {
                return col;
            }
            remaining -= 1;
        }
        panic!("offset {offset} exceeds row {row}'s unobserved count")
    }

    /// Iterate over unobserved cell coordinates in row-major order,
    /// skipping fully observed rows in O(1) via the index.
    pub fn unobserved_cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n)
            .filter(move |&r| self.row_observed_count(r) < self.k)
            .flat_map(move |r| self.unobserved_in_row(r).map(move |c| (r, c)))
    }

    /// Rows that still have at least one unobserved cell.
    pub fn rows_with_unobserved(&self) -> Vec<usize> {
        (0..self.n).filter(|&r| self.row_observed_count(r) < self.k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_initialize_column_zero() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0], 4);
        assert_eq!(wm.n_rows(), 3);
        assert_eq!(wm.n_cols(), 4);
        assert_eq!(wm.cell(1, 0), Cell::Complete(2.0));
        assert_eq!(wm.cell(1, 1), Cell::Unobserved);
        assert_eq!(wm.complete_count(), 3);
    }

    #[test]
    fn row_best_ignores_censored() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0], 3);
        wm.set_censored(0, 1, 1.0); // timed out at 1s: NOT usable
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 2, 2.0);
        assert_eq!(wm.row_best(0), Some((2, 2.0)));
    }

    #[test]
    fn total_best_latency_sums_row_minima() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0, 10.0], 3);
        wm.set_complete(0, 1, 3.0);
        assert_eq!(wm.total_best_latency(), 13.0);
    }

    #[test]
    fn censored_bound_only_tightens() {
        let mut wm = WorkloadMatrix::new(1, 2);
        wm.set_censored(0, 0, 2.0);
        wm.set_censored(0, 0, 1.0); // looser: ignored
        assert_eq!(wm.cell(0, 0), Cell::Censored(2.0));
        wm.set_censored(0, 0, 3.0); // tighter: kept
        assert_eq!(wm.cell(0, 0), Cell::Censored(3.0));
    }

    #[test]
    fn complete_never_downgraded() {
        let mut wm = WorkloadMatrix::new(1, 1);
        wm.set_complete(0, 0, 4.0);
        wm.set_censored(0, 0, 10.0);
        assert_eq!(wm.cell(0, 0), Cell::Complete(4.0));
    }

    #[test]
    fn mask_values_timeouts_consistent() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 3);
        wm.set_censored(0, 1, 0.5);
        wm.set_complete(1, 2, 4.0);
        let m = wm.mask();
        let v = wm.values();
        let t = wm.timeouts();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0); // censored is NOT in the mask
        assert_eq!(v[(0, 1)], 0.0);
        assert_eq!(t[(0, 1)], 0.5);
        assert_eq!(v[(1, 2)], 4.0);
        assert_eq!(t[(1, 2)], 0.0);
    }

    #[test]
    fn add_rows_extends_unobserved() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0], 2);
        wm.add_rows(2);
        assert_eq!(wm.n_rows(), 3);
        assert_eq!(wm.cell(2, 0), Cell::Unobserved);
        // New rows without observations do not contribute to P.
        assert_eq!(wm.total_best_latency(), 1.0);
    }

    #[test]
    fn fully_observed_counts() {
        let mut wm = WorkloadMatrix::new(1, 2);
        assert!(!wm.fully_observed());
        wm.set_complete(0, 0, 1.0);
        wm.set_censored(0, 1, 2.0);
        assert!(wm.fully_observed());
        assert_eq!(wm.unobserved_count(), 0);
        assert_eq!(wm.censored_count(), 1);
    }

    /// Naive dense re-implementations of the indexed accessors, for
    /// equivalence pinning.
    fn naive_row_best(wm: &WorkloadMatrix, row: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for col in 0..wm.n_cols() {
            if let Cell::Complete(v) = wm.cell(row, col) {
                if best.map_or(true, |(_, b)| v < b) {
                    best = Some((col, v));
                }
            }
        }
        best
    }

    fn dense_counts(wm: &WorkloadMatrix) -> (usize, usize) {
        let mut complete = 0;
        let mut censored = 0;
        for r in 0..wm.n_rows() {
            for c in 0..wm.n_cols() {
                match wm.cell(r, c) {
                    Cell::Complete(_) => complete += 1,
                    Cell::Censored(_) => censored += 1,
                    Cell::Unobserved => {}
                }
            }
        }
        (complete, censored)
    }

    fn exercise_random_mutation(shards: usize) {
        use limeqo_linalg::rng::SeededRng;
        let mut rng = SeededRng::new(0xC5_11);
        let (n, k) = (17, 7);
        let mut wm = WorkloadMatrix::new_sharded(n, k, shards);
        for step in 0..600 {
            let row = rng.index(wm.n_rows());
            let col = rng.index(k);
            let v = rng.uniform(0.1, 10.0);
            if rng.chance(0.6) {
                wm.set_complete(row, col, v);
            } else {
                wm.set_censored(row, col, v);
            }
            if step % 97 == 0 {
                wm.add_rows(1);
            }
            // Cached row_best == dense scan, with identical tie-breaks.
            for r in 0..wm.n_rows() {
                assert_eq!(wm.row_best(r), naive_row_best(&wm, r), "row {r} at step {step}");
                // Index sorted, complete, and consistent with the cells.
                let obs = wm.observed_cols(r);
                assert!(obs.windows(2).all(|w| w[0] < w[1]), "unsorted index");
                let dense: Vec<u32> =
                    (0..k).filter(|&c| wm.cell(r, c).is_observed()).map(|c| c as u32).collect();
                assert_eq!(obs, dense.as_slice());
                let unob: Vec<usize> = wm.unobserved_in_row(r).collect();
                let dense_unob: Vec<usize> =
                    (0..k).filter(|&c| !wm.cell(r, c).is_observed()).collect();
                assert_eq!(unob, dense_unob);
            }
            // O(1) counters == dense counts.
            let (complete, censored) = dense_counts(&wm);
            assert_eq!(wm.complete_count(), complete);
            assert_eq!(wm.censored_count(), censored);
            assert_eq!(wm.unobserved_count(), wm.n_rows() * k - complete - censored);
            // Fenwick rank lookup == row-major enumeration, at every rank.
            if step % 23 == 0 {
                let dense: Vec<(usize, usize)> = wm.unobserved_cells().collect();
                assert_eq!(dense.len(), wm.unobserved_count());
                for (rank, &cell) in dense.iter().enumerate() {
                    assert_eq!(wm.unobserved_at_rank(rank), cell, "rank {rank} at step {step}");
                }
            }
        }
    }

    #[test]
    fn index_matches_dense_scans_under_random_mutation() {
        exercise_random_mutation(1);
    }

    #[test]
    fn index_matches_dense_scans_under_random_mutation_sharded() {
        exercise_random_mutation(3);
        exercise_random_mutation(8);
        // More shards than rows: trailing shards start empty.
        exercise_random_mutation(23);
    }

    /// The same mutation sequence applied at different shard counts must
    /// produce identical observable state — shard boundaries are layout,
    /// not semantics.
    #[test]
    fn shard_count_is_invisible_to_every_accessor() {
        use limeqo_linalg::rng::SeededRng;
        let (n, k) = (29, 5);
        let build = |shards: usize| {
            let mut rng = SeededRng::new(0xABCD);
            let mut wm = WorkloadMatrix::new_sharded(n, k, shards);
            for step in 0..400 {
                let row = rng.index(wm.n_rows());
                let col = rng.index(k);
                let v = rng.uniform(0.1, 10.0);
                if rng.chance(0.55) {
                    wm.set_complete(row, col, v);
                } else {
                    wm.set_censored(row, col, v);
                }
                if step % 131 == 0 {
                    wm.add_rows(2);
                }
            }
            wm
        };
        let reference = build(1);
        for shards in [2, 3, 8] {
            let wm = build(shards);
            assert_eq!(wm.n_shards(), shards);
            assert_eq!(wm.n_rows(), reference.n_rows());
            assert_eq!(wm.complete_count(), reference.complete_count());
            assert_eq!(wm.censored_count(), reference.censored_count());
            assert_eq!(wm.total_best_latency().to_bits(), reference.total_best_latency().to_bits());
            for r in 0..reference.n_rows() {
                assert_eq!(wm.row_best(r), reference.row_best(r));
                assert_eq!(wm.observed_cols(r), reference.observed_cols(r));
                for c in 0..k {
                    assert_eq!(wm.cell(r, c), reference.cell(r, c), "cell ({r},{c})");
                }
            }
            for rank in 0..reference.unobserved_count() {
                assert_eq!(wm.unobserved_at_rank(rank), reference.unobserved_at_rank(rank));
            }
        }
    }

    #[test]
    fn tenant_partition_and_rebuilds_preserve_layout() {
        let wm = WorkloadMatrix::with_tenant_rows(&[3, 0, 5], 4);
        assert_eq!(wm.n_rows(), 8);
        assert_eq!(wm.n_shards(), 3);
        assert_eq!(wm.shard_ranges(), vec![(0, 3), (3, 3), (3, 8)]);
        let like = wm.empty_like();
        assert_eq!(like.shard_ranges(), wm.shard_ranges());
        assert_eq!(like.unobserved_count(), 8 * 4);
        let resized = wm.empty_resized(9);
        assert_eq!(resized.n_shards(), 3);
        assert_eq!(resized.n_rows(), 9);
        assert_eq!(resized.shard_ranges(), vec![(0, 3), (3, 6), (6, 9)]);
    }

    #[test]
    fn mem_bytes_tracks_observed_cells() {
        let mut wm = WorkloadMatrix::new_sharded(64, 8, 4);
        let empty = wm.mem_bytes();
        assert!(empty > 0);
        for r in 0..64 {
            wm.set_complete(r, 0, 1.0);
        }
        let filled = wm.mem_bytes();
        assert!(filled > empty, "observed cells must cost memory");
        assert_eq!(filled - empty, 64 * 12, "12 bytes per observed cell");
    }

    #[test]
    fn unobserved_rank_lookup_covers_edges() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 1.0, 1.0], 3);
        // Rows 0..3 each have cols {1,2} unobserved: ranks enumerate
        // row-major.
        assert_eq!(wm.unobserved_at_rank(0), (0, 1));
        assert_eq!(wm.unobserved_at_rank(3), (1, 2));
        assert_eq!(wm.unobserved_at_rank(5), (2, 2));
        // Empty a middle row: its ranks vanish, later rows shift down.
        wm.set_complete(1, 1, 1.0);
        wm.set_censored(1, 2, 0.5);
        assert_eq!(wm.unobserved_at_rank(2), (2, 1));
        // Appended rows join the rank space at the tail.
        wm.add_rows(1);
        assert_eq!(wm.unobserved_at_rank(4), (3, 0));
        assert_eq!(wm.row_unobserved_count(3), 3);
        assert_eq!(wm.row_unobserved_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn unobserved_rank_out_of_range_panics() {
        let wm = WorkloadMatrix::with_defaults(&[1.0], 2);
        wm.unobserved_at_rank(1);
    }

    #[test]
    fn best_cache_survives_overwrite_of_the_incumbent() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0], 3);
        wm.set_complete(0, 1, 2.0);
        assert_eq!(wm.row_best(0), Some((1, 2.0)));
        // Overwrite the incumbent best with a slower value: the cache must
        // rescan and fall back to the default column.
        wm.set_complete(0, 1, 9.0);
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        // Ties resolve to the lowest column, exactly like the dense scan.
        wm.set_complete(0, 2, 5.0);
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 1, 5.0);
        assert_eq!(wm.row_best(0), Some((0, 5.0)));
        wm.set_complete(0, 2, 4.0);
        assert_eq!(wm.row_best(0), Some((2, 4.0)));
    }

    #[test]
    fn observed_count_tracks_index() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 4);
        assert_eq!(wm.row_observed_count(0), 1);
        wm.set_censored(0, 2, 0.5);
        assert_eq!(wm.row_observed_count(0), 2);
        assert_eq!(wm.observed_cols(0), &[0, 2]);
        // Re-observing an already observed cell does not grow the index.
        wm.set_complete(0, 2, 1.0);
        assert_eq!(wm.row_observed_count(0), 2);
    }

    #[test]
    fn unobserved_iteration_and_rows() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 1.0], 3);
        wm.set_complete(0, 1, 1.0);
        wm.set_complete(0, 2, 1.0);
        let cells: Vec<_> = wm.unobserved_cells().collect();
        assert_eq!(cells, vec![(1, 1), (1, 2)]);
        assert_eq!(wm.rows_with_unobserved(), vec![1]);
    }
}
