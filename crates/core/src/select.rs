//! The sublinear candidate-selection subsystem.
//!
//! Algorithm 1 is built around cheap per-step selection — uniform fill-in
//! over the unobserved cells (line 9), top-m by the Eq. 6 ratio (line 7) —
//! yet the original implementations did O(n·k) work per step:
//! `sample_unobserved` materialized and Fisher–Yates-shuffled *every*
//! unobserved cell (4.9M tuples at the 100k×49 scale tier, ~0.19 s per
//! Random step), and the rankings fully sorted all scored rows just to
//! take `batch` of them. This module provides the two sublinear
//! replacements every selection path now routes through:
//!
//! * [`sample_ranks`] — uniform sampling *without replacement* over an
//!   abstract rank space `[0, total)` via a virtual Fisher–Yates shuffle
//!   (a sparse overlay of the swaps a real shuffle would have made), so
//!   drawing `want` of `total` candidates costs O(want) RNG draws and
//!   hash-map operations instead of O(total). Combined with the workload
//!   matrix's Fenwick rank index
//!   ([`crate::matrix::WorkloadMatrix::unobserved_at_rank`], O(log n + k)
//!   per lookup) this makes uniform unobserved-cell selection
//!   O(want·(log n + k)) with **no materialization**.
//! * [`top_m_by`] — bounded heap selection of the best m items under an
//!   explicit total order, O(n log m + m log m) instead of a full
//!   O(n log n) sort. The Eq. 6 ranking and the censored-fallback pick
//!   use it with the order (score desc, then row asc, then col asc),
//!   which reproduces the previous stable full sort's tie-breaks exactly
//!   (pinned by randomized equivalence tests).

use std::cmp::Ordering;
use std::collections::HashMap;

use limeqo_linalg::rng::SeededRng;

/// Draw up to `want` distinct ranks uniformly without replacement from
/// `[0, total)`, feeding each to `visit` in draw order. `visit` returns
/// whether the rank was *kept*; drawing continues until `want` ranks were
/// kept or the rank space is exhausted, so callers can reject candidates
/// (already-chosen cells) without biasing the remaining draws.
///
/// This is a virtual Fisher–Yates shuffle: instead of materializing
/// `0..total` and shuffling (O(total)), the swaps a real shuffle would
/// have performed are stored sparsely in a hash map, so cost is
/// O(draws) — and `draws ≤ want + rejections ≤ total`. The kept sequence
/// is distributed exactly like the prefix of a uniform random permutation
/// of the non-rejected ranks, i.e. uniform sampling without replacement.
pub fn sample_ranks(
    total: usize,
    want: usize,
    rng: &mut SeededRng,
    mut visit: impl FnMut(usize) -> bool,
) {
    let mut swapped: HashMap<usize, usize> = HashMap::new();
    let mut kept = 0usize;
    let mut i = 0usize;
    while kept < want && i < total {
        let j = i + rng.index(total - i);
        let rank = swapped.get(&j).copied().unwrap_or(j);
        let displaced = swapped.get(&i).copied().unwrap_or(i);
        swapped.insert(j, displaced);
        i += 1;
        if visit(rank) {
            kept += 1;
        }
    }
}

/// The subsystem's shared positional tie-break: a ranking score plus the
/// (row, col) the candidate targets. Implemented for the tuple shapes the
/// policies rank, so the one total order below is the single source of
/// truth for every [`top_m_by`] call site — the "heap moved no picks"
/// equivalence rests on all of them using exactly this order.
pub trait ScoredCell {
    /// The ranking score (the Eq. 6 ratio, a censored-gap, an estimated
    /// cost, …).
    fn score(&self) -> f64;
    /// The positional tie-break, compared ascending: (row, col).
    fn cell(&self) -> (usize, usize);
}

impl ScoredCell for (f64, usize, usize) {
    fn score(&self) -> f64 {
        self.0
    }
    fn cell(&self) -> (usize, usize) {
        (self.1, self.2)
    }
}

impl<T> ScoredCell for (f64, usize, usize, T) {
    fn score(&self) -> f64 {
        self.0
    }
    fn cell(&self) -> (usize, usize) {
        (self.1, self.2)
    }
}

/// The explicit total order "score **desc**, then row asc, then col asc"
/// (`f64::total_cmp` keeps the score leg total even for NaN). With one
/// candidate per (row, col) this reproduces a stable descending sort's
/// tie-breaks exactly — candidates are generated row-major, so equal
/// scores keep generation order.
pub fn score_desc<T: ScoredCell>(a: &T, b: &T) -> Ordering {
    b.score().total_cmp(&a.score()).then(a.cell().cmp(&b.cell()))
}

/// The ascending twin of [`score_desc`]: "score asc, then row/col asc"
/// (QO-Advisor's cheapest-estimated-cost-first order).
pub fn score_asc<T: ScoredCell>(a: &T, b: &T) -> Ordering {
    a.score().total_cmp(&b.score()).then(a.cell().cmp(&b.cell()))
}

/// The best `m` items of `items` under `cmp` (where [`Ordering::Less`]
/// means "better"), returned best-first — exactly the first `m` elements
/// a stable full sort by `cmp` would produce, provided `cmp` is a total
/// order that never returns [`Ordering::Equal`] for distinct items (give
/// ties an explicit positional tie-break: [`score_desc`] / [`score_asc`]
/// are the subsystem's named orders).
///
/// Cost is O(n log m + m log m): a bounded max-heap of the `m` best so
/// far (worst at the root) absorbs the stream, then the survivors are
/// sorted. The full `sort` this replaces was O(n log n) per exploration
/// step over every scored row — and because the input is consumed as an
/// iterator, callers can stream candidates straight into the heap with
/// O(m) memory instead of materializing them first.
pub fn top_m_by<T>(
    items: impl IntoIterator<Item = T>,
    m: usize,
    mut cmp: impl FnMut(&T, &T) -> Ordering,
) -> Vec<T> {
    if m == 0 {
        return Vec::new();
    }
    // `heap` is a binary max-heap under `cmp`: the *worst* kept item sits
    // at the root, so each new candidate is compared against the bar.
    // (While fewer than m items have arrived everything is kept, so an
    // input of ≤ m items degenerates to a plain sort.)
    let mut heap: Vec<T> = Vec::with_capacity(m);
    for item in items {
        if heap.len() < m {
            heap.push(item);
            // Sift up.
            let mut i = heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if cmp(&heap[i], &heap[parent]) == Ordering::Greater {
                    heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if cmp(&item, &heap[0]) == Ordering::Less {
            heap[0] = item;
            // Sift down.
            let mut i = 0usize;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut worst = i;
                if l < heap.len() && cmp(&heap[l], &heap[worst]) == Ordering::Greater {
                    worst = l;
                }
                if r < heap.len() && cmp(&heap[r], &heap[worst]) == Ordering::Greater {
                    worst = r;
                }
                if worst == i {
                    break;
                }
                heap.swap(i, worst);
                i = worst;
            }
        }
    }
    heap.sort_by(&mut cmp);
    heap
}

/// Deterministic k-way merge of per-shard rankings: given one
/// already-best-first list per shard (each produced by [`top_m_by`] under
/// the same `cmp`), return the best `m` items overall, best-first.
///
/// Provided `cmp` is a *total* order across shards (the named orders
/// qualify: positions are globally unique, so no two candidates from any
/// shards compare [`Ordering::Equal`]), the merge of per-shard top-m lists
/// equals the global top-m — every global winner is necessarily inside its
/// own shard's top-m — so sharded selection is bit-identical to the
/// unsharded path by construction. With a single input list the merge is
/// the identity on its first `m` elements, which is why the one-shard
/// engine needs no special case. Cost is O(m · shards); shard counts are
/// small, so no heap over heads is warranted.
pub fn merge_ranked<T: Copy>(
    lists: Vec<Vec<T>>,
    m: usize,
    mut cmp: impl FnMut(&T, &T) -> Ordering,
) -> Vec<T> {
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(m.min(lists.iter().map(Vec::len).sum()));
    while out.len() < m {
        let mut best: Option<usize> = None;
        for (i, list) in lists.iter().enumerate() {
            if heads[i] < list.len() {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        if cmp(&list[heads[i]], &lists[b][heads[b]]) == Ordering::Less {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        match best {
            Some(i) => {
                out.push(lists[i][heads[i]]);
                heads[i] += 1;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_ranks_draws_distinct_and_exhausts() {
        let mut rng = SeededRng::new(7);
        let mut seen = Vec::new();
        sample_ranks(10, 10, &mut rng, |r| {
            seen.push(r);
            true
        });
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "all ranks drawn exactly once: {seen:?}");
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_ranks_rejection_does_not_stall() {
        // Rejecting every even rank: the sampler must still deliver every
        // odd rank and then stop at exhaustion, not loop.
        let mut rng = SeededRng::new(8);
        let mut kept = Vec::new();
        sample_ranks(20, 10, &mut rng, |r| {
            if r % 2 == 0 {
                return false;
            }
            kept.push(r);
            true
        });
        kept.sort_unstable();
        assert_eq!(kept, (0..20).filter(|r| r % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn sample_ranks_want_zero_draws_nothing() {
        let mut rng = SeededRng::new(9);
        sample_ranks(5, 0, &mut rng, |_| panic!("no rank should be visited"));
    }

    /// The explicit total order the policies use: score desc, then
    /// positional tie-break asc.
    fn order(a: &(f64, usize), b: &(f64, usize)) -> Ordering {
        b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
    }

    #[test]
    fn top_m_matches_full_sort_on_random_vectors_with_ties() {
        let mut rng = SeededRng::new(0x70_9A);
        for case in 0..200 {
            let n = 1 + rng.index(60);
            let m = rng.index(n + 4); // sometimes m > n, sometimes 0
            let items: Vec<(f64, usize)> = (0..n)
                // Coarse quantization forces plenty of exact ties.
                .map(|i| ((rng.uniform(0.0, 4.0) * 4.0).floor() / 4.0, i))
                .collect();
            let mut sorted = items.clone();
            sorted.sort_by(order); // stable, like the old full-sort path
            sorted.truncate(m);
            let heaped = top_m_by(items, m, order);
            assert_eq!(heaped, sorted, "case {case}: heap != stable sort prefix");
        }
    }

    #[test]
    fn top_m_edge_cases() {
        assert!(top_m_by(Vec::<(f64, usize)>::new(), 3, order).is_empty());
        assert!(top_m_by(vec![(1.0, 0)], 0, order).is_empty());
        assert_eq!(top_m_by(vec![(1.0, 0), (2.0, 1)], 5, order), vec![(2.0, 1), (1.0, 0)]);
    }

    #[test]
    fn named_orders_break_ties_by_cell() {
        // Equal scores resolve row-major — on both tuple shapes.
        let tied = vec![(1.0, 2, 0, "x"), (1.0, 0, 1, "y"), (1.0, 0, 0, "z"), (2.0, 9, 9, "w")];
        let desc = top_m_by(tied.clone(), 3, score_desc::<(f64, usize, usize, &str)>);
        assert_eq!(
            desc,
            vec![(2.0, 9, 9, "w"), (1.0, 0, 0, "z"), (1.0, 0, 1, "y")],
            "desc: best score first, ties row/col asc"
        );
        let asc = top_m_by(vec![(1.0, 1, 0), (0.5, 2, 2), (1.0, 0, 5)], 2, score_asc);
        assert_eq!(asc, vec![(0.5, 2, 2), (1.0, 0, 5)]);
    }

    #[test]
    fn merge_of_shard_tops_equals_global_top_m() {
        // The sharded-selection correctness argument in one test: chop a
        // candidate stream into arbitrary contiguous shards, take each
        // shard's top-m, merge — the result must equal the global top-m,
        // for every shard count including 1 (the identity case).
        let mut rng = SeededRng::new(0x5AAD);
        for case in 0..200 {
            let n = 1 + rng.index(80);
            let m = rng.index(n + 4);
            let items: Vec<(f64, usize, usize)> = (0..n)
                // Coarse quantization forces cross-shard score ties that
                // only the positional tie-break resolves.
                .map(|i| ((rng.uniform(0.0, 3.0) * 3.0).floor() / 3.0, i / 7, i % 7))
                .collect();
            let global = top_m_by(items.clone(), m, score_desc);
            for shards in [1usize, 2, 3, 8] {
                let per = n.div_ceil(shards).max(1);
                let tops: Vec<Vec<(f64, usize, usize)>> = items
                    .chunks(per)
                    .map(|chunk| top_m_by(chunk.iter().copied(), m, score_desc))
                    .collect();
                let merged = merge_ranked(tops, m, score_desc);
                assert_eq!(merged, global, "case {case}, {shards} shards");
            }
        }
    }

    #[test]
    fn merge_ranked_edge_cases() {
        assert!(merge_ranked(Vec::<Vec<(f64, usize)>>::new(), 3, order).is_empty());
        assert!(merge_ranked(vec![vec![(1.0, 0)]], 0, order).is_empty());
        // Short lists exhaust gracefully; a single list passes through.
        assert_eq!(
            merge_ranked(vec![vec![(2.0, 1), (1.0, 3)], vec![]], 5, order),
            vec![(2.0, 1), (1.0, 3)]
        );
    }

    #[test]
    fn top_m_streams_from_iterators() {
        // No materialized Vec: the heap consumes the iterator directly.
        let best = top_m_by((0..1000).map(|i| ((i % 97) as f64, i, 0)), 2, score_desc);
        assert_eq!(best, vec![(96.0, 96, 0), (96.0, 193, 0)]);
    }
}
