//! Policy-side glue for the scenario engine.
//!
//! A scenario (see `limeqo-sim`'s `scenario` module) pairs an environment —
//! workload, drift schedule, hint-space shape — with a *policy spec*: a
//! declarative, comparable description of which exploration technique to
//! run and at what exploration budget. This module owns the policy side so
//! the environment crates never need to name concrete policy types: the
//! runner in `limeqo-bench` matches a [`PolicySpec`] to boxed [`Policy`]
//! values (or to an online-exploration configuration) right before a run.
//!
//! Neural (TCNN) policies are deliberately absent: they need a materialized
//! workload for plan featurization, so the bench harness's
//! `technique_policy` remains their construction point. Scenario specs stay
//! linear-algebra-only and therefore cheap enough for the golden
//! regression suite to run on every `cargo test`.

use crate::complete::{AlsCompleter, Completer};
use crate::online::OnlineConfig;
use crate::policy::{GreedyPolicy, LimeQoPolicy, Policy, QoAdvisorPolicy, RandomPolicy};
use crate::store::DriftPolicy;

/// Declarative description of the exploration technique a scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Uniform-random unobserved cells (the paper's floor baseline).
    Random,
    /// Longest-running-query-first (§4.2's Greedy).
    Greedy,
    /// Lowest-optimizer-cost-first (QO-Advisor adapted; needs est-cost).
    QoAdvisor,
    /// LimeQO: Algorithm 1 with censored non-negative ALS at this rank.
    LimeQoAls {
        /// Factorization rank r (paper default 5).
        rank: usize,
        /// Drift-adaptation knobs: prior retention across data shifts,
        /// the post-shift density gate, the cold-row exploration bonus,
        /// and ALS warm starting. [`DriftPolicy::legacy`] reproduces the
        /// paper's cold-restart behavior.
        drift: DriftPolicy,
        /// Incremental Eq. 6 re-ranking
        /// ([`crate::policy::LimeQoPolicy::rescore_changed_only`]): only
        /// rows whose observation set changed since the previous round
        /// are re-scored. An explicit, opt-in approximation for the
        /// 100k-query scale scenarios; `false` is the paper-exact
        /// ranking.
        incremental: bool,
        /// Periodic full re-score for the incremental path
        /// ([`crate::policy::LimeQoPolicy::rescore_every`]): every K-th
        /// round bypasses the per-row cache, bounding argmin staleness.
        /// 0 never forces one; ignored unless `incremental` is on.
        rescore_every: usize,
        /// Incremental *model fitting*
        /// ([`crate::policy::LimeQoPolicy::incremental_als`], distinct
        /// from `incremental`, which caches Eq. 6 scores): re-solve only
        /// the dirty query rows against the retained hint factor when few
        /// rows changed between rounds. Implies ALS warm starting (the
        /// retained factors are what the dirty rows refit against).
        incremental_als: bool,
    },
    /// LimeQO with censored handling disabled (the Fig. 16 ablation).
    LimeQoAlsNoCensor,
    /// Online exploration (§6 future work): arrivals served from the
    /// incumbent hint, occasionally gambling on the completed matrix's best
    /// unverified hint under a `rho × incumbent` cancellation bound.
    OnlineAls {
        /// ALS rank for the matrix refreshes.
        rank: usize,
        /// Probability an arrival explores instead of exploiting.
        explore_prob: f64,
        /// Bounded-regression factor ρ (≥ 1).
        rho: f64,
        /// Matrix re-completion period in arrivals.
        refresh_every: usize,
        /// Cold-row exploration bonus: an arrival of query `q` explores
        /// with probability `min(1, explore_prob + cold_bonus / √(observed
        /// cells in q's row))`, so rarely arriving (cold) rows spend their
        /// scarce arrivals on exploration. 0 disables the bonus.
        cold_bonus: f64,
    },
}

impl PolicySpec {
    /// Drift-aware LimeQO at the paper rank: priors retained across data
    /// shifts and density-gated post-shift fill-in (cold-row bonus and
    /// ALS warm starting stay off — see [`DriftPolicy::default`]).
    pub fn limeqo() -> Self {
        PolicySpec::LimeQoAls {
            rank: 5,
            drift: DriftPolicy::default(),
            incremental: false,
            rescore_every: 0,
            incremental_als: false,
        }
    }

    /// The paper's LimeQO without the drift extensions: cold restart on a
    /// data shift, no gate, no bonus, cold ALS init every round.
    pub fn limeqo_legacy() -> Self {
        PolicySpec::LimeQoAls {
            rank: 5,
            drift: DriftPolicy::legacy(),
            incremental: false,
            rescore_every: 0,
            incremental_als: false,
        }
    }

    /// Stable name used in reports, metrics keys, and figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Random => "random",
            PolicySpec::Greedy => "greedy",
            PolicySpec::QoAdvisor => "qo-advisor",
            PolicySpec::LimeQoAls { .. } => "limeqo",
            PolicySpec::LimeQoAlsNoCensor => "limeqo-wocensored",
            PolicySpec::OnlineAls { .. } => "online-als",
        }
    }

    /// Whether this spec is served by the online explorer (arrival-driven)
    /// rather than the offline [`crate::explore::Explorer`].
    pub fn is_online(&self) -> bool {
        matches!(self, PolicySpec::OnlineAls { .. })
    }

    /// The drift-adaptation knobs the exploration harness should honor for
    /// this spec ([`DriftPolicy::legacy`] for every non-drift-aware
    /// policy, baselines included — the Random reference keeps the
    /// paper's discard-on-shift semantics).
    pub fn drift(&self) -> DriftPolicy {
        match self {
            PolicySpec::LimeQoAls { drift, .. } => *drift,
            _ => DriftPolicy::legacy(),
        }
    }

    /// Whether the LimeQO-vs-Random calibrated invariant applies: the spec
    /// is an offline low-rank learner expected to do no worse than random
    /// exploration at equal budget.
    pub fn expects_to_beat_random(&self) -> bool {
        matches!(self, PolicySpec::LimeQoAls { .. } | PolicySpec::LimeQoAlsNoCensor)
    }

    /// Build the offline policy for one seeded run.
    ///
    /// # Panics
    /// Panics for [`PolicySpec::OnlineAls`] — online specs are driven by
    /// [`crate::online::OnlineExplorer`]; use [`PolicySpec::online_config`]
    /// and [`PolicySpec::build_completer`] instead.
    pub fn build_policy(&self, seed: u64) -> Box<dyn Policy> {
        match self {
            PolicySpec::Random => Box::new(RandomPolicy),
            PolicySpec::Greedy => Box::new(GreedyPolicy),
            PolicySpec::QoAdvisor => Box::new(QoAdvisorPolicy),
            PolicySpec::LimeQoAls { rank, drift, incremental, rescore_every, incremental_als } => {
                let mut als = AlsCompleter::with_rank(*rank, seed);
                // Incremental fitting refits dirty rows against the
                // retained factors, so the mode implies warm starting.
                als.warm_start = drift.warm_start || *incremental_als;
                als.incremental = *incremental_als;
                let mut policy = LimeQoPolicy::new(Box::new(als), "limeqo");
                policy.density_gate = drift.density_gate;
                policy.cold_row_bonus = drift.cold_row_bonus;
                policy.rescore_changed_only = *incremental;
                policy.rescore_every = *rescore_every;
                policy.incremental_als = *incremental_als;
                Box::new(policy)
            }
            PolicySpec::LimeQoAlsNoCensor => Box::new(LimeQoPolicy::new(
                Box::new(AlsCompleter::without_censoring(seed)),
                "limeqo-wocensored",
            )),
            PolicySpec::OnlineAls { .. } => {
                panic!("online policy specs are run by OnlineExplorer, not Explorer")
            }
        }
    }

    /// Online-explorer configuration for [`PolicySpec::OnlineAls`].
    pub fn online_config(&self, seed: u64) -> Option<OnlineConfig> {
        match self {
            PolicySpec::OnlineAls { explore_prob, rho, refresh_every, cold_bonus, .. } => {
                Some(OnlineConfig {
                    explore_prob: *explore_prob,
                    rho: *rho,
                    refresh_every: *refresh_every,
                    cold_bonus: *cold_bonus,
                    seed,
                    ..OnlineConfig::default()
                })
            }
            _ => None,
        }
    }

    /// Completer for the online explorer's matrix refreshes.
    pub fn build_completer(&self, seed: u64) -> Box<dyn Completer + Send> {
        match self {
            PolicySpec::OnlineAls { rank, .. } | PolicySpec::LimeQoAls { rank, .. } => {
                Box::new(AlsCompleter::with_rank(*rank, seed))
            }
            _ => Box::new(AlsCompleter::paper_default(seed)),
        }
    }
}

/// True when a latency trajectory segment is monotone non-increasing —
/// the no-regressions guarantee every offline scenario asserts between
/// drift events.
pub fn segment_monotone(latencies: &[f64]) -> bool {
    latencies.windows(2).all(|w| w[1] <= w[0] + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{ExploreConfig, Explorer, MatOracle};
    use limeqo_linalg::rng::SeededRng;

    #[test]
    fn names_are_unique_and_stable() {
        let specs = [
            PolicySpec::Random,
            PolicySpec::Greedy,
            PolicySpec::QoAdvisor,
            PolicySpec::limeqo(),
            PolicySpec::LimeQoAlsNoCensor,
            PolicySpec::OnlineAls {
                rank: 5,
                explore_prob: 0.1,
                rho: 1.2,
                refresh_every: 64,
                cold_bonus: 0.0,
            },
        ];
        let names: Vec<&str> = specs.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn offline_specs_build_runnable_policies() {
        let mut rng = SeededRng::new(11);
        let q = rng.uniform_mat(8, 2, 0.5, 2.0);
        let h = rng.uniform_mat(6, 2, 0.2, 1.5);
        let mut lat = q.matmul_t(&h).unwrap();
        for i in 0..8 {
            lat[(i, 0)] += 1.0;
        }
        let est = lat.clone();
        let oracle = MatOracle::new(lat, Some(est));
        for spec in [
            PolicySpec::Random,
            PolicySpec::Greedy,
            PolicySpec::QoAdvisor,
            PolicySpec::LimeQoAls {
                rank: 3,
                drift: DriftPolicy::default(),
                incremental: false,
                rescore_every: 0,
                incremental_als: false,
            },
            PolicySpec::LimeQoAlsNoCensor,
        ] {
            let policy = spec.build_policy(7);
            let cfg = ExploreConfig { batch: 4, seed: 7, ..Default::default() };
            let mut ex = Explorer::new(&oracle, policy, cfg, 8);
            ex.run_until(1e9);
            assert!(
                ex.workload_latency() <= oracle.default_total() + 1e-9,
                "{} regressed",
                spec.name()
            );
        }
    }

    #[test]
    fn online_spec_exposes_config_not_policy() {
        let spec = PolicySpec::OnlineAls {
            rank: 4,
            explore_prob: 0.2,
            rho: 1.5,
            refresh_every: 8,
            cold_bonus: 0.0,
        };
        assert!(spec.is_online());
        let cfg = spec.online_config(3).expect("online config");
        assert_eq!(cfg.refresh_every, 8);
        assert_eq!(cfg.seed, 3);
        assert!(PolicySpec::Random.online_config(3).is_none());
    }

    #[test]
    #[should_panic(expected = "online policy specs")]
    fn online_spec_panics_as_offline_policy() {
        let spec = PolicySpec::OnlineAls {
            rank: 4,
            explore_prob: 0.2,
            rho: 1.5,
            refresh_every: 8,
            cold_bonus: 0.0,
        };
        let _ = spec.build_policy(0);
    }

    #[test]
    fn segment_monotone_checks() {
        assert!(segment_monotone(&[3.0, 2.0, 2.0, 1.5]));
        assert!(!segment_monotone(&[3.0, 2.0, 2.5]));
        assert!(segment_monotone(&[]));
        assert!(segment_monotone(&[1.0]));
    }
}
