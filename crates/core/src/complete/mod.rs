//! Predictive models that complete the partially observed workload matrix.
//!
//! The paper's LimeQO uses censored [`als`] (Algorithm 2); [`svt`] and
//! [`nuc`] are the alternatives benchmarked in §5.5.5 / Fig. 17. Neural
//! completers (plain and transductive TCNNs) live in the `limeqo-tcnn`
//! crate and implement the same [`Completer`] trait, which is how
//! Algorithm 1 swaps its predictive model.

pub mod als;
pub mod nuc;
pub mod svt;

pub use als::{AlsCompleter, AlsKernel};
pub use nuc::NucCompleter;
pub use svt::SvtCompleter;

use crate::matrix::WorkloadMatrix;
use limeqo_linalg::Mat;

/// A predictive model `pred(W̃, M, T) → Ŵ` (Algorithm 1, line 2): given the
/// partially observed workload matrix, produce a fully filled estimate.
/// Observed cells keep their observed values; unobserved cells receive
/// predictions; censored cells receive predictions clamped to their bound
/// when the model supports censoring.
pub trait Completer {
    /// Model name for reports.
    fn name(&self) -> &'static str;

    /// Complete the matrix. Called once per exploration step; the harness
    /// wall-clocks this call as the model's overhead (Figs. 7/13).
    fn complete(&mut self, wm: &WorkloadMatrix) -> Mat;

    /// [`Completer::complete`] with a dirty-row hint: `dirty` lists
    /// (sorted, unique) the rows whose observations changed since the
    /// previous call, `None` means "no tracking available". Models that
    /// can exploit the hint (incremental ALS) override this; the default
    /// ignores it and runs a full completion, so the hint is always safe
    /// to pass.
    fn complete_dirty(&mut self, wm: &WorkloadMatrix, _dirty: Option<&[usize]>) -> Mat {
        self.complete(wm)
    }

    /// Serialize mutable run state (call counters, warm-started factors)
    /// into a snapshot. Default no-op for stateless models.
    fn save_state(&self, _enc: &mut crate::persist::Enc) {}

    /// Restore state written by [`Completer::save_state`]. Must consume
    /// exactly the tokens its counterpart produced.
    fn load_state(&mut self, _dec: &mut crate::persist::Dec<'_>) -> crate::persist::Result<()> {
        Ok(())
    }
}

/// Fill estimate `Ŵ ← M ⊙ W̃ + (1 − M) ⊙ Q Hᵀ`, with the censored clamp
/// `Ŵᵢⱼ ← max(Ŵᵢⱼ, Tᵢⱼ)` where `Tᵢⱼ > 0` (Algorithm 2 lines 3–5). Shared
/// by ALS and the iterative completers.
pub(crate) fn fill_estimate(
    values: &Mat,
    mask: &Mat,
    timeouts: Option<&Mat>,
    low_rank: &Mat,
) -> Mat {
    let (n, k) = values.shape();
    debug_assert_eq!(low_rank.shape(), (n, k));
    let mut out = Mat::zeros(n, k);
    for i in 0..(n * k) {
        let m = mask.as_slice()[i];
        let v = if m != 0.0 { values.as_slice()[i] } else { low_rank.as_slice()[i] };
        out.as_mut_slice()[i] = v;
    }
    if let Some(t) = timeouts {
        for i in 0..(n * k) {
            let bound = t.as_slice()[i];
            if bound > 0.0 && out.as_slice()[i] < bound {
                out.as_mut_slice()[i] = bound;
            }
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use limeqo_linalg::rng::SeededRng;

    /// Build a synthetic exactly-rank-r non-negative matrix and a workload
    /// matrix observing `frac` of its cells (plus the full default column).
    pub fn synthetic_low_rank(
        n: usize,
        k: usize,
        r: usize,
        frac: f64,
        seed: u64,
    ) -> (Mat, WorkloadMatrix) {
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_mat(n, r, 0.1, 2.0);
        let h = rng.uniform_mat(k, r, 0.1, 2.0);
        let truth = q.matmul_t(&h).expect("shape");
        let mut wm = WorkloadMatrix::new(n, k);
        for i in 0..n {
            wm.set_complete(i, 0, truth[(i, 0)]);
            for j in 1..k {
                if rng.chance(frac) {
                    wm.set_complete(i, j, truth[(i, j)]);
                }
            }
        }
        (truth, wm)
    }

    /// Held-out MSE of `pred` vs `truth` on cells unobserved in `wm`.
    pub fn heldout_mse(truth: &Mat, pred: &Mat, wm: &WorkloadMatrix) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, j) in wm.unobserved_cells() {
            let d = truth[(i, j)] - pred[(i, j)];
            sum += d * d;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_estimate_respects_mask_and_clamp() {
        let values = Mat::from_rows(&[&[5.0, 0.0]]);
        let mask = Mat::from_rows(&[&[1.0, 0.0]]);
        let low_rank = Mat::from_rows(&[&[9.0, 2.0]]);
        let timeouts = Mat::from_rows(&[&[0.0, 3.0]]);
        let out = fill_estimate(&values, &mask, Some(&timeouts), &low_rank);
        assert_eq!(out[(0, 0)], 5.0); // observed kept
        assert_eq!(out[(0, 1)], 3.0); // prediction 2.0 clamped to bound 3.0
        let out2 = fill_estimate(&values, &mask, None, &low_rank);
        assert_eq!(out2[(0, 1)], 2.0); // no clamp without censoring
    }
}
