//! Singular Value Thresholding (Cai, Candès & Shen 2010) — the `SVT`
//! baseline of §5.5.5 / Fig. 17.
//!
//! Iterates `Xₜ = shrink(Yₜ₋₁, τ)`, `Yₜ = Yₜ₋₁ + δ · M ⊙ (W̃ − Xₜ)` where
//! `shrink` soft-thresholds the singular values. As the paper observes, SVT
//! "struggles with noisy data or sparse observations" — at fill 0.1 it can
//! fail to converge, which Fig. 17 shows as a missing point; we surface the
//! same behaviour by returning the best iterate found.

use super::{fill_estimate, Completer};
use crate::matrix::WorkloadMatrix;
use limeqo_linalg::{svd_thin, Mat};

/// SVT matrix completion.
#[derive(Debug, Clone)]
pub struct SvtCompleter {
    /// Singular-value shrinkage threshold τ; `None` picks the standard
    /// `5·√(n·k)` scaled by the mean observed magnitude.
    pub tau: Option<f64>,
    /// Step size δ; `None` picks `1.2 · n·k / |observed|`.
    pub delta: Option<f64>,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative residual tolerance for early stop.
    pub tol: f64,
}

impl Default for SvtCompleter {
    fn default() -> Self {
        SvtCompleter { tau: None, delta: None, max_iters: 200, tol: 1e-4 }
    }
}

impl Completer for SvtCompleter {
    fn name(&self) -> &'static str {
        "svt"
    }

    fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
        let (n, k) = (wm.n_rows(), wm.n_cols());
        let values = wm.values();
        let mask = wm.mask();
        let observed = mask.sum().max(1.0);

        // Scale τ with the data magnitude so thresholding is meaningful for
        // second-scale latencies as well as synthetic unit matrices.
        let mean_obs = values.sum() / observed;
        let tau = self.tau.unwrap_or(5.0 * ((n * k) as f64).sqrt() * mean_obs.max(1e-9) * 0.1);
        let delta = self.delta.unwrap_or(1.2 * (n * k) as f64 / observed);

        let norm_obs = values
            .as_slice()
            .iter()
            .zip(mask.as_slice())
            .map(|(&v, &m)| if m != 0.0 { v * v } else { 0.0 })
            .sum::<f64>()
            .sqrt()
            .max(1e-12);

        let mut y = Mat::zeros(n, k);
        let mut best_x = Mat::zeros(n, k);
        let mut best_resid = f64::INFINITY;
        for _ in 0..self.max_iters {
            let svd = match svd_thin(&y) {
                Ok(s) => s,
                Err(_) => break,
            };
            let x = svd.shrink_reconstruct(tau);
            // Residual on observed entries.
            let mut resid = 0.0;
            for i in 0..(n * k) {
                if mask.as_slice()[i] != 0.0 {
                    let d = values.as_slice()[i] - x.as_slice()[i];
                    resid += d * d;
                }
            }
            let resid = resid.sqrt() / norm_obs;
            if resid < best_resid {
                best_resid = resid;
                best_x = x.clone();
            }
            if resid < self.tol {
                break;
            }
            // Gradient step on observed cells.
            for i in 0..(n * k) {
                if mask.as_slice()[i] != 0.0 {
                    y.as_mut_slice()[i] += delta * (values.as_slice()[i] - x.as_slice()[i]);
                }
            }
        }
        fill_estimate(&values, &mask, None, &best_x)
    }
}

impl SvtCompleter {
    /// Whether the last-resort iterate converged to the tolerance — used by
    /// the Fig. 17 harness to mark SVT's missing sparse-fill points.
    pub fn converged(&self, wm: &WorkloadMatrix) -> bool {
        let mut probe = self.clone();
        let pred = probe.complete(wm);
        let values = wm.values();
        let mask = wm.mask();
        let mut resid = 0.0;
        let mut norm = 0.0;
        for i in 0..values.len() {
            if mask.as_slice()[i] != 0.0 {
                let d = values.as_slice()[i] - pred.as_slice()[i];
                resid += d * d;
                norm += values.as_slice()[i] * values.as_slice()[i];
            }
        }
        resid.sqrt() <= self.tol.max(0.05) * norm.sqrt().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::test_support::{heldout_mse, synthetic_low_rank};

    #[test]
    fn dense_fill_recovers_low_rank() {
        let (truth, wm) = synthetic_low_rank(40, 16, 2, 0.7, 21);
        let mut svt = SvtCompleter::default();
        let pred = svt.complete(&wm);
        let mse = heldout_mse(&truth, &pred, &wm);
        let scale = truth.as_slice().iter().map(|v| v * v).sum::<f64>() / truth.len() as f64;
        assert!(mse / scale < 0.05, "relative mse {}", mse / scale);
    }

    #[test]
    fn observed_cells_preserved() {
        let (_, wm) = synthetic_low_rank(20, 10, 2, 0.5, 22);
        let mut svt = SvtCompleter::default();
        let pred = svt.complete(&wm);
        for i in 0..20 {
            for j in 0..10 {
                if let crate::matrix::Cell::Complete(v) = wm.cell(i, j) {
                    assert_eq!(pred[(i, j)], v);
                }
            }
        }
    }

    #[test]
    fn sparse_fill_degrades() {
        // SVT at 10% fill should be clearly worse than at 70% fill.
        let (truth, wm_sparse) = synthetic_low_rank(40, 16, 2, 0.08, 23);
        let (truth2, wm_dense) = synthetic_low_rank(40, 16, 2, 0.7, 23);
        let mut svt = SvtCompleter::default();
        let sparse_mse = heldout_mse(&truth, &svt.complete(&wm_sparse), &wm_sparse);
        let dense_mse = heldout_mse(&truth2, &svt.complete(&wm_dense), &wm_dense);
        assert!(sparse_mse > dense_mse, "sparse {sparse_mse} dense {dense_mse}");
    }

    #[test]
    fn output_shape_matches() {
        let (_, wm) = synthetic_low_rank(7, 5, 1, 0.4, 24);
        let mut svt = SvtCompleter { max_iters: 10, ..Default::default() };
        assert_eq!(svt.complete(&wm).shape(), (7, 5));
    }
}
