//! Censored alternating least squares — Algorithm 2 of the paper.
//!
//! `min_{Q,H} ‖M ⊙ (W̃ − QHᵀ)‖²_F + λ(‖Q‖²_F + ‖H‖²_F)` solved by
//! alternating the closed-form ridge updates
//! `Q ← Ŵ H (HᵀH + λI)⁻¹` and `H ← Ŵᵀ Q (QᵀQ + λI)⁻¹` on the *filled*
//! matrix `Ŵ = M ⊙ W̃ + (1−M) ⊙ QHᵀ`, with two LimeQO-specific twists:
//!
//! * **censoring** (lines 4–5, 9–10): before each factor update, any filled
//!   cell that sits below a known timeout bound is raised to that bound, so
//!   the model is penalized for predicting below a lower bound but never
//!   for a (potentially valid) over-estimate;
//! * **non-negativity** (lines 7, 12): factors are projected onto `≥ 0`
//!   after each update — a "heavy-handed prior that query latency must be
//!   positive" which keeps Eq. 6's improvement ratios meaningful.
//!
//! Paper defaults: rank r = 5, λ = 0.2, t = 50 iterations.
//!
//! With [`AlsCompleter::warm_start`] on, the factors from the previous
//! `complete()` call seed the next one instead of a fresh random init —
//! each exploration round refines the same model rather than refitting
//! from scratch, which stabilizes the ranking between rounds (few
//! observations change per round) and carries hint-side structure across
//! workload and data shifts. If the matrix gains rows mid-run (§5.3), the
//! hint factor `H` is kept and the query factor `Q` re-initialized — the
//! first half-iteration refits `Q` from `H` in closed form anyway.
//!
//! ## The parallel engine
//!
//! Every expensive step of an ALS iteration is independent per factor row:
//! the `Q` update solves one r-dimensional ridge system per *query*, the
//! `H` update one per *hint*, and the low-rank product `QHᵀ` is one dot
//! product per cell. [`AlsCompleter::threads`] fans those solves out over
//! crossbeam scoped workers via the batched solvers
//! `limeqo_linalg::ridge_solve_rows` / `ridge_solve_cols`, each worker
//! writing only its own pre-allocated factor rows. The result is
//! **byte-identical to the serial path at any thread count** — the
//! partition moves chunk boundaries, never the per-element arithmetic —
//! which is what lets the golden scenario suite stay pinned while the hot
//! path scales across cores (contract in PERF.md; pinned by
//! `tests/tests/determinism.rs` at 1/2/8 threads).
//!
//! Matrix assembly no longer materializes the dense `W̃`/`M`/`T` triple
//! either: the observed and censored cells are gathered once per call from
//! the matrix's compact observed-cell index
//! ([`WorkloadMatrix::observed_cols`]), so assembly is O(observed), and the
//! per-iteration fill starts from `QHᵀ` and overwrites just the observed
//! slots — numerically identical to the old dense
//! `M ⊙ W̃ + (1−M) ⊙ QHᵀ` + censored-clamp sequence.

use super::Completer;
use crate::matrix::{Cell, WorkloadMatrix};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::{block, par, ridge_solve_cols, ridge_solve_rows_blocked, Mat};

/// Which kernel implementation backs the three ALS hot loops (`QHᵀ`, the
/// `Q` ridge batch, the `H` ridge batch).
///
/// Every variant is **byte-identical** — the blocked kernels preserve the
/// naive kernels' per-element floating-point operation sequence exactly
/// (see `limeqo_linalg::block` and the `tests/tests/kernels.rs`
/// differential suite) — so this is a pure performance knob: switching it
/// can never move a golden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlsKernel {
    /// The original unblocked batched kernels (`limeqo_linalg::par` /
    /// `ridge_solve_rows_blocked` / `ridge_solve_cols`).
    Naive,
    /// Cache-blocked kernels from `limeqo_linalg::block`, computing each
    /// panel in `tile`-wide slices. `tile = 0` picks the auto size (the
    /// largest slice whose operand panel fits the L1 budget).
    Blocked {
        /// Right-hand sides per slice; `0` = auto.
        tile: usize,
    },
}

impl Default for AlsKernel {
    /// Blocked with the auto tile — safe as a default precisely because
    /// the kernels are bit-identical.
    fn default() -> Self {
        AlsKernel::Blocked { tile: 0 }
    }
}

impl AlsKernel {
    fn matmul_t(&self, a: &Mat, b: &Mat, threads: usize) -> limeqo_linalg::Result<Mat> {
        match *self {
            AlsKernel::Naive => par::matmul_t(a, b, threads),
            AlsKernel::Blocked { tile } => block::matmul_t_tiled(a, b, threads, tile),
        }
    }

    fn solve_rows(
        &self,
        g: &Mat,
        b_rows: &Mat,
        lambda: f64,
        threads: usize,
        blocks: &[(usize, usize)],
    ) -> limeqo_linalg::Result<Mat> {
        match *self {
            AlsKernel::Naive => ridge_solve_rows_blocked(g, b_rows, lambda, threads, blocks),
            AlsKernel::Blocked { tile } => {
                block::ridge_solve_rows_tiled(g, b_rows, lambda, threads, blocks, tile)
            }
        }
    }

    fn solve_cols(
        &self,
        g: &Mat,
        b: &Mat,
        lambda: f64,
        threads: usize,
    ) -> limeqo_linalg::Result<Mat> {
        match *self {
            AlsKernel::Naive => ridge_solve_cols(g, b, lambda, threads),
            AlsKernel::Blocked { tile } => {
                block::ridge_solve_cols_tiled(g, b, lambda, threads, tile)
            }
        }
    }
}

/// Censored non-negative ALS matrix completion.
#[derive(Debug, Clone)]
pub struct AlsCompleter {
    /// Rank constraint r.
    pub rank: usize,
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Number of alternating iterations t.
    pub iters: usize,
    /// Apply the censored clamp (ablation: Fig. 16 disables this).
    pub censored: bool,
    /// Apply the non-negativity projection (our extra ablation).
    pub nonneg: bool,
    /// Seed the factors from the previous `complete()` call instead of a
    /// fresh random init (see the module docs).
    pub warm_start: bool,
    /// Worker threads for the parallel factor solves and the `QHᵀ`
    /// product: 0 asks the machine (`available_parallelism`, and stays
    /// serial for kernels too small to amortize a thread spawn — see
    /// `limeqo_linalg::par::MIN_PAR_WORK`), 1 forces the serial path,
    /// explicit counts are honored literally. A pure performance knob —
    /// output is byte-identical at any value (see the module docs).
    pub threads: usize,
    /// Base seed for factor initialization.
    pub seed: u64,
    /// Kernel implementation for the hot loops. Byte-identical across
    /// variants (see [`AlsKernel`]), so purely a performance knob.
    pub kernel: AlsKernel,
    /// Opt-in incremental mode: when [`AlsCompleter::complete_dirty`] is
    /// given a small dirty-row set and warm factors of the right shape,
    /// re-solve only the dirty `Q` rows against the retained `H` instead of
    /// running the full alternation. See the module docs for the
    /// convergence contract; requires `warm_start`.
    pub incremental: bool,
    /// Largest dirty fraction (`dirty rows / n`) the incremental path
    /// accepts; above it the call falls through to the full alternation.
    /// At the default `0.5`, an all-dirty call is *exactly* the full path.
    pub incremental_threshold: f64,
    /// Force a full alternation every this many `complete*` calls (`0`
    /// disables the valve), so incremental drift is periodically repaired
    /// against the full objective.
    pub incremental_full_every: u64,
    calls: u64,
    /// `(Q, H)` from the previous call, kept while `warm_start` is on.
    warm: Option<(Mat, Mat)>,
}

/// The observed cells of a workload matrix, gathered once per `complete()`
/// call from the compact index: completed `(row, col, value)` triples and
/// censored `(row, col, bound)` triples, both in row-major order.
struct GatheredCells {
    completes: Vec<(u32, u32, f64)>,
    censored: Vec<(u32, u32, f64)>,
}

impl GatheredCells {
    fn gather(wm: &WorkloadMatrix, want_censored: bool) -> Self {
        let mut completes = Vec::new();
        let mut censored = Vec::new();
        for row in 0..wm.n_rows() {
            for &col in wm.observed_cols(row) {
                match wm.cell(row, col as usize) {
                    Cell::Complete(v) => completes.push((row as u32, col, v)),
                    Cell::Censored(b) if want_censored => censored.push((row as u32, col, b)),
                    Cell::Censored(_) | Cell::Unobserved => {}
                }
            }
        }
        GatheredCells { completes, censored }
    }

    /// `Ŵ ← M ⊙ W̃ + (1−M) ⊙ QHᵀ` with the censored clamp
    /// `Ŵᵢⱼ ← max(Ŵᵢⱼ, Tᵢⱼ)` (Algorithm 2 lines 3–5), starting from the
    /// low-rank product and touching only observed slots. Numerically
    /// identical to the dense `fill_estimate` it replaces.
    fn fill(&self, mut qh: Mat) -> Mat {
        let k = qh.cols();
        let s = qh.as_mut_slice();
        for &(r, c, v) in &self.completes {
            s[r as usize * k + c as usize] = v;
        }
        for &(r, c, bound) in &self.censored {
            let i = r as usize * k + c as usize;
            if bound > 0.0 && s[i] < bound {
                s[i] = bound;
            }
        }
        qh
    }

    /// Mean of the completed values — the scale the random factor init is
    /// centred on. Accumulated in row-major cell order, matching the old
    /// dense `values().sum() / mask().sum()` bit for bit (the skipped
    /// zeros never changed a partial sum).
    fn mean_complete(&self) -> f64 {
        let sum: f64 = self.completes.iter().map(|&(_, _, v)| v).sum();
        let count = self.completes.len().max(1);
        (sum / count as f64).max(1e-9)
    }
}

impl AlsCompleter {
    /// Paper-default configuration (r = 5, λ = 0.2, t = 50, censoring and
    /// non-negativity on).
    pub fn paper_default(seed: u64) -> Self {
        AlsCompleter {
            rank: 5,
            lambda: 0.2,
            iters: 50,
            censored: true,
            nonneg: true,
            warm_start: false,
            threads: 0,
            seed,
            kernel: AlsKernel::default(),
            incremental: false,
            incremental_threshold: 0.5,
            incremental_full_every: 8,
            calls: 0,
            warm: None,
        }
    }

    /// Paper defaults with cross-round warm starting enabled.
    pub fn warm_started(rank: usize, seed: u64) -> Self {
        AlsCompleter { warm_start: true, ..Self::with_rank(rank, seed) }
    }

    /// Like [`AlsCompleter::paper_default`] but with a custom rank
    /// (Fig. 15's sweep).
    pub fn with_rank(rank: usize, seed: u64) -> Self {
        AlsCompleter { rank, ..Self::paper_default(seed) }
    }

    /// Disable the censored clamp (Fig. 16's "wocensored" ablation).
    pub fn without_censoring(seed: u64) -> Self {
        AlsCompleter { censored: false, ..Self::paper_default(seed) }
    }

    /// Run Algorithm 2 and return both the completed matrix and the final
    /// factors (the factors are reused by diagnostics and tests).
    ///
    /// ```
    /// use limeqo_core::complete::AlsCompleter;
    /// use limeqo_core::matrix::WorkloadMatrix;
    ///
    /// let mut wm = WorkloadMatrix::with_defaults(&[4.0, 6.0], 3);
    /// wm.set_complete(0, 1, 1.0);
    /// let mut als = AlsCompleter::paper_default(7);
    /// let (completed, q, h) = als.complete_with_factors(&wm);
    /// assert_eq!(completed.shape(), (2, 3));
    /// assert_eq!(q.shape(), (2, 5)); // rank r = 5 query factor
    /// assert_eq!(h.shape(), (3, 5)); // rank r = 5 hint factor
    /// // Observed cells are kept exactly; the rest is the low-rank fill.
    /// assert_eq!(completed[(0, 1)], 1.0);
    /// // The thread count is a pure performance knob: any value yields
    /// // byte-identical output (the parallel determinism contract).
    /// let mut par = AlsCompleter::paper_default(7);
    /// par.threads = 8;
    /// let (par_completed, _, _) = par.complete_with_factors(&wm);
    /// assert_eq!(par_completed.as_slice(), completed.as_slice());
    /// ```
    pub fn complete_with_factors(&mut self, wm: &WorkloadMatrix) -> (Mat, Mat, Mat) {
        let n = wm.n_rows();
        let k = wm.n_cols();
        let cells = GatheredCells::gather(wm, self.censored);
        // The Q update runs as one ridge batch per shard against the shared
        // factored normal matrix HᵀH + λI: per-shard solves feeding one
        // factor model. Each query row's solve is independent of how its
        // neighbours are batched, so any shard layout (including the
        // single-shard default) produces byte-identical factors.
        let shard_blocks = wm.shard_ranges();

        // Fresh random init per call, deterministic across runs. The
        // factors are scaled so the initial product QHᵀ matches the mean
        // observed latency: entries of Q·Hᵀ with U(0, b)² factors average
        // r·b²/4, so b = 2·√(mean/r) centres the initial fill on the data
        // scale (raw latencies span milliseconds to minutes, and an O(1)
        // init would make Algorithm 1's α-scaled timeouts so small that
        // every probe censors).
        self.calls += 1;
        let mut rng = SeededRng::new(self.seed.wrapping_add(self.calls.wrapping_mul(0xA5A5)));
        let r = self.rank.max(1);
        let mean_obs = cells.mean_complete();
        let bound = 2.0 * (mean_obs / r as f64).sqrt();
        // Warm path: reuse last round's factors when the shapes still
        // agree; if only the row count changed (queries arrived), keep H
        // and let the first half-iteration refit Q from it. The RNG is
        // advanced identically on every path so warm and cold runs stay
        // seed-deterministic cell for cell.
        let q_init = rng.uniform_mat(n, r, 0.0, bound);
        let h_init = rng.uniform_mat(k, r, 0.0, bound);
        let (mut q, mut h) = match self.warm.take() {
            Some((wq, wh)) if self.warm_start && wh.shape() == (k, r) => {
                if wq.shape() == (n, r) {
                    (wq, wh)
                } else {
                    (q_init, wh)
                }
            }
            _ => (q_init, h_init),
        };

        let threads = self.threads;
        for _ in 0..self.iters {
            // Ŵ ← M⊙W̃ + (1−M)⊙QHᵀ  (+ censored clamp)
            let qh = self.kernel.matmul_t(&q, &h, threads).expect("QHᵀ shape");
            let w_hat = cells.fill(qh);
            // Q ← Ŵ H (HᵀH + λI)⁻¹: one independent r-dimensional ridge
            // system per query row, batched per shard, fanned out across
            // the workers.
            q = self
                .kernel
                .solve_rows(&h, &w_hat, self.lambda, threads, &shard_blocks)
                .expect("Q update");
            if self.nonneg {
                q.clamp_min(0.0);
            }
            let qh = self.kernel.matmul_t(&q, &h, threads).expect("QHᵀ shape");
            let w_hat = cells.fill(qh);
            // H ← Ŵᵀ Q (QᵀQ + λI)⁻¹: one system per hint column.
            h = self.kernel.solve_cols(&q, &w_hat, self.lambda, threads).expect("H update");
            if self.nonneg {
                h.clamp_min(0.0);
            }
        }
        let qh = self.kernel.matmul_t(&q, &h, threads).expect("QHᵀ shape");
        let completed = cells.fill(qh);
        if self.warm_start {
            self.warm = Some((q.clone(), h.clone()));
        }
        (completed, q, h)
    }

    /// [`AlsCompleter::complete_with_factors`], but with a dirty-row hint:
    /// `dirty` lists (sorted, deduplicated) the rows whose observations
    /// changed since the factors in `warm` were fitted.
    ///
    /// When the incremental mode is armed (`incremental` + `warm_start`),
    /// warm factors of the current shape exist, the dirty fraction is at
    /// most [`AlsCompleter::incremental_threshold`] and the
    /// [`AlsCompleter::incremental_full_every`] valve is not due, only the
    /// dirty `Q` rows are re-solved against the retained `H` — one ridge
    /// batch instead of `iters` full alternations. Every other case
    /// (including `dirty = None`, the "no tracking available" signal) falls
    /// through to the full path, so an all-dirty call is *exactly* the full
    /// alternation.
    ///
    /// **Convergence contract** (measured across the fast scenario registry
    /// by `tests/tests/kernels.rs`, documented in PERF.md): the incremental
    /// completion's relative Frobenius deviation from the full-ALS
    /// completion on the same inputs stays bounded — the dirty rows are
    /// re-fit in closed form against the same `H` the full path would have
    /// started from, clean rows keep their already-converged values, and
    /// the periodic full pass repairs any accumulated factor drift.
    ///
    /// The incremental path draws nothing from the RNG but still advances
    /// the per-call counter, so a later full completion computes the same
    /// init stream whether or not incremental rounds ran in between.
    pub fn complete_dirty_with_factors(
        &mut self,
        wm: &WorkloadMatrix,
        dirty: Option<&[usize]>,
    ) -> (Mat, Mat, Mat) {
        let n = wm.n_rows();
        let k = wm.n_cols();
        let r = self.rank.max(1);
        let Some(dirty) = dirty else {
            return self.complete_with_factors(wm);
        };
        // `calls` is already persisted state, so the valve survives
        // restarts for free; checked against the *upcoming* call number.
        let force_full =
            self.incremental_full_every > 0 && (self.calls + 1) % self.incremental_full_every == 0;
        let warm_ok = matches!(
            &self.warm,
            Some((wq, wh)) if wq.shape() == (n, r) && wh.shape() == (k, r)
        );
        let small_enough = (dirty.len() as f64) <= self.incremental_threshold * n.max(1) as f64;
        if !(self.incremental && self.warm_start && warm_ok && small_enough && !force_full) {
            return self.complete_with_factors(wm);
        }
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]) && dirty.iter().all(|&row| row < n),
            "dirty rows must be sorted, unique and in range"
        );
        let cells = GatheredCells::gather(wm, self.censored);
        self.calls += 1;
        let (mut q, h) = self.warm.take().expect("warm_ok checked above");
        if !dirty.is_empty() {
            // Dirty right-hand sides: each dirty row of Ŵ, i.e. that row of
            // QHᵀ with its observed cells overwritten (and the censored
            // clamp applied) — the same fill the full path computes, built
            // for just the d dirty rows.
            let mut w_d = Mat::zeros(dirty.len(), k);
            for (i, &row) in dirty.iter().enumerate() {
                let q_row = q.row(row);
                let out = w_d.row_mut(i);
                for (j, o) in out.iter_mut().enumerate() {
                    let h_row = h.row(j);
                    let mut acc = 0.0;
                    for (&x, &y) in q_row.iter().zip(h_row.iter()) {
                        acc += x * y;
                    }
                    *o = acc;
                }
                for &col in wm.observed_cols(row) {
                    match wm.cell(row, col as usize) {
                        Cell::Complete(v) => out[col as usize] = v,
                        Cell::Censored(b) if self.censored => {
                            if b > 0.0 && out[col as usize] < b {
                                out[col as usize] = b;
                            }
                        }
                        Cell::Censored(_) | Cell::Unobserved => {}
                    }
                }
            }
            // Q_d ← Ŵ_d H (HᵀH + λI)⁻¹: the closed-form Q update restricted
            // to the dirty rows, against the retained H.
            let mut q_d = self
                .kernel
                .solve_rows(&h, &w_d, self.lambda, self.threads, &[(0, dirty.len())])
                .expect("incremental Q update");
            if self.nonneg {
                q_d.clamp_min(0.0);
            }
            for (i, &row) in dirty.iter().enumerate() {
                q.row_mut(row).copy_from_slice(q_d.row(i));
            }
        }
        let qh = self.kernel.matmul_t(&q, &h, self.threads).expect("QHᵀ shape");
        let completed = cells.fill(qh);
        self.warm = Some((q.clone(), h.clone()));
        (completed, q, h)
    }
}

impl Completer for AlsCompleter {
    fn name(&self) -> &'static str {
        "als"
    }

    fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
        self.complete_with_factors(wm).0
    }

    fn complete_dirty(&mut self, wm: &WorkloadMatrix, dirty: Option<&[usize]>) -> Mat {
        self.complete_dirty_with_factors(wm, dirty).0
    }

    fn save_state(&self, enc: &mut crate::persist::Enc) {
        // Per-call seed derivation (`seed + calls * 0xA5A5`) and the
        // warm-started factors are the only mutable state; both must
        // survive a restart for the next completion to be bit-identical.
        enc.u(self.calls);
        match &self.warm {
            Some((q, h)) => {
                enc.b(true);
                enc.mat(q);
                enc.mat(h);
            }
            None => enc.b(false),
        }
    }

    fn load_state(&mut self, dec: &mut crate::persist::Dec<'_>) -> crate::persist::Result<()> {
        self.calls = dec.u()?;
        self.warm = if dec.b()? { Some((dec.mat()?, dec.mat()?)) } else { None };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::test_support::{heldout_mse, synthetic_low_rank};
    use crate::matrix::Cell;

    #[test]
    fn recovers_exact_low_rank_matrix() {
        let (truth, wm) = synthetic_low_rank(60, 20, 3, 0.5, 1);
        let mut als = AlsCompleter { rank: 3, lambda: 0.01, ..AlsCompleter::paper_default(2) };
        let pred = als.complete(&wm);
        let mse = heldout_mse(&truth, &pred, &wm);
        let scale = truth.as_slice().iter().map(|v| v * v).sum::<f64>() / truth.len() as f64;
        assert!(mse / scale < 0.01, "relative mse {}", mse / scale);
    }

    #[test]
    fn observed_cells_kept_exactly() {
        let (truth, wm) = synthetic_low_rank(20, 10, 2, 0.4, 3);
        let mut als = AlsCompleter::paper_default(4);
        let pred = als.complete(&wm);
        for i in 0..20 {
            for j in 0..10 {
                if let Cell::Complete(v) = wm.cell(i, j) {
                    assert_eq!(pred[(i, j)], v);
                    assert_eq!(v, truth[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn censored_cells_clamped_to_bound() {
        let (_, mut wm) = synthetic_low_rank(30, 12, 2, 0.4, 5);
        // Plant censored observations (on cells not yet complete) with
        // bounds far above any prediction.
        let cells: Vec<(usize, usize)> = wm.unobserved_cells().take(2).collect();
        let [(r0, c0), (r1, c1)] = cells[..] else { panic!("need 2 unobserved") };
        wm.set_censored(r0, c0, 1e6);
        wm.set_censored(r1, c1, 2e6);
        let mut als = AlsCompleter::paper_default(6);
        let pred = als.complete(&wm);
        assert!(pred[(r0, c0)] >= 1e6);
        assert!(pred[(r1, c1)] >= 2e6);
        // Without censoring, the bound is ignored.
        let mut raw = AlsCompleter::without_censoring(6);
        let pred2 = raw.complete(&wm);
        assert!(pred2[(r0, c0)] < 1e6);
    }

    #[test]
    fn nonneg_projection_yields_nonnegative_predictions() {
        let (_, wm) = synthetic_low_rank(25, 10, 2, 0.3, 7);
        let mut als = AlsCompleter::paper_default(8);
        let (pred, q, h) = als.complete_with_factors(&wm);
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
        assert!(h.as_slice().iter().all(|&v| v >= 0.0));
        assert!(pred.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn higher_rank_fits_no_worse() {
        let (truth, wm) = synthetic_low_rank(50, 20, 4, 0.6, 9);
        let mse_r1 = {
            let mut a = AlsCompleter { rank: 1, lambda: 0.01, ..AlsCompleter::paper_default(10) };
            heldout_mse(&truth, &a.complete(&wm), &wm)
        };
        let mse_r4 = {
            let mut a = AlsCompleter { rank: 4, lambda: 0.01, ..AlsCompleter::paper_default(10) };
            heldout_mse(&truth, &a.complete(&wm), &wm)
        };
        assert!(mse_r4 < mse_r1, "r4 {mse_r4} r1 {mse_r1}");
    }

    #[test]
    fn deterministic_given_same_seed_and_call_count() {
        let (_, wm) = synthetic_low_rank(15, 8, 2, 0.5, 11);
        let mut a = AlsCompleter::paper_default(12);
        let mut b = AlsCompleter::paper_default(12);
        assert_eq!(a.complete(&wm).as_slice(), b.complete(&wm).as_slice());
    }

    #[test]
    fn warm_start_reuses_factors_and_stays_deterministic() {
        let (_, wm) = synthetic_low_rank(20, 10, 3, 0.5, 20);
        let mut warm_a = AlsCompleter::warm_started(3, 21);
        let mut warm_b = AlsCompleter::warm_started(3, 21);
        for _ in 0..3 {
            let pa = warm_a.complete(&wm);
            let pb = warm_b.complete(&wm);
            assert_eq!(pa.as_slice(), pb.as_slice(), "warm runs must replay identically");
        }
        // Warm and cold runs genuinely differ after the first call.
        let mut cold = AlsCompleter::with_rank(3, 21);
        cold.complete(&wm);
        let mut warm = AlsCompleter::warm_started(3, 21);
        warm.complete(&wm);
        assert_ne!(cold.complete(&wm).as_slice(), warm.complete(&wm).as_slice());
    }

    #[test]
    fn warm_start_survives_row_growth() {
        let (_, wm_small) = synthetic_low_rank(12, 8, 2, 0.5, 22);
        let (_, wm_big) = synthetic_low_rank(18, 8, 2, 0.5, 23);
        let mut als = AlsCompleter::warm_started(2, 24);
        als.complete(&wm_small);
        // Rows grew (a §5.3 workload shift): H is kept, Q re-initialized.
        let pred = als.complete(&wm_big);
        assert_eq!(pred.shape(), (18, 8));
        assert!(pred.as_slice().iter().all(|v| v.is_finite()));
    }

    /// The pre-parallel dense path, kept verbatim as a reference: build
    /// `W̃`/`M`/`T` densely, run the old `fill_estimate` + one-shot
    /// `ridge_solve` loop. The shipping engine must reproduce it bit for
    /// bit at every thread count.
    fn dense_reference(wm: &WorkloadMatrix, rank: usize, iters: usize, seed: u64) -> Mat {
        use crate::complete::fill_estimate;
        use limeqo_linalg::ridge_solve;
        let (n, k) = (wm.n_rows(), wm.n_cols());
        let lambda = 0.2;
        let values = wm.values();
        let mask = wm.mask();
        let timeouts_mat = wm.timeouts();
        let timeouts = Some(&timeouts_mat);
        let mut rng = SeededRng::new(seed.wrapping_add(0xA5A5));
        let r = rank.max(1);
        let observed = mask.sum().max(1.0);
        let mean_obs = (values.sum() / observed).max(1e-9);
        let bound = 2.0 * (mean_obs / r as f64).sqrt();
        let mut q = rng.uniform_mat(n, r, 0.0, bound);
        let mut h = rng.uniform_mat(k, r, 0.0, bound);
        for _ in 0..iters {
            let qh = q.matmul_t(&h).unwrap();
            let w_hat = fill_estimate(&values, &mask, timeouts, &qh);
            let qt = ridge_solve(&h, &w_hat.transpose(), lambda).unwrap();
            q = qt.transpose();
            q.clamp_min(0.0);
            let qh = q.matmul_t(&h).unwrap();
            let w_hat = fill_estimate(&values, &mask, timeouts, &qh);
            let ht = ridge_solve(&q, &w_hat, lambda).unwrap();
            h = ht.transpose();
            h.clamp_min(0.0);
        }
        let qh = q.matmul_t(&h).unwrap();
        fill_estimate(&values, &mask, timeouts, &qh)
    }

    #[test]
    fn engine_matches_dense_reference_at_every_thread_count() {
        let (_, mut wm) = synthetic_low_rank(40, 12, 3, 0.3, 31);
        // Plant censored cells so the clamp path is exercised too.
        let planted: Vec<(usize, usize)> = wm.unobserved_cells().take(5).collect();
        for (i, (r, c)) in planted.into_iter().enumerate() {
            wm.set_censored(r, c, 0.5 + i as f64);
        }
        let reference = dense_reference(&wm, 3, 10, 32);
        for threads in [1, 2, 8, 0] {
            let mut als =
                AlsCompleter { rank: 3, iters: 10, threads, ..AlsCompleter::paper_default(32) };
            assert_eq!(
                als.complete(&wm).as_slice(),
                reference.as_slice(),
                "threads={threads} diverged from the dense serial reference"
            );
        }
    }

    #[test]
    fn sharded_matrix_completes_byte_identically() {
        // Same logical cells, different shard layouts: the per-shard Q
        // batches must feed the shared factor model without moving a bit.
        let (_, mut wm) = synthetic_low_rank(40, 12, 3, 0.3, 41);
        let planted: Vec<(usize, usize)> = wm.unobserved_cells().take(4).collect();
        for (i, (r, c)) in planted.into_iter().enumerate() {
            wm.set_censored(r, c, 0.5 + i as f64);
        }
        let reference = {
            let mut als = AlsCompleter { rank: 3, iters: 10, ..AlsCompleter::paper_default(42) };
            als.complete(&wm)
        };
        for shards in [2usize, 3, 8] {
            let mut sharded = crate::matrix::WorkloadMatrix::new_sharded(40, 12, shards);
            for i in 0..40 {
                for j in 0..12 {
                    match wm.cell(i, j) {
                        Cell::Complete(v) => sharded.set_complete(i, j, v),
                        Cell::Censored(b) => sharded.set_censored(i, j, b),
                        Cell::Unobserved => {}
                    }
                }
            }
            for threads in [1usize, 8] {
                let mut als =
                    AlsCompleter { rank: 3, iters: 10, threads, ..AlsCompleter::paper_default(42) };
                assert_eq!(
                    als.complete(&sharded).as_slice(),
                    reference.as_slice(),
                    "shards={shards} threads={threads} diverged from the unsharded run"
                );
            }
        }
    }

    #[test]
    fn rank_zero_clamped_to_one() {
        let (_, wm) = synthetic_low_rank(5, 4, 1, 0.5, 13);
        let mut a = AlsCompleter { rank: 0, ..AlsCompleter::paper_default(14) };
        let pred = a.complete(&wm);
        assert_eq!(pred.shape(), (5, 4));
    }

    #[test]
    fn blocked_kernel_matches_naive_bit_for_bit() {
        let (_, mut wm) = synthetic_low_rank(40, 12, 3, 0.3, 51);
        let planted: Vec<(usize, usize)> = wm.unobserved_cells().take(4).collect();
        for (i, (r, c)) in planted.into_iter().enumerate() {
            wm.set_censored(r, c, 0.5 + i as f64);
        }
        let reference = {
            let mut als = AlsCompleter { rank: 3, iters: 10, ..AlsCompleter::paper_default(52) };
            als.kernel = AlsKernel::Naive;
            als.complete(&wm)
        };
        for tile in [1usize, 7, 64, 0] {
            for threads in [1usize, 2, 8] {
                let mut als = AlsCompleter {
                    rank: 3,
                    iters: 10,
                    threads,
                    kernel: AlsKernel::Blocked { tile },
                    ..AlsCompleter::paper_default(52)
                };
                assert_eq!(
                    als.complete(&wm).as_slice(),
                    reference.as_slice(),
                    "tile={tile} threads={threads} diverged from the naive kernel"
                );
            }
        }
    }

    /// Shared setup for the incremental tests: a warm-started incremental
    /// completer that has already done one full fit of `wm`.
    fn fitted_incremental(wm: &WorkloadMatrix, seed: u64) -> AlsCompleter {
        let mut als = AlsCompleter::warm_started(3, seed);
        als.iters = 10;
        als.incremental = true;
        als.incremental_full_every = 0; // tests arm the valve explicitly
        als.complete(wm);
        als
    }

    #[test]
    fn incremental_update_refits_only_the_dirty_rows() {
        let (truth, mut wm) = synthetic_low_rank(30, 10, 3, 0.5, 61);
        let mut als = fitted_incremental(&wm, 62);
        let (_, q_before, _) = als.complete_dirty_with_factors(&wm, Some(&[]));
        // New observations land in two rows.
        wm.set_complete(3, 4, truth[(3, 4)]);
        wm.set_complete(17, 2, truth[(17, 2)]);
        let (pred, q_after, _) = als.complete_dirty_with_factors(&wm, Some(&[3, 17]));
        // Observed cells are kept exactly, including the new ones.
        assert_eq!(pred[(3, 4)], truth[(3, 4)]);
        assert_eq!(pred[(17, 2)], truth[(17, 2)]);
        // Clean Q rows are untouched; the dirty rows moved.
        for row in 0..30 {
            if row == 3 || row == 17 {
                assert_ne!(q_after.row(row), q_before.row(row), "dirty row {row} must refit");
            } else {
                assert_eq!(q_after.row(row), q_before.row(row), "clean row {row} must be kept");
            }
        }
        assert!(pred.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn incremental_above_threshold_or_all_dirty_is_exactly_the_full_path() {
        let (_, wm) = synthetic_low_rank(20, 8, 3, 0.5, 63);
        let mut inc = fitted_incremental(&wm, 64);
        let mut full = fitted_incremental(&wm, 64);
        // All rows dirty: fraction 1.0 > threshold 0.5 ⇒ the incremental
        // call IS the full alternation, bit for bit.
        let all: Vec<usize> = (0..20).collect();
        let a = inc.complete_dirty_with_factors(&wm, Some(&all)).0;
        let b = full.complete_with_factors(&wm).0;
        assert_eq!(a.as_slice(), b.as_slice());
        // And `None` (no tracking) falls back the same way.
        let a = inc.complete_dirty_with_factors(&wm, None).0;
        let b = full.complete_with_factors(&wm).0;
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn incremental_full_every_valve_forces_the_full_path() {
        let (_, wm) = synthetic_low_rank(20, 8, 3, 0.5, 65);
        let mut inc = fitted_incremental(&wm, 66);
        inc.incremental_full_every = 2; // next call is call 2 ⇒ valve due
        let mut full = fitted_incremental(&wm, 66);
        let a = inc.complete_dirty_with_factors(&wm, Some(&[1])).0;
        let b = full.complete_with_factors(&wm).0;
        assert_eq!(a.as_slice(), b.as_slice(), "the valve call must be the full path");
    }

    #[test]
    fn incremental_path_advances_the_persisted_call_counter() {
        let (_, wm) = synthetic_low_rank(15, 6, 2, 0.5, 67);
        let mut als = AlsCompleter::warm_started(2, 68);
        als.iters = 5;
        als.incremental = true;
        als.incremental_full_every = 0;
        als.complete(&wm); // call 1, full
        als.complete_dirty(&wm, Some(&[2])); // call 2, incremental
        let mut enc = crate::persist::Enc::new();
        als.save_state(&mut enc);
        let state = enc.finish();
        let mut dec = crate::persist::Dec::new(&state);
        assert_eq!(dec.u().unwrap(), 2, "incremental calls must advance the seed counter");
    }

    #[test]
    fn incremental_deviation_from_full_stays_bounded() {
        // The convergence contract on a controlled instance: after an
        // incremental round, the completion stays close (relative
        // Frobenius) to what a full refit on the same matrix produces.
        let (truth, mut wm) = synthetic_low_rank(30, 10, 3, 0.5, 69);
        let mut inc = fitted_incremental(&wm, 70);
        let mut full = fitted_incremental(&wm, 70);
        let dirty: Vec<usize> = vec![2, 9, 21];
        for &row in &dirty {
            for col in 1..10 {
                wm.set_complete(row, col, truth[(row, col)]);
            }
        }
        let a = inc.complete_dirty_with_factors(&wm, Some(&dirty)).0;
        let b = full.complete_with_factors(&wm).0;
        let num: f64 = a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = b.as_slice().iter().map(|y| y * y).sum();
        let rel = (num / den.max(1e-30)).sqrt();
        assert!(rel < 0.25, "relative deviation {rel} breaches the documented bound");
    }
}
