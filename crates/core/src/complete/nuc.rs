//! Nuclear-norm minimization via Soft-Impute — the `NUC` baseline of
//! §5.5.5 / Fig. 17.
//!
//! Exact nuclear-norm minimization is a semidefinite program; the standard
//! practical solver at workload-matrix scale is Soft-Impute (Mazumder,
//! Hastie & Tibshirani 2010), the proximal-gradient iteration
//! `Xₜ₊₁ = shrink_λ(M ⊙ W̃ + (1−M) ⊙ Xₜ)` for the nuclear-norm-regularized
//! objective. The substitution is recorded in DESIGN.md §3: same objective,
//! tractable algorithm. As the paper observes for NUC, accuracy is good but
//! the per-iteration SVD makes it markedly slower than ALS.

use super::{fill_estimate, Completer};
use crate::matrix::WorkloadMatrix;
use limeqo_linalg::{svd_thin, Mat};

/// Soft-Impute nuclear-norm matrix completion.
#[derive(Debug, Clone)]
pub struct NucCompleter {
    /// Shrinkage λ as a fraction of the top singular value of the filled
    /// matrix (relative thresholds adapt to latency scale).
    pub lambda_rel: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Relative change tolerance for convergence.
    pub tol: f64,
}

impl Default for NucCompleter {
    fn default() -> Self {
        NucCompleter { lambda_rel: 0.02, max_iters: 300, tol: 1e-6 }
    }
}

impl Completer for NucCompleter {
    fn name(&self) -> &'static str {
        "nuc"
    }

    fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
        let values = wm.values();
        let mask = wm.mask();
        let mut x = Mat::zeros(wm.n_rows(), wm.n_cols());
        let mut prev_norm: f64 = 1e-12;
        for _ in 0..self.max_iters {
            let filled = fill_estimate(&values, &mask, None, &x);
            let svd = match svd_thin(&filled) {
                Ok(s) => s,
                Err(_) => break,
            };
            let tau = self.lambda_rel * svd.s.first().copied().unwrap_or(0.0);
            let next = svd.shrink_reconstruct(tau);
            // Relative Frobenius change.
            let mut diff = 0.0;
            let mut norm = 0.0;
            for (a, b) in next.as_slice().iter().zip(x.as_slice()) {
                diff += (a - b) * (a - b);
                norm += a * a;
            }
            x = next;
            let rel = diff.sqrt() / prev_norm.max(1e-12);
            prev_norm = norm.sqrt();
            if rel < self.tol {
                break;
            }
        }
        fill_estimate(&values, &mask, None, &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::test_support::{heldout_mse, synthetic_low_rank};

    #[test]
    fn recovers_low_rank_accurately() {
        let (truth, wm) = synthetic_low_rank(50, 20, 3, 0.5, 31);
        let mut nuc = NucCompleter::default();
        let pred = nuc.complete(&wm);
        let mse = heldout_mse(&truth, &pred, &wm);
        let scale = truth.as_slice().iter().map(|v| v * v).sum::<f64>() / truth.len() as f64;
        assert!(mse / scale < 0.02, "relative mse {}", mse / scale);
    }

    #[test]
    fn observed_cells_preserved() {
        let (_, wm) = synthetic_low_rank(15, 8, 2, 0.5, 32);
        let mut nuc = NucCompleter::default();
        let pred = nuc.complete(&wm);
        for i in 0..15 {
            for j in 0..8 {
                if let crate::matrix::Cell::Complete(v) = wm.cell(i, j) {
                    assert_eq!(pred[(i, j)], v);
                }
            }
        }
    }

    #[test]
    fn handles_sparse_fill_without_panicking() {
        let (_, wm) = synthetic_low_rank(30, 12, 2, 0.1, 33);
        let mut nuc = NucCompleter { max_iters: 50, ..Default::default() };
        let pred = nuc.complete(&wm);
        assert!(pred.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stronger_shrinkage_lowers_rank() {
        let (_, wm) = synthetic_low_rank(40, 16, 4, 0.6, 34);
        let mut weak = NucCompleter { lambda_rel: 0.001, ..Default::default() };
        let mut strong = NucCompleter { lambda_rel: 0.4, ..Default::default() };
        let rank_of = |m: &Mat| limeqo_linalg::svd_thin(m).unwrap().rank(1e-6);
        let rw = rank_of(&weak.complete(&wm));
        let rs = rank_of(&strong.complete(&wm));
        assert!(rs <= rw, "strong {rs} weak {rw}");
    }
}
