//! The offline exploration harness (paper §3 "offline path" and §4.1).
//!
//! Time accounting follows Eq. 3 + Eq. 5: executing cell (i,j) with timeout
//! τ advances the offline clock by `min(true latency, τ)`; a timed-out cell
//! becomes *censored* at bound τ. The policy's own computation (matrix
//! completion / TCNN training + inference) is metered in wall-clock seconds
//! — that is the "overhead" of Figs. 7 and 13, kept separate from the
//! simulated exploration clock exactly as the paper separates them.
//!
//! The harness also implements the two dynamic events the paper studies:
//!
//! * **workload shift** (§5.3): [`Explorer::add_queries`] appends new rows;
//!   each new query's default plan is executed online (observed, but not
//!   charged to offline time),
//! * **data shift** (§5.4): [`Explorer::data_shift`] swaps the oracle for a
//!   new database state; the plan cache keeps each query's current best
//!   hint, whose latency (plus the default's) is re-observed on the new
//!   data online. What happens to every *other* observation is governed by
//!   [`ExploreConfig::retention`]: the legacy path discards them as stale,
//!   the drift-aware path demotes them to censored priors (see
//!   [`crate::store`]).

use crate::engine::{data_shift_observations, Action, Engine, Event};
use crate::matrix::WorkloadMatrix;
use crate::metrics::{Curve, CurvePoint};
use crate::policy::Policy;
use crate::store::{DriftPolicy, ObservationStore};
use limeqo_linalg::Mat;

/// Source of ground-truth latencies. Implementations: [`MatOracle`]
/// (matrix-backed; `limeqo-sim` produces these from its simulated DBMS).
pub trait Oracle {
    /// (queries, hints) shape.
    fn shape(&self) -> (usize, usize);

    /// True latency of cell (row, col) in seconds.
    fn true_latency(&self, row: usize, col: usize) -> f64;

    /// Optimizer-estimated plan cost per cell, if the DBMS exposes one.
    fn est_cost(&self) -> Option<&Mat> {
        None
    }
}

/// Matrix-backed oracle.
#[derive(Debug, Clone)]
pub struct MatOracle {
    latency: Mat,
    est_cost: Option<Mat>,
}

impl MatOracle {
    /// Create from a true-latency matrix and optional planner costs.
    pub fn new(latency: Mat, est_cost: Option<Mat>) -> Self {
        if let Some(e) = &est_cost {
            assert_eq!(e.shape(), latency.shape(), "est_cost shape mismatch");
        }
        MatOracle { latency, est_cost }
    }

    /// The underlying latency matrix.
    pub fn latency(&self) -> &Mat {
        &self.latency
    }

    /// Per-row optimal hint latency summed — the "Optimal" of Table 1.
    pub fn optimal_total(&self) -> f64 {
        (0..self.latency.rows())
            .map(|i| self.latency.row_min(i).map(|(_, v)| v).unwrap_or(0.0))
            .sum()
    }

    /// Default-hint (column 0) total — the "Default" of Table 1.
    pub fn default_total(&self) -> f64 {
        (0..self.latency.rows()).map(|i| self.latency[(i, 0)]).sum()
    }
}

impl Oracle for MatOracle {
    fn shape(&self) -> (usize, usize) {
        self.latency.shape()
    }

    fn true_latency(&self, row: usize, col: usize) -> f64 {
        self.latency[(row, col)]
    }

    fn est_cost(&self) -> Option<&Mat> {
        self.est_cost.as_ref()
    }
}

/// One offline cell execution, in the order the harness performed it.
/// The full `Vec<TraceEntry>` is a run's *exploration trace*: two runs are
/// behaviourally identical iff their traces are identical, which is what
/// the seed-determinism tests compare byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Query (row) executed.
    pub row: usize,
    /// Hint (column) executed.
    pub col: usize,
    /// Seconds charged to the offline clock: `min(true latency, timeout)`.
    pub charged: f64,
    /// Whether the probe hit its timeout (cell recorded as censored).
    pub censored: bool,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Batch size m: cells executed per exploration step.
    pub batch: usize,
    /// RNG seed for policy randomness.
    pub seed: u64,
    /// Stop after this many steps even if budget remains (safety valve).
    pub max_steps: usize,
    /// What [`Explorer::data_shift`] does with stale observations. Defaults
    /// to [`DriftPolicy::legacy`] (discard) so existing harness users keep
    /// the paper's §5.4 semantics; the scenario runner threads the policy's
    /// own knobs in here.
    pub retention: DriftPolicy,
    /// Shard count for the workload matrix (1 = the unsharded layout).
    /// A pure scale-out knob: every run is bit-identical at any value (the
    /// sharded-equivalence contract — see ARCHITECTURE.md), sharding only
    /// changes which per-shard indexes back the selection and ALS paths.
    pub shards: usize,
    /// Bounded-retry policy for probes that fail at the transport level
    /// ([`Event::ProbeFailed`]). A no-op while no probe ever fails, so the
    /// default changes nothing fault-free.
    pub retry: crate::engine::RetryPolicy,
    /// Probability that the harness *injects* a transport failure for an
    /// issued probe (chaos knob; 0 = off). At 0 the fault RNG is never
    /// drawn, so fault-free runs are bit-identical to builds without the
    /// knob.
    pub probe_fail_rate: f64,
    /// Seed component for the injected-fault stream (kept separate from
    /// `seed` so fault placement can vary against a fixed policy stream).
    pub probe_fail_seed: u64,
}

impl ExploreConfig {
    /// The deterministic RNG stream probe-fault injection draws from —
    /// separate from the policy stream, and derived identically by every
    /// driver (harness and raw-engine) so their trajectories agree.
    pub fn fault_rng(&self) -> limeqo_linalg::rng::SeededRng {
        limeqo_linalg::rng::SeededRng::new(
            self.seed ^ self.probe_fail_seed.rotate_left(17) ^ 0xFA17_1CED,
        )
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            batch: 16,
            seed: 0,
            max_steps: 100_000,
            retention: DriftPolicy::legacy(),
            shards: 1,
            retry: crate::engine::RetryPolicy::default(),
            probe_fail_rate: 0.0,
            probe_fail_seed: 0,
        }
    }
}

/// The exploration harness: drives a [`Policy`] against an [`Oracle`],
/// maintaining the observation store (workload matrix + drift metadata),
/// the simulated offline clock, and the latency-vs-time curve.
///
/// ```
/// use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
/// use limeqo_core::policy::RandomPolicy;
/// use limeqo_linalg::Mat;
///
/// // Two queries × three hints; column 0 is the (slow) default plan.
/// let latency = Mat::from_rows(&[&[10.0, 2.0, 4.0], &[8.0, 6.0, 1.0]]);
/// let oracle = MatOracle::new(latency, None);
/// let mut ex = Explorer::new(&oracle, Box::new(RandomPolicy), ExploreConfig::default(), 2);
/// assert_eq!(ex.workload_latency(), oracle.default_total()); // defaults pre-observed
///
/// ex.run_until(1e9); // explore until nothing is left
/// assert_eq!(ex.workload_latency(), oracle.optimal_total());
/// assert!(ex.time_spent() > 0.0, "offline probes are charged to the clock");
/// ```
///
/// Since the engine refactor this is a thin driver over
/// [`crate::engine::Engine`]: the explorer owns the oracle reference and
/// the latency-vs-time curve (both environmental), feeds the engine
/// `Tick`/`Observation`/`AddQueries`/`DataShift` events in the legacy
/// fixed order, and executes its probe directives against the oracle. The
/// event trajectory is pinned byte-identical to the old in-place loop.
pub struct Explorer<'a> {
    oracle: &'a dyn Oracle,
    /// Number of oracle rows currently active (workload shift exposes the
    /// oracle's rows incrementally).
    active_rows: usize,
    engine: Engine<'a>,
    curve: Curve,
    /// Injected probe-failure probability (chaos knob; 0 = off).
    probe_fail_rate: f64,
    /// Dedicated stream for fault placement; never drawn at rate 0.
    fault_rng: limeqo_linalg::rng::SeededRng,
}

impl<'a> Explorer<'a> {
    /// Start exploration over the first `initial_rows` oracle rows (pass
    /// the full row count for a static workload). The default column is
    /// observed up front, uncharged: repetitive workloads have already run
    /// every query's default plan in production.
    pub fn new(
        oracle: &'a dyn Oracle,
        policy: Box<dyn Policy + 'a>,
        cfg: ExploreConfig,
        initial_rows: usize,
    ) -> Self {
        let (n, k) = oracle.shape();
        assert!(initial_rows >= 1 && initial_rows <= n, "initial rows out of range");
        let defaults: Vec<f64> = (0..initial_rows)
            .map(|i| oracle.true_latency(i, WorkloadMatrix::DEFAULT_HINT))
            .collect();
        let store = ObservationStore::with_defaults_sharded(&defaults, k, cfg.shards);
        let name = policy.name().to_string();
        let probe_fail_rate = cfg.probe_fail_rate;
        let fault_rng = cfg.fault_rng();
        let engine = Engine::offline(store, policy, oracle.est_cost(), &cfg);
        let mut explorer = Explorer {
            oracle,
            active_rows: initial_rows,
            engine,
            curve: Curve::new(name),
            probe_fail_rate,
            fault_rng,
        };
        explorer.record_point();
        explorer
    }

    /// The current partially observed workload matrix (owned by the
    /// observation store).
    pub fn wm(&self) -> &WorkloadMatrix {
        self.engine.wm()
    }

    /// The adaptive observation layer: matrix plus per-row freshness and
    /// prior bookkeeping.
    pub fn store(&self) -> &ObservationStore {
        self.engine.store()
    }

    /// Simulated offline exploration seconds spent (Eq. 3).
    pub fn time_spent(&self) -> f64 {
        self.engine.time_spent()
    }

    /// Wall-clock model overhead seconds (Figs. 7/13).
    pub fn overhead(&self) -> f64 {
        self.engine.overhead()
    }

    /// Cells executed so far (complete + censored executions).
    pub fn cells_executed(&self) -> usize {
        self.engine.cells_executed()
    }

    /// Every offline execution in order — the run's exploration trace.
    pub fn trace(&self) -> &[TraceEntry] {
        self.engine.trace()
    }

    /// The wrapped event-driven engine.
    pub fn engine(&self) -> &Engine<'a> {
        &self.engine
    }

    /// The workload latency metric the paper plots: the *actual* total
    /// latency of the workload when every query runs its currently best
    /// *verified* hint, evaluated against the current oracle. Before any
    /// data shift this equals `P(W̃)` (Eq. 2) exactly; after a shift,
    /// cached selections are re-priced on the new data (stale choices cost
    /// their new true latency), which is what Fig. 11 measures.
    pub fn workload_latency(&self) -> f64 {
        let wm = self.engine.wm();
        (0..wm.n_rows())
            .filter_map(|i| wm.row_best(i).map(|(col, _)| self.oracle.true_latency(i, col)))
            .sum()
    }

    /// One exploration step: a `Tick` event asks the policy for a batch
    /// (overhead-metered inside the engine), each probe directive is
    /// executed against the oracle and fed back as an `Observation`
    /// (charged to the simulated clock), then a curve point is recorded.
    /// Returns `false` when the policy has nothing left to explore.
    pub fn step(&mut self) -> bool {
        // Note: a matrix with no unobserved cells can still be worth
        // exploring — censored cells may hide better plans behind grown
        // timeouts (Algorithm 1 keeps re-probing them). The policy signals
        // completion by returning an empty selection.
        let actions = self.engine.step(Event::Tick);
        if actions.is_empty() {
            // Probes may still be waiting out a retry backoff: idle-tick
            // through the (bounded) horizon rather than declaring the run
            // complete. `max_steps` remains the safety valve.
            return self.engine.retry_pending() > 0;
        }
        for action in actions {
            let Action::Probe { row, col, timeout } = action else { continue };
            debug_assert!(row < self.active_rows);
            // Chaos knob: fail this probe at the transport level instead
            // of executing it. The rate-0 guard keeps the fault stream
            // un-drawn on fault-free runs (bit-identical goldens).
            if self.probe_fail_rate > 0.0 && self.fault_rng.chance(self.probe_fail_rate) {
                self.engine.step(Event::ProbeFailed { row, col });
                continue;
            }
            let truth = self.oracle.true_latency(row, col);
            let censored = truth > timeout;
            // Timed out: charge the timeout, learn the lower bound.
            let value = if censored { timeout } else { truth };
            self.engine.step(Event::Observation { row, col, value, censored });
        }
        self.record_point();
        true
    }

    /// Explore until the simulated offline clock reaches `time_budget`
    /// seconds (or nothing is left / `max_steps` hit).
    pub fn run_until(&mut self, time_budget: f64) {
        self.engine.scheduler_mut().start_run();
        while self.engine.admit_round(time_budget) {
            if !self.step() {
                break;
            }
        }
    }

    /// Workload shift (§5.3): activate `count` more oracle rows. Each new
    /// query's default plan is observed online (uncharged).
    pub fn add_queries(&mut self, count: usize) {
        let (n, _) = self.oracle.shape();
        let new_active = (self.active_rows + count).min(n);
        let defaults: Vec<f64> = (self.active_rows..new_active)
            .map(|i| self.oracle.true_latency(i, WorkloadMatrix::DEFAULT_HINT))
            .collect();
        self.engine.step(Event::AddQueries { defaults });
        self.active_rows = new_active;
        self.record_point();
    }

    /// Data shift (§5.4): swap in a new oracle (same shape). The plan
    /// cache keeps each row's current best hint; that hint and the default
    /// are re-observed online against the new data. Every other cell's
    /// fate follows [`ExploreConfig::retention`]:
    ///
    /// * **legacy** (`retain_priors` off): reset to unobserved — stale
    ///   measurements are discarded, the paper's behavior;
    /// * **drift-aware** (`retain_priors` on): demoted to censored priors
    ///   at `prior_decay ×` their stale value, keeping the low-rank
    ///   structure as soft lower-bound anchors for the censored completer
    ///   (see [`ObservationStore::demote_to_priors`]).
    pub fn data_shift(&mut self, new_oracle: &'a dyn Oracle) {
        assert_eq!(
            new_oracle.shape().1,
            self.oracle.shape().1,
            "hint space must be unchanged across a data shift"
        );
        let wm = self.engine.wm();
        let n = wm.n_rows().min(new_oracle.shape().0);
        // Measure the online re-observations (default + cached best per
        // row, legacy order) against the new data before the store moves.
        let observations = data_shift_observations(wm, self.engine.retention(), n, |r, c| {
            new_oracle.true_latency(r, c)
        });
        self.oracle = new_oracle;
        self.engine.set_est_cost(new_oracle.est_cost());
        self.engine.step(Event::DataShift { new_rows: n, observations });
        self.active_rows = n;
        self.record_point();
    }

    /// The recorded latency-vs-exploration-time curve.
    pub fn curve(&self) -> &Curve {
        &self.curve
    }

    /// Consume the explorer, returning its curve.
    pub fn into_curve(self) -> Curve {
        self.curve
    }

    fn record_point(&mut self) {
        let point = CurvePoint {
            time: self.engine.time_spent(),
            latency: self.workload_latency(),
            overhead: self.engine.overhead(),
            explored: self.engine.cells_executed(),
            censored: self.engine.wm().censored_count(),
        };
        self.curve.push(point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyPolicy, LimeQoPolicy, RandomPolicy};
    use limeqo_linalg::rng::SeededRng;

    /// A small synthetic oracle: low-rank latencies, default column worst.
    fn toy_oracle(n: usize, k: usize, seed: u64) -> MatOracle {
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_mat(n, 3, 0.5, 2.0);
        let h = rng.uniform_mat(k, 3, 0.2, 1.5);
        let mut lat = q.matmul_t(&h).unwrap();
        // Make column 0 the default and generally slow.
        for i in 0..n {
            lat[(i, 0)] = lat[(i, 0)] * 3.0 + 1.0;
        }
        MatOracle::new(lat, None)
    }

    #[test]
    fn defaults_observed_at_start_uncharged() {
        let oracle = toy_oracle(10, 6, 40);
        let ex = Explorer::new(&oracle, Box::new(RandomPolicy), ExploreConfig::default(), 10);
        assert_eq!(ex.time_spent(), 0.0);
        assert_eq!(ex.wm().complete_count(), 10);
        assert!((ex.workload_latency() - oracle.default_total()).abs() < 1e-9);
    }

    #[test]
    fn latency_never_regresses_without_shift() {
        // The no-regressions guarantee: P is monotone non-increasing.
        let oracle = toy_oracle(15, 8, 41);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 4, seed: 1, ..Default::default() },
            15,
        );
        ex.run_until(1e9);
        let lats: Vec<f64> = ex.curve().points.iter().map(|p| p.latency).collect();
        for w in lats.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "latency regressed: {w:?}");
        }
    }

    #[test]
    fn full_exploration_reaches_optimal() {
        let oracle = toy_oracle(12, 5, 42);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 8, seed: 2, ..Default::default() },
            12,
        );
        ex.run_until(1e9);
        // With row-best timeouts, every cell is either completed or
        // censored above the row optimum — so P must reach the oracle
        // optimum.
        assert!(
            (ex.workload_latency() - oracle.optimal_total()).abs() < 1e-9,
            "got {} want {}",
            ex.workload_latency(),
            oracle.optimal_total()
        );
    }

    #[test]
    fn time_charged_is_bounded_by_timeout() {
        let oracle = toy_oracle(10, 6, 43);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(GreedyPolicy),
            ExploreConfig { batch: 2, seed: 3, ..Default::default() },
            10,
        );
        // Upper bound: every executed cell costs at most its row default.
        ex.run_until(5.0);
        let max_cell: f64 = (0..10).map(|i| oracle.true_latency(i, 0)).fold(0.0, f64::max);
        assert!(ex.time_spent() <= 5.0 + 2.0 * max_cell, "overshoot too large");
    }

    #[test]
    fn timeouts_produce_censored_cells() {
        let oracle = toy_oracle(20, 8, 44);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 8, seed: 4, ..Default::default() },
            20,
        );
        ex.run_until(1e9);
        // Plans slower than the row best must have been censored.
        assert!(ex.wm().censored_count() > 0, "expected some censored cells");
    }

    #[test]
    fn limeqo_policy_runs_and_converges() {
        let oracle = toy_oracle(20, 8, 45);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(LimeQoPolicy::with_als(5)),
            ExploreConfig { batch: 4, seed: 5, ..Default::default() },
            20,
        );
        ex.run_until(1e9);
        assert!(ex.workload_latency() <= oracle.default_total());
        assert!(ex.overhead() > 0.0, "ALS overhead must be metered");
    }

    #[test]
    fn add_queries_appends_rows_with_defaults() {
        let oracle = toy_oracle(10, 6, 46);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 2, seed: 6, ..Default::default() },
            7,
        );
        let before = ex.workload_latency();
        ex.add_queries(3);
        assert_eq!(ex.wm().n_rows(), 10);
        assert!(ex.workload_latency() > before, "new defaults add latency");
        assert_eq!(ex.time_spent(), 0.0, "online defaults are not charged");
    }

    #[test]
    fn data_shift_keeps_best_hint_and_resets_rest() {
        let oracle_a = toy_oracle(10, 6, 47);
        let oracle_b = toy_oracle(10, 6, 48);
        let mut ex = Explorer::new(
            &oracle_a,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 8, seed: 7, ..Default::default() },
            10,
        );
        ex.run_until(1e9);
        let best_before: Vec<Option<usize>> =
            (0..10).map(|i| ex.wm().row_best(i).map(|(c, _)| c)).collect();
        ex.data_shift(&oracle_b);
        // Matrix now holds ≤ 2 completes per row (default + cached best).
        for i in 0..10 {
            let completes = (0..6)
                .filter(|&c| matches!(ex.wm().cell(i, c), crate::matrix::Cell::Complete(_)))
                .count();
            assert!(completes <= 2, "row {i} kept {completes} cells");
            // Cached best hint present with new-data value.
            if let Some(Some(b)) = best_before.get(i) {
                if let crate::matrix::Cell::Complete(v) = ex.wm().cell(i, *b) {
                    assert_eq!(v, oracle_b.true_latency(i, *b));
                }
            }
        }
        // Workload latency is priced on the new oracle.
        let p: f64 = ex.workload_latency();
        assert!(p > 0.0);
    }

    #[test]
    fn data_shift_with_retention_demotes_to_priors() {
        use crate::store::{DriftPolicy, PriorKind};
        let oracle_a = toy_oracle(10, 6, 50);
        let oracle_b = toy_oracle(10, 6, 51);
        let retention = DriftPolicy { prior_decay: 0.5, ..DriftPolicy::default() };
        let mut ex = Explorer::new(
            &oracle_a,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 8, seed: 9, retention, ..Default::default() },
            10,
        );
        ex.run_until(1e9);
        let wm_before = ex.wm().clone();
        let completes_before: Vec<(usize, usize, f64)> = (0..10)
            .flat_map(|i| {
                let wm = &wm_before;
                (0..6).filter_map(move |c| match wm.cell(i, c) {
                    crate::matrix::Cell::Complete(v) => Some((i, c, v)),
                    _ => None,
                })
            })
            .collect();
        let best_before: Vec<Option<usize>> =
            (0..10).map(|i| wm_before.row_best(i).map(|(c, _)| c)).collect();
        ex.data_shift(&oracle_b);
        assert_eq!(ex.store().epoch(), 1);
        assert!(ex.store().prior_count() > 0, "stale observations must survive as priors");
        for (i, c, v) in completes_before {
            let freshly_reobserved =
                c == 0 || best_before[i] == Some(c) && c != WorkloadMatrix::DEFAULT_HINT;
            if freshly_reobserved {
                continue;
            }
            // Demoted: censored prior at the documented decay weight.
            assert_eq!(
                ex.wm().cell(i, c),
                crate::matrix::Cell::Censored(0.5 * v),
                "cell ({i},{c}) not demoted at prior_decay x stale value"
            );
            assert_eq!(ex.store().prior_kind(i, c), PriorKind::Value);
            assert_eq!(ex.store().prior_weight(i, c), 0.5);
        }
        // The online path still re-observes default + cached best fresh.
        for i in 0..10 {
            assert_eq!(
                ex.wm().cell(i, 0),
                crate::matrix::Cell::Complete(oracle_b.true_latency(i, 0))
            );
        }
    }

    #[test]
    fn shard_count_never_moves_a_run() {
        // The sharded-equivalence contract at the harness level: identical
        // trace (cells, charges, censor flags), clock, and curve at every
        // shard count, for a policy that exercises completion + selection.
        let oracle = toy_oracle(24, 7, 60);
        let run = |shards: usize| {
            let mut ex = Explorer::new(
                &oracle,
                Box::new(LimeQoPolicy::with_als(3)),
                ExploreConfig { batch: 4, seed: 11, shards, ..Default::default() },
                24,
            );
            ex.run_until(1e9);
            let trace: Vec<(usize, usize, u64, bool)> = ex
                .trace()
                .iter()
                .map(|t| (t.row, t.col, t.charged.to_bits(), t.censored))
                .collect();
            let curve: Vec<(u64, u64)> =
                ex.curve().points.iter().map(|p| (p.time.to_bits(), p.latency.to_bits())).collect();
            (trace, ex.time_spent().to_bits(), ex.cells_executed(), curve)
        };
        let reference = run(1);
        for shards in [2usize, 8] {
            assert_eq!(run(shards), reference, "shards={shards} diverged from unsharded run");
        }
    }

    #[test]
    fn fault_free_runs_ignore_the_retry_knobs() {
        // Bit-identity discipline for the fault axis: with no injected
        // failures the retry machinery must be fully inert — no RNG
        // draws, no action reordering — whatever the retry policy says.
        // This is what keeps every pre-fault golden in place.
        let oracle = toy_oracle(24, 7, 60);
        let run = |retry: crate::engine::RetryPolicy, probe_fail_seed: u64| {
            let cfg =
                ExploreConfig { batch: 4, seed: 11, retry, probe_fail_seed, ..Default::default() };
            let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(3)), cfg, 24);
            ex.run_until(1e9);
            let trace: Vec<(usize, usize, u64, bool)> = ex
                .trace()
                .iter()
                .map(|t| (t.row, t.col, t.charged.to_bits(), t.censored))
                .collect();
            (trace, ex.time_spent().to_bits(), ex.cells_executed())
        };
        let reference = run(crate::engine::RetryPolicy::default(), 0);
        // Different retry budget, different backoff, different fault seed
        // (rate stays 0): all bit-identical.
        let knobs = crate::engine::RetryPolicy { max_retries: 9, backoff_base: 7 };
        assert_eq!(run(knobs, 0xDEAD_BEEF), reference);
    }

    #[test]
    fn injected_probe_failures_still_converge() {
        // Chaos at the transport level: a double-digit failure rate slows
        // exploration (retries burn ticks) but must neither panic nor
        // wedge the run — and the same (seed, fault seed) pair replays
        // the exact same degraded trajectory.
        let oracle = toy_oracle(24, 7, 60);
        let run = || {
            let cfg = ExploreConfig {
                batch: 4,
                seed: 11,
                probe_fail_rate: 0.2,
                probe_fail_seed: 5,
                ..Default::default()
            };
            let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(3)), cfg, 24);
            ex.run_until(1e9);
            let trace: Vec<(usize, usize, u64, bool)> = ex
                .trace()
                .iter()
                .map(|t| (t.row, t.col, t.charged.to_bits(), t.censored))
                .collect();
            (trace, ex.engine().probe_failures(), ex.engine().probe_retries())
        };
        let (trace, failures, retries) = run();
        assert!(failures > 0, "a 20% rate over a full run must fire");
        assert!(retries > 0, "failed probes must be re-issued");
        assert!(!trace.is_empty(), "the run still explores");
        assert_eq!(run(), (trace, failures, retries), "fault injection must be replayable");
    }

    #[test]
    fn curve_records_monotone_time() {
        let oracle = toy_oracle(10, 6, 49);
        let mut ex = Explorer::new(
            &oracle,
            Box::new(RandomPolicy),
            ExploreConfig { batch: 3, seed: 8, ..Default::default() },
            10,
        );
        ex.run_until(2.0);
        let times: Vec<f64> = ex.curve().points.iter().map(|p| p.time).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
