//! Latency-vs-exploration-time curves and figure-level summaries.
//!
//! Every exploration run produces a [`Curve`]; the figure harness samples
//! curves at the paper's budget multiples (Fig. 5's
//! `[1/4, 1/2, 1, 2, 4] × default workload time`), averages across seeds,
//! and reports standard deviations — matching "each technique's
//! experiments were repeated five times, and we report the average runtime
//! along with the standard deviation".

/// One sample of an exploration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Simulated offline exploration seconds spent so far (Eq. 3).
    pub time: f64,
    /// Workload latency under currently best verified hints (Eq. 2).
    pub latency: f64,
    /// Cumulative wall-clock model overhead in seconds.
    pub overhead: f64,
    /// Cells executed so far.
    pub explored: usize,
    /// Censored cells currently in the matrix.
    pub censored: usize,
}

/// A full exploration trajectory.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Technique name (figure legend).
    pub name: String,
    /// Trajectory samples in time order.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Empty curve for a named technique.
    pub fn new(name: impl Into<String>) -> Self {
        Curve { name: name.into(), points: Vec::new() }
    }

    /// Append a sample (times must be non-decreasing).
    pub fn push(&mut self, p: CurvePoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(p.time >= last.time, "curve time must be monotone");
        }
        self.points.push(p);
    }

    /// Workload latency after `time` seconds of exploration: the last
    /// sample at or before `time` (step interpolation — improvements only
    /// land once verified). Falls back to the first sample.
    pub fn latency_at(&self, time: f64) -> f64 {
        let mut value = self.points.first().map(|p| p.latency).unwrap_or(f64::NAN);
        for p in &self.points {
            if p.time <= time {
                value = p.latency;
            } else {
                break;
            }
        }
        value
    }

    /// Cumulative overhead after `time` exploration seconds.
    pub fn overhead_at(&self, time: f64) -> f64 {
        let mut value = 0.0;
        for p in &self.points {
            if p.time <= time {
                value = p.overhead;
            } else {
                break;
            }
        }
        value
    }

    /// Cells explored after `time` exploration seconds.
    pub fn explored_at(&self, time: f64) -> usize {
        let mut value = 0;
        for p in &self.points {
            if p.time <= time {
                value = p.explored;
            } else {
                break;
            }
        }
        value
    }

    /// Final latency reached.
    pub fn final_latency(&self) -> f64 {
        self.points.last().map(|p| p.latency).unwrap_or(f64::NAN)
    }

    /// Total exploration time consumed.
    pub fn total_time(&self) -> f64 {
        self.points.last().map(|p| p.time).unwrap_or(0.0)
    }
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Sample several same-technique curves (different seeds) at fixed times,
/// returning `(mean, std)` latency per time.
pub fn aggregate_at(curves: &[Curve], times: &[f64]) -> Vec<(f64, f64)> {
    times
        .iter()
        .map(|&t| {
            let vals: Vec<f64> = curves.iter().map(|c| c.latency_at(t)).collect();
            mean_std(&vals)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Curve {
        let mut c = Curve::new("t");
        for (t, l) in [(0.0, 10.0), (1.0, 8.0), (2.0, 5.0), (4.0, 4.0)] {
            c.push(CurvePoint {
                time: t,
                latency: l,
                overhead: t * 0.1,
                explored: t as usize,
                censored: 0,
            });
        }
        c
    }

    #[test]
    fn latency_at_step_interpolates() {
        let c = curve();
        assert_eq!(c.latency_at(0.0), 10.0);
        assert_eq!(c.latency_at(0.5), 10.0);
        assert_eq!(c.latency_at(1.0), 8.0);
        assert_eq!(c.latency_at(3.9), 5.0);
        assert_eq!(c.latency_at(100.0), 4.0);
    }

    #[test]
    fn overhead_and_explored_at() {
        let c = curve();
        assert!((c.overhead_at(2.5) - 0.2).abs() < 1e-12);
        assert_eq!(c.explored_at(2.5), 2);
    }

    #[test]
    fn mean_std_hand_computed() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 2.0_f64.sqrt()).abs() < 1e-12);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }

    #[test]
    fn aggregate_across_curves() {
        let a = curve();
        let mut b = curve();
        b.points.iter_mut().for_each(|p| p.latency += 2.0);
        let agg = aggregate_at(&[a, b], &[2.0]);
        assert!((agg[0].0 - 6.0).abs() < 1e-12);
        assert!((agg[0].1 - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn final_latency_and_total_time() {
        let c = curve();
        assert_eq!(c.final_latency(), 4.0);
        assert_eq!(c.total_time(), 4.0);
    }
}
