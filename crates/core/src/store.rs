//! The adaptive observation layer: a [`WorkloadMatrix`] wrapped with
//! drift-aware bookkeeping.
//!
//! The paper's Eq. 6 ratio ranking assumes a reasonably dense observation
//! matrix. After a §5.4 data shift the original harness discarded every
//! stale observation, leaving ~2 completed cells per row — the ALS fit goes
//! underdetermined and LimeQO probes *worse than Random* (the `data-shift`
//! scenario pinned this gap at 95.4 s vs 75.5 s). Learning-to-rank hint
//! steerers (Lero, COOOL) keep and re-weight stale pairwise evidence across
//! plan-space change instead of restarting cold; the same idea maps onto
//! LimeQO's censored-matrix formulation, because the matrix already has a
//! first-class notion of "partial knowledge": the censored cell.
//!
//! [`ObservationStore`] therefore supports **demoting** stale completed
//! observations to *censored priors* on a drift event: a stale value `v`
//! becomes a censored cell at bound `decay · v` — a soft lower-bound
//! anchor the censored ALS clamp can lean on, with confidence that decays
//! geometrically across repeated shifts (`decay² · v` after two shifts, and
//! so on). Fresh probes replace priors outright. The store also maintains
//! per-row counts of *fresh* completed observations in O(1), which feed the
//! [`DriftPolicy::density_gate`] (force uniform fill-in until a shifted
//! row's observed density recovers) and the cold-row exploration bonus
//! (`bonus / √(row observation count)` added to the Eq. 6 score).

use std::collections::HashMap;
use std::fmt;

use crate::matrix::{Cell, WorkloadMatrix};

/// A poisoned measurement rejected at the observation layer.
///
/// NaN or infinite latencies must never reach the workload matrix: the
/// ALS normal equations average observed entries, so a single NaN cell
/// poisons the shared factors and every prediction derived from them —
/// silently, rounds after the bad insert. The typed rejection pins the
/// blast radius to the one probe that produced the garbage (the engine
/// turns it into a probe failure and retries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObservationError {
    /// The measured latency was NaN or ±∞ (carries the exact bit
    /// pattern, since NaN payloads do not survive `{:?}` formatting).
    NotFinite {
        /// Query row of the rejected probe.
        row: usize,
        /// Hint column of the rejected probe.
        col: usize,
        /// `f64::to_bits` of the offending value.
        bits: u64,
    },
    /// The measured latency was negative — a broken transport, not a
    /// measurement.
    Negative {
        /// Query row of the rejected probe.
        row: usize,
        /// Hint column of the rejected probe.
        col: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ObservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObservationError::NotFinite { row, col, bits } => write!(
                f,
                "observation ({row},{col}): non-finite latency (bits {bits:016x}) rejected"
            ),
            ObservationError::Negative { row, col, value } => {
                write!(f, "observation ({row},{col}): negative latency {value} rejected")
            }
        }
    }
}

impl std::error::Error for ObservationError {}

fn check_latency(row: usize, col: usize, v: f64) -> Result<(), ObservationError> {
    if !v.is_finite() {
        return Err(ObservationError::NotFinite { row, col, bits: v.to_bits() });
    }
    if v < 0.0 {
        return Err(ObservationError::Negative { row, col, value: v });
    }
    Ok(())
}

/// Drift-adaptation knobs, threaded from `PolicySpec` through the scenario
/// runner into the harness and Algorithm 1.
///
/// [`DriftPolicy::default`] is the drift-aware configuration; use
/// [`DriftPolicy::legacy`] for the pre-retention behavior (discard stale
/// observations, no gate, no bonus, cold ALS init every round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// On a data shift, keep stale completed observations as censored
    /// priors instead of discarding them.
    pub retain_priors: bool,
    /// Confidence multiplier applied to a stale value when it is demoted
    /// (and re-applied on every later shift it survives). A stale latency
    /// `v` becomes the censored bound `prior_decay · v`: the claim "the new
    /// latency is probably at least this much" weakens geometrically as the
    /// data keeps drifting.
    pub prior_decay: f64,
    /// Minimum fraction of a row's cells that must be *freshly* completed
    /// (observed against the current data) before Algorithm 1 trusts the
    /// Eq. 6 ranking for shifted rows; below it, the policy falls back to
    /// uniform fill-in on the starved rows. Only active after a shift
    /// (epoch ≥ 1) — the initial defaults-only matrix is the paper's
    /// intended starting state, not a starved one.
    pub density_gate: f64,
    /// Weight of the cold-row exploration bonus added to the Eq. 6 score:
    /// `score += cold_row_bonus / √(row observed count)`. Zero disables it.
    pub cold_row_bonus: f64,
    /// Warm-start ALS factors across exploration rounds instead of
    /// re-initializing randomly on every `complete()` call. Off by
    /// default: warm-started factors keep their early low-biased
    /// predictions, which tightens Algorithm 1's α-clamped timeouts and
    /// inflates censoring on drift-free workloads (measured on the
    /// scenario matrix); it earns its keep in post-shift recovery, where
    /// the retained hint-side structure matters more than init diversity.
    pub warm_start: bool,
    /// On a data shift with retention, also re-measure each row's best
    /// *surviving* stale completed plan (the strongest value-prior after
    /// the cached best) on the online path, so it re-enters the matrix as
    /// a fresh observation instead of waiting for offline re-probing. Off
    /// by default: measured on the 16-seed `data-shift-retained` mean it
    /// helps, but not enough to pay (see ROADMAP) — final latency improves
    /// only 0.06 %, closing ~4 % of the residual vs Random, while every
    /// shift now costs one extra online re-measurement per row.
    pub reverify_runner_up: bool,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            retain_priors: true,
            prior_decay: 0.5,
            density_gate: 0.12,
            cold_row_bonus: 0.0,
            warm_start: false,
            reverify_runner_up: false,
        }
    }
}

impl DriftPolicy {
    /// The pre-retention behavior: discard stale observations on a shift,
    /// no density gate, no cold-row bonus, cold ALS initialization.
    pub fn legacy() -> Self {
        DriftPolicy {
            retain_priors: false,
            prior_decay: 0.0,
            density_gate: 0.0,
            cold_row_bonus: 0.0,
            warm_start: false,
            reverify_runner_up: false,
        }
    }
}

/// What a demoted prior was demoted *from* — the distinction decides
/// whether the cell is worth re-verifying after a shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorKind {
    /// Not a prior: a fresh observation or an unobserved cell.
    None,
    /// Demoted from a completed measurement: the plan actually ran this
    /// fast before the shift, so re-verifying it is a promising probe.
    Value,
    /// Demoted from a censored bound: the plan already timed out on the
    /// old data — a known loser, not a recovery candidate.
    Bound,
}

/// A [`WorkloadMatrix`] plus the drift-aware bookkeeping the adaptive
/// observation layer needs: which censored cells are demoted priors (their
/// provenance and confidence weight), how many *fresh* completed
/// observations each row has, and how many data-shift epochs the store has
/// lived through.
#[derive(Debug, Clone)]
pub struct ObservationStore {
    wm: WorkloadMatrix,
    /// Sparse prior bookkeeping: `(row, col) → (weight, kind)` for demoted
    /// priors only. The invariant is `weight > 0.0 ∧ kind ≠ None` for every
    /// entry — fresh observations and unobserved cells are simply absent.
    /// (Dense parallel vectors cost `n·k` floats — ~400 MB at the 1M-row
    /// tier — for a set that demotion bounds by the *observed* cell count.)
    priors: HashMap<(u32, u32), (f64, PriorKind)>,
    /// Per-row count of completed cells observed against the *current*
    /// data (priors never count).
    fresh_complete: Vec<u32>,
    /// Number of data-shift demotions this store has lived through.
    epoch: u32,
    /// Monotone mutation counter; never reset, survives matrix rebuilds.
    rev: u64,
    /// Per-row revision: the value of `rev` when the row's observation set
    /// last changed. Incremental consumers (the Eq. 6 re-ranking) compare
    /// it with their cached value to skip untouched rows.
    row_rev: Vec<u64>,
    /// Global completion epoch: bumps whenever a *completed* value lands
    /// or the matrix is rebuilt (demotion/discard) — i.e. whenever the ALS
    /// input set changes in a way that moves *every* row's Eq. 6 score,
    /// not just the probed row's. The incremental re-ranking invalidates
    /// its whole cache on this counter (a censored-only round leaves it
    /// unchanged, so those rounds still reuse cached scores).
    completion_epoch: u64,
}

impl ObservationStore {
    /// Wrap an existing matrix; every completed cell counts as fresh.
    pub fn new(wm: WorkloadMatrix) -> Self {
        let n = wm.n_rows();
        let mut fresh = vec![0u32; n];
        for (row, fresh_count) in fresh.iter_mut().enumerate() {
            for &col in wm.observed_cols(row) {
                if matches!(wm.cell(row, col as usize), Cell::Complete(_)) {
                    *fresh_count += 1;
                }
            }
        }
        ObservationStore {
            priors: HashMap::new(),
            fresh_complete: fresh,
            epoch: 0,
            rev: 0,
            row_rev: vec![0; n],
            completion_epoch: 0,
            wm,
        }
    }

    /// A store over a matrix with only the default column observed — the
    /// paper's starting condition.
    pub fn with_defaults(defaults: &[f64], k: usize) -> Self {
        Self::new(WorkloadMatrix::with_defaults(defaults, k))
    }

    /// [`ObservationStore::with_defaults`] over a sharded matrix layout.
    pub fn with_defaults_sharded(defaults: &[f64], k: usize, shards: usize) -> Self {
        Self::new(WorkloadMatrix::with_defaults_sharded(defaults, k, shards))
    }

    /// The wrapped partially observed matrix.
    pub fn matrix(&self) -> &WorkloadMatrix {
        &self.wm
    }

    /// Number of data-shift demotions applied so far.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Global completion epoch: the number of times the observation set
    /// feeding the ALS fit has changed (a completed probe, a censored
    /// probe — censored bounds clamp the censored fit — a demotion, a
    /// discard). Row appends leave it untouched. The incremental Eq. 6
    /// re-ranking keys its whole cache on this: any landed observation
    /// moves the shared factor model, which moves every row's predicted
    /// minimum, not just the probed row's. Keying on `row_rev` alone was
    /// the incremental-tunnel bug — a cached `None` locked an untouched
    /// row out of the candidate set for good.
    pub fn completion_epoch(&self) -> u64 {
        self.completion_epoch
    }

    /// Revision of `row`'s observation set: a monotone stamp that changes
    /// whenever the row is probed, demoted, or discarded (never reset,
    /// even when a drift event rebuilds the whole matrix). The incremental
    /// Eq. 6 re-ranking caches per-row scores keyed on this value.
    pub fn row_rev(&self, row: usize) -> u64 {
        self.row_rev[row]
    }

    fn bump_row(&mut self, row: usize) {
        self.rev += 1;
        self.row_rev[row] = self.rev;
    }

    fn bump_all(&mut self) {
        self.rev += 1;
        let rev = self.rev;
        self.row_rev.iter_mut().for_each(|r| *r = rev);
    }

    /// [`ObservationStore::record_complete`] with the poisoned-value
    /// guard: a NaN, infinite, or negative latency is rejected with a
    /// typed error and the matrix is left untouched.
    pub fn try_record_complete(
        &mut self,
        row: usize,
        col: usize,
        latency: f64,
    ) -> Result<(), ObservationError> {
        check_latency(row, col, latency)?;
        self.record_complete(row, col, latency);
        Ok(())
    }

    /// [`ObservationStore::record_censored`] with the poisoned-value
    /// guard of [`ObservationStore::try_record_complete`].
    pub fn try_record_censored(
        &mut self,
        row: usize,
        col: usize,
        bound: f64,
    ) -> Result<(), ObservationError> {
        check_latency(row, col, bound)?;
        self.record_censored(row, col, bound);
        Ok(())
    }

    /// Record a completed execution: the cell becomes a fresh observation
    /// (clearing any prior flag) and the row's fresh count grows.
    pub fn record_complete(&mut self, row: usize, col: usize, latency: f64) {
        if !matches!(self.wm.cell(row, col), Cell::Complete(_)) {
            self.fresh_complete[row] += 1;
        }
        self.wm.set_complete(row, col, latency);
        self.priors.remove(&(row as u32, col as u32));
        self.completion_epoch += 1;
        self.bump_row(row);
    }

    /// Record a timed-out execution. A probe that tightens the bound
    /// supersedes a prior: the cell's bound updates per
    /// [`WorkloadMatrix::set_censored`] and the prior flag is cleared
    /// (the bound is now measured, not remembered). A probe that timed
    /// out *below* a remembered prior bound leaves the prior flagged —
    /// the surviving larger bound is still unverified hearsay.
    pub fn record_censored(&mut self, row: usize, col: usize, bound: f64) {
        let superseded = match self.wm.cell(row, col) {
            Cell::Censored(old) => bound >= old,
            _ => true,
        };
        self.wm.set_censored(row, col, bound);
        if superseded {
            self.priors.remove(&(row as u32, col as u32));
        }
        self.completion_epoch += 1;
        self.bump_row(row);
    }

    /// Append `count` unobserved rows (workload shift, §5.3).
    pub fn add_rows(&mut self, count: usize) {
        self.wm.add_rows(count);
        self.fresh_complete.extend(std::iter::repeat(0).take(count));
        self.rev += 1;
        self.row_rev.extend(std::iter::repeat(self.rev).take(count));
    }

    /// Count of fresh (current-epoch) completed cells in `row`.
    pub fn fresh_complete_count(&self, row: usize) -> u32 {
        self.fresh_complete[row]
    }

    /// Fraction of `row`'s cells that are freshly completed.
    pub fn row_density(&self, row: usize) -> f64 {
        self.fresh_complete[row] as f64 / self.wm.n_cols() as f64
    }

    /// Whether the cell holds a demoted prior rather than a measurement.
    pub fn is_prior(&self, row: usize, col: usize) -> bool {
        self.priors.contains_key(&(row as u32, col as u32))
    }

    /// The cell's prior provenance ([`PriorKind::None`] for fresh cells).
    pub fn prior_kind(&self, row: usize, col: usize) -> PriorKind {
        self.priors.get(&(row as u32, col as u32)).map_or(PriorKind::None, |&(_, k)| k)
    }

    /// The cell's cumulative prior confidence weight (0 for fresh cells).
    pub fn prior_weight(&self, row: usize, col: usize) -> f64 {
        self.priors.get(&(row as u32, col as u32)).map_or(0.0, |&(w, _)| w)
    }

    /// Count of demoted-prior cells currently in the matrix (O(1)).
    pub fn prior_count(&self) -> usize {
        self.priors.len()
    }

    /// Apply a data shift (§5.4) to the store — the drift-aware
    /// alternative to rebuilding the matrix from scratch.
    ///
    /// Every cell is demoted in place:
    ///
    /// * `Complete(v)` → `Censored(decay_now · v)` — a stale measurement
    ///   becomes a censored prior at the decayed confidence weight,
    /// * `Censored(b)` → `Censored(decay_now · b)` — a stale bound weakens
    ///   the same way (surviving priors compound: `decay²·v` after two
    ///   shifts),
    /// * `Unobserved` stays unobserved,
    ///
    /// and every row's fresh count resets to zero. The caller then
    /// re-observes whatever the online path measures for free on the new
    /// data (the default plan and the cached best hint) via
    /// [`ObservationStore::record_complete`].
    ///
    /// `decay` must lie in (0, 1]: the demoted bound must not exceed the
    /// stale value, otherwise the prior would overclaim on the new data.
    pub fn demote_to_priors(&mut self, decay: f64) {
        assert!(decay > 0.0 && decay <= 1.0, "prior decay must be in (0, 1]");
        let n = self.wm.n_rows();
        // Same shape *and* shard layout: drift must not repartition.
        let mut demoted = self.wm.empty_like();
        // Walk only the observed cells via the compact index — a demotion
        // sweep is O(observed), not O(n·k), which matters when a nightly
        // statistics refresh demotes a 100k-row matrix at once.
        for row in 0..n {
            for &col32 in self.wm.observed_cols(row) {
                let col = col32 as usize;
                let key = (row as u32, col32);
                match self.wm.cell(row, col) {
                    Cell::Unobserved => unreachable!("indexed cell is observed"),
                    Cell::Complete(v) => {
                        demoted.set_censored(row, col, decay * v);
                        self.priors.insert(key, (decay, PriorKind::Value));
                    }
                    Cell::Censored(b) => {
                        demoted.set_censored(row, col, decay * b);
                        // A surviving prior compounds; a stale measured
                        // bound starts its prior life at `decay`. Value
                        // provenance survives repeated shifts.
                        let entry = self.priors.entry(key).or_insert((1.0, PriorKind::Bound));
                        entry.0 *= decay;
                    }
                }
            }
        }
        self.wm = demoted;
        self.fresh_complete.iter_mut().for_each(|c| *c = 0);
        self.epoch += 1;
        self.completion_epoch += 1;
        self.bump_all();
    }

    /// Discard everything (the legacy data-shift path): the matrix resets
    /// to all-unobserved at the same shape and the epoch still advances,
    /// so the density gate sees the rebuild either way.
    pub fn discard_all(&mut self) {
        let n = self.wm.n_rows();
        self.discard_resized(n);
    }

    /// Like [`ObservationStore::discard_all`], but the rebuilt matrix has
    /// `n` rows (a data shift whose new oracle exposes fewer queries).
    /// The epoch advances here too — a post-shift matrix is a starved one
    /// regardless of whether it also shrank.
    pub fn discard_resized(&mut self, n: usize) {
        // Keep the shard *count*, re-partitioned evenly over `n` rows.
        self.wm = self.wm.empty_resized(n);
        self.priors.clear();
        self.fresh_complete = vec![0; n];
        self.epoch += 1;
        self.completion_epoch += 1;
        self.rev += 1;
        self.row_rev = vec![self.rev; n];
    }

    /// Serialize the full logical state — matrix cells, prior bookkeeping,
    /// shift epoch, revision counters — into a snapshot. Prior weights and
    /// kinds are stored sparsely per observed cell: demotion only ever
    /// marks observed (censored) cells, so unobserved entries are always
    /// `(0.0, None)`.
    pub fn save_state(&self, enc: &mut crate::persist::Enc) {
        let (n, k) = (self.wm.n_rows(), self.wm.n_cols());
        enc.i(n);
        enc.i(k);
        // Shard layout travels with the snapshot: a recovered store must
        // partition identically or its merge order could diverge.
        let ranges = self.wm.shard_ranges();
        enc.i(ranges.len());
        for &(start, end) in &ranges {
            enc.i(end - start);
        }
        enc.u(self.epoch as u64);
        enc.u(self.rev);
        enc.u(self.completion_epoch);
        for row in 0..n {
            enc.u(self.fresh_complete[row] as u64);
            enc.u(self.row_rev[row]);
            let obs = self.wm.observed_cols(row);
            enc.i(obs.len());
            for &col in obs {
                let c = col as usize;
                enc.u(col as u64);
                match self.wm.cell(row, c) {
                    Cell::Complete(v) => {
                        enc.b(false);
                        enc.f(v);
                    }
                    Cell::Censored(b) => {
                        enc.b(true);
                        enc.f(b);
                    }
                    Cell::Unobserved => unreachable!("indexed cell must be observed"),
                }
                enc.f(self.prior_weight(row, c));
                enc.u(match self.prior_kind(row, c) {
                    PriorKind::None => 0,
                    PriorKind::Value => 1,
                    PriorKind::Bound => 2,
                });
            }
        }
    }

    /// Rebuild a store from [`ObservationStore::save_state`] tokens. The
    /// matrix's derived structures (observed-column index, best cache,
    /// Fenwick rank index, counters) are pure functions of the cell values
    /// and are rebuilt through the normal mutation funnel.
    pub fn load_state(dec: &mut crate::persist::Dec<'_>) -> crate::persist::Result<Self> {
        use crate::persist::PersistError;
        let n = dec.i()?;
        let k = dec.i()?;
        n.checked_mul(k)
            .filter(|&c| c <= 1 << 30)
            .ok_or_else(|| PersistError::Corrupt("implausible store shape".into()))?;
        let shard_count = dec.i()?;
        if shard_count == 0 || shard_count > 1 << 20 {
            return Err(PersistError::Corrupt(format!("implausible shard count {shard_count}")));
        }
        let mut tenant_rows = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            tenant_rows.push(dec.i()?);
        }
        if tenant_rows.iter().sum::<usize>() != n {
            return Err(PersistError::Corrupt("shard row counts do not sum to n".into()));
        }
        let epoch = dec.u()? as u32;
        let rev = dec.u()?;
        let completion_epoch = dec.u()?;
        let mut wm = WorkloadMatrix::with_tenant_rows(&tenant_rows, k);
        let mut priors = HashMap::new();
        let mut fresh_complete = vec![0u32; n];
        let mut row_rev = vec![0u64; n];
        for row in 0..n {
            fresh_complete[row] = dec.u()? as u32;
            row_rev[row] = dec.u()?;
            let count = dec.i()?;
            if count > k {
                return Err(PersistError::Corrupt("row observation overflow".into()));
            }
            for _ in 0..count {
                let col = dec.i()?;
                if col >= k {
                    return Err(PersistError::Corrupt("column out of range".into()));
                }
                let censored = dec.b()?;
                let value = dec.f()?;
                if value.is_nan() || value < 0.0 {
                    return Err(PersistError::Corrupt("negative or NaN cell value".into()));
                }
                if censored {
                    wm.set_censored(row, col, value);
                } else {
                    wm.set_complete(row, col, value);
                }
                let weight = dec.f()?;
                let kind = match dec.u()? {
                    0 => PriorKind::None,
                    1 => PriorKind::Value,
                    2 => PriorKind::Bound,
                    t => return Err(PersistError::Corrupt(format!("bad prior kind {t}"))),
                };
                if weight > 0.0 && kind != PriorKind::None {
                    priors.insert((row as u32, col as u32), (weight, kind));
                }
            }
        }
        Ok(ObservationStore { wm, priors, fresh_complete, epoch, rev, row_rev, completion_epoch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_store() -> ObservationStore {
        let mut store = ObservationStore::with_defaults(&[10.0, 8.0], 4);
        store.record_complete(0, 1, 2.0);
        store.record_censored(0, 2, 5.0);
        store.record_complete(1, 3, 4.0);
        store
    }

    #[test]
    fn poisoned_observations_are_rejected_and_leave_no_trace() {
        let mut store = seeded_store();
        let rev = store.row_rev(0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = store.try_record_complete(0, 3, bad).unwrap_err();
            assert!(matches!(err, ObservationError::NotFinite { row: 0, col: 3, .. }), "{err}");
            let err = store.try_record_censored(0, 3, bad).unwrap_err();
            assert!(matches!(err, ObservationError::NotFinite { .. }), "{err}");
        }
        let err = store.try_record_complete(0, 3, -1.0).unwrap_err();
        assert!(matches!(err, ObservationError::Negative { row: 0, col: 3, .. }), "{err}");
        // Rejections are side-effect free: no cell written, no revision
        // bumped, no completion epoch advanced.
        assert_eq!(store.matrix().cell(0, 3), Cell::Unobserved);
        assert_eq!(store.row_rev(0), rev);
        // A clean value on the same cell still lands.
        store.try_record_complete(0, 3, 1.25).unwrap();
        assert_eq!(store.matrix().cell(0, 3), Cell::Complete(1.25));
    }

    #[test]
    fn nan_guard_returns_typed_error_where_unchecked_insert_panics() {
        // A NaN cell reaching the matrix would poison the censored-ALS
        // normal equations (the factors average observed entries), so the
        // matrix hard-asserts at insert. That assert is a daemon-killer:
        // a broken transport feeding one garbage latency would take the
        // whole service down. Regression contract: the unchecked path
        // still dies loudly, the checked path turns the same input into a
        // recoverable typed error the engine converts to a probe failure.
        let died = std::panic::catch_unwind(|| {
            let mut store = seeded_store();
            store.record_complete(0, 3, f64::NAN);
        });
        assert!(died.is_err(), "unchecked insert must reject NaN loudly");
        let mut store = seeded_store();
        let err = store.try_record_complete(0, 3, f64::NAN).unwrap_err();
        assert!(matches!(err, ObservationError::NotFinite { .. }), "{err}");
    }

    #[test]
    fn fresh_counts_track_completes_only() {
        let store = seeded_store();
        assert_eq!(store.fresh_complete_count(0), 2); // default + (0,1)
        assert_eq!(store.fresh_complete_count(1), 2); // default + (1,3)
        assert!((store.row_density(0) - 0.5).abs() < 1e-12);
        assert_eq!(store.prior_count(), 0);
    }

    #[test]
    fn recomplete_does_not_double_count() {
        let mut store = seeded_store();
        store.record_complete(0, 1, 1.5);
        assert_eq!(store.fresh_complete_count(0), 2);
    }

    #[test]
    fn demotion_converts_completes_to_censored_priors_at_decay() {
        let mut store = seeded_store();
        store.demote_to_priors(0.5);
        assert_eq!(store.epoch(), 1);
        // Stale complete 2.0 → censored prior at 0.5 * 2.0.
        assert_eq!(store.matrix().cell(0, 1), Cell::Censored(1.0));
        assert!(store.is_prior(0, 1));
        assert_eq!(store.prior_weight(0, 1), 0.5);
        // Stale censored bound 5.0 → prior at 0.5 * 5.0.
        assert_eq!(store.matrix().cell(0, 2), Cell::Censored(2.5));
        // Unobserved cells stay unobserved.
        assert_eq!(store.matrix().cell(1, 1), Cell::Unobserved);
        // No completes survive; fresh counts reset.
        assert_eq!(store.matrix().complete_count(), 0);
        assert_eq!(store.fresh_complete_count(0), 0);
    }

    #[test]
    fn demotion_tracks_prior_provenance() {
        let mut store = seeded_store();
        store.demote_to_priors(0.5);
        // (0,1) was a completed measurement → Value; (0,2) a censored
        // bound → Bound; unobserved cells stay None.
        assert_eq!(store.prior_kind(0, 1), PriorKind::Value);
        assert_eq!(store.prior_kind(0, 2), PriorKind::Bound);
        assert_eq!(store.prior_kind(1, 1), PriorKind::None);
    }

    #[test]
    fn priors_compound_across_shifts() {
        let mut store = seeded_store();
        store.demote_to_priors(0.5);
        store.demote_to_priors(0.5);
        assert_eq!(store.epoch(), 2);
        // 2.0 → 1.0 → 0.5; weight 0.5 → 0.25; Value provenance survives.
        assert_eq!(store.matrix().cell(0, 1), Cell::Censored(0.5));
        assert_eq!(store.prior_weight(0, 1), 0.25);
        assert_eq!(store.prior_kind(0, 1), PriorKind::Value);
        assert_eq!(store.prior_kind(0, 2), PriorKind::Bound);
    }

    #[test]
    fn fresh_probe_supersedes_prior() {
        let mut store = seeded_store();
        store.demote_to_priors(0.5);
        store.record_complete(0, 1, 3.0);
        assert!(!store.is_prior(0, 1));
        assert_eq!(store.prior_kind(0, 1), PriorKind::None);
        assert_eq!(store.fresh_complete_count(0), 1);
        // A censored probe that tightens the bound clears the flag too.
        store.record_censored(0, 2, 9.0);
        assert!(!store.is_prior(0, 2));
        assert_eq!(store.prior_kind(0, 2), PriorKind::None);
        assert_eq!(store.matrix().cell(0, 2), Cell::Censored(9.0));
    }

    #[test]
    fn looser_censored_probe_leaves_prior_flagged() {
        let mut store = seeded_store();
        store.demote_to_priors(0.5);
        // Prior at (0,2) has bound 2.5; a probe timing out at 1.0 does not
        // supersede it — the surviving 2.5 is still remembered hearsay.
        store.record_censored(0, 2, 1.0);
        assert_eq!(store.matrix().cell(0, 2), Cell::Censored(2.5));
        assert!(store.is_prior(0, 2));
        assert_eq!(store.prior_kind(0, 2), PriorKind::Bound);
    }

    #[test]
    fn discard_resized_shrinks_and_advances_epoch() {
        let mut store = seeded_store();
        store.discard_resized(1);
        assert_eq!(store.epoch(), 1, "a shrinking shift is still a shift");
        assert_eq!(store.matrix().n_rows(), 1);
        assert_eq!(store.fresh_complete_count(0), 0);
        store.record_complete(0, 0, 1.0);
        assert_eq!(store.fresh_complete_count(0), 1);
    }

    #[test]
    fn discard_resets_matrix_and_advances_epoch() {
        let mut store = seeded_store();
        store.discard_all();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.matrix().complete_count(), 0);
        assert_eq!(store.matrix().censored_count(), 0);
        assert_eq!(store.prior_count(), 0);
        assert_eq!(store.matrix().n_rows(), 2);
    }

    #[test]
    fn add_rows_extends_bookkeeping() {
        let mut store = seeded_store();
        store.add_rows(2);
        assert_eq!(store.matrix().n_rows(), 4);
        assert_eq!(store.fresh_complete_count(2), 0);
        store.record_complete(3, 0, 1.0);
        assert_eq!(store.fresh_complete_count(3), 1);
    }

    #[test]
    #[should_panic(expected = "prior decay must be in (0, 1]")]
    fn demotion_rejects_overclaiming_decay() {
        seeded_store().demote_to_priors(1.5);
    }

    #[test]
    fn row_revisions_track_observation_changes() {
        let mut store = seeded_store();
        let r0 = store.row_rev(0);
        let r1 = store.row_rev(1);
        // Probing row 0 bumps only row 0.
        store.record_complete(0, 3, 1.0);
        assert!(store.row_rev(0) > r0);
        assert_eq!(store.row_rev(1), r1);
        // A censored probe bumps too (the bound may have moved).
        let r0 = store.row_rev(0);
        store.record_censored(0, 2, 9.0);
        assert!(store.row_rev(0) > r0);
        // A shift demotion bumps every row, past all previous values.
        let before: Vec<u64> = (0..2).map(|r| store.row_rev(r)).collect();
        store.demote_to_priors(0.5);
        for (r, &b) in before.iter().enumerate() {
            assert!(store.row_rev(r) > b, "row {r} not bumped by demotion");
        }
        // Discards bump as well, and new rows arrive already stamped.
        let before = store.row_rev(0);
        store.discard_all();
        assert!(store.row_rev(0) > before);
        let newest = store.row_rev(0);
        store.add_rows(1);
        assert!(store.row_rev(2) > newest);
    }

    #[test]
    fn completion_epoch_tracks_every_fit_input_change() {
        let mut store = seeded_store();
        let e = store.completion_epoch();
        store.record_censored(0, 3, 1.0);
        assert_eq!(store.completion_epoch(), e + 1, "censored bounds feed the censored fit");
        store.record_complete(0, 3, 2.0);
        assert_eq!(store.completion_epoch(), e + 2);
        store.add_rows(1);
        assert_eq!(store.completion_epoch(), e + 2, "appended rows leave the epoch");
        store.demote_to_priors(0.5);
        assert_eq!(store.completion_epoch(), e + 3);
        store.discard_all();
        assert_eq!(store.completion_epoch(), e + 4);
    }

    #[test]
    fn demotion_preserves_shard_layout() {
        let mut store = ObservationStore::with_defaults_sharded(&[1.0; 7], 2, 3);
        let ranges = store.matrix().shard_ranges();
        store.demote_to_priors(0.5);
        assert_eq!(store.matrix().shard_ranges(), ranges);
        store.discard_resized(9);
        assert_eq!(store.matrix().n_shards(), 3);
        assert_eq!(store.matrix().n_rows(), 9);
    }

    #[test]
    fn sharded_store_roundtrips_layout_and_epochs() {
        let mut store = ObservationStore::with_defaults_sharded(&[1.0, 2.0, 3.0, 4.0, 5.0], 3, 2);
        store.record_censored(3, 1, 0.5);
        store.demote_to_priors(0.5);
        store.record_complete(0, 2, 1.0);
        let mut enc = crate::persist::Enc::new();
        store.save_state(&mut enc);
        let line = enc.finish();
        let mut dec = crate::persist::Dec::new(&line);
        let back = ObservationStore::load_state(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.matrix().shard_ranges(), store.matrix().shard_ranges());
        assert_eq!(back.completion_epoch(), store.completion_epoch());
        assert_eq!(back.epoch(), store.epoch());
        assert_eq!(back.prior_count(), store.prior_count());
        for r in 0..5 {
            assert_eq!(back.row_rev(r), store.row_rev(r));
            for c in 0..3 {
                assert_eq!(back.matrix().cell(r, c), store.matrix().cell(r, c));
                assert_eq!(back.prior_weight(r, c).to_bits(), store.prior_weight(r, c).to_bits());
                assert_eq!(back.prior_kind(r, c), store.prior_kind(r, c));
            }
        }
    }

    #[test]
    fn drift_policy_defaults_and_legacy() {
        let fix = DriftPolicy::default();
        assert!(fix.retain_priors && !fix.warm_start);
        assert!(fix.prior_decay > 0.0 && fix.density_gate > 0.0);
        let legacy = DriftPolicy::legacy();
        assert!(!legacy.retain_priors && !legacy.warm_start);
        assert_eq!(legacy.density_gate, 0.0);
        assert_eq!(legacy.cold_row_bonus, 0.0);
    }
}
