//! QO-Advisor baseline, adapted to hint exploration as in §5:
//! "we select the unexplored entry with the lowest optimizer cost (this is
//! the best action that QO-Advisor's contextual bandit could possibly
//! pick, since \[it\] operated over the optimizer's cost model)".

use super::{row_timeout, CellChoice, Policy, PolicyCtx};
use limeqo_linalg::rng::SeededRng;

/// Lowest-estimated-cost-first exploration.
#[derive(Debug, Default, Clone, Copy)]
pub struct QoAdvisorPolicy;

impl Policy for QoAdvisorPolicy {
    fn name(&self) -> &'static str {
        "qo-advisor"
    }

    fn select(
        &mut self,
        ctx: &PolicyCtx<'_>,
        batch: usize,
        rng: &mut SeededRng,
    ) -> Vec<CellChoice> {
        let wm = ctx.wm;
        let Some(est) = ctx.est_cost else {
            // No cost model exposed: degrade to random (keeps the policy
            // usable on matrices without planner estimates).
            return super::sample_unobserved(wm, batch, &[], rng);
        };
        // Stream the unobserved cells straight into the bounded top-m
        // heap (no materialized candidate Vec — O(batch) memory even at
        // the 4.9M-cell scale tier); the named total order (cost asc,
        // then row/col asc) matches the old stable sort's row-major
        // tie-break.
        crate::select::top_m_by(
            wm.unobserved_cells().map(|(r, c)| (est[(r, c)], r, c)),
            batch,
            crate::select::score_asc,
        )
        .into_iter()
        .map(|(_, row, col)| CellChoice { row, col, timeout: row_timeout(wm, row) })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::WorkloadMatrix;
    use limeqo_linalg::Mat;

    #[test]
    fn picks_lowest_estimated_cost_cells() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 1.0], 3);
        let est = Mat::from_rows(&[&[5.0, 100.0, 2.0], &[5.0, 1.0, 50.0]]);
        let ctx = PolicyCtx { wm: &wm, est_cost: Some(&est), store: None };
        let mut rng = SeededRng::new(14);
        let sel = QoAdvisorPolicy.select(&ctx, 2, &mut rng);
        assert_eq!((sel[0].row, sel[0].col), (1, 1)); // cost 1.0
        assert_eq!((sel[1].row, sel[1].col), (0, 2)); // cost 2.0
    }

    #[test]
    fn degrades_to_random_without_cost_model() {
        let wm = WorkloadMatrix::with_defaults(&[1.0], 4);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(15);
        let sel = QoAdvisorPolicy.select(&ctx, 2, &mut rng);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn never_selects_observed_cells() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0], 3);
        wm.set_complete(0, 1, 0.1); // cheapest column already observed
        let est = Mat::from_rows(&[&[5.0, 0.01, 2.0]]);
        let ctx = PolicyCtx { wm: &wm, est_cost: Some(&est), store: None };
        let mut rng = SeededRng::new(16);
        let sel = QoAdvisorPolicy.select(&ctx, 5, &mut rng);
        assert_eq!(sel.len(), 1);
        assert_eq!((sel[0].row, sel[0].col), (0, 2));
    }
}
