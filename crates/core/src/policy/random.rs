//! Random exploration baseline (§5): uniformly sample unobserved cells.

use super::{sample_unobserved, CellChoice, Policy, PolicyCtx};
use limeqo_linalg::rng::SeededRng;

/// Uniform random cell selection with row-best timeouts.
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomPolicy;

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(
        &mut self,
        ctx: &PolicyCtx<'_>,
        batch: usize,
        rng: &mut SeededRng,
    ) -> Vec<CellChoice> {
        sample_unobserved(ctx.wm, batch, &[], rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::WorkloadMatrix;

    #[test]
    fn selects_requested_batch_from_unobserved() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0], 5);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(3);
        let sel = RandomPolicy.select(&ctx, 4, &mut rng);
        assert_eq!(sel.len(), 4);
        for c in &sel {
            assert!(!wm.cell(c.row, c.col).is_observed());
            assert_eq!(c.timeout, wm.row_best(c.row).unwrap().1);
        }
    }

    #[test]
    fn empty_when_fully_observed() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0], 2);
        wm.set_complete(0, 1, 0.5);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(4);
        assert!(RandomPolicy.select(&ctx, 3, &mut rng).is_empty());
    }
}
