//! Greedy exploration (§4.2): attack the longest-running queries first.
//!
//! Greedy "selects the queries with the largest current minimum observed
//! latency … then for each query, we randomly select an unobserved hint".
//! Its implicit assumption — that long-running queries have the most room
//! for improvement — fails on write-bound ETL queries (Fig. 8), which is
//! exactly what LimeQO's predictive model avoids.

use super::{row_timeout, CellChoice, Policy, PolicyCtx};
use limeqo_linalg::rng::SeededRng;

/// Longest-first query selection with a random unobserved hint per query.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyPolicy;

impl Policy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn select(
        &mut self,
        ctx: &PolicyCtx<'_>,
        batch: usize,
        rng: &mut SeededRng,
    ) -> Vec<CellChoice> {
        let wm = ctx.wm;
        // Rank rows by current best observed latency, descending.
        let mut rows = wm.rows_with_unobserved();
        rows.sort_by(|&a, &b| {
            let la = wm.row_best(a).map(|(_, v)| v).unwrap_or(0.0);
            let lb = wm.row_best(b).map(|(_, v)| v).unwrap_or(0.0);
            lb.partial_cmp(&la).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out = Vec::with_capacity(batch);
        for row in rows.into_iter().take(batch) {
            let unobserved: Vec<usize> =
                (0..wm.n_cols()).filter(|&c| !wm.cell(row, c).is_observed()).collect();
            if unobserved.is_empty() {
                continue;
            }
            let col = unobserved[rng.index(unobserved.len())];
            out.push(CellChoice { row, col, timeout: row_timeout(wm, row) });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::WorkloadMatrix;

    #[test]
    fn prefers_longest_running_rows() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 100.0, 10.0], 4);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(5);
        let sel = GreedyPolicy.select(&ctx, 2, &mut rng);
        let rows: Vec<usize> = sel.iter().map(|c| c.row).collect();
        assert_eq!(rows, vec![1, 2]);
    }

    #[test]
    fn skips_fully_observed_rows() {
        let mut wm = WorkloadMatrix::with_defaults(&[100.0, 1.0], 2);
        wm.set_complete(0, 1, 99.0); // slowest row fully observed
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(6);
        let sel = GreedyPolicy.select(&ctx, 2, &mut rng);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].row, 1);
    }

    #[test]
    fn timeout_is_current_row_best() {
        let wm = WorkloadMatrix::with_defaults(&[7.0], 3);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(7);
        let sel = GreedyPolicy.select(&ctx, 1, &mut rng);
        assert_eq!(sel[0].timeout, 7.0);
    }
}
