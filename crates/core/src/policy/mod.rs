//! Active-learning exploration policies (paper §4.2 and §5).
//!
//! A [`Policy`] selects which unobserved (query, hint) cells to execute
//! next and with what timeout. The harness wall-clocks
//! [`Policy::select`] as the technique's computational overhead — for
//! LimeQO that is the ALS completion, for LimeQO+ the TCNN train+infer.
//!
//! | Policy | Paper | Module |
//! |--------|-------|--------|
//! | Random | §5 baseline | [`random`] |
//! | Greedy | §4.2 | [`greedy`] |
//! | LimeQO / LimeQO+ (Algorithm 1) | §4.2 | [`limeqo`] |
//! | QO-Advisor (adapted) | §5 | [`qo_advisor`] |
//! | Bao-Cache | §5 | [`bao_cache`] |
//! | BayesQO (per-query) | §5.6 | [`bayes_qo`] |

pub mod bao_cache;
pub mod bayes_qo;
pub mod greedy;
pub mod limeqo;
pub mod qo_advisor;
pub mod random;

pub use bao_cache::BaoCachePolicy;
pub use bayes_qo::BayesQoRunner;
pub use greedy::GreedyPolicy;
pub use limeqo::{LimeQoPolicy, ScoreMode};
pub use qo_advisor::QoAdvisorPolicy;
pub use random::RandomPolicy;

use crate::matrix::WorkloadMatrix;
use crate::store::ObservationStore;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// One cell chosen for offline execution, with its timeout `T_ij` (Eq. 4 /
/// Algorithm 1 line 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellChoice {
    /// Query (row) index.
    pub row: usize,
    /// Hint (column) index.
    pub col: usize,
    /// Abort execution past this many seconds; the cell becomes censored.
    pub timeout: f64,
}

/// Read-only context handed to policies each step.
#[derive(Clone, Copy)]
pub struct PolicyCtx<'a> {
    /// The current partially observed workload matrix.
    pub wm: &'a WorkloadMatrix,
    /// Optimizer-estimated plan costs for every cell (needed by
    /// QO-Advisor; `None` for DBMSes that do not expose cost estimates).
    pub est_cost: Option<&'a Mat>,
    /// The observation store's drift bookkeeping (shift epoch, per-row
    /// fresh-observation counts), used by drift-aware policies for the
    /// density gate. `None` for harnesses that do not track drift.
    pub store: Option<&'a ObservationStore>,
}

/// An exploration policy: pick the next batch of cells to execute offline.
pub trait Policy {
    /// Name used in reports and figure legends.
    fn name(&self) -> &'static str;

    /// Select up to `batch` unobserved cells. Returning an empty vector
    /// signals that the policy sees nothing worth exploring (the harness
    /// stops). Must not select cells already complete.
    fn select(&mut self, ctx: &PolicyCtx<'_>, batch: usize, rng: &mut SeededRng)
        -> Vec<CellChoice>;

    /// Serialize mutable run state (caches, counters) into a snapshot.
    /// The default is a no-op: stateless policies (or ones whose caches
    /// are pure functions of the store) need nothing to resume
    /// bit-identically.
    fn save_state(&self, _enc: &mut crate::persist::Enc) {}

    /// Restore state written by [`Policy::save_state`]. Must consume
    /// exactly the tokens its counterpart produced.
    fn load_state(&mut self, _dec: &mut crate::persist::Dec<'_>) -> crate::persist::Result<()> {
        Ok(())
    }
}

/// Default timeout for baseline policies: the row's current best observed
/// latency (Eq. 4) — any plan slower than the incumbent is useless.
pub(crate) fn row_timeout(wm: &WorkloadMatrix, row: usize) -> f64 {
    wm.row_best(row).map(|(_, v)| v).unwrap_or(f64::INFINITY)
}

/// Uniformly sample `want` unobserved cells without replacement (used by
/// Random, QO-Advisor's no-cost-model fallback, and Algorithm 1's line-9
/// fallback). Censored cells are not re-drawn.
///
/// Sublinear: ranks are drawn by [`crate::select::sample_ranks`] (a
/// virtual Fisher–Yates, O(want) draws) and mapped to cells through the
/// matrix's Fenwick index ([`WorkloadMatrix::unobserved_at_rank`],
/// O(log n + k) each) — the unobserved set is never materialized, where
/// the old path collected and shuffled every unobserved cell (4.9M tuples
/// per step at 100k×49). Cells in `exclude` are rejected by a hash-set
/// probe; each rejection consumes one extra draw, so exhaustion (every
/// remaining cell excluded) terminates cleanly with a short batch.
pub(crate) fn sample_unobserved(
    wm: &WorkloadMatrix,
    want: usize,
    exclude: &[CellChoice],
    rng: &mut SeededRng,
) -> Vec<CellChoice> {
    let excluded: std::collections::HashSet<(usize, usize)> =
        exclude.iter().map(|e| (e.row, e.col)).collect();
    let mut out = Vec::with_capacity(want.min(wm.unobserved_count()));
    crate::select::sample_ranks(wm.unobserved_count(), want, rng, |rank| {
        let (row, col) = wm.unobserved_at_rank(rank);
        if excluded.contains(&(row, col)) {
            return false;
        }
        out.push(CellChoice { row, col, timeout: row_timeout(wm, row) });
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_timeout_is_row_best() {
        let mut wm = WorkloadMatrix::with_defaults(&[5.0], 3);
        assert_eq!(row_timeout(&wm, 0), 5.0);
        wm.set_complete(0, 1, 2.0);
        assert_eq!(row_timeout(&wm, 0), 2.0);
    }

    #[test]
    fn sample_unobserved_respects_exclusions() {
        let wm = WorkloadMatrix::with_defaults(&[1.0], 3);
        let exclude = vec![CellChoice { row: 0, col: 1, timeout: 1.0 }];
        let mut rng = SeededRng::new(1);
        let got = sample_unobserved(&wm, 10, &exclude, &mut rng);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].row, got[0].col), (0, 2));
    }

    #[test]
    fn sample_unobserved_never_returns_complete_cells() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 4);
        wm.set_complete(0, 1, 1.0);
        wm.set_complete(1, 3, 1.0);
        let mut rng = SeededRng::new(2);
        for c in sample_unobserved(&wm, 100, &[], &mut rng) {
            assert!(!wm.cell(c.row, c.col).is_observed());
        }
    }
}
