//! LimeQO — Algorithm 1 of the paper.
//!
//! Each step: complete the matrix with the predictive model, compute every
//! query's *expected improvement ratio*
//!
//! ```text
//! rᵢ = (min_j W̃ᵢⱼ − min_j Ŵᵢⱼ) / min_j Ŵᵢⱼ          (Eq. 6)
//! ```
//!
//! explore the top-m cells by rᵢ (falling back to random unobserved cells
//! when fewer than m queries show positive predicted improvement), with
//! timeout `Tᵢⱼ = min(min W̃ᵢ, Ŵᵢⱼ · α)` (line 10). Plugging in the ALS
//! completer yields LimeQO; plugging in the transductive TCNN yields
//! LimeQO+ — the policy code is identical, exactly as in the paper.
//!
//! Two drift-aware extensions (off by default, threaded from
//! [`crate::store::DriftPolicy`]) harden the ranking against the sparse
//! regimes the scenario matrix exposed:
//!
//! * a **density gate** ([`LimeQoPolicy::density_gate`]): after a data
//!   shift, rows with too few *fresh* completed cells cannot support the
//!   ratio ranking (the ALS fit is underdetermined and its α-clamped
//!   timeouts censor everything) — those rows are filled uniformly until
//!   their observed density recovers;
//! * a **cold-row exploration bonus** ([`LimeQoPolicy::cold_row_bonus`]):
//!   `bonus / √(row observation count)` is added to each row's score, so
//!   rows the ranking would starve still get probed occasionally.
//!
//! At production scale the per-step score scan is itself a hot path. The
//! observation-side quantities (row best, observed counts, censored
//! sweeps) now come from the matrix's O(1) caches and compact
//! observed-cell index, and
//! [`LimeQoPolicy::rescore_changed_only`] optionally makes the ranking
//! *incremental*: a row is re-scored against the fresh completion only
//! when its observation set changed since the previous round (tracked by
//! [`crate::store::ObservationStore::row_rev`]); untouched rows keep their
//! cached score and predicted argmin. That is a deliberate, opt-in
//! approximation — predictions for untouched rows do drift a little each
//! refit — used by the 100k-query scale scenario where re-scoring 99% of
//! rows every round buys nothing; the paper-exact default re-scores
//! everything.

use super::{sample_unobserved, CellChoice, Policy, PolicyCtx};
use crate::complete::Completer;
use crate::matrix::Cell;
use limeqo_linalg::rng::SeededRng;

/// How Algorithm 1 scores candidate queries (DESIGN.md §6 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreMode {
    /// The paper's expected improvement ratio (Eq. 6):
    /// `(min W̃ᵢ − min Ŵᵢ) / min Ŵᵢ` — normalizes by the predicted best so
    /// exploration cost (≈ the predicted latency) is priced in.
    Ratio,
    /// Raw predicted improvement `min W̃ᵢ − min Ŵᵢ` — favours long queries
    /// regardless of how expensive they are to verify.
    Absolute,
}

/// Algorithm 1 with a pluggable predictive model.
pub struct LimeQoPolicy {
    completer: Box<dyn Completer + Send>,
    /// Timeout multiplier α (Algorithm 1 line 10). The paper leaves α
    /// implicit. Small α censors aggressively but, early in exploration —
    /// when the model's per-row argmin prediction is biased low by noise —
    /// it censors probes that would have improved the row; an α-sweep on
    /// JOB/CEB (bench `tune_alpha`) picked 10 as the default.
    pub alpha: f64,
    /// Display name ("limeqo" for ALS, "limeqo+" for the TCNN).
    display_name: &'static str,
    /// Minimum relative increase over an existing censored bound for a
    /// re-exploration of that cell to be worthwhile (guards against
    /// re-running a censored cell with an unchanged timeout forever).
    pub min_bound_gain: f64,
    /// Candidate scoring (Eq. 6 ratio by default).
    pub score_mode: ScoreMode,
    /// Post-shift density gate: minimum fraction of a row's cells that
    /// must be freshly completed before Eq. 6 is trusted for it. Rows
    /// below the gate are filled uniformly instead. Requires drift
    /// bookkeeping in [`PolicyCtx::store`] and only activates after a
    /// data shift (store epoch ≥ 1). 0 disables the gate.
    pub density_gate: f64,
    /// Cold-row exploration bonus weight: `cold_row_bonus / √(observed
    /// cells in row)` is added to the row's Eq. 6 score. 0 disables it.
    pub cold_row_bonus: f64,
    /// Incremental re-ranking (see the module docs): re-score only rows
    /// whose observation set changed since the previous call, keeping the
    /// cached score/argmin for untouched rows. Requires drift bookkeeping
    /// in [`PolicyCtx::store`] (full re-scoring otherwise). Off by
    /// default — the paper-exact behavior.
    pub rescore_changed_only: bool,
    /// Periodic full re-score for the incremental path: every
    /// `rescore_every`-th call (counting from the first) ignores the
    /// per-row cache and re-scores everything against the fresh
    /// completion, bounding how stale an untouched row's cached
    /// score/argmin can get. 0 (the default) never forces a full
    /// re-score; irrelevant unless [`LimeQoPolicy::rescore_changed_only`]
    /// is on.
    pub rescore_every: usize,
    /// Incremental *model fitting* (distinct from the incremental
    /// re-ranking above, which caches scores): hand the completer the set
    /// of rows whose observations changed since the last fit
    /// ([`crate::store::ObservationStore::row_rev`]), so a completer that
    /// supports dirty-row hints (incremental ALS) can re-solve only those
    /// rows against its retained factors. Requires drift bookkeeping in
    /// [`PolicyCtx::store`] (the completer sees `None` and fits fully
    /// otherwise). Off by default.
    pub incremental_als: bool,
    /// Per-row score cache for the incremental path: the store revision
    /// the row was last scored at, and the scored candidate
    /// (`None` = nothing worth exploring in that row).
    cache: Vec<CachedScore>,
    /// Calls to `select` so far (drives the periodic full re-score).
    rounds: u64,
    /// First store row revision the completer has *not* been fitted
    /// against (drives the dirty-row scan for `incremental_als`): a row is
    /// dirty when `row_rev ≥ fit_rev`. Starts at 0, so a never-fitted
    /// policy reports every row dirty.
    fit_rev: u64,
}

/// One cached Eq. 6 scoring decision.
#[derive(Debug, Clone, Copy)]
struct CachedScore {
    /// [`crate::store::ObservationStore::row_rev`] at scoring time;
    /// `u64::MAX` = never scored.
    rev: u64,
    /// [`crate::store::ObservationStore::completion_epoch`] at scoring
    /// time. A completion landing *anywhere* moves the shared factor
    /// model and with it every row's predicted minimum, so a cached score
    /// is only valid while the completion epoch is unchanged — keying on
    /// `row_rev` alone let untouched rows tunnel on stale predictions
    /// (the `incremental-tunnel` counterexample: at tiny batches the
    /// stale argmins systematically under-price timeouts and LimeQO
    /// probed worse than Random).
    cepoch: u64,
    /// `(score, argmin column, predicted minimum)`; `None` when the row
    /// produced no candidate.
    entry: Option<(f64, u32, f64)>,
}

impl Default for CachedScore {
    fn default() -> Self {
        CachedScore { rev: u64::MAX, cepoch: u64::MAX, entry: None }
    }
}

impl LimeQoPolicy {
    /// LimeQO with any completer (ALS → LimeQO, TCNN → LimeQO+).
    pub fn new(completer: Box<dyn Completer + Send>, display_name: &'static str) -> Self {
        LimeQoPolicy {
            completer,
            alpha: 10.0,
            display_name,
            min_bound_gain: 0.05,
            score_mode: ScoreMode::Ratio,
            density_gate: 0.0,
            cold_row_bonus: 0.0,
            rescore_changed_only: false,
            rescore_every: 0,
            incremental_als: false,
            cache: Vec::new(),
            rounds: 0,
            fit_rev: 0,
        }
    }

    /// Paper-default LimeQO: censored non-negative ALS, r = 5, λ = 0.2.
    pub fn with_als(seed: u64) -> Self {
        Self::new(Box::new(crate::complete::AlsCompleter::paper_default(seed)), "limeqo")
    }
}

impl Policy for LimeQoPolicy {
    fn name(&self) -> &'static str {
        self.display_name
    }

    fn select(
        &mut self,
        ctx: &PolicyCtx<'_>,
        batch: usize,
        rng: &mut SeededRng,
    ) -> Vec<CellChoice> {
        let wm = ctx.wm;
        // Density gate: after a data shift, rows whose fresh completed
        // density is below the gate cannot support the ratio ranking (the
        // fit is underdetermined); fill their unobserved cells uniformly
        // until density recovers. Skipping the completer here is also an
        // overhead win — the model would be fit on starved data anyway.
        if self.density_gate > 0.0 {
            if let Some(store) = ctx.store.filter(|s| s.epoch() > 0) {
                let need = (self.density_gate * wm.n_cols() as f64).ceil() as u32;
                // Uniform fill-in over the starved rows' unobserved
                // cells. The retained priors are deliberately *not*
                // probed here: re-verifying them at the full row-best
                // timeout is expensive, and the ranking exploits them
                // more cheaply once density recovers — their bounds
                // anchor the censored completer, and Algorithm 1's
                // α-clamped timeouts re-probe the promising ones.
                // Starved rows are found by the O(1) freshness counters;
                // their unobserved cells are *sampled* through a
                // per-call Fenwick over the starved-row unobserved
                // counts (O(starved rows) to build, O(log + k) per
                // draw) instead of materialized and shuffled.
                let starved_rows: Vec<usize> = (0..wm.n_rows())
                    .filter(|&row| {
                        store.fresh_complete_count(row) < need && wm.row_unobserved_count(row) > 0
                    })
                    .collect();
                let counts: Vec<i64> =
                    starved_rows.iter().map(|&r| wm.row_unobserved_count(r) as i64).collect();
                let index = limeqo_linalg::Fenwick::from_counts(&counts);
                if index.total() > 0 {
                    let mut out = Vec::with_capacity(batch.min(index.total() as usize));
                    crate::select::sample_ranks(index.total() as usize, batch, rng, |rank| {
                        let (slot, offset) = index.rank_select(rank as i64);
                        let row = starved_rows[slot];
                        let col = wm.unobserved_col_at(row, offset as usize);
                        out.push(CellChoice { row, col, timeout: super::row_timeout(wm, row) });
                        true
                    });
                    return out;
                }
            }
        }
        // Line 2: Ŵ ← pred(W̃, M, T). With incremental model fitting on
        // and drift bookkeeping available, hand the completer the rows
        // whose observations changed since the last fit (one O(n) pass
        // over the row revisions) — an ALS completer in incremental mode
        // re-solves only those rows against its retained factors.
        let w_hat = if self.incremental_als {
            match ctx.store {
                Some(store) => {
                    let mut dirty: Vec<usize> = Vec::new();
                    let mut max_rev = 0;
                    for row in 0..wm.n_rows() {
                        let rev = store.row_rev(row);
                        if rev >= self.fit_rev {
                            dirty.push(row);
                        }
                        max_rev = max_rev.max(rev);
                    }
                    self.fit_rev = max_rev + 1;
                    self.completer.complete_dirty(wm, Some(&dirty))
                }
                None => self.completer.complete_dirty(wm, None),
            }
        } else {
            self.completer.complete(wm)
        };

        // Lines 3–6: expected improvement ratio per query (plus the
        // optional cold-row bonus). `score_row` is the single source of
        // truth for both the full and the incremental path. (Knobs are
        // copied out so the closure does not borrow `self` — the cache
        // below needs the mutable half.)
        let (alpha, min_bound_gain) = (self.alpha, self.min_bound_gain);
        let (score_mode, cold_row_bonus) = (self.score_mode, self.cold_row_bonus);
        let w_hat_ref = &w_hat;
        let score_row = move |row: usize| -> Option<(f64, u32, f64)> {
            let (_, observed_min) = wm.row_best(row)?;
            let (col, predicted_min) = w_hat_ref.row_min(row)?;
            if predicted_min <= 0.0 {
                return None;
            }
            let ratio = match score_mode {
                ScoreMode::Ratio => (observed_min - predicted_min) / predicted_min,
                ScoreMode::Absolute => observed_min - predicted_min,
            };
            let bonus = if cold_row_bonus > 0.0 {
                let observed = wm.row_observed_count(row).max(1);
                cold_row_bonus / (observed as f64).sqrt()
            } else {
                0.0
            };
            let score = ratio.max(0.0) + bonus;
            if score <= 0.0 {
                return None;
            }
            match wm.cell(row, col) {
                // Already verified: nothing to gain (ratio would be 0 for
                // the observed min itself, but a clamped censored cell can
                // still predict below the row min).
                Cell::Complete(_) => None,
                Cell::Censored(bound) => {
                    // Re-explore a censored cell only if the new timeout
                    // would be meaningfully larger than the known bound.
                    let new_timeout = observed_min.min(predicted_min * alpha);
                    if new_timeout <= bound * (1.0 + min_bound_gain) {
                        None
                    } else {
                        Some((score, col as u32, predicted_min))
                    }
                }
                Cell::Unobserved => Some((score, col as u32, predicted_min)),
            }
        };
        let incremental = self.rescore_changed_only && ctx.store.is_some();
        if incremental && self.cache.len() != wm.n_rows() {
            self.cache = vec![CachedScore::default(); wm.n_rows()];
        }
        // Periodic full re-score (the `rescore_every` knob): every K-th
        // call the cache is bypassed so untouched rows' stale argmins get
        // refreshed against the current completion.
        let force_full = self.rescore_every > 0 && self.rounds % self.rescore_every as u64 == 0;
        self.rounds += 1;
        // Lines 3–7, shard by shard: each shard scores its own row range
        // and keeps a bounded top-`batch`, then the per-shard winners are
        // k-way merged under the same named total order (score desc, then
        // global row/col asc). Any global top-`batch` candidate is by
        // definition inside its own shard's top-`batch`, and the order is
        // total, so the merged result is *identical* to ranking all rows
        // in one pass — the single-shard layout takes exactly that path.
        let ranges = wm.shard_ranges();
        let mut shard_tops: Vec<Vec<(f64, usize, usize, f64)>> = Vec::with_capacity(ranges.len());
        for &(start, end) in &ranges {
            let mut scored: Vec<(f64, usize, usize, f64)> = Vec::new(); // (score, row, col, pred)
            for row in start..end {
                let entry = if incremental {
                    let store = ctx.store.expect("incremental requires a store");
                    let rev = store.row_rev(row);
                    let cepoch = store.completion_epoch();
                    let cached = &mut self.cache[row];
                    if cached.rev != rev || cached.cepoch != cepoch || force_full {
                        *cached = CachedScore { rev, cepoch, entry: score_row(row) };
                    }
                    cached.entry
                } else {
                    score_row(row)
                };
                if let Some((score, col, pred)) = entry {
                    scored.push((score, row, col as usize, pred));
                }
            }
            // Bounded heap selection under the subsystem's named total
            // order, which reproduces the stable full sort's tie-breaks at
            // O(n log m) instead of O(n log n).
            shard_tops.push(crate::select::top_m_by(scored, batch, crate::select::score_desc));
        }
        let top = crate::select::merge_ranked(shard_tops, batch, crate::select::score_desc);
        let mut out: Vec<CellChoice> = Vec::with_capacity(batch);
        for (_, row, col, pred) in top {
            let observed_min = wm.row_best(row).map(|(_, v)| v).unwrap_or(f64::INFINITY);
            // Line 10: T_ij = min(min W̃_i, Ŵ_ij · α); the predicted
            // argmin value equals Ŵ_ij (cached on the incremental path).
            let timeout = observed_min.min(pred * self.alpha);
            out.push(CellChoice { row, col, timeout });
        }
        // Lines 8–9: not enough positive predictions → random fill-in.
        if out.len() < batch {
            let extra = sample_unobserved(wm, batch - out.len(), &out, rng);
            out.extend(extra);
        }
        // Final fallback (keeps the "repeat until no more exploration
        // time" loop of Algorithm 1 productive once every cell is observed
        // or censored): verify censored cells whose bound still sits below
        // the row's best at the full row-best timeout. Each such probe
        // either completes (a real improvement or a ruled-out plan) or
        // raises the bound to the row best, so exploration terminates at
        // the true row optimum.
        if out.len() < batch {
            let want = batch - out.len();
            let chosen: std::collections::HashSet<(usize, usize)> =
                out.iter().map(|c| (c.row, c.col)).collect();
            let mut shard_gaps: Vec<Vec<(f64, usize, usize, f64)>> =
                Vec::with_capacity(ranges.len());
            for &(start, end) in &ranges {
                let mut candidates: Vec<(f64, usize, usize, f64)> = Vec::new();
                for row in start..end {
                    let Some((_, row_best)) = wm.row_best(row) else { continue };
                    // Only observed cells can be censored: sweep the compact
                    // index (ascending columns — the dense scan's order).
                    for &col in wm.observed_cols(row) {
                        let col = col as usize;
                        if let Cell::Censored(bound) = wm.cell(row, col) {
                            if bound < row_best * 0.999 && !chosen.contains(&(row, col)) {
                                candidates.push((row_best - bound, row, col, row_best));
                            }
                        }
                    }
                }
                // Bounded heap pick under the same named total order as the
                // Eq. 6 ranking: gap desc, then row/col asc (the stable full
                // sort's tie-break — candidates were pushed row-major).
                shard_gaps.push(crate::select::top_m_by(
                    candidates,
                    want,
                    crate::select::score_desc,
                ));
            }
            let picked = crate::select::merge_ranked(shard_gaps, want, crate::select::score_desc);
            for (_, row, col, row_best) in picked {
                out.push(CellChoice { row, col, timeout: row_best });
            }
        }
        out
    }

    fn save_state(&self, enc: &mut crate::persist::Enc) {
        // The rounds counter drives the periodic full-rescore cadence, the
        // fitted revision drives the dirty-row scan, and the score cache
        // skips untouched rows; all three (plus the completer's own state)
        // must survive a restart bit-identically.
        enc.u(self.rounds);
        enc.u(self.fit_rev);
        enc.i(self.cache.len());
        for c in &self.cache {
            enc.u(c.rev);
            enc.u(c.cepoch);
            match c.entry {
                Some((score, col, pred)) => {
                    enc.b(true);
                    enc.f(score);
                    enc.u(col as u64);
                    enc.f(pred);
                }
                None => enc.b(false),
            }
        }
        self.completer.save_state(enc);
    }

    fn load_state(&mut self, dec: &mut crate::persist::Dec<'_>) -> crate::persist::Result<()> {
        self.rounds = dec.u()?;
        self.fit_rev = dec.u()?;
        let n = dec.i()?;
        self.cache = Vec::with_capacity(n.min(1 << 24));
        for _ in 0..n {
            let rev = dec.u()?;
            let cepoch = dec.u()?;
            let entry = if dec.b()? { Some((dec.f()?, dec.u()? as u32, dec.f()?)) } else { None };
            self.cache.push(CachedScore { rev, cepoch, entry });
        }
        self.completer.load_state(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::Completer;
    use crate::matrix::WorkloadMatrix;
    use crate::store::PriorKind;
    use limeqo_linalg::Mat;

    /// A completer that returns a fixed prediction matrix (observed cells
    /// overwritten with their values, as the trait contract requires).
    struct FixedCompleter(Mat);

    impl Completer for FixedCompleter {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
            let mut m = self.0.clone();
            for i in 0..wm.n_rows() {
                for j in 0..wm.n_cols() {
                    if let Cell::Complete(v) = wm.cell(i, j) {
                        m[(i, j)] = v;
                    }
                }
            }
            m
        }
    }

    #[test]
    fn picks_highest_improvement_ratio_first() {
        // Row 0: observed 10, predicted best 2 (ratio 4).
        // Row 1: observed 10, predicted best 5 (ratio 1).
        let wm = WorkloadMatrix::with_defaults(&[10.0, 10.0], 3);
        let pred = Mat::from_rows(&[&[10.0, 2.0, 9.0], &[10.0, 9.0, 5.0]]);
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        p.alpha = 2.0;
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(8);
        let sel = p.select(&ctx, 1, &mut rng);
        assert_eq!(sel.len(), 1);
        assert_eq!((sel[0].row, sel[0].col), (0, 1));
        // Timeout = min(row best 10, 2 * alpha 2.0) = 4.
        assert!((sel[0].timeout - 4.0).abs() < 1e-12);
    }

    #[test]
    fn falls_back_to_random_when_no_positive_ratio() {
        // Predictions equal to observations: no predicted improvement.
        let wm = WorkloadMatrix::with_defaults(&[1.0, 1.0], 3);
        let pred = Mat::filled(2, 3, 1.0);
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(9);
        let sel = p.select(&ctx, 3, &mut rng);
        assert_eq!(sel.len(), 3, "random fallback must fill the batch");
        for c in &sel {
            assert!(!wm.cell(c.row, c.col).is_observed());
        }
    }

    #[test]
    fn censored_cell_not_rerun_with_same_timeout() {
        let mut wm = WorkloadMatrix::with_defaults(&[10.0], 2);
        // Cell (0,1) censored at bound 10 (= row best): prediction 3 with
        // alpha 2 gives timeout min(10, 6) = 6 < bound: skip.
        wm.set_censored(0, 1, 10.0);
        let pred = Mat::from_rows(&[&[10.0, 3.0]]);
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        p.alpha = 2.0;
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(10);
        let sel = p.select(&ctx, 1, &mut rng);
        // Nothing else to explore either: the fallback finds no unobserved.
        assert!(sel.is_empty());
    }

    #[test]
    fn censored_cell_rerun_with_larger_timeout() {
        let mut wm = WorkloadMatrix::with_defaults(&[10.0], 2);
        // Censored at 2; new prediction 3 → timeout min(10, 6) = 6 > 2.
        wm.set_censored(0, 1, 2.0);
        let pred = Mat::from_rows(&[&[10.0, 3.0]]);
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        p.alpha = 2.0;
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(11);
        let sel = p.select(&ctx, 1, &mut rng);
        assert_eq!(sel.len(), 1);
        assert_eq!((sel[0].row, sel[0].col), (0, 1));
        assert!((sel[0].timeout - 6.0).abs() < 1e-12);
    }

    #[test]
    fn with_als_runs_end_to_end() {
        let mut wm = WorkloadMatrix::with_defaults(&[10.0, 8.0, 12.0, 9.0], 6);
        wm.set_complete(0, 1, 2.0);
        wm.set_complete(1, 1, 1.5);
        let mut p = LimeQoPolicy::with_als(12);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(13);
        let sel = p.select(&ctx, 2, &mut rng);
        assert_eq!(sel.len(), 2);
        for c in &sel {
            assert!(!matches!(wm.cell(c.row, c.col), Cell::Complete(_)));
            assert!(c.timeout > 0.0);
        }
    }

    #[test]
    fn cold_row_bonus_promotes_underobserved_rows() {
        // Row 0 is warm (many observations), row 1 cold (default only).
        // Predictions are flat at the observed values — no Eq. 6 ratio
        // anywhere — so only the bonus can rank anything.
        let mut wm = WorkloadMatrix::with_defaults(&[10.0, 10.0], 4);
        for col in 1..3 {
            wm.set_complete(0, col, 10.0);
        }
        let mut pred = Mat::filled(2, 4, 10.0);
        pred[(1, 3)] = 9.99; // cold row's argmin is an unobserved cell
        pred[(0, 3)] = 9.99;
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        p.cold_row_bonus = 1.0;
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(21);
        let sel = p.select(&ctx, 1, &mut rng);
        assert_eq!(sel.len(), 1);
        // Bonus 1/√1 = 1 (cold) beats 1/√3 ≈ 0.58 (warm): row 1 first.
        assert_eq!((sel[0].row, sel[0].col), (1, 3));
    }

    #[test]
    fn zero_bonus_keeps_paper_ranking() {
        // With the bonus off and flat predictions, nothing is ranked and
        // the random fallback fills the batch — the paper's behavior.
        let wm = WorkloadMatrix::with_defaults(&[10.0, 10.0], 3);
        let pred = Mat::filled(2, 3, 10.0);
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(22);
        let sel = p.select(&ctx, 2, &mut rng);
        assert_eq!(sel.len(), 2, "fallback fills the batch");
    }

    #[test]
    fn density_gate_forces_uniform_fill_after_shift() {
        use crate::store::ObservationStore;
        // A store that lived through a shift: priors everywhere, only the
        // re-observed default is fresh.
        let mut store = ObservationStore::with_defaults(&[10.0, 10.0], 5);
        store.record_complete(0, 1, 2.0);
        store.record_censored(0, 2, 1.0);
        store.demote_to_priors(0.5);
        store.record_complete(0, 0, 11.0);
        store.record_complete(1, 0, 12.0);
        // Predictions scream "explore (0,1)" but the gate must ignore them
        // while rows are starved.
        let mut pred = Mat::filled(2, 5, 20.0);
        pred[(0, 1)] = 0.1;
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        p.density_gate = 0.5; // need ≥ 3 fresh completes of 5
        let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
        let mut rng = SeededRng::new(23);
        let sel = p.select(&ctx, 20, &mut rng);
        assert!(!sel.is_empty());
        for c in &sel {
            // Gate probes target only unobserved cells, at the full
            // row-best timeout — never the α-clamped model timeout, and
            // never the retained priors (the ranking exploits those more
            // cheaply once density recovers).
            assert!(
                matches!(store.matrix().cell(c.row, c.col), Cell::Unobserved),
                "gate probed {:?}",
                (c.row, c.col)
            );
        }
        // Priors of both kinds stay untouched during gated fill-in.
        assert!(!sel.iter().any(|c| (c.row, c.col) == (0, 1)));
        assert!(!sel.iter().any(|c| (c.row, c.col) == (0, 2)));
        assert_eq!(store.prior_kind(0, 1), PriorKind::Value);
    }

    /// Predictions shrink on every call: distinguishes a cached score
    /// (computed against an older completion) from a fresh one.
    struct ShiftingCompleter {
        calls: usize,
    }

    impl Completer for ShiftingCompleter {
        fn name(&self) -> &'static str {
            "shifting"
        }
        fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
            self.calls += 1;
            let pred = 10.0 / (self.calls + 1) as f64; // 5, 10/3, 2.5, …
            let mut m = Mat::filled(wm.n_rows(), wm.n_cols(), pred);
            for i in 0..wm.n_rows() {
                for j in 0..wm.n_cols() {
                    if let Cell::Complete(v) = wm.cell(i, j) {
                        m[(i, j)] = v;
                    }
                }
            }
            m
        }
    }

    #[test]
    fn incremental_rescoring_reuses_cached_scores_for_untouched_rows() {
        use crate::store::ObservationStore;
        // Nothing lands between rounds: revisions and the completion epoch
        // are unchanged, so the cache may serve every row. (Any landed
        // observation — completed *or* censored — moves the epoch and
        // invalidates everything; see the two tests below.)
        let base = ObservationStore::with_defaults(&[10.0, 10.0], 3);
        let run = |incremental: bool| -> Vec<CellChoice> {
            let store = base.clone();
            let mut p = LimeQoPolicy::new(Box::new(ShiftingCompleter { calls: 0 }), "limeqo");
            p.rescore_changed_only = incremental;
            p.alpha = 1.0;
            let mut rng = SeededRng::new(31);
            // Round 1: both rows score against predictions of 5.
            let sel1 = {
                let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
                p.select(&ctx, 1, &mut rng)
            };
            assert_eq!((sel1[0].row, sel1[0].col), (0, 1));
            let _ = store; // probe never recorded: the store is untouched
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            p.select(&ctx, 1, &mut rng)
        };
        // Both modes pick the same cell again — but the incremental path
        // prices its timeout off the *cached* round-1 prediction (5 →
        // timeout 5), while full re-scoring uses the fresh round-2
        // prediction (10/3).
        let incremental = run(true);
        assert_eq!((incremental[0].row, incremental[0].col), (0, 1));
        assert!((incremental[0].timeout - 5.0).abs() < 1e-12, "cached prediction must price");
        let full = run(false);
        assert_eq!((full[0].row, full[0].col), (0, 1));
        assert!((full[0].timeout - 10.0 / 3.0).abs() < 1e-12, "fresh prediction must price");
    }

    #[test]
    fn completion_epoch_invalidates_every_cached_score() {
        use crate::store::ObservationStore;
        // The incremental-tunnel counterexample in miniature: row 1 is
        // never probed (its row_rev never moves), but a completion landing
        // in row 0 refits the shared model — row 1's cached prediction
        // must not survive it.
        let mut store = ObservationStore::with_defaults(&[10.0, 10.0], 3);
        let mut p = LimeQoPolicy::new(Box::new(ShiftingCompleter { calls: 0 }), "limeqo");
        p.rescore_changed_only = true;
        p.alpha = 1.0;
        let mut rng = SeededRng::new(34);
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            let sel = p.select(&ctx, 1, &mut rng);
            assert_eq!((sel[0].row, sel[0].col), (0, 1));
        }
        store.record_complete(0, 1, 5.0);
        let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
        let sel = p.select(&ctx, 1, &mut rng);
        assert_eq!((sel[0].row, sel[0].col), (1, 1));
        assert!(
            (sel[0].timeout - 10.0 / 3.0).abs() < 1e-12,
            "a landed completion must re-price untouched rows off the fresh fit"
        );
    }

    #[test]
    fn rescore_every_refreshes_untouched_rows_periodically() {
        use crate::store::ObservationStore;
        // No probe ever lands, so neither revisions nor the completion
        // epoch move and the pure incremental path would serve the stale
        // round-0 prediction (5) forever. With rescore_every = 2, round 2
        // (rounds counted from 0: 0, 1, 2 — round 2 forces a full
        // re-score) must re-price off the fresh prediction instead.
        let store = ObservationStore::with_defaults(&[10.0, 10.0], 3);
        let mut p = LimeQoPolicy::new(Box::new(ShiftingCompleter { calls: 0 }), "limeqo");
        p.rescore_changed_only = true;
        p.rescore_every = 2;
        p.alpha = 1.0;
        let mut rng = SeededRng::new(33);
        // Round 0 (forced full — trivially so, nothing cached yet).
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            let sel = p.select(&ctx, 1, &mut rng);
            assert_eq!((sel[0].row, sel[0].col), (0, 1));
        }
        // Round 1 (cached): still priced off round-0's prediction 5.
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            let sel = p.select(&ctx, 1, &mut rng);
            assert_eq!((sel[0].row, sel[0].col), (0, 1));
            assert!((sel[0].timeout - 5.0).abs() < 1e-12, "round 1 serves the cached pred");
        }
        // Round 2 (forced full): nothing changed, but the periodic full
        // re-score refreshes everything against the fresh prediction 2.5.
        let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
        let sel = p.select(&ctx, 1, &mut rng);
        assert_eq!((sel[0].row, sel[0].col), (0, 1));
        assert!((sel[0].timeout - 2.5).abs() < 1e-12, "round 2 must re-score untouched rows");
    }

    #[test]
    fn censored_probes_invalidate_cached_scores_too() {
        use crate::store::ObservationStore;
        // The second half of the incremental-tunnel bug: rounds where only
        // *censored* probes land must still refresh untouched rows —
        // censored bounds clamp the censored ALS fit, so they move the
        // shared model exactly as completions do. Row 0 is never probed;
        // the censored probe lands in row 1.
        let mut store = ObservationStore::with_defaults(&[10.0, 10.0], 3);
        let mut p = LimeQoPolicy::new(Box::new(ShiftingCompleter { calls: 0 }), "limeqo");
        p.rescore_changed_only = true;
        p.alpha = 1.0;
        let mut rng = SeededRng::new(32);
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            p.select(&ctx, 1, &mut rng);
        }
        store.record_censored(1, 2, 0.5);
        let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
        let sel = p.select(&ctx, 2, &mut rng);
        let row0 = sel.iter().find(|c| c.row == 0).expect("row 0 re-ranked");
        // Fresh round-2 prediction is 10/3; the stale round-1 one was 5.
        assert!(
            (row0.timeout - 10.0 / 3.0).abs() < 1e-12,
            "a censored-only round must re-score untouched rows"
        );
    }

    /// Records the dirty-row hints it receives, predicting a flat fill.
    struct DirtyRecordingCompleter {
        seen: std::sync::Arc<std::sync::Mutex<Vec<Option<Vec<usize>>>>>,
    }

    impl Completer for DirtyRecordingCompleter {
        fn name(&self) -> &'static str {
            "dirty-recorder"
        }
        fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
            self.complete_dirty(wm, None)
        }
        fn complete_dirty(&mut self, wm: &WorkloadMatrix, dirty: Option<&[usize]>) -> Mat {
            self.seen.lock().unwrap().push(dirty.map(|d| d.to_vec()));
            Mat::filled(wm.n_rows(), wm.n_cols(), 1.0)
        }
    }

    #[test]
    fn incremental_als_hands_the_completer_exactly_the_changed_rows() {
        use crate::store::ObservationStore;
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut store = ObservationStore::with_defaults(&[10.0, 10.0, 10.0], 3);
        let mut p =
            LimeQoPolicy::new(Box::new(DirtyRecordingCompleter { seen: seen.clone() }), "limeqo");
        p.incremental_als = true;
        let mut rng = SeededRng::new(41);
        // Round 1: every row's revision is above the never-fitted mark.
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            p.select(&ctx, 1, &mut rng);
        }
        // Rounds 2/3: only the probed rows are reported dirty; an idle
        // round reports none.
        store.record_complete(2, 1, 3.0);
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            p.select(&ctx, 1, &mut rng);
        }
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            p.select(&ctx, 1, &mut rng);
        }
        // Without a store there is no tracking: the hint must be `None`.
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: None };
            p.select(&ctx, 1, &mut rng);
        }
        let seen = seen.lock().unwrap();
        assert_eq!(seen[0], Some(vec![0, 1, 2]), "first fit sees every row dirty");
        assert_eq!(seen[1], Some(vec![2]), "only the probed row is dirty");
        assert_eq!(seen[2], Some(vec![]), "an idle round reports no dirty rows");
        assert_eq!(seen[3], None, "no store ⇒ no tracking signal");
    }

    #[test]
    fn incremental_als_fit_rev_survives_save_load() {
        use crate::store::ObservationStore;
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut store = ObservationStore::with_defaults(&[10.0, 10.0], 3);
        let mut p =
            LimeQoPolicy::new(Box::new(DirtyRecordingCompleter { seen: seen.clone() }), "limeqo");
        p.incremental_als = true;
        let mut rng = SeededRng::new(42);
        {
            let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
            p.select(&ctx, 1, &mut rng);
        }
        let mut enc = crate::persist::Enc::new();
        p.save_state(&mut enc);
        let state = enc.finish();
        // A restarted twin must not re-report clean rows as dirty.
        let mut q =
            LimeQoPolicy::new(Box::new(DirtyRecordingCompleter { seen: seen.clone() }), "limeqo");
        q.incremental_als = true;
        let mut dec = crate::persist::Dec::new(&state);
        q.load_state(&mut dec).expect("state round-trips");
        store.record_complete(1, 2, 4.0);
        let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
        q.select(&ctx, 1, &mut rng);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.last().unwrap(), &Some(vec![1]), "restored fit_rev masks clean rows");
    }

    #[test]
    fn density_gate_inert_before_any_shift() {
        use crate::store::ObservationStore;
        let store = ObservationStore::with_defaults(&[10.0, 10.0], 4);
        let mut pred = Mat::filled(2, 4, 10.0);
        pred[(0, 1)] = 1.0;
        let mut p = LimeQoPolicy::new(Box::new(FixedCompleter(pred)), "limeqo");
        p.density_gate = 0.9;
        let ctx = PolicyCtx { wm: store.matrix(), est_cost: None, store: Some(&store) };
        let mut rng = SeededRng::new(24);
        let sel = p.select(&ctx, 1, &mut rng);
        // Epoch 0: the gate must not trigger; Eq. 6 picks the ratio win.
        assert_eq!((sel[0].row, sel[0].col), (0, 1));
    }
}
