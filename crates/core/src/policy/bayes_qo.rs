//! BayesQO-style baseline (§5.6): per-query sequential model-based
//! optimization with a fixed time budget per query.
//!
//! "While BayesQO optimizes one query at a time, our framework
//! simultaneously optimizes an entire query workload … each query in the
//! workload was allocated a fixed optimization time of three seconds."
//! The essential behaviour — exploration time is split *evenly* across
//! queries instead of being allocated to the most promising ones — is what
//! Fig. 18 contrasts against LimeQO. Our surrogate is a ridge regression
//! over the six hint knobs with an expected-improvement-flavoured
//! acquisition; with only ~3 s per query it barely executes one or two
//! alternative plans, reproducing the paper's "barely makes progress".

use crate::explore::{MatOracle, Oracle};
use crate::matrix::WorkloadMatrix;
use crate::metrics::{Curve, CurvePoint};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::{ridge_solve, Mat};

/// Per-query Bayesian-optimization-style runner.
#[derive(Debug, Clone)]
pub struct BayesQoRunner {
    /// Offline optimization seconds granted to each query (paper: 3 s).
    pub per_query_budget: f64,
    /// Ridge regularization of the surrogate.
    pub lambda: f64,
    /// Exploration jitter added to surrogate predictions.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BayesQoRunner {
    /// Paper configuration: 3 seconds per query.
    pub fn paper_default(seed: u64) -> Self {
        BayesQoRunner { per_query_budget: 3.0, lambda: 1.0, jitter: 0.02, seed }
    }

    /// Hint feature row: intercept + the six ±1 knob features. The caller
    /// provides per-column features since core does not know hint
    /// semantics; by default we derive pseudo-features from the column
    /// index bits, which preserves the baseline's behaviour (a weak linear
    /// surrogate over a 49-point design space).
    fn hint_features(col: usize, k: usize) -> Vec<f64> {
        let bits = 8.min(((k as f64).log2().ceil() as usize).max(1));
        let mut f = Vec::with_capacity(1 + bits);
        f.push(1.0);
        for b in 0..bits {
            f.push(if col >> b & 1 == 1 { 1.0 } else { -1.0 });
        }
        f
    }

    /// Optimize the whole workload, one query at a time, recording the
    /// global curve. Exploration time advances by `min(latency, timeout)`
    /// per executed cell, with timeouts at the query's current best.
    pub fn run(&self, oracle: &MatOracle) -> Curve {
        let (n, k) = oracle.shape();
        let mut rng = SeededRng::new(self.seed ^ 0xBA7E5);
        let defaults: Vec<f64> = (0..n).map(|i| oracle.true_latency(i, 0)).collect();
        let mut wm = WorkloadMatrix::with_defaults(&defaults, k);
        let mut curve = Curve::new("bayesqo");
        let mut time = 0.0f64;
        let mut explored = 0usize;
        curve.push(CurvePoint {
            time,
            latency: wm.total_best_latency(),
            overhead: 0.0,
            explored,
            censored: 0,
        });

        let feat_dim = Self::hint_features(0, k).len();
        for q in 0..n {
            let mut spent = 0.0f64;
            while spent < self.per_query_budget {
                // Fit ridge surrogate on this query's observed cells.
                let observed: Vec<(usize, f64)> = (0..k)
                    .filter_map(|c| match wm.cell(q, c) {
                        crate::matrix::Cell::Complete(v) => Some((c, v)),
                        _ => None,
                    })
                    .collect();
                let unexplored: Vec<usize> =
                    (0..k).filter(|&c| !wm.cell(q, c).is_observed()).collect();
                if unexplored.is_empty() {
                    break;
                }
                let mut g = Mat::zeros(observed.len(), feat_dim);
                let mut y = Mat::zeros(observed.len(), 1);
                for (row, &(c, v)) in observed.iter().enumerate() {
                    for (j, f) in Self::hint_features(c, k).into_iter().enumerate() {
                        g[(row, j)] = f;
                    }
                    y[(row, 0)] = (1.0 + v).ln();
                }
                let beta =
                    ridge_solve(&g, &y, self.lambda).unwrap_or_else(|_| Mat::zeros(feat_dim, 1));
                // Acquisition: predicted-best unexplored hint with jitter.
                let mut best: Option<(usize, f64)> = None;
                for &c in &unexplored {
                    let feats = Self::hint_features(c, k);
                    let mut pred = 0.0;
                    for (j, f) in feats.into_iter().enumerate() {
                        pred += beta[(j, 0)] * f;
                    }
                    pred += rng.gaussian(0.0, self.jitter);
                    if best.map_or(true, |(_, b)| pred < b) {
                        best = Some((c, pred));
                    }
                }
                let (col, _) = best.expect("unexplored non-empty");
                let row_best = wm.row_best(q).map(|(_, v)| v).unwrap_or(f64::INFINITY);
                let remaining = self.per_query_budget - spent;
                let timeout = row_best.min(remaining);
                let truth = oracle.true_latency(q, col);
                if truth <= timeout {
                    wm.set_complete(q, col, truth);
                    spent += truth;
                    time += truth;
                } else {
                    wm.set_censored(q, col, timeout);
                    spent += timeout;
                    time += timeout;
                }
                explored += 1;
                curve.push(CurvePoint {
                    time,
                    latency: wm.total_best_latency(),
                    overhead: 0.0,
                    explored,
                    censored: wm.censored_count(),
                });
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_oracle(n: usize, k: usize, seed: u64) -> MatOracle {
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_mat(n, 2, 0.5, 2.0);
        let h = rng.uniform_mat(k, 2, 0.2, 1.5);
        let mut lat = q.matmul_t(&h).unwrap();
        for i in 0..n {
            lat[(i, 0)] = lat[(i, 0)] * 2.0 + 0.5;
        }
        MatOracle::new(lat, None)
    }

    #[test]
    fn never_regresses_and_spends_bounded_budget() {
        let oracle = toy_oracle(10, 8, 50);
        let runner = BayesQoRunner { per_query_budget: 0.5, ..BayesQoRunner::paper_default(1) };
        let curve = runner.run(&oracle);
        let lats: Vec<f64> = curve.points.iter().map(|p| p.latency).collect();
        for w in lats.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        // Total spend ≤ n × budget (+ small overshoot of last execution).
        assert!(curve.total_time() <= 10.0 * 0.5 + 1e-9);
    }

    #[test]
    fn even_allocation_touches_many_queries() {
        let oracle = toy_oracle(12, 6, 51);
        let runner = BayesQoRunner { per_query_budget: 0.4, ..BayesQoRunner::paper_default(2) };
        let curve = runner.run(&oracle);
        // Should have explored at least one cell for most queries.
        assert!(curve.points.last().unwrap().explored >= 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let oracle = toy_oracle(6, 5, 52);
        let runner = BayesQoRunner::paper_default(3);
        let a = runner.run(&oracle);
        let b = runner.run(&oracle);
        assert_eq!(a.points.len(), b.points.len());
        assert_eq!(a.final_latency(), b.final_latency());
    }
}
