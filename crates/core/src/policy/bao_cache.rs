//! Bao-Cache baseline (§5): "the technique of Bao adapted to offline
//! exploration. The TCNN is used to select unobserved entries to explore.
//! We cache the results and select the best observed hint for each query."
//!
//! Bao explores per-query — for each query it trusts its model's best
//! predicted plan — without LimeQO's workload-level prioritization
//! (Eq. 6). We model that as a round-robin over queries, exploring each
//! query's best-predicted unobserved hint. The model is pluggable; the
//! paper's Bao-Cache uses the plain TCNN from `limeqo-tcnn`.

use super::{row_timeout, CellChoice, Policy, PolicyCtx};
use crate::complete::Completer;
use limeqo_linalg::rng::SeededRng;

/// Round-robin per-query exploration of the model's best predicted hint.
pub struct BaoCachePolicy {
    completer: Box<dyn Completer + Send>,
    next_row: usize,
}

impl BaoCachePolicy {
    /// Create with any predictive model (the paper uses a plain TCNN; an
    /// ALS model gives a linear ablation).
    pub fn new(completer: Box<dyn Completer + Send>) -> Self {
        BaoCachePolicy { completer, next_row: 0 }
    }
}

impl Policy for BaoCachePolicy {
    fn name(&self) -> &'static str {
        "bao-cache"
    }

    fn select(
        &mut self,
        ctx: &PolicyCtx<'_>,
        batch: usize,
        _rng: &mut SeededRng,
    ) -> Vec<CellChoice> {
        let wm = ctx.wm;
        let w_hat = self.completer.complete(wm);
        let n = wm.n_rows();
        let mut out = Vec::with_capacity(batch);
        let mut visited = 0;
        while out.len() < batch && visited < n {
            let row = self.next_row % n;
            self.next_row = self.next_row.wrapping_add(1);
            visited += 1;
            // Best predicted unobserved hint of this query.
            let mut best: Option<(usize, f64)> = None;
            for col in 0..wm.n_cols() {
                if wm.cell(row, col).is_observed() {
                    continue;
                }
                let v = w_hat[(row, col)];
                if best.map_or(true, |(_, b)| v < b) {
                    best = Some((col, v));
                }
            }
            if let Some((col, _)) = best {
                out.push(CellChoice { row, col, timeout: row_timeout(wm, row) });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::AlsCompleter;
    use crate::matrix::WorkloadMatrix;

    #[test]
    fn round_robin_covers_all_rows() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0], 4);
        let mut p = BaoCachePolicy::new(Box::new(AlsCompleter::paper_default(17)));
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(18);
        let sel = p.select(&ctx, 3, &mut rng);
        let mut rows: Vec<usize> = sel.iter().map(|c| c.row).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn continues_rotation_across_steps() {
        let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0, 4.0], 3);
        let mut p = BaoCachePolicy::new(Box::new(AlsCompleter::paper_default(19)));
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(20);
        let s1 = p.select(&ctx, 2, &mut rng);
        let s2 = p.select(&ctx, 2, &mut rng);
        assert_eq!(s1.iter().map(|c| c.row).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s2.iter().map(|c| c.row).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn skips_fully_observed_rows() {
        let mut wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 2);
        wm.set_complete(0, 1, 0.4);
        let mut p = BaoCachePolicy::new(Box::new(AlsCompleter::paper_default(21)));
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut rng = SeededRng::new(22);
        let sel = p.select(&ctx, 2, &mut rng);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].row, 1);
    }
}
