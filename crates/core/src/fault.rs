//! Deterministic fault injection for the persistence layer.
//!
//! [`crate::persist`] talks to disk exclusively through the small
//! [`Storage`] / [`StorageFile`] traits defined here. Production code uses
//! [`FsStorage`] (plain `std::fs`); chaos tests wrap it in
//! [`FaultStorage`], which counts every operation and injects *scripted*
//! faults — fail op #k, short-write n bytes, fail fsync, fail rename,
//! ENOSPC — at deterministic points. A fault script is plain data
//! ([`FaultScript`]), derivable from a seed ([`FaultScript::from_seed`]),
//! so every chaos run is replayable from its parameters alone: the same
//! script against the same event sequence injects the same fault at the
//! same byte.
//!
//! The trait is deliberately minimal — exactly the operations the journal
//! and snapshot code paths perform, no more. [`StorageFile::append`] takes
//! the whole record in one call, which is what makes [`FaultKind::ShortWrite`]
//! meaningful: the injected tear leaves a well-defined prefix of one
//! record on disk, the case the journal's CRC-per-record format is built
//! to detect and truncate.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek as _, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};

use limeqo_linalg::rng::SeededRng;

/// The class of a storage operation, used to target scripted faults at a
/// specific kind of I/O (e.g. "the 20th journal append") independent of
/// how many unrelated operations surround it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Create-or-truncate a file for writing ([`Storage::create`]).
    Create,
    /// Reopen an existing file truncated to a length ([`Storage::open_truncated`]).
    Open,
    /// Whole-file read ([`Storage::read`]).
    Read,
    /// Directory listing ([`Storage::list_dir`]).
    List,
    /// Atomic rename ([`Storage::rename`]).
    Rename,
    /// File removal ([`Storage::remove`]).
    Remove,
    /// Record append ([`StorageFile::append`]).
    Append,
    /// Flush + fsync ([`StorageFile::sync`]).
    Sync,
}

/// Number of [`OpClass`] variants (sizes the per-class counters).
const OP_CLASSES: usize = 8;

/// What an injected fault does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright with an injected I/O error.
    FailOp,
    /// An append writes only the first `n` bytes to the underlying
    /// storage, then fails — the torn-write case. On non-append
    /// operations it degrades to [`FaultKind::FailOp`].
    ShortWrite(usize),
    /// The fsync fails (data may or may not be durable — the caller must
    /// treat the segment as suspect).
    FailSync,
    /// The rename fails (the temp file stays, the target is untouched).
    FailRename,
    /// The write fails with out-of-space semantics, writing nothing.
    Enospc,
}

/// When a scripted fault fires. Operation indices are 0-based and count
/// from the construction of the [`FaultStorage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAt {
    /// The `n`th storage operation overall, of any class.
    Op(u64),
    /// The `n`th operation of the given class.
    Class(OpClass, u64),
}

/// One scripted fault: a trigger point plus the failure to inject there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// When the fault fires.
    pub at: FaultAt,
    /// What happens when it does.
    pub kind: FaultKind,
}

/// A replayable fault script: a plain list of [`ScriptedFault`]s. Scripts
/// are data, not state — the same script always injects the same faults at
/// the same operation indices.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// The scripted faults, checked in order at every operation.
    pub faults: Vec<ScriptedFault>,
}

impl FaultScript {
    /// A script with a single fault.
    pub fn single(at: FaultAt, kind: FaultKind) -> Self {
        FaultScript { faults: vec![ScriptedFault { at, kind }] }
    }

    /// Derive a script of `count` faults at operation indices below
    /// `op_range`, deterministically from `seed` — the replayable chaos
    /// run. The same `(seed, count, op_range)` always yields the same
    /// script.
    pub fn from_seed(seed: u64, count: usize, op_range: u64) -> Self {
        let mut rng = SeededRng::new(seed ^ 0xFA01_7FA0);
        let kinds = [
            FaultKind::FailOp,
            FaultKind::ShortWrite(5),
            FaultKind::FailSync,
            FaultKind::FailRename,
            FaultKind::Enospc,
        ];
        let faults = (0..count)
            .map(|_| ScriptedFault {
                at: FaultAt::Op(rng.index(op_range.max(1) as usize) as u64),
                kind: kinds[rng.index(kinds.len())],
            })
            .collect();
        FaultScript { faults }
    }
}

/// The filesystem surface [`crate::persist`] needs — nothing more. Every
/// operation maps 1:1 onto an `std::fs` call in [`FsStorage`]; the
/// abstraction exists so [`FaultStorage`] can interpose.
pub trait Storage: Send {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// The whole file's bytes.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Whether `path` exists (never counted, never faulted: a pure check).
    fn exists(&self, path: &Path) -> bool;
    /// Create or truncate `path`, opened for appending.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Reopen an existing `path` truncated to `len` bytes, positioned at
    /// its new end (the journal-tail truncation after replay).
    fn open_truncated(&self, path: &Path, len: u64) -> io::Result<Box<dyn StorageFile>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// An open writable file handle from a [`Storage`].
pub trait StorageFile: Send {
    /// Append the whole buffer. Callers pass one complete record per call
    /// so a short-write fault tears at a record boundary's interior, never
    /// across records.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Flush to the OS and fsync.
    fn sync(&mut self) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// Real filesystem.

/// The production [`Storage`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStorage;

struct FsFile(File);

impl StorageFile for FsFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.0.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.0.sync_all()
    }
}

impl Storage for FsStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(Box::new(FsFile(file)))
    }

    fn open_truncated(&self, path: &Path, len: u64) -> io::Result<Box<dyn StorageFile>> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Box::new(FsFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting wrapper.

#[derive(Debug, Default)]
struct FaultState {
    script: Vec<ScriptedFault>,
    total_ops: u64,
    class_ops: [u64; OP_CLASSES],
    injected: u64,
}

impl FaultState {
    /// Count one operation of `class`; return the fault to inject, if a
    /// scripted trigger matches this exact operation index.
    fn tick(&mut self, class: OpClass) -> Option<FaultKind> {
        let total = self.total_ops;
        let of_class = self.class_ops[class as usize];
        self.total_ops += 1;
        self.class_ops[class as usize] += 1;
        let hit = self.script.iter().find(|f| match f.at {
            FaultAt::Op(n) => n == total,
            FaultAt::Class(c, n) => c == class && n == of_class,
        });
        let kind = hit.map(|f| f.kind);
        if kind.is_some() {
            self.injected += 1;
        }
        kind
    }
}

fn injected_error(kind: FaultKind) -> io::Error {
    let msg = match kind {
        FaultKind::FailOp => "injected fault: operation failed",
        FaultKind::ShortWrite(_) => "injected fault: short write",
        FaultKind::FailSync => "injected fault: fsync failed",
        FaultKind::FailRename => "injected fault: rename failed",
        FaultKind::Enospc => "injected fault: no space left on device",
    };
    io::Error::other(msg)
}

/// Shared read-only view of a [`FaultStorage`]'s counters, usable after
/// the storage itself has been boxed into a
/// [`crate::persist::DurableEngine`].
#[derive(Clone)]
pub struct FaultProbe {
    state: Arc<Mutex<FaultState>>,
}

impl FaultProbe {
    /// Total operations observed so far (every class).
    pub fn total_ops(&self) -> u64 {
        self.state.lock().expect("fault state lock").total_ops
    }

    /// Faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.state.lock().expect("fault state lock").injected
    }
}

/// A [`Storage`] wrapper that injects the faults of a [`FaultScript`] at
/// their scripted operation indices and passes everything else through to
/// the wrapped storage. Operation counting is shared between the storage
/// and every file handle it has produced, so `FaultAt::Op(k)` means "the
/// k-th operation this wrapper has seen anywhere".
pub struct FaultStorage {
    inner: Box<dyn Storage>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultStorage {
    /// Wrap `inner` with the given fault script.
    pub fn new(inner: Box<dyn Storage>, script: FaultScript) -> Self {
        FaultStorage {
            inner,
            state: Arc::new(Mutex::new(FaultState { script: script.faults, ..Default::default() })),
        }
    }

    /// A counter handle that stays valid after the storage is moved.
    pub fn probe(&self) -> FaultProbe {
        FaultProbe { state: Arc::clone(&self.state) }
    }

    fn tick(&self, class: OpClass) -> Option<FaultKind> {
        self.state.lock().expect("fault state lock").tick(class)
    }
}

struct FaultFile {
    inner: Box<dyn StorageFile>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn tick(&self, class: OpClass) -> Option<FaultKind> {
        self.state.lock().expect("fault state lock").tick(class)
    }
}

impl StorageFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        match self.tick(OpClass::Append) {
            None => self.inner.append(data),
            Some(FaultKind::ShortWrite(n)) => {
                // The torn write: a prefix of the record reaches the
                // underlying storage before the failure surfaces.
                let n = n.min(data.len());
                self.inner.append(&data[..n])?;
                Err(injected_error(FaultKind::ShortWrite(n)))
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.tick(OpClass::Sync) {
            None => self.inner.sync(),
            Some(kind) => Err(injected_error(kind)),
        }
    }
}

impl Storage for FaultStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Never faulted: directory creation happens once, before any state
        // exists worth corrupting.
        self.inner.create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.tick(OpClass::List) {
            None => self.inner.list_dir(dir),
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.tick(OpClass::Read) {
            None => self.inner.read(path),
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        match self.tick(OpClass::Create) {
            None => {
                let inner = self.inner.create(path)?;
                Ok(Box::new(FaultFile { inner, state: Arc::clone(&self.state) }))
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn open_truncated(&self, path: &Path, len: u64) -> io::Result<Box<dyn StorageFile>> {
        match self.tick(OpClass::Open) {
            None => {
                let inner = self.inner.open_truncated(path, len)?;
                Ok(Box::new(FaultFile { inner, state: Arc::clone(&self.state) }))
            }
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.tick(OpClass::Rename) {
            None => self.inner.rename(from, to),
            Some(kind) => Err(injected_error(kind)),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.tick(OpClass::Remove) {
            None => self.inner.remove(path),
            Some(kind) => Err(injected_error(kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("limeqo-fault-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fs_storage_roundtrips_appends_and_truncation() {
        let dir = test_dir("fs");
        let path = dir.join("a.log");
        let s = FsStorage;
        {
            let mut f = s.create(&path).unwrap();
            f.append(b"hello ").unwrap();
            f.append(b"world").unwrap();
            f.sync().unwrap();
        }
        assert_eq!(s.read(&path).unwrap(), b"hello world");
        {
            let mut f = s.open_truncated(&path, 5).unwrap();
            f.append(b"!").unwrap();
        }
        assert_eq!(s.read(&path).unwrap(), b"hello!");
        assert!(s.exists(&path));
        s.rename(&path, &dir.join("b.log")).unwrap();
        assert!(!s.exists(&path));
        assert_eq!(s.list_dir(&dir).unwrap(), vec!["b.log".to_string()]);
        s.remove(&dir.join("b.log")).unwrap();
        assert!(s.list_dir(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_fault_leaves_exactly_the_prefix() {
        let dir = test_dir("short");
        let path = dir.join("a.log");
        let script =
            FaultScript::single(FaultAt::Class(OpClass::Append, 1), FaultKind::ShortWrite(3));
        let s = FaultStorage::new(Box::new(FsStorage), script);
        let probe = s.probe();
        let mut f = s.create(&path).unwrap();
        f.append(b"first\n").unwrap();
        let err = f.append(b"second\n").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        drop(f);
        assert_eq!(s.read(&path).unwrap(), b"first\nsec");
        assert_eq!(probe.injected_total(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_op_index_targets_any_class_deterministically() {
        let dir = test_dir("global");
        // Ops: create(0), append(1), append(2), rename(3).
        let script = FaultScript::single(FaultAt::Op(3), FaultKind::FailRename);
        let s = FaultStorage::new(Box::new(FsStorage), script);
        let mut f = s.create(&dir.join("a")).unwrap();
        f.append(b"x").unwrap();
        f.append(b"y").unwrap();
        drop(f);
        let err = s.rename(&dir.join("a"), &dir.join("b")).unwrap_err();
        assert!(err.to_string().contains("rename"), "{err}");
        // The rename must not have happened.
        assert!(s.exists(&dir.join("a")));
        assert!(!s.exists(&dir.join("b")));
        assert_eq!(s.probe().total_ops(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_fault_writes_nothing() {
        let dir = test_dir("enospc");
        let script = FaultScript::single(FaultAt::Class(OpClass::Append, 1), FaultKind::Enospc);
        let s = FaultStorage::new(Box::new(FsStorage), script);
        let mut f = s.create(&dir.join("a")).unwrap();
        f.append(b"kept").unwrap();
        let err = f.append(b"lost").unwrap_err();
        assert!(err.to_string().contains("no space"), "{err}");
        drop(f);
        assert_eq!(s.read(&dir.join("a")).unwrap(), b"kept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_scripts_are_replayable() {
        let a = FaultScript::from_seed(42, 4, 100);
        let b = FaultScript::from_seed(42, 4, 100);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 4);
        for f in &a.faults {
            match f.at {
                FaultAt::Op(n) => assert!(n < 100),
                FaultAt::Class(..) => panic!("from_seed scripts target global op indices"),
            }
        }
        assert_ne!(
            FaultScript::from_seed(1, 4, 100).faults,
            FaultScript::from_seed(2, 4, 100).faults,
            "different seeds must give different scripts"
        );
    }

    #[test]
    fn unmatched_scripts_inject_nothing() {
        let dir = test_dir("none");
        let script = FaultScript::single(FaultAt::Op(1_000_000), FaultKind::FailOp);
        let s = FaultStorage::new(Box::new(FsStorage), script);
        let mut f = s.create(&dir.join("a")).unwrap();
        f.append(b"fine").unwrap();
        f.sync().unwrap();
        assert_eq!(s.probe().injected_total(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
