//! Per-workload plan featurization for the TCNNs.
//!
//! Materializes the featurized plan tree for every (query, hint) cell of a
//! workload, in parallel. The neural methods "assume query plan features
//! are available (e.g., cost and cardinality estimates), and that the
//! underlying query optimizer generates tree-structured plans" (§4.3.2) —
//! this is exactly the extra information LimeQO's linear method does *not*
//! need, and it is the reason the neural variant is tied to the DBMS while
//! the linear one is not.

use limeqo_sim::features::{featurize_plan, FeatureNorm, PlanFeatures};
use limeqo_sim::workloads::Workload;
use std::sync::Arc;

/// Featurized plans for all n × k cells of a workload.
#[derive(Debug, Clone)]
pub struct WorkloadFeatures {
    /// Number of queries.
    pub n: usize,
    /// Number of hints.
    pub k: usize,
    /// Trees in row-major cell order.
    pub trees: Vec<PlanFeatures>,
    /// Normalization used (fitted on a plan sample).
    pub norm: FeatureNorm,
}

impl WorkloadFeatures {
    /// Featurize every cell of the workload, in parallel.
    pub fn build(workload: &Workload) -> Arc<WorkloadFeatures> {
        let n = workload.n();
        let k = workload.k();
        // Fit normalization on a deterministic sample of plans.
        let sample: Vec<_> = (0..n.min(64))
            .map(|i| workload.plan_cell(i * n.max(1) / n.clamp(1, 64) % n, (i * 7) % k))
            .collect();
        let norm = FeatureNorm::fit(&sample);

        let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        let mut trees: Vec<Option<PlanFeatures>> = vec![None; n * k];
        let chunk = ((n * k) + threads - 1) / threads.max(1);
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [Option<PlanFeatures>] = &mut trees;
            let mut start = 0usize;
            while start < n * k {
                let len = chunk.min(n * k - start);
                let (here, next) = rest.split_at_mut(len);
                rest = next;
                let begin = start;
                scope.spawn(move |_| {
                    for (off, slot) in here.iter_mut().enumerate() {
                        let cell = begin + off;
                        let plan = workload.plan_cell(cell / k, cell % k);
                        *slot = Some(featurize_plan(&plan, &norm));
                    }
                });
                start += len;
            }
        })
        .expect("featurization threads");
        Arc::new(WorkloadFeatures {
            n,
            k,
            trees: trees.into_iter().map(|t| t.expect("featurized")).collect(),
            norm,
        })
    }

    /// Tree for cell (row, col).
    #[inline]
    pub fn tree(&self, row: usize, col: usize) -> &PlanFeatures {
        &self.trees[row * self.k + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limeqo_sim::features::NODE_FEATURE_DIM;
    use limeqo_sim::workloads::WorkloadSpec;

    #[test]
    fn builds_all_cells() {
        let w = WorkloadSpec::tiny(6, 70).build();
        let f = WorkloadFeatures::build(&w);
        assert_eq!(f.n, 6);
        assert_eq!(f.k, 49);
        assert_eq!(f.trees.len(), 6 * 49);
        for t in &f.trees {
            assert!(!t.is_empty());
            assert_eq!(t.nodes.cols(), NODE_FEATURE_DIM);
        }
    }

    #[test]
    fn deterministic() {
        let w = WorkloadSpec::tiny(4, 71).build();
        let a = WorkloadFeatures::build(&w);
        let b = WorkloadFeatures::build(&w);
        for (ta, tb) in a.trees.iter().zip(b.trees.iter()) {
            assert_eq!(ta.nodes.as_slice(), tb.nodes.as_slice());
            assert_eq!(ta.left, tb.left);
        }
    }

    #[test]
    fn trees_differ_across_hints() {
        // At least some hints must change the plan for some query.
        let w = WorkloadSpec::tiny(8, 72).build();
        let f = WorkloadFeatures::build(&w);
        let mut any_diff = false;
        for q in 0..8 {
            let base = f.tree(q, 0);
            for h in 1..49 {
                let t = f.tree(q, h);
                if t.len() != base.len() || t.nodes.as_slice() != base.nodes.as_slice() {
                    any_diff = true;
                    break;
                }
            }
        }
        assert!(any_diff, "hints never changed any plan");
    }
}
