//! The Adam optimizer (Kingma & Ba 2015), as used by the paper's TCNN
//! training ("Training is performed with Adam using a batch size of 32").

use limeqo_linalg::Mat;

/// Adam hyperparameters and step counter.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical floor ε.
    pub eps: f64,
    /// Steps taken (for bias correction).
    pub t: u64,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Advance the step counter (call once per optimizer step, before
    /// updating parameter groups).
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Update one parameter tensor in place given its gradient and moment
    /// buffers (same shapes).
    pub fn update(&self, w: &mut Mat, g: &Mat, m: &mut Mat, v: &mut Mat) {
        debug_assert_eq!(w.shape(), g.shape());
        debug_assert_eq!(w.shape(), m.shape());
        debug_assert_eq!(w.shape(), v.shape());
        let t = self.t.max(1) as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (ws, gs, ms, vs) = (w.as_mut_slice(), g.as_slice(), m.as_mut_slice(), v.as_mut_slice());
        for i in 0..ws.len() {
            ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * gs[i];
            vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * gs[i] * gs[i];
            let m_hat = ms[i] / bc1;
            let v_hat = vs[i] / bc2;
            ws[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_convex_quadratic() {
        // f(w) = (w - 3)^2, gradient 2(w - 3).
        let mut w = Mat::from_rows(&[&[0.0]]);
        let mut m = Mat::zeros(1, 1);
        let mut v = Mat::zeros(1, 1);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            adam.tick();
            let g = Mat::from_rows(&[&[2.0 * (w[(0, 0)] - 3.0)]]);
            adam.update(&mut w, &g, &mut m, &mut v);
        }
        assert!((w[(0, 0)] - 3.0).abs() < 1e-2, "w = {}", w[(0, 0)]);
    }

    #[test]
    fn minimizes_2d_rosenbrock_slowly_but_surely() {
        // Just check monotone-ish improvement on a harder surface.
        let f = |x: f64, y: f64| (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let mut w = Mat::from_rows(&[&[-1.0, 1.0]]);
        let mut m = Mat::zeros(1, 2);
        let mut v = Mat::zeros(1, 2);
        let mut adam = Adam::new(0.02);
        let start = f(w[(0, 0)], w[(0, 1)]);
        for _ in 0..2000 {
            adam.tick();
            let (x, y) = (w[(0, 0)], w[(0, 1)]);
            let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
            let gy = 200.0 * (y - x * x);
            let g = Mat::from_rows(&[&[gx, gy]]);
            adam.update(&mut w, &g, &mut m, &mut v);
        }
        let end = f(w[(0, 0)], w[(0, 1)]);
        assert!(end < start * 0.01, "start {start} end {end}");
    }

    #[test]
    fn zero_gradient_is_fixed_point() {
        let mut w = Mat::from_rows(&[&[1.5]]);
        let mut m = Mat::zeros(1, 1);
        let mut v = Mat::zeros(1, 1);
        let mut adam = Adam::new(0.1);
        adam.tick();
        adam.update(&mut w, &Mat::zeros(1, 1), &mut m, &mut v);
        assert_eq!(w[(0, 0)], 1.5);
    }
}
