//! Training loop and batched inference.
//!
//! Follows the paper's schedule: Adam, minibatches of 32, up to the epoch
//! cap or until "a decrease in training loss of less than 1% over
//! [the convergence window]". Each exploration step warm-starts from the
//! previous step's weights ("the model is initialized with the weights
//! from the previous step, enabling it to build on prior learning").
//!
//! Gradient computation is data-parallel: each minibatch is split into
//! shards, every shard runs forward/backward into a private gradient
//! buffer, and the buffers are reduced in shard order (deterministic given
//! the seed). Inference over the full workload matrix fans out across
//! threads in fixed-size tree chunks.

use crate::adam::Adam;
use crate::batch::TreeBatch;
use crate::features::WorkloadFeatures;
use crate::loss::{loss_and_grad, LatencyTransform, Target};
use crate::net::{TcnnNet, Tensors};
use limeqo_core::matrix::{Cell, WorkloadMatrix};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// Trainer bundling the network, Adam state, and the latency transform.
pub struct TcnnTrainer {
    /// The network (public for diagnostics).
    pub net: TcnnNet,
    adam: Adam,
    m: Tensors,
    v: Tensors,
    transform: Option<LatencyTransform>,
    rng: SeededRng,
    /// Epoch-mean training losses of the most recent [`TcnnTrainer::fit`].
    pub last_loss_curve: Vec<f64>,
    fits: usize,
}

struct Sample {
    row: usize,
    col: usize,
    target: Target,
}

impl TcnnTrainer {
    /// Wrap a freshly initialized network.
    pub fn new(net: TcnnNet, seed: u64) -> Self {
        let m = net.weights.zeros_like();
        let v = net.weights.zeros_like();
        let adam = Adam::new(net.cfg().lr);
        TcnnTrainer {
            net,
            adam,
            m,
            v,
            transform: None,
            rng: SeededRng::new(seed ^ 0x7417),
            last_loss_curve: Vec::new(),
            fits: 0,
        }
    }

    /// The latency transform (fitted on the first fit call).
    pub fn transform(&self) -> Option<LatencyTransform> {
        self.transform
    }

    fn build_samples(&self, wm: &WorkloadMatrix) -> Vec<Sample> {
        let censored = self.net.cfg().censored_loss;
        let mut samples = Vec::new();
        for row in 0..wm.n_rows() {
            for col in 0..wm.n_cols() {
                match wm.cell(row, col) {
                    Cell::Complete(v) => {
                        samples.push(Sample { row, col, target: Target::Exact(v) })
                    }
                    Cell::Censored(b) if censored => {
                        samples.push(Sample { row, col, target: Target::Censored(b) })
                    }
                    _ => {}
                }
            }
        }
        samples
    }

    /// Train on the observed cells of `wm`. Returns the final epoch loss.
    pub fn fit(&mut self, features: &WorkloadFeatures, wm: &WorkloadMatrix) -> f64 {
        assert!(
            wm.n_rows() <= features.n && wm.n_cols() == features.k,
            "workload matrix exceeds featurized plans ({}x{} vs {}x{})",
            wm.n_rows(),
            wm.n_cols(),
            features.n,
            features.k
        );
        let mut samples = self.build_samples(wm);
        if samples.is_empty() {
            return 0.0;
        }
        // Fit the latency transform once, on the first observed set.
        if self.transform.is_none() {
            let lats: Vec<f64> = samples
                .iter()
                .map(|s| match s.target {
                    Target::Exact(v) | Target::Censored(v) => v,
                })
                .collect();
            self.transform = Some(LatencyTransform::fit(&lats));
        }
        let tf = self.transform.expect("transform fitted");
        // Move targets into model space.
        for s in &mut samples {
            s.target = match s.target {
                Target::Exact(v) => Target::Exact(tf.forward(v)),
                Target::Censored(b) => Target::Censored(tf.forward(b)),
            };
        }

        let cfg = self.net.cfg().clone();
        let threads = cfg.effective_threads();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        // Warm-started refits only need to absorb the newly observed cells.
        let epoch_cap = if self.fits == 0 { cfg.max_epochs } else { cfg.warm_epochs };
        self.fits += 1;
        let mut losses: Vec<f64> = Vec::with_capacity(epoch_cap);

        for epoch in 0..epoch_cap {
            self.rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for (batch_idx, chunk) in order.chunks(cfg.batch_size).enumerate() {
                let (grads, loss_sum) =
                    self.batch_gradients(features, &samples, chunk, epoch, batch_idx, threads);
                epoch_loss += loss_sum;
                seen += chunk.len();
                self.adam.tick();
                let scale = 1.0 / chunk.len() as f64;
                for ((w, g), (m, v)) in self
                    .net
                    .weights
                    .fields_mut()
                    .into_iter()
                    .zip(grads.fields())
                    .zip(self.m.fields_mut().into_iter().zip(self.v.fields_mut()))
                {
                    if w.is_empty() {
                        continue;
                    }
                    let scaled = g.scale(scale);
                    self.adam.update(w, &scaled, m, v);
                }
            }
            let mean = epoch_loss / seen.max(1) as f64;
            losses.push(mean);
            // Convergence: relative decrease below threshold over window.
            if losses.len() > cfg.convergence_window {
                let past = losses[losses.len() - 1 - cfg.convergence_window];
                if past > 0.0 && (past - mean) / past < cfg.convergence_rel {
                    break;
                }
            }
        }
        self.last_loss_curve = losses;
        self.last_loss_curve.last().copied().unwrap_or(0.0)
    }

    /// Compute summed gradients and loss over one minibatch, sharded
    /// across threads.
    fn batch_gradients(
        &mut self,
        features: &WorkloadFeatures,
        samples: &[Sample],
        chunk: &[usize],
        epoch: usize,
        batch_idx: usize,
        threads: usize,
    ) -> (Tensors, f64) {
        // Thread-spawn overhead outweighs the work for small batches;
        // shard only when each worker gets a meaningful slice.
        let shard_count = threads.min(chunk.len() / 16).max(1);
        let per = chunk.len().div_ceil(shard_count);
        // ceil division above can make the final shards empty; size the
        // result buffer by the actual number of chunks produced.
        let actual_shards = chunk.len().div_ceil(per);
        let net = &self.net;
        let base_seed = self.rng.raw_seed_for(epoch as u64, batch_idx as u64);
        let mut results: Vec<Option<(Tensors, f64)>> = vec![None; actual_shards];
        crossbeam::thread::scope(|scope| {
            for (shard_idx, (shard, slot)) in chunk.chunks(per).zip(results.iter_mut()).enumerate()
            {
                scope.spawn(move |_| {
                    let mut rng =
                        SeededRng::new(base_seed ^ (shard_idx as u64).wrapping_mul(0x9E3779B9));
                    let trees: Vec<_> = shard
                        .iter()
                        .map(|&i| features.tree(samples[i].row, samples[i].col))
                        .collect();
                    let batch = TreeBatch::build(&trees);
                    let qidx: Vec<usize> = shard.iter().map(|&i| samples[i].row).collect();
                    let hidx: Vec<usize> = shard.iter().map(|&i| samples[i].col).collect();
                    let (preds, cache) = net.forward(&batch, &qidx, &hidx, Some(&mut rng));
                    let mut d_preds = vec![0.0; preds.len()];
                    let mut loss_sum = 0.0;
                    for (j, &i) in shard.iter().enumerate() {
                        let (l, g) = loss_and_grad(preds[j], samples[i].target);
                        loss_sum += l;
                        d_preds[j] = g;
                    }
                    let mut grads = net.weights.zeros_like();
                    net.backward(&batch, &qidx, &hidx, &cache, &d_preds, &mut grads);
                    *slot = Some((grads, loss_sum));
                });
            }
        })
        .expect("gradient shards");
        let mut iter = results.into_iter().map(|r| r.expect("shard result"));
        let (mut grads, mut loss) = iter.next().expect("at least one shard");
        for (g, l) in iter {
            grads.add_assign(&g);
            loss += l;
        }
        (grads, loss)
    }

    /// Predict the full matrix: observed values kept, unobserved cells
    /// predicted, censored cells predicted-then-clamped to their bound.
    pub fn predict_all(&self, features: &WorkloadFeatures, wm: &WorkloadMatrix) -> Mat {
        let (n, k) = (wm.n_rows(), wm.n_cols());
        let tf = self.transform.unwrap_or(LatencyTransform { mu: 0.0, sigma: 1.0 });
        let mut out = Mat::zeros(n, k);
        // Cells needing prediction.
        let mut cells: Vec<(usize, usize)> = Vec::new();
        for row in 0..n {
            for col in 0..k {
                match wm.cell(row, col) {
                    Cell::Complete(v) => out[(row, col)] = v,
                    _ => cells.push((row, col)),
                }
            }
        }
        let preds = self.predict_cells(features, &cells, tf);
        for (&(row, col), pred) in cells.iter().zip(preds) {
            out[(row, col)] = match wm.cell(row, col) {
                Cell::Censored(bound) => pred.max(bound),
                _ => pred,
            };
        }
        out
    }

    /// Predict raw latencies for specific cells (parallel, chunked).
    pub fn predict_cells(
        &self,
        features: &WorkloadFeatures,
        cells: &[(usize, usize)],
        tf: LatencyTransform,
    ) -> Vec<f64> {
        const CHUNK: usize = 512;
        let threads = self.net.cfg().effective_threads();
        let mut out = vec![0.0; cells.len()];
        let net = &self.net;
        // (chunk start offset, cells in the chunk)
        type Shard<'a> = (usize, &'a [(usize, usize)]);
        let work: std::sync::Mutex<Vec<Shard>> = std::sync::Mutex::new(
            cells.chunks(CHUNK).enumerate().map(|(i, c)| (i * CHUNK, c)).collect(),
        );
        let out_cell = std::sync::Mutex::new(&mut out);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.min(cells.len().max(1)) {
                scope.spawn(|_| loop {
                    let item = { work.lock().expect("queue").pop() };
                    let Some((offset, chunk)) = item else { break };
                    let trees: Vec<_> = chunk.iter().map(|&(r, c)| features.tree(r, c)).collect();
                    let batch = TreeBatch::build(&trees);
                    let qidx: Vec<usize> = chunk.iter().map(|&(r, _)| r).collect();
                    let hidx: Vec<usize> = chunk.iter().map(|&(_, c)| c).collect();
                    let (preds, _) = net.forward(&batch, &qidx, &hidx, None);
                    let mut guard = out_cell.lock().expect("out");
                    for (j, p) in preds.into_iter().enumerate() {
                        guard[offset + j] = tf.inverse(p);
                    }
                });
            }
        })
        .expect("inference threads");
        out
    }
}

/// Small extension to derive deterministic per-batch seeds.
trait SeedStream {
    fn raw_seed_for(&mut self, a: u64, b: u64) -> u64;
}

impl SeedStream for SeededRng {
    fn raw_seed_for(&mut self, a: u64, b: u64) -> u64 {
        use rand::RngCore;
        self.raw().next_u64() ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(17)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcnnConfig;
    use limeqo_sim::workloads::WorkloadSpec;

    fn setup(n: usize, seed: u64) -> (std::sync::Arc<WorkloadFeatures>, Mat) {
        let mut w = WorkloadSpec::tiny(n, seed).build();
        let o = w.build_oracle();
        let f = WorkloadFeatures::build(&w);
        (f, o.true_latency)
    }

    fn observed_matrix(truth: &Mat, frac: f64, seed: u64) -> WorkloadMatrix {
        let mut rng = SeededRng::new(seed);
        let (n, k) = truth.shape();
        let mut wm = WorkloadMatrix::new(n, k);
        for i in 0..n {
            wm.set_complete(i, 0, truth[(i, 0)]);
            for j in 1..k {
                if rng.chance(frac) {
                    wm.set_complete(i, j, truth[(i, j)]);
                }
            }
        }
        wm
    }

    #[test]
    fn training_reduces_loss() {
        let (features, truth) = setup(8, 80);
        let wm = observed_matrix(&truth, 0.3, 1);
        let cfg = TcnnConfig::test_scale();
        let net =
            TcnnNet::new(limeqo_sim::features::NODE_FEATURE_DIM, 3, features.n, features.k, cfg, 2);
        let mut trainer = TcnnTrainer::new(net, 3);
        trainer.fit(&features, &wm);
        let curve = &trainer.last_loss_curve;
        assert!(curve.len() >= 2, "at least two epochs");
        let first = curve[0];
        let last = *curve.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn predict_all_keeps_observed_and_fills_rest() {
        let (features, truth) = setup(6, 81);
        let wm = observed_matrix(&truth, 0.3, 2);
        let cfg = TcnnConfig::test_scale();
        let net =
            TcnnNet::new(limeqo_sim::features::NODE_FEATURE_DIM, 0, features.n, features.k, cfg, 4);
        let mut trainer = TcnnTrainer::new(net, 5);
        trainer.fit(&features, &wm);
        let pred = trainer.predict_all(&features, &wm);
        for i in 0..wm.n_rows() {
            for j in 0..wm.n_cols() {
                match wm.cell(i, j) {
                    Cell::Complete(v) => assert_eq!(pred[(i, j)], v),
                    _ => assert!(pred[(i, j)] > 0.0 && pred[(i, j)].is_finite()),
                }
            }
        }
    }

    #[test]
    fn censored_predictions_clamped() {
        let (features, truth) = setup(5, 82);
        let mut wm = observed_matrix(&truth, 0.2, 3);
        let (r, c) = wm.unobserved_cells().next().expect("unobserved");
        wm.set_censored(r, c, 1e5);
        let cfg = TcnnConfig::test_scale();
        let net =
            TcnnNet::new(limeqo_sim::features::NODE_FEATURE_DIM, 2, features.n, features.k, cfg, 6);
        let mut trainer = TcnnTrainer::new(net, 7);
        trainer.fit(&features, &wm);
        let pred = trainer.predict_all(&features, &wm);
        assert!(pred[(r, c)] >= 1e5);
    }

    #[test]
    fn warm_start_keeps_transform_and_improves() {
        let (features, truth) = setup(6, 83);
        let wm1 = observed_matrix(&truth, 0.2, 4);
        let wm2 = observed_matrix(&truth, 0.4, 4);
        let cfg = TcnnConfig::test_scale();
        let net =
            TcnnNet::new(limeqo_sim::features::NODE_FEATURE_DIM, 2, features.n, features.k, cfg, 8);
        let mut trainer = TcnnTrainer::new(net, 9);
        trainer.fit(&features, &wm1);
        let t1 = trainer.transform().expect("fitted");
        trainer.fit(&features, &wm2);
        let t2 = trainer.transform().expect("kept");
        assert_eq!(t1.mu, t2.mu);
        assert_eq!(t1.sigma, t2.sigma);
    }
}
