//! Neural completers implementing `limeqo_core::Completer`.
//!
//! * [`PlainTcnnCompleter`] — the Bao-style TCNN (no embeddings): plan
//!   trees in, latency out. Used by the Bao-Cache baseline and the pure
//!   TCNN ablation of Fig. 12.
//! * [`TransductiveTcnnCompleter`] — LimeQO+'s model (Fig. 4): tree
//!   convolution features concatenated with r-dimensional query/hint
//!   embeddings. "The learned embeddings … are isomorphic to the linear
//!   decomposition matrices Q and H."
//!
//! Both retrain on each `complete()` call, warm-starting from the previous
//! step's weights, then run inference over all not-yet-completed cells —
//! which is what the harness meters as the neural methods' overhead.

use crate::config::TcnnConfig;
use crate::features::WorkloadFeatures;
use crate::net::TcnnNet;
use crate::trainer::TcnnTrainer;
use limeqo_core::complete::Completer;
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_linalg::Mat;
use limeqo_sim::features::NODE_FEATURE_DIM;
use limeqo_sim::workloads::Workload;
use std::sync::Arc;

/// Bao-style plain TCNN completer.
pub struct PlainTcnnCompleter {
    features: Arc<WorkloadFeatures>,
    trainer: TcnnTrainer,
}

impl PlainTcnnCompleter {
    /// Featurize the workload and initialize the model. Prefer
    /// [`PlainTcnnCompleter::with_features`] when several completers share
    /// a workload (featurization is the expensive part).
    pub fn new(workload: &Workload, cfg: TcnnConfig, seed: u64) -> Self {
        Self::with_features(WorkloadFeatures::build(workload), cfg, seed)
    }

    /// Initialize from pre-built features.
    pub fn with_features(features: Arc<WorkloadFeatures>, cfg: TcnnConfig, seed: u64) -> Self {
        let net = TcnnNet::new(NODE_FEATURE_DIM, 0, features.n, features.k, cfg, seed);
        PlainTcnnCompleter { features, trainer: TcnnTrainer::new(net, seed ^ 0x9A1) }
    }

    /// Epoch losses of the most recent training round.
    pub fn last_loss_curve(&self) -> &[f64] {
        &self.trainer.last_loss_curve
    }
}

impl Completer for PlainTcnnCompleter {
    fn name(&self) -> &'static str {
        "tcnn"
    }

    fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
        self.trainer.fit(&self.features, wm);
        self.trainer.predict_all(&self.features, wm)
    }
}

/// LimeQO+'s transductive TCNN completer.
pub struct TransductiveTcnnCompleter {
    features: Arc<WorkloadFeatures>,
    trainer: TcnnTrainer,
}

impl TransductiveTcnnCompleter {
    /// Featurize the workload and initialize the model with embedding rank
    /// `rank` (paper: r = 5).
    pub fn new(workload: &Workload, rank: usize, cfg: TcnnConfig, seed: u64) -> Self {
        Self::with_features(WorkloadFeatures::build(workload), rank, cfg, seed)
    }

    /// Initialize from pre-built features.
    pub fn with_features(
        features: Arc<WorkloadFeatures>,
        rank: usize,
        cfg: TcnnConfig,
        seed: u64,
    ) -> Self {
        assert!(rank > 0, "transductive TCNN requires rank >= 1");
        let net = TcnnNet::new(NODE_FEATURE_DIM, rank, features.n, features.k, cfg, seed);
        TransductiveTcnnCompleter { features, trainer: TcnnTrainer::new(net, seed ^ 0x9A2) }
    }

    /// Epoch losses of the most recent training round.
    pub fn last_loss_curve(&self) -> &[f64] {
        &self.trainer.last_loss_curve
    }
}

impl Completer for TransductiveTcnnCompleter {
    fn name(&self) -> &'static str {
        "transductive-tcnn"
    }

    fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
        self.trainer.fit(&self.features, wm);
        self.trainer.predict_all(&self.features, wm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limeqo_core::matrix::Cell;
    use limeqo_linalg::rng::SeededRng;
    use limeqo_sim::workloads::WorkloadSpec;

    fn setup(n: usize, seed: u64) -> (Workload, Mat) {
        let mut w = WorkloadSpec::tiny(n, seed).build();
        let o = w.build_oracle();
        (w, o.true_latency)
    }

    fn observed(truth: &Mat, frac: f64, seed: u64) -> WorkloadMatrix {
        let mut rng = SeededRng::new(seed);
        let (n, k) = truth.shape();
        let mut wm = WorkloadMatrix::new(n, k);
        for i in 0..n {
            wm.set_complete(i, 0, truth[(i, 0)]);
            for j in 1..k {
                if rng.chance(frac) {
                    wm.set_complete(i, j, truth[(i, j)]);
                }
            }
        }
        wm
    }

    #[test]
    fn plain_completer_contract() {
        let (w, truth) = setup(6, 90);
        let wm = observed(&truth, 0.25, 1);
        let mut c = PlainTcnnCompleter::new(&w, TcnnConfig::test_scale(), 2);
        let pred = c.complete(&wm);
        assert_eq!(pred.shape(), truth.shape());
        for i in 0..wm.n_rows() {
            for j in 0..wm.n_cols() {
                if let Cell::Complete(v) = wm.cell(i, j) {
                    assert_eq!(pred[(i, j)], v);
                } else {
                    assert!(pred[(i, j)] > 0.0);
                }
            }
        }
    }

    #[test]
    fn transductive_learns_better_than_untrained_guess() {
        let (w, truth) = setup(8, 91);
        let wm = observed(&truth, 0.35, 2);
        let features = WorkloadFeatures::build(&w);
        let mut c =
            TransductiveTcnnCompleter::with_features(features, 3, TcnnConfig::test_scale(), 3);
        let pred = c.complete(&wm);
        // Held-out relative error in log space should beat a constant
        // predictor (the mean observed latency).
        let mut observed_lats = Vec::new();
        for i in 0..wm.n_rows() {
            for j in 0..wm.n_cols() {
                if let Cell::Complete(v) = wm.cell(i, j) {
                    observed_lats.push(v);
                }
            }
        }
        let mean = observed_lats.iter().sum::<f64>() / observed_lats.len() as f64;
        let (mut model_err, mut const_err, mut count) = (0.0, 0.0, 0);
        for (i, j) in wm.unobserved_cells() {
            let t = (1.0 + truth[(i, j)]).ln();
            let m = (1.0 + pred[(i, j)]).ln();
            let c0 = (1.0 + mean).ln();
            model_err += (t - m) * (t - m);
            const_err += (t - c0) * (t - c0);
            count += 1;
        }
        assert!(count > 0);
        assert!(
            model_err < const_err,
            "model {model_err} vs constant {const_err} over {count} cells"
        );
    }

    #[test]
    fn warm_start_across_calls() {
        let (w, truth) = setup(6, 92);
        let features = WorkloadFeatures::build(&w);
        let mut c =
            TransductiveTcnnCompleter::with_features(features, 2, TcnnConfig::test_scale(), 4);
        let wm1 = observed(&truth, 0.2, 5);
        let _ = c.complete(&wm1);
        let first_loss = c.last_loss_curve().first().copied().unwrap();
        let wm2 = observed(&truth, 0.2, 5);
        let _ = c.complete(&wm2);
        let warm_first_loss = c.last_loss_curve().first().copied().unwrap();
        // Warm-started training should start from a better loss than the
        // first cold epoch.
        assert!(warm_first_loss < first_loss, "{warm_first_loss} vs {first_loss}");
    }
}
