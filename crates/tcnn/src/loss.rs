//! Training losses: MSE for completed cells, the censored loss of Eq. 8
//! for timed-out cells.
//!
//! Eq. 8: `L(ŷ, y, τ) = (1/n) Σ 1{ŷᵢ < τᵢ} · (ŷᵢ − yᵢ)²` — a censored
//! sample (where only the lower bound τ = the recorded timeout is known,
//! so y = τ) penalizes the model only when it predicts *below* the bound;
//! any prediction at or above the bound is consistent with the evidence
//! and contributes zero loss.

/// One training target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Completed execution: exact (transformed) latency.
    Exact(f64),
    /// Censored execution: (transformed) lower bound τ.
    Censored(f64),
}

/// Per-sample loss value and gradient w.r.t. the prediction.
pub fn loss_and_grad(pred: f64, target: Target) -> (f64, f64) {
    match target {
        Target::Exact(y) => {
            let d = pred - y;
            (d * d, 2.0 * d)
        }
        Target::Censored(tau) => {
            if pred < tau {
                let d = pred - tau;
                (d * d, 2.0 * d)
            } else {
                (0.0, 0.0)
            }
        }
    }
}

/// Mean loss over a batch (diagnostics).
pub fn batch_loss(preds: &[f64], targets: &[Target]) -> f64 {
    assert_eq!(preds.len(), targets.len());
    if preds.is_empty() {
        return 0.0;
    }
    preds.iter().zip(targets).map(|(&p, &t)| loss_and_grad(p, t).0).sum::<f64>()
        / preds.len() as f64
}

/// Latency normalization for training: `y = (ln(1 + lat) − μ) / σ`.
/// Monotone, so censoring semantics survive the transform.
#[derive(Debug, Clone, Copy)]
pub struct LatencyTransform {
    /// Mean of `ln(1 + lat)` over the fitting sample.
    pub mu: f64,
    /// Std of the same (floored away from zero).
    pub sigma: f64,
}

impl LatencyTransform {
    /// Fit from raw latencies.
    pub fn fit(latencies: &[f64]) -> LatencyTransform {
        let logs: Vec<f64> = latencies.iter().map(|&l| (1.0 + l.max(0.0)).ln()).collect();
        let n = logs.len().max(1) as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n;
        LatencyTransform { mu, sigma: var.sqrt().max(1e-3) }
    }

    /// Latency → model space.
    pub fn forward(&self, latency: f64) -> f64 {
        ((1.0 + latency.max(0.0)).ln() - self.mu) / self.sigma
    }

    /// Model space → latency.
    pub fn inverse(&self, y: f64) -> f64 {
        ((y * self.sigma + self.mu).exp() - 1.0).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_loss_is_squared_error() {
        let (l, g) = loss_and_grad(3.0, Target::Exact(1.0));
        assert_eq!(l, 4.0);
        assert_eq!(g, 4.0);
    }

    #[test]
    fn censored_loss_one_sided() {
        // Below the bound: penalized.
        let (l, g) = loss_and_grad(1.0, Target::Censored(2.0));
        assert_eq!(l, 1.0);
        assert_eq!(g, -2.0);
        // At/above the bound: free.
        assert_eq!(loss_and_grad(2.0, Target::Censored(2.0)), (0.0, 0.0));
        assert_eq!(loss_and_grad(5.0, Target::Censored(2.0)), (0.0, 0.0));
    }

    #[test]
    fn batch_loss_averages() {
        let l = batch_loss(&[1.0, 5.0], &[Target::Exact(0.0), Target::Censored(2.0)]);
        assert_eq!(l, 0.5); // (1 + 0) / 2
    }

    #[test]
    fn transform_round_trips() {
        let t = LatencyTransform::fit(&[0.1, 1.0, 10.0, 100.0]);
        for &lat in &[0.05, 0.5, 5.0, 50.0] {
            let y = t.forward(lat);
            let back = t.inverse(y);
            assert!((back - lat).abs() / lat < 1e-9, "{lat} -> {y} -> {back}");
        }
    }

    #[test]
    fn transform_monotone() {
        let t = LatencyTransform::fit(&[1.0, 2.0, 3.0]);
        assert!(t.forward(1.0) < t.forward(2.0));
        assert!(t.inverse(-1.0) < t.inverse(1.0));
    }
}
