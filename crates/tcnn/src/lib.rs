//! Tree convolutional neural networks for LimeQO+ (paper §4.3.2).
//!
//! PyTorch is not available offline, so this crate implements the needed
//! neural stack from scratch with manual backpropagation:
//!
//! * [`batch`] — flattening plan trees into batched node arrays so the
//!   tree convolution runs as dense matrix multiplies,
//! * [`net`] — the network: three tree-convolution layers (Mou et al.'s
//!   continuous binary tree convolution, as in Neo/Bao) with dropout
//!   between them, dynamic max pooling, and a fully connected head;
//!   the *transductive* variant concatenates learned query/hint
//!   embeddings (the low-rank `Q`/`H` of Fig. 4) before the head,
//! * [`loss`] — standard MSE plus the censored loss of Eq. 8
//!   (`1{ŷ<τ} · (ŷ−τ)²` for timed-out cells),
//! * [`adam`] — the Adam optimizer,
//! * [`trainer`] — minibatch training with the paper's convergence rule
//!   and crossbeam data-parallel gradient shards,
//! * [`features`] — per-workload featurization of all (query, hint) plans,
//! * [`completer`] — [`PlainTcnnCompleter`] (Bao-style TCNN) and
//!   [`TransductiveTcnnCompleter`] (LimeQO+) implementing
//!   `limeqo_core::Completer`, so Algorithm 1 can swap them in directly.
//!
//! Channel widths default smaller than Bao's 256/128/64 to keep the full
//! experiment suite tractable on CPU (see DESIGN.md §3.6); the widths are
//! configurable through [`TcnnConfig`].

#![warn(missing_docs)]

pub mod adam;
pub mod batch;
pub mod completer;
pub mod config;
pub mod features;
pub mod loss;
pub mod net;
pub mod trainer;

pub use completer::{PlainTcnnCompleter, TransductiveTcnnCompleter};
pub use config::TcnnConfig;
pub use features::WorkloadFeatures;
pub use net::TcnnNet;
pub use trainer::TcnnTrainer;
