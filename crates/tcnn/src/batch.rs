//! Flattening plan trees into batched node arrays.
//!
//! The tree convolution is a per-node affine map over (node, left child,
//! right child) triples. Concatenating all nodes of a batch of trees into
//! one matrix lets each layer run as three dense matrix multiplies plus a
//! gather — the standard trick Neo/Bao use on GPU, equally effective for
//! CPU cache behaviour.

use limeqo_linalg::Mat;
use limeqo_sim::features::PlanFeatures;

/// A batch of trees in flat form.
#[derive(Debug, Clone)]
pub struct TreeBatch {
    /// All node feature rows, trees concatenated (total_nodes × D).
    pub nodes: Mat,
    /// Global left-child index per node (-1 = none).
    pub left: Vec<i32>,
    /// Global right-child index per node (-1 = none).
    pub right: Vec<i32>,
    /// Start offset of each tree; length = batch size + 1.
    pub offsets: Vec<usize>,
}

impl TreeBatch {
    /// Build a batch from tree references.
    pub fn build(trees: &[&PlanFeatures]) -> TreeBatch {
        let total: usize = trees.iter().map(|t| t.len()).sum();
        let dim = trees.first().map(|t| t.nodes.cols()).unwrap_or(0);
        let mut nodes = Mat::zeros(total, dim);
        let mut left = Vec::with_capacity(total);
        let mut right = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(trees.len() + 1);
        let mut cursor = 0usize;
        offsets.push(0);
        for t in trees {
            let base = cursor as i32;
            for i in 0..t.len() {
                nodes.row_mut(cursor).copy_from_slice(t.nodes.row(i));
                left.push(if t.left[i] < 0 { -1 } else { t.left[i] + base });
                right.push(if t.right[i] < 0 { -1 } else { t.right[i] + base });
                cursor += 1;
            }
            offsets.push(cursor);
        }
        TreeBatch { nodes, left, right, offsets }
    }

    /// Number of trees in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the batch contains no trees.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.nodes.rows()
    }
}

/// Gather rows of `x` by index; -1 gathers a zero row.
pub fn gather(x: &Mat, idx: &[i32]) -> Mat {
    let mut out = Mat::zeros(idx.len(), x.cols());
    for (r, &i) in idx.iter().enumerate() {
        if i >= 0 {
            out.row_mut(r).copy_from_slice(x.row(i as usize));
        }
    }
    out
}

/// Scatter-add rows of `src` into `target` at `idx` (skipping -1).
pub fn scatter_add(target: &mut Mat, idx: &[i32], src: &Mat) {
    debug_assert_eq!(idx.len(), src.rows());
    for (r, &i) in idx.iter().enumerate() {
        if i >= 0 {
            let dst = target.row_mut(i as usize);
            for (d, &s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }
}

/// Per-tree, per-channel max pooling. Returns the pooled matrix (B × C)
/// and the flat argmax node index for each (tree, channel).
pub fn max_pool(x: &Mat, offsets: &[usize]) -> (Mat, Vec<usize>) {
    let b = offsets.len() - 1;
    let c = x.cols();
    let mut out = Mat::zeros(b, c);
    let mut argmax = vec![0usize; b * c];
    for t in 0..b {
        let (start, end) = (offsets[t], offsets[t + 1]);
        debug_assert!(end > start, "empty tree in batch");
        for ch in 0..c {
            let mut best = f64::NEG_INFINITY;
            let mut best_node = start;
            for node in start..end {
                let v = x[(node, ch)];
                if v > best {
                    best = v;
                    best_node = node;
                }
            }
            out[(t, ch)] = best;
            argmax[t * c + ch] = best_node;
        }
    }
    (out, argmax)
}

/// Backward of [`max_pool`]: route each pooled gradient to its argmax node.
pub fn max_pool_backward(d_out: &Mat, argmax: &[usize], total_nodes: usize) -> Mat {
    let (b, c) = d_out.shape();
    let mut dx = Mat::zeros(total_nodes, c);
    for t in 0..b {
        for ch in 0..c {
            dx[(argmax[t * c + ch], ch)] += d_out[(t, ch)];
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_tree(vals: &[f64]) -> PlanFeatures {
        PlanFeatures { nodes: Mat::from_rows(&[vals]), left: vec![-1], right: vec![-1] }
    }

    fn three_node_tree() -> PlanFeatures {
        PlanFeatures {
            nodes: Mat::from_rows(&[&[1.0, 0.0], &[2.0, 1.0], &[3.0, -1.0]]),
            left: vec![1, -1, -1],
            right: vec![2, -1, -1],
        }
    }

    #[test]
    fn batch_offsets_and_global_indices() {
        let a = leaf_tree(&[5.0, 6.0]);
        let b = three_node_tree();
        let batch = TreeBatch::build(&[&a, &b]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.total_nodes(), 4);
        assert_eq!(batch.offsets, vec![0, 1, 4]);
        // Tree b's root (global index 1) points at globals 2 and 3.
        assert_eq!(batch.left[1], 2);
        assert_eq!(batch.right[1], 3);
        assert_eq!(batch.left[0], -1);
    }

    #[test]
    fn gather_zero_fills_missing() {
        let x = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = gather(&x, &[1, -1, 0]);
        assert_eq!(g.row(0), &[3.0, 4.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[1.0, 2.0]);
    }

    #[test]
    fn scatter_add_accumulates() {
        let mut t = Mat::zeros(2, 2);
        let src = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[4.0, 0.0]]);
        scatter_add(&mut t, &[0, -1, 0], &src);
        assert_eq!(t.row(0), &[5.0, 1.0]);
        assert_eq!(t.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn max_pool_and_backward_roundtrip() {
        let x = Mat::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[-1.0, 9.0]]);
        let offsets = vec![0, 2, 3];
        let (pooled, argmax) = max_pool(&x, &offsets);
        assert_eq!(pooled.row(0), &[3.0, 5.0]); // tree 0: max of rows 0,1
        assert_eq!(pooled.row(1), &[-1.0, 9.0]);
        let d_out = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let dx = max_pool_backward(&d_out, &argmax, 3);
        assert_eq!(dx[(1, 0)], 1.0); // argmax of tree0/ch0 is node 1
        assert_eq!(dx[(0, 1)], 1.0);
        assert_eq!(dx[(2, 0)], 1.0);
        assert_eq!(dx[(2, 1)], 1.0);
        assert_eq!(dx[(0, 0)], 0.0);
    }

    #[test]
    fn max_pool_gradient_is_subgradient() {
        // Sum of dx equals sum of d_out per channel.
        let x = Mat::from_rows(&[&[1.0], &[2.0], &[0.5], &[7.0]]);
        let offsets = vec![0, 2, 4];
        let (_, argmax) = max_pool(&x, &offsets);
        let d_out = Mat::from_rows(&[&[0.3], &[0.7]]);
        let dx = max_pool_backward(&d_out, &argmax, 4);
        let total: f64 = dx.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
