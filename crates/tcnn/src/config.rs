//! TCNN hyperparameters.

/// Configuration shared by the plain and transductive TCNNs.
///
/// Paper settings: "the same TCNN architecture as Bao, except that we add a
/// dropout layer with p = 0.3 between each tree convolution layer … For the
/// embedding layer, we set r = 5. Training is performed with Adam using a
/// batch size of 32, and is run for 100 epochs or convergence (defined as a
/// decrease in training loss of less than 1% over 10 epochs)."
///
/// Defaults below keep those training rules but shrink the convolution
/// channels from Bao's 256/128/64 so the full experiment suite runs on CPU
/// in this environment (see DESIGN.md §3.6). [`TcnnConfig::paper_scale`]
/// restores Bao-size channels.
#[derive(Debug, Clone)]
pub struct TcnnConfig {
    /// Output channels of the three tree-convolution layers.
    pub channels: (usize, usize, usize),
    /// Width of the fully connected hidden layer after pooling.
    pub hidden: usize,
    /// Dropout probability between tree-convolution layers (paper: 0.3).
    pub dropout: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Minibatch size (paper: 32).
    pub batch_size: usize,
    /// Epoch cap for the first (cold) fit (paper: 100).
    pub max_epochs: usize,
    /// Epoch cap for warm-started refits during later exploration steps —
    /// the model "is initialized with the weights from the previous step",
    /// so only the newly observed cells need absorbing.
    pub warm_epochs: usize,
    /// Convergence: stop when loss decreased less than this fraction …
    pub convergence_rel: f64,
    /// … over this many epochs (paper: 1% over 10 epochs).
    pub convergence_window: usize,
    /// Train on censored cells with the Eq. 8 loss (Fig. 16 ablation
    /// disables this, training on complete cells only with plain MSE).
    pub censored_loss: bool,
    /// Worker threads for gradient shards and batched inference
    /// (0 = available parallelism).
    pub threads: usize,
}

impl Default for TcnnConfig {
    fn default() -> Self {
        TcnnConfig {
            channels: (32, 16, 8),
            hidden: 16,
            dropout: 0.3,
            lr: 1e-3,
            batch_size: 32,
            max_epochs: 40,
            warm_epochs: 12,
            convergence_rel: 0.01,
            convergence_window: 3,
            censored_loss: true,
            threads: 0,
        }
    }
}

impl TcnnConfig {
    /// Bao-size network and the paper's full training schedule (expensive
    /// on CPU; exposed for `--full` runs).
    pub fn paper_scale() -> Self {
        TcnnConfig {
            channels: (256, 128, 64),
            hidden: 32,
            max_epochs: 100,
            warm_epochs: 100,
            convergence_window: 10,
            ..Default::default()
        }
    }

    /// A very small network for unit tests.
    pub fn test_scale() -> Self {
        TcnnConfig {
            channels: (8, 8, 4),
            hidden: 8,
            max_epochs: 30,
            warm_epochs: 15,
            batch_size: 16,
            dropout: 0.0,
            ..Default::default()
        }
    }

    /// Resolved worker thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_training_rules() {
        let c = TcnnConfig::default();
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.dropout, 0.3);
        assert!(c.censored_loss);
    }

    #[test]
    fn paper_scale_uses_bao_channels() {
        let c = TcnnConfig::paper_scale();
        assert_eq!(c.channels, (256, 128, 64));
        assert_eq!(c.max_epochs, 100);
        assert_eq!(c.convergence_window, 10);
    }

    #[test]
    fn effective_threads_positive() {
        assert!(TcnnConfig::default().effective_threads() >= 1);
        assert_eq!(TcnnConfig { threads: 3, ..Default::default() }.effective_threads(), 3);
    }
}
