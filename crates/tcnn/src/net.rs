//! The (transductive) tree convolutional network — paper Fig. 4.
//!
//! Architecture: three tree-convolution layers with ReLU and dropout
//! between them, dynamic max pooling over nodes, then — for the
//! transductive variant — concatenation with learned query and hint
//! embedding vectors of size r (the neural analogue of ALS's `Q` and `H`
//! factors: one embedding per matrix row and per matrix column, giving the
//! weight sharing the paper describes), followed by a two-layer fully
//! connected head producing one latency prediction per plan.
//!
//! Everything is explicit forward/backward; the gradient-vs-finite-
//! difference test at the bottom pins the implementation down.

use crate::batch::{gather, max_pool, max_pool_backward, scatter_add, TreeBatch};
use crate::config::TcnnConfig;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// All learnable tensors (used for weights, gradients, and Adam moments —
/// the three always share shapes).
#[derive(Debug, Clone)]
pub struct Tensors {
    /// Conv-1 self/left/right weights (C1 × D) and bias (1 × C1).
    pub w1s: Mat,
    /// Conv-1 left-child weights.
    pub w1l: Mat,
    /// Conv-1 right-child weights.
    pub w1r: Mat,
    /// Conv-1 bias.
    pub b1: Mat,
    /// Conv-2 self weights (C2 × C1).
    pub w2s: Mat,
    /// Conv-2 left-child weights.
    pub w2l: Mat,
    /// Conv-2 right-child weights.
    pub w2r: Mat,
    /// Conv-2 bias.
    pub b2: Mat,
    /// Conv-3 self weights (C3 × C2).
    pub w3s: Mat,
    /// Conv-3 left-child weights.
    pub w3l: Mat,
    /// Conv-3 right-child weights.
    pub w3r: Mat,
    /// Conv-3 bias.
    pub b3: Mat,
    /// Head layer 1 weights (H × (C3 + 2r)).
    pub wf1: Mat,
    /// Head layer 1 bias (1 × H).
    pub bf1: Mat,
    /// Head layer 2 weights (1 × H).
    pub wf2: Mat,
    /// Head layer 2 bias (1 × 1).
    pub bf2: Mat,
    /// Query embeddings (n × r); 0×0 for the plain TCNN.
    pub qe: Mat,
    /// Hint embeddings (k × r); 0×0 for the plain TCNN.
    pub he: Mat,
}

impl Tensors {
    /// Same-shaped zero tensors (gradient / moment buffers).
    pub fn zeros_like(&self) -> Tensors {
        let z = |m: &Mat| Mat::zeros(m.rows(), m.cols());
        Tensors {
            w1s: z(&self.w1s),
            w1l: z(&self.w1l),
            w1r: z(&self.w1r),
            b1: z(&self.b1),
            w2s: z(&self.w2s),
            w2l: z(&self.w2l),
            w2r: z(&self.w2r),
            b2: z(&self.b2),
            w3s: z(&self.w3s),
            w3l: z(&self.w3l),
            w3r: z(&self.w3r),
            b3: z(&self.b3),
            wf1: z(&self.wf1),
            bf1: z(&self.bf1),
            wf2: z(&self.wf2),
            bf2: z(&self.bf2),
            qe: z(&self.qe),
            he: z(&self.he),
        }
    }

    /// Borrow all tensors in canonical order.
    pub fn fields(&self) -> [&Mat; 18] {
        [
            &self.w1s, &self.w1l, &self.w1r, &self.b1, &self.w2s, &self.w2l, &self.w2r, &self.b2,
            &self.w3s, &self.w3l, &self.w3r, &self.b3, &self.wf1, &self.bf1, &self.wf2, &self.bf2,
            &self.qe, &self.he,
        ]
    }

    /// Mutably borrow all tensors in canonical order.
    pub fn fields_mut(&mut self) -> [&mut Mat; 18] {
        [
            &mut self.w1s,
            &mut self.w1l,
            &mut self.w1r,
            &mut self.b1,
            &mut self.w2s,
            &mut self.w2l,
            &mut self.w2r,
            &mut self.b2,
            &mut self.w3s,
            &mut self.w3l,
            &mut self.w3r,
            &mut self.b3,
            &mut self.wf1,
            &mut self.bf1,
            &mut self.wf2,
            &mut self.bf2,
            &mut self.qe,
            &mut self.he,
        ]
    }

    /// Accumulate `other` into `self` (gradient reduction across shards).
    pub fn add_assign(&mut self, other: &Tensors) {
        for (a, b) in self.fields_mut().into_iter().zip(other.fields()) {
            a.axpy(1.0, b).expect("tensor shapes match");
        }
    }

    /// Scale all tensors (e.g. 1/batch for mean-loss gradients).
    pub fn scale_assign(&mut self, s: f64) {
        for a in self.fields_mut() {
            a.map_inplace(|v| v * s);
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.fields().iter().map(|m| m.len()).sum()
    }
}

/// Intermediate activations needed by backward.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    pre1: Mat,
    mask1: Option<Mat>,
    in2: Mat,
    pre2: Mat,
    mask2: Option<Mat>,
    in3: Mat,
    pre3: Mat,
    argmax: Vec<usize>,
    concat_in: Mat,
    pre_f1: Mat,
    a_f1: Mat,
}

/// The network.
#[derive(Debug, Clone)]
pub struct TcnnNet {
    /// Learnable weights.
    pub weights: Tensors,
    /// Embedding rank r (0 = plain TCNN).
    pub rank: usize,
    /// Node feature dimension.
    pub input_dim: usize,
    cfg: TcnnConfig,
}

fn kaiming(rows: usize, cols: usize, fan_in: usize, rng: &mut SeededRng) -> Mat {
    let bound = (6.0 / fan_in.max(1) as f64).sqrt();
    rng.uniform_mat(rows, cols, -bound, bound)
}

fn relu(x: &Mat) -> Mat {
    x.map(|v| if v > 0.0 { v } else { 0.0 })
}

fn relu_backward(pre: &Mat, d_out: &Mat) -> Mat {
    debug_assert_eq!(pre.shape(), d_out.shape());
    let mut dx = d_out.clone();
    for (d, &p) in dx.as_mut_slice().iter_mut().zip(pre.as_slice()) {
        if p <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

fn add_bias(x: &mut Mat, b: &Mat) {
    debug_assert_eq!(b.rows(), 1);
    debug_assert_eq!(b.cols(), x.cols());
    for r in 0..x.rows() {
        for (v, &bias) in x.row_mut(r).iter_mut().zip(b.row(0)) {
            *v += bias;
        }
    }
}

fn col_sum(x: &Mat) -> Mat {
    let mut out = Mat::zeros(1, x.cols());
    for r in 0..x.rows() {
        for (o, &v) in out.row_mut(0).iter_mut().zip(x.row(r)) {
            *o += v;
        }
    }
    out
}

impl TcnnNet {
    /// Initialize a network. `rank = 0` builds the plain TCNN; `rank > 0`
    /// the transductive variant with `n_queries × rank` and
    /// `n_hints × rank` embedding tables.
    pub fn new(
        input_dim: usize,
        rank: usize,
        n_queries: usize,
        n_hints: usize,
        cfg: TcnnConfig,
        seed: u64,
    ) -> Self {
        let mut rng = SeededRng::new(seed ^ 0x7C11);
        let (c1, c2, c3) = cfg.channels;
        let h = cfg.hidden;
        let head_in = c3 + 2 * rank;
        let weights = Tensors {
            w1s: kaiming(c1, input_dim, input_dim * 3, &mut rng),
            w1l: kaiming(c1, input_dim, input_dim * 3, &mut rng),
            w1r: kaiming(c1, input_dim, input_dim * 3, &mut rng),
            b1: Mat::zeros(1, c1),
            w2s: kaiming(c2, c1, c1 * 3, &mut rng),
            w2l: kaiming(c2, c1, c1 * 3, &mut rng),
            w2r: kaiming(c2, c1, c1 * 3, &mut rng),
            b2: Mat::zeros(1, c2),
            w3s: kaiming(c3, c2, c2 * 3, &mut rng),
            w3l: kaiming(c3, c2, c2 * 3, &mut rng),
            w3r: kaiming(c3, c2, c2 * 3, &mut rng),
            b3: Mat::zeros(1, c3),
            wf1: kaiming(h, head_in, head_in, &mut rng),
            bf1: Mat::zeros(1, h),
            wf2: kaiming(1, h, h, &mut rng),
            bf2: Mat::zeros(1, 1),
            qe: if rank > 0 {
                rng.uniform_mat(n_queries, rank, 0.0, 0.5)
            } else {
                Mat::zeros(0, 0)
            },
            he: if rank > 0 { rng.uniform_mat(n_hints, rank, 0.0, 0.5) } else { Mat::zeros(0, 0) },
        };
        TcnnNet { weights, rank, input_dim, cfg }
    }

    /// Configuration in force.
    pub fn cfg(&self) -> &TcnnConfig {
        &self.cfg
    }

    fn conv_forward(
        x: &Mat,
        left: &[i32],
        right: &[i32],
        ws: &Mat,
        wl: &Mat,
        wr: &Mat,
        b: &Mat,
    ) -> Mat {
        let mut out = x.matmul_t(ws).expect("conv self");
        let xl = gather(x, left);
        let xr = gather(x, right);
        out.axpy(1.0, &xl.matmul_t(wl).expect("conv left")).expect("shape");
        out.axpy(1.0, &xr.matmul_t(wr).expect("conv right")).expect("shape");
        add_bias(&mut out, b);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn conv_backward(
        x: &Mat,
        left: &[i32],
        right: &[i32],
        d_out: &Mat,
        ws: &Mat,
        wl: &Mat,
        wr: &Mat,
        g_ws: &mut Mat,
        g_wl: &mut Mat,
        g_wr: &mut Mat,
        g_b: &mut Mat,
    ) -> Mat {
        let xl = gather(x, left);
        let xr = gather(x, right);
        g_ws.axpy(1.0, &d_out.t_matmul(x).expect("gWs")).expect("shape");
        g_wl.axpy(1.0, &d_out.t_matmul(&xl).expect("gWl")).expect("shape");
        g_wr.axpy(1.0, &d_out.t_matmul(&xr).expect("gWr")).expect("shape");
        g_b.axpy(1.0, &col_sum(d_out)).expect("shape");
        let mut dx = d_out.matmul(ws).expect("dx self");
        let dxl = d_out.matmul(wl).expect("dx left");
        scatter_add(&mut dx, left, &dxl);
        let dxr = d_out.matmul(wr).expect("dx right");
        scatter_add(&mut dx, right, &dxr);
        dx
    }

    fn dropout_mask(&self, rows: usize, cols: usize, rng: &mut SeededRng) -> Mat {
        let p = self.cfg.dropout;
        let keep = 1.0 - p;
        Mat::from_fn(rows, cols, |_, _| if rng.chance(p) { 0.0 } else { 1.0 / keep })
    }

    /// Forward pass over a batch. `qidx`/`hidx` give each tree's matrix
    /// coordinates (ignored by the plain TCNN). Passing a dropout RNG
    /// enables training mode.
    pub fn forward(
        &self,
        batch: &TreeBatch,
        qidx: &[usize],
        hidx: &[usize],
        mut dropout_rng: Option<&mut SeededRng>,
    ) -> (Vec<f64>, ForwardCache) {
        let w = &self.weights;
        let b = batch.len();
        debug_assert!(self.rank == 0 || (qidx.len() == b && hidx.len() == b));

        let pre1 = Self::conv_forward(
            &batch.nodes,
            &batch.left,
            &batch.right,
            &w.w1s,
            &w.w1l,
            &w.w1r,
            &w.b1,
        );
        let a1 = relu(&pre1);
        let (mask1, in2) = match dropout_rng.as_deref_mut() {
            Some(rng) if self.cfg.dropout > 0.0 => {
                let m = self.dropout_mask(a1.rows(), a1.cols(), rng);
                let dropped = a1.hadamard(&m).expect("shape");
                (Some(m), dropped)
            }
            _ => (None, a1),
        };
        let pre2 =
            Self::conv_forward(&in2, &batch.left, &batch.right, &w.w2s, &w.w2l, &w.w2r, &w.b2);
        let a2 = relu(&pre2);
        let (mask2, in3) = match dropout_rng {
            Some(rng) if self.cfg.dropout > 0.0 => {
                let m = self.dropout_mask(a2.rows(), a2.cols(), rng);
                let dropped = a2.hadamard(&m).expect("shape");
                (Some(m), dropped)
            }
            _ => (None, a2),
        };
        let pre3 =
            Self::conv_forward(&in3, &batch.left, &batch.right, &w.w3s, &w.w3l, &w.w3r, &w.b3);
        let a3 = relu(&pre3);
        let (pooled, argmax) = max_pool(&a3, &batch.offsets);

        // Concatenate embeddings for the transductive variant.
        let head_in = self.cfg.channels.2 + 2 * self.rank;
        let mut concat_in = Mat::zeros(b, head_in);
        for t in 0..b {
            concat_in.row_mut(t)[..self.cfg.channels.2].copy_from_slice(pooled.row(t));
            if self.rank > 0 {
                let c3 = self.cfg.channels.2;
                concat_in.row_mut(t)[c3..c3 + self.rank].copy_from_slice(w.qe.row(qidx[t]));
                concat_in.row_mut(t)[c3 + self.rank..].copy_from_slice(w.he.row(hidx[t]));
            }
        }
        let mut pre_f1 = concat_in.matmul_t(&w.wf1).expect("fc1");
        add_bias(&mut pre_f1, &w.bf1);
        let a_f1 = relu(&pre_f1);
        let mut out = a_f1.matmul_t(&w.wf2).expect("fc2");
        add_bias(&mut out, &w.bf2);
        let preds: Vec<f64> = (0..b).map(|t| out[(t, 0)]).collect();

        (
            preds,
            ForwardCache {
                pre1,
                mask1,
                in2,
                pre2,
                mask2,
                in3,
                pre3,
                argmax,
                concat_in,
                pre_f1,
                a_f1,
            },
        )
    }

    /// Backward pass: accumulate gradients of the per-sample prediction
    /// gradients `d_preds` into `grads`.
    pub fn backward(
        &self,
        batch: &TreeBatch,
        qidx: &[usize],
        hidx: &[usize],
        cache: &ForwardCache,
        d_preds: &[f64],
        grads: &mut Tensors,
    ) {
        let w = &self.weights;
        let b = batch.len();
        let d_out = Mat::from_fn(b, 1, |t, _| d_preds[t]);

        // fc2
        grads.wf2.axpy(1.0, &d_out.t_matmul(&cache.a_f1).expect("gWf2")).expect("shape");
        grads.bf2.axpy(1.0, &col_sum(&d_out)).expect("shape");
        let d_a_f1 = d_out.matmul(&w.wf2).expect("dAf1");
        let d_pre_f1 = relu_backward(&cache.pre_f1, &d_a_f1);
        // fc1
        grads.wf1.axpy(1.0, &d_pre_f1.t_matmul(&cache.concat_in).expect("gWf1")).expect("shape");
        grads.bf1.axpy(1.0, &col_sum(&d_pre_f1)).expect("shape");
        let d_concat = d_pre_f1.matmul(&w.wf1).expect("dConcat");

        // Split into pooled gradient and embedding gradients.
        let c3 = self.cfg.channels.2;
        let mut d_pool = Mat::zeros(b, c3);
        for t in 0..b {
            d_pool.row_mut(t).copy_from_slice(&d_concat.row(t)[..c3]);
            if self.rank > 0 {
                let qrow = qidx[t];
                let hrow = hidx[t];
                for j in 0..self.rank {
                    grads.qe[(qrow, j)] += d_concat[(t, c3 + j)];
                    grads.he[(hrow, j)] += d_concat[(t, c3 + self.rank + j)];
                }
            }
        }

        let d_a3 = max_pool_backward(&d_pool, &cache.argmax, batch.total_nodes());
        let d_pre3 = relu_backward(&cache.pre3, &d_a3);
        let d_in3 = Self::conv_backward(
            &cache.in3,
            &batch.left,
            &batch.right,
            &d_pre3,
            &w.w3s,
            &w.w3l,
            &w.w3r,
            &mut grads.w3s,
            &mut grads.w3l,
            &mut grads.w3r,
            &mut grads.b3,
        );
        let d_a2 = match &cache.mask2 {
            Some(m) => d_in3.hadamard(m).expect("shape"),
            None => d_in3,
        };
        let d_pre2 = relu_backward(&cache.pre2, &d_a2);
        let d_in2 = Self::conv_backward(
            &cache.in2,
            &batch.left,
            &batch.right,
            &d_pre2,
            &w.w2s,
            &w.w2l,
            &w.w2r,
            &mut grads.w2s,
            &mut grads.w2l,
            &mut grads.w2r,
            &mut grads.b2,
        );
        let d_a1 = match &cache.mask1 {
            Some(m) => d_in2.hadamard(m).expect("shape"),
            None => d_in2,
        };
        let d_pre1 = relu_backward(&cache.pre1, &d_a1);
        let _ = Self::conv_backward(
            &batch.nodes,
            &batch.left,
            &batch.right,
            &d_pre1,
            &w.w1s,
            &w.w1l,
            &w.w1r,
            &mut grads.w1s,
            &mut grads.w1l,
            &mut grads.w1r,
            &mut grads.b1,
        );
    }

    /// Grow the query-embedding table to `n_queries` rows (workload shift).
    pub fn grow_queries(&mut self, n_queries: usize, rng: &mut SeededRng) {
        if self.rank == 0 || n_queries <= self.weights.qe.rows() {
            return;
        }
        let extra = rng.uniform_mat(n_queries - self.weights.qe.rows(), self.rank, 0.0, 0.5);
        self.weights.qe = self.weights.qe.vstack(&extra).expect("embedding grow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limeqo_sim::features::PlanFeatures;

    fn toy_tree(seed: u64, nodes: usize) -> PlanFeatures {
        let mut rng = SeededRng::new(seed);
        let dim = 4;
        let feats = rng.uniform_mat(nodes, dim, -1.0, 1.0);
        // A left-deep chain: node i has children i+1 (left) only for joins.
        let mut left = vec![-1i32; nodes];
        let mut right = vec![-1i32; nodes];
        for i in 0..nodes.saturating_sub(2) {
            left[i] = (i + 1) as i32;
            right[i] = (nodes - 1) as i32;
        }
        PlanFeatures { nodes: feats, left, right }
    }

    fn toy_net(rank: usize, seed: u64) -> TcnnNet {
        let cfg =
            TcnnConfig { channels: (6, 5, 4), hidden: 5, dropout: 0.0, ..TcnnConfig::test_scale() };
        TcnnNet::new(4, rank, 3, 4, cfg, seed)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let net = toy_net(2, 1);
        let t1 = toy_tree(10, 5);
        let t2 = toy_tree(11, 3);
        let batch = TreeBatch::build(&[&t1, &t2]);
        let (p1, _) = net.forward(&batch, &[0, 1], &[2, 3], None);
        let (p2, _) = net.forward(&batch, &[0, 1], &[2, 3], None);
        assert_eq!(p1.len(), 2);
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn plain_net_has_no_embeddings() {
        let net = toy_net(0, 2);
        assert_eq!(net.weights.qe.shape(), (0, 0));
        let t = toy_tree(12, 4);
        let batch = TreeBatch::build(&[&t]);
        let (p, _) = net.forward(&batch, &[], &[], None);
        assert_eq!(p.len(), 1);
    }

    /// Finite-difference gradient check over every weight tensor — the
    /// definitive correctness test for the manual backprop.
    #[test]
    fn gradients_match_finite_differences() {
        let mut net = toy_net(2, 3);
        let t1 = toy_tree(13, 5);
        let t2 = toy_tree(14, 4);
        let batch = TreeBatch::build(&[&t1, &t2]);
        let qidx = [1usize, 2];
        let hidx = [0usize, 3];
        // Loss = 0.5 * sum(pred^2) so dL/dpred = pred.
        let loss = |net: &TcnnNet| {
            let (p, _) = net.forward(&batch, &qidx, &hidx, None);
            0.5 * p.iter().map(|v| v * v).sum::<f64>()
        };
        let (preds, cache) = net.forward(&batch, &qidx, &hidx, None);
        let mut grads = net.weights.zeros_like();
        net.backward(&batch, &qidx, &hidx, &cache, &preds, &mut grads);

        let eps = 1e-6;
        // Probe several entries of every tensor.
        for field in 0..18 {
            let (rows, cols) = grads.fields()[field].shape();
            if rows == 0 {
                continue;
            }
            let probes = [(0, 0), (rows - 1, cols - 1), (rows / 2, cols / 2)];
            for &(r, c) in &probes {
                let analytic = grads.fields()[field][(r, c)];
                let original = net.weights.fields()[field][(r, c)];
                net.weights.fields_mut()[field][(r, c)] = original + eps;
                let up = loss(&net);
                net.weights.fields_mut()[field][(r, c)] = original - eps;
                let down = loss(&net);
                net.weights.fields_mut()[field][(r, c)] = original;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "field {field} ({r},{c}): analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn dropout_zeroes_and_scales() {
        let cfg =
            TcnnConfig { channels: (6, 5, 4), hidden: 5, dropout: 0.5, ..TcnnConfig::test_scale() };
        let net = TcnnNet::new(4, 0, 1, 1, cfg, 4);
        let mut rng = SeededRng::new(5);
        let m = net.dropout_mask(50, 20, &mut rng);
        let zeros = m.as_slice().iter().filter(|&&v| v == 0.0).count();
        let scaled = m.as_slice().iter().filter(|&&v| (v - 2.0).abs() < 1e-12).count();
        assert_eq!(zeros + scaled, 1000);
        assert!(zeros > 350 && zeros < 650, "zeros {zeros}");
    }

    #[test]
    fn grow_queries_extends_table() {
        let mut net = toy_net(2, 6);
        let mut rng = SeededRng::new(7);
        net.grow_queries(10, &mut rng);
        assert_eq!(net.weights.qe.shape(), (10, 2));
        // No-op when already large enough.
        net.grow_queries(5, &mut rng);
        assert_eq!(net.weights.qe.rows(), 10);
    }

    #[test]
    fn tensors_add_and_scale() {
        let net = toy_net(1, 8);
        let mut a = net.weights.zeros_like();
        let mut b = net.weights.zeros_like();
        b.b1[(0, 0)] = 2.0;
        a.add_assign(&b);
        a.scale_assign(0.5);
        assert_eq!(a.b1[(0, 0)], 1.0);
    }

    #[test]
    fn param_count_positive() {
        let net = toy_net(2, 9);
        assert!(net.weights.param_count() > 100);
    }
}
