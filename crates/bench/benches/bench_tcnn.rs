//! TCNN training and inference kernels — the overhead side of Figs. 7/13
//! (the paper's LimeQO+ spent ~3600 s of CPU overhead over 6 h vs ~10 s
//! for ALS).

use criterion::{criterion_group, criterion_main, Criterion};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_linalg::rng::SeededRng;
use limeqo_sim::features::NODE_FEATURE_DIM;
use limeqo_sim::workloads::WorkloadSpec;
use limeqo_tcnn::batch::TreeBatch;
use limeqo_tcnn::{TcnnConfig, TcnnNet, TcnnTrainer, WorkloadFeatures};
use std::hint::black_box;

fn observed(truth: &limeqo_linalg::Mat, frac: f64, seed: u64) -> WorkloadMatrix {
    let mut rng = SeededRng::new(seed);
    let (n, k) = truth.shape();
    let mut wm = WorkloadMatrix::new(n, k);
    for i in 0..n {
        wm.set_complete(i, 0, truth[(i, 0)]);
        for j in 1..k {
            if rng.chance(frac) {
                wm.set_complete(i, j, truth[(i, j)]);
            }
        }
    }
    wm
}

fn bench_tcnn(c: &mut Criterion) {
    let mut w = WorkloadSpec::tiny(30, 60).build();
    let m = w.build_oracle();
    let features = WorkloadFeatures::build(&w);
    let wm = observed(&m.true_latency, 0.25, 1);

    // Forward/backward over one batch of 32 trees.
    let net = TcnnNet::new(NODE_FEATURE_DIM, 5, features.n, features.k, TcnnConfig::default(), 2);
    let trees: Vec<_> = (0..32).map(|i| features.tree(i % 30, (i * 3) % 49)).collect();
    let batch = TreeBatch::build(&trees);
    let qidx: Vec<usize> = (0..32).map(|i| i % 30).collect();
    let hidx: Vec<usize> = (0..32).map(|i| (i * 3) % 49).collect();
    c.bench_function("tcnn_forward_batch32", |b| {
        b.iter(|| black_box(net.forward(&batch, &qidx, &hidx, None)))
    });
    c.bench_function("tcnn_forward_backward_batch32", |b| {
        b.iter(|| {
            let (preds, cache) = net.forward(&batch, &qidx, &hidx, None);
            let mut grads = net.weights.zeros_like();
            net.backward(&batch, &qidx, &hidx, &cache, &preds, &mut grads);
            black_box(grads)
        })
    });

    // Full warm fit + full-matrix inference (one exploration step's model
    // overhead on a 30 × 49 workload).
    let mut group = c.benchmark_group("tcnn_step");
    group.sample_size(10);
    group.bench_function("fit_plus_predict_all", |b| {
        let net = TcnnNet::new(
            NODE_FEATURE_DIM,
            5,
            features.n,
            features.k,
            TcnnConfig { max_epochs: 5, warm_epochs: 5, ..TcnnConfig::default() },
            3,
        );
        let mut trainer = TcnnTrainer::new(net, 4);
        b.iter(|| {
            trainer.fit(&features, &wm);
            black_box(trainer.predict_all(&features, &wm))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_tcnn);
criterion_main!(benches);
