//! Kernels of the linear algebra substrate at workload-matrix shapes
//! (hint dimension 49, rank 5).

use criterion::{criterion_group, criterion_main, Criterion};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::{cholesky_solve, eigen_sym, ridge_solve, svd_thin, Mat};
use std::hint::black_box;

fn bench_linalg(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let w = rng.uniform_mat(3133, 49, 0.1, 10.0); // CEB-shaped
    let h = rng.uniform_mat(49, 5, 0.0, 1.0);
    let gram = {
        let mut g = h.t_matmul(&h).unwrap();
        for i in 0..5 {
            g[(i, i)] += 0.2;
        }
        g
    };
    let rhs = rng.uniform_mat(5, 49, 0.0, 1.0);
    let small = rng.uniform_mat(500, 49, 0.1, 10.0);

    c.bench_function("matmul_3133x49_by_49x5", |b| b.iter(|| black_box(w.matmul(&h).unwrap())));
    c.bench_function("cholesky_solve_5x5_multi_rhs", |b| {
        b.iter(|| black_box(cholesky_solve(&gram, &rhs).unwrap()))
    });
    c.bench_function("ridge_solve_49x5", |b| {
        b.iter(|| black_box(ridge_solve(&h, &rng_matrix_49(), 0.2).unwrap()))
    });
    c.bench_function("eigen_sym_49", |b| {
        let g = small.t_matmul(&small).unwrap();
        b.iter(|| black_box(eigen_sym(&g).unwrap()))
    });
    c.bench_function("svd_thin_500x49", |b| b.iter(|| black_box(svd_thin(&small).unwrap())));
    c.bench_function("svd_thin_3133x49_fig14", |b| b.iter(|| black_box(svd_thin(&w).unwrap())));
}

fn rng_matrix_49() -> Mat {
    // Small deterministic RHS regenerated per call so the solve cannot be
    // hoisted by the optimizer.
    let mut rng = SeededRng::new(7);
    rng.uniform_mat(49, 8, 0.0, 1.0)
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
