//! Per-step selection cost of each exploration policy (LimeQO's step
//! includes the ALS completion — that is the metered overhead of Fig. 7).

use criterion::{criterion_group, criterion_main, Criterion};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::policy::{
    GreedyPolicy, LimeQoPolicy, Policy, PolicyCtx, QoAdvisorPolicy, RandomPolicy,
};
use limeqo_linalg::rng::SeededRng;
use std::hint::black_box;

fn workload_matrix(n: usize, fill: f64) -> (WorkloadMatrix, limeqo_linalg::Mat) {
    let mut rng = SeededRng::new(11);
    let q = rng.uniform_mat(n, 5, 0.1, 2.0);
    let h = rng.uniform_mat(49, 5, 0.1, 2.0);
    let truth = q.matmul_t(&h).unwrap();
    let est = rng.uniform_mat(n, 49, 1.0, 1e6);
    let mut wm = WorkloadMatrix::new(n, 49);
    for i in 0..n {
        wm.set_complete(i, 0, truth[(i, 0)]);
        for j in 1..49 {
            if rng.chance(fill) {
                wm.set_complete(i, j, truth[(i, j)]);
            }
        }
    }
    (wm, est)
}

fn bench_policy(c: &mut Criterion) {
    let (wm, est) = workload_matrix(1040, 0.1);
    let mut rng = SeededRng::new(12);

    c.bench_function("select_random_1040", |b| {
        let mut p = RandomPolicy;
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        b.iter(|| black_box(p.select(&ctx, 32, &mut rng)))
    });
    c.bench_function("select_greedy_1040", |b| {
        let mut p = GreedyPolicy;
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        b.iter(|| black_box(p.select(&ctx, 32, &mut rng)))
    });
    c.bench_function("select_qo_advisor_1040", |b| {
        let mut p = QoAdvisorPolicy;
        let ctx = PolicyCtx { wm: &wm, est_cost: Some(&est), store: None };
        b.iter(|| black_box(p.select(&ctx, 32, &mut rng)))
    });
    let mut group = c.benchmark_group("select_limeqo");
    group.sample_size(20);
    group.bench_function("limeqo_1040_with_als", |b| {
        let mut p = LimeQoPolicy::with_als(13);
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        b.iter(|| black_box(p.select(&ctx, 32, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
