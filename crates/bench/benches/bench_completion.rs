//! ALS vs SVT vs NUC on the JOB-sized matrix — the wall-clock axis of
//! Fig. 17 (paper: ALS fastest; NUC > 0.5 s even at 113 × 49).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limeqo_core::complete::{AlsCompleter, Completer, NucCompleter, SvtCompleter};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_linalg::rng::SeededRng;
use std::hint::black_box;

fn job_matrix(fill: f64) -> WorkloadMatrix {
    let mut rng = SeededRng::new(17);
    let q = rng.uniform_mat(113, 5, 0.1, 3.0);
    let h = rng.uniform_mat(49, 5, 0.1, 3.0);
    let truth = q.matmul_t(&h).unwrap();
    let mut wm = WorkloadMatrix::new(113, 49);
    for i in 0..113 {
        wm.set_complete(i, 0, truth[(i, 0)]);
        for j in 1..49 {
            if rng.chance(fill) {
                wm.set_complete(i, j, truth[(i, j)]);
            }
        }
    }
    wm
}

fn bench_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_completion_job");
    group.sample_size(10);
    for fill in [0.1f64, 0.3] {
        let wm = job_matrix(fill);
        group.bench_with_input(BenchmarkId::new("als", fill), &wm, |b, wm| {
            let mut m = AlsCompleter::paper_default(1);
            b.iter(|| black_box(m.complete(wm)));
        });
        group.bench_with_input(BenchmarkId::new("svt", fill), &wm, |b, wm| {
            let mut m = SvtCompleter::default();
            b.iter(|| black_box(m.complete(wm)));
        });
        group.bench_with_input(BenchmarkId::new("nuc", fill), &wm, |b, wm| {
            let mut m = NucCompleter::default();
            b.iter(|| black_box(m.complete(wm)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_completion);
criterion_main!(benches);
