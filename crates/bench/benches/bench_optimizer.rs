//! Simulated query optimizer: plan-search cost per query and per 49-hint
//! sweep (the substrate cost behind every oracle build).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limeqo_linalg::rng::SeededRng;
use limeqo_sim::catalog::{Catalog, CatalogSpec};
use limeqo_sim::executor::Executor;
use limeqo_sim::hints::{HintConfig, HintSpace};
use limeqo_sim::optimizer::Optimizer;
use limeqo_sim::query::{generate_query, JoinShape, QueryClass, QueryGenParams};
use std::hint::black_box;

fn setup(n_tables: usize) -> (Catalog, limeqo_sim::query::Query) {
    let cat = Catalog::generate(
        &CatalogSpec {
            name: "bench".into(),
            n_tables: 16,
            rows_range: (1e4, 1e7),
            width_range: (60.0, 300.0),
            index_prob: 0.5,
            fact_fraction: 0.3,
        },
        &mut SeededRng::new(5),
    );
    let q = generate_query(
        0,
        &QueryGenParams {
            class: QueryClass::NestLoopTrap,
            n_tables,
            shape: JoinShape::Chain,
            pred_sel_range: (0.01, 0.4),
            fanout: QueryGenParams::DEFAULT_FANOUT,
            pred_prob: 0.5,
            template: 0,
        },
        &cat,
        &mut SeededRng::new(6),
    );
    (cat, q)
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_one_query");
    for n in [3usize, 6, 10, 14] {
        let (cat, q) = setup(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let opt = Optimizer::new(&cat);
            b.iter(|| black_box(opt.plan(&q, HintConfig::default_hint())));
        });
    }
    group.finish();

    // Sweep all 49 hints for one query — the per-row oracle cost.
    let (cat, q) = setup(6);
    let space = HintSpace::all();
    c.bench_function("plan_49_hint_sweep", |b| {
        let opt = Optimizer::new(&cat);
        b.iter(|| {
            for h in space.configs() {
                black_box(opt.plan(&q, *h));
            }
        })
    });
    c.bench_function("plan_and_execute", |b| {
        let opt = Optimizer::new(&cat);
        let exec = Executor::new(&cat);
        b.iter(|| {
            let mut plan = opt.plan(&q, HintConfig::default_hint());
            black_box(exec.latency_seconds(&mut plan, &q, 0))
        })
    });
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
