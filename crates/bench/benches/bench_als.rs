//! Censored ALS completion at the paper's matrix sizes — the overhead side
//! of Fig. 7 (LimeQO's total overhead over 6 h was ~10 s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limeqo_core::complete::{AlsCompleter, Completer};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_linalg::rng::SeededRng;
use std::hint::black_box;

fn matrix_with_fill(n: usize, k: usize, fill: f64, seed: u64) -> WorkloadMatrix {
    let mut rng = SeededRng::new(seed);
    let q = rng.uniform_mat(n, 5, 0.1, 2.0);
    let h = rng.uniform_mat(k, 5, 0.1, 2.0);
    let truth = q.matmul_t(&h).unwrap();
    let mut wm = WorkloadMatrix::new(n, k);
    for i in 0..n {
        wm.set_complete(i, 0, truth[(i, 0)]);
        for j in 1..k {
            if rng.chance(fill) {
                wm.set_complete(i, j, truth[(i, j)]);
            } else if rng.chance(0.05) {
                wm.set_censored(i, j, truth[(i, j)] * 0.8);
            }
        }
    }
    wm
}

fn bench_als(c: &mut Criterion) {
    let mut group = c.benchmark_group("als_complete");
    group.sample_size(20);
    for (name, n) in [("job_113", 113), ("dsb_1040", 1040), ("ceb_3133", 3133)] {
        let wm = matrix_with_fill(n, 49, 0.1, 3);
        group.bench_with_input(BenchmarkId::from_parameter(name), &wm, |b, wm| {
            let mut als = AlsCompleter::paper_default(1);
            b.iter(|| black_box(als.complete(wm)));
        });
    }
    group.finish();

    // The parallel engine at the 10k×49 scale-scenario shape: serial vs
    // auto-threaded, byte-identical output (iters shortened — per-iteration
    // cost is what the thread fan-out divides).
    let wm = matrix_with_fill(10_000, 49, 0.08, 5);
    let mut group = c.benchmark_group("als_parallel_10k");
    group.sample_size(10);
    for (name, threads) in [("serial", 1usize), ("auto", 0usize)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &threads, |b, &t| {
            let mut als = AlsCompleter::paper_default(6);
            als.threads = t;
            als.iters = 10;
            b.iter(|| black_box(als.complete(&wm)));
        });
    }
    group.finish();

    // Rank scaling (Fig. 15's knob).
    let wm = matrix_with_fill(1040, 49, 0.15, 4);
    let mut group = c.benchmark_group("als_rank");
    group.sample_size(20);
    for rank in [1usize, 5, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, &r| {
            let mut als = AlsCompleter::with_rank(r, 2);
            b.iter(|| black_box(als.complete(&wm)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_als);
criterion_main!(benches);
