//! End-to-end exploration throughput: full LimeQO runs on a JOB-sized
//! simulated workload (how much wall time one offline exploration pass
//! costs, exclusive of the simulated clock).

use criterion::{criterion_group, criterion_main, Criterion};
use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::{GreedyPolicy, LimeQoPolicy, RandomPolicy};
use limeqo_sim::workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let mut w = WorkloadSpec::tiny(60, 99).build();
    let m = w.build_oracle();
    let oracle = MatOracle::new(m.true_latency.clone(), Some(m.est_cost.clone()));
    let budget = 2.0 * m.default_total;

    let mut group = c.benchmark_group("explore_tiny60_2x_default");
    group.sample_size(10);
    group.bench_function("random", |b| {
        b.iter(|| {
            let cfg = ExploreConfig { batch: 16, seed: 1, ..Default::default() };
            let mut ex = Explorer::new(&oracle, Box::new(RandomPolicy), cfg, 60);
            ex.run_until(budget);
            black_box(ex.workload_latency())
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let cfg = ExploreConfig { batch: 16, seed: 1, ..Default::default() };
            let mut ex = Explorer::new(&oracle, Box::new(GreedyPolicy), cfg, 60);
            ex.run_until(budget);
            black_box(ex.workload_latency())
        })
    });
    group.bench_function("limeqo", |b| {
        b.iter(|| {
            let cfg = ExploreConfig { batch: 16, seed: 1, ..Default::default() };
            let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(2)), cfg, 60);
            ex.run_until(budget);
            black_box(ex.workload_latency())
        })
    });
    group.finish();

    // Oracle construction cost (full JOB).
    let mut group = c.benchmark_group("oracle_build");
    group.sample_size(10);
    group.bench_function("job_113x49", |b| {
        b.iter(|| {
            let mut w = WorkloadSpec::job().build();
            black_box(w.build_oracle())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
