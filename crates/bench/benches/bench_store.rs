//! Observation-store hot paths: the per-probe bookkeeping
//! (`record_complete`/`record_censored`), the data-shift demotion sweep
//! (`demote_to_priors` touches every cell of the matrix), and the
//! density-gate scan that Algorithm 1 runs while a shifted matrix
//! recovers — all at the 10k-query scale of the `large-matrix-10k`
//! scenario, since a production deployment demotes its whole matrix at
//! once when the nightly statistics refresh lands.

use criterion::{criterion_group, criterion_main, Criterion};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::store::ObservationStore;
use limeqo_linalg::rng::SeededRng;
use std::hint::black_box;

const N: usize = 10_000;
const K: usize = 49;

/// A store with the default column complete and ~30 % of the remaining
/// cells observed (mixed complete/censored), like a matured exploration.
fn matured_store(seed: u64) -> ObservationStore {
    let mut rng = SeededRng::new(seed);
    let mut store = ObservationStore::new(WorkloadMatrix::new(N, K));
    for row in 0..N {
        store.record_complete(row, 0, rng.uniform(1.0, 10.0));
        for col in 1..K {
            if rng.chance(0.3) {
                if rng.chance(0.5) {
                    store.record_complete(row, col, rng.uniform(0.1, 5.0));
                } else {
                    store.record_censored(row, col, rng.uniform(0.1, 2.0));
                }
            }
        }
    }
    store
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("observation_store_10k_x_49");
    group.sample_size(10);

    group.bench_function("record_complete_sweep", |b| {
        let mut store = ObservationStore::new(WorkloadMatrix::new(N, K));
        b.iter(|| {
            for row in 0..N {
                store.record_complete(row, (row * 7) % K, 1.0 + (row % 13) as f64);
            }
            black_box(store.fresh_complete_count(N - 1))
        })
    });

    group.bench_function("demote_to_priors", |b| {
        let matured = matured_store(0xBE9C);
        b.iter(|| {
            let mut store = matured.clone();
            store.demote_to_priors(0.5);
            black_box(store.prior_count())
        })
    });

    group.bench_function("density_gate_scan", |b| {
        let mut store = matured_store(0xBE9D);
        store.demote_to_priors(0.5);
        b.iter(|| {
            // The gate's per-step work: find rows below the density
            // threshold (O(1) per row thanks to the store's counters).
            let need = (0.12 * K as f64).ceil() as u32;
            let starved = (0..N).filter(|&row| store.fresh_complete_count(row) < need).count();
            black_box(starved)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
