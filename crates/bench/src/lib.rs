//! Experiment harness for regenerating every table and figure of the
//! LimeQO paper.
//!
//! * [`harness`] — workload construction (with caching), technique
//!   registry, multi-seed exploration runs with crossbeam fan-out,
//! * [`report`] — text tables and CSV emission under `bench-results/`,
//! * one binary per table/figure in `src/bin/` (see DESIGN.md §5),
//! * Criterion benches in `benches/` for the computational-overhead axes.

pub mod figures;
pub mod harness;
pub mod report;

pub use harness::{
    build_oracle, run_bayes_qo, run_technique, run_techniques, technique_policy, Technique,
    WorkloadKind,
};
pub use report::{write_csv, Table};
