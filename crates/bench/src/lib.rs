//! Experiment harness for regenerating every table and figure of the
//! LimeQO paper.
//!
//! * [`harness`] — workload construction (with caching), technique
//!   registry, multi-seed exploration runs with crossbeam fan-out,
//! * [`scenario_runner`] — executes the declarative scenario matrix of
//!   `limeqo-sim::scenario` (drift schedules, hint shapes, online
//!   arrivals) and aggregates deterministic summaries for the golden
//!   regression suite (`src/bin/scenario.rs` is the CLI),
//! * [`fuzz`] — property-based scenario fuzzing: runs generated specs
//!   (from `limeqo_sim::scenario_fuzz`) through the runner, asserts the
//!   calibrated invariants, minimizes and dumps failures for replay,
//! * [`report`] — text tables, CSV and JSON emission (now with a minimal
//!   parser for self-checking emitted documents) under `bench-results/`,
//! * [`perf`] — the tracked perf trajectory: one-shot hot-path
//!   measurements emitted as `bench-results/BENCH_policy.json`
//!   (see PERF.md at the workspace root),
//! * one binary per table/figure in `src/bin/` (see DESIGN.md §5),
//! * Criterion benches in `benches/` for the computational-overhead axes.

#![warn(missing_docs)]

pub mod figures;
pub mod fuzz;
pub mod harness;
pub mod perf;
pub mod report;
pub mod scenario_runner;

pub use harness::{
    build_oracle, run_bayes_qo, run_technique, run_techniques, technique_policy, Technique,
    WorkloadKind,
};
pub use report::{write_csv, write_json, Json, Table};
pub use scenario_runner::{
    run_scenario, run_scenarios, verify_scenario_sharded, verify_scenario_via_engine,
    ScenarioOutcome,
};
