//! Regenerates the paper's fig10. See `limeqo_bench::figures::fig10`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig10::run(&opts);
}
