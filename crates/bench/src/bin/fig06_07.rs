//! Regenerates the paper's fig06_07. See `limeqo_bench::figures::fig06_07`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig06_07::run(&opts);
}
