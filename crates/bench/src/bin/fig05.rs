//! Regenerates the paper's fig05. See `limeqo_bench::figures::fig05`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig05::run(&opts);
}
