//! Regenerates the paper's fig16. See `limeqo_bench::figures::fig16`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig16::run(&opts);
}
