//! Regenerates the paper's fig09. See `limeqo_bench::figures::fig09`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig09::run(&opts);
}
