//! Step-by-step trace of LimeQO's exploration on JOB (diagnostic).

use limeqo_bench::harness::{build_oracle, WorkloadKind};
use limeqo_core::explore::Oracle;
use limeqo_core::matrix::Cell;
use limeqo_core::policy::{LimeQoPolicy, Policy, PolicyCtx};
use limeqo_core::WorkloadMatrix;
use limeqo_linalg::rng::SeededRng;

fn main() {
    let (_w, m, oracle) = build_oracle(WorkloadKind::Job, 1.0);
    let n = m.true_latency.rows();
    let k = m.true_latency.cols();
    let defaults: Vec<f64> = (0..n).map(|i| oracle.true_latency(i, 0)).collect();
    let mut wm = WorkloadMatrix::with_defaults(&defaults, k);
    let mut policy = LimeQoPolicy::with_als(1);
    let mut rng = SeededRng::new(2);
    let mut time = 0.0;
    for step in 0..25 {
        let sel = {
            let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
            policy.select(&ctx, 8, &mut rng)
        };
        if sel.is_empty() {
            println!("step {step}: nothing selected");
            break;
        }
        let mut complete = 0;
        let mut censor = 0;
        let mut spent = 0.0;
        let mut improved = 0;
        for c in &sel {
            let truth = oracle.true_latency(c.row, c.col);
            let row_best = wm.row_best(c.row).unwrap().1;
            if truth <= c.timeout {
                wm.set_complete(c.row, c.col, truth);
                complete += 1;
                spent += truth;
                if truth < row_best {
                    improved += 1;
                }
            } else {
                wm.set_censored(c.row, c.col, c.timeout);
                censor += 1;
                spent += c.timeout;
            }
        }
        time += spent;
        if step < 6 {
            for c in sel.iter().take(4) {
                let truth = oracle.true_latency(c.row, c.col);
                let row_best = wm.row_best(c.row).map(|(_, v)| v).unwrap_or(0.0);
                println!(
                    "    cell ({:3},{:2}) timeout={:8.3} truth={:8.3} row_best={:8.3} {}",
                    c.row,
                    c.col,
                    c.timeout,
                    truth,
                    row_best,
                    if truth <= c.timeout { "OK" } else { "CENSOR" }
                );
            }
        }
        let p: f64 = (0..wm.n_rows()).filter_map(|i| wm.row_best(i).map(|(_, v)| v)).sum();
        println!(
            "step {step:2}: sel={} complete={complete} censor={censor} improved={improved} spent={spent:7.2} time={time:8.2} P={p:7.2}",
            sel.len()
        );
    }
    let censored_total = (0..n)
        .flat_map(|i| (0..k).map(move |j| (i, j)))
        .filter(|&(i, j)| matches!(wm.cell(i, j), Cell::Censored(_)))
        .count();
    println!("total censored cells: {censored_total}");
}
