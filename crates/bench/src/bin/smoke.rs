//! End-to-end pipeline validation: run every technique on (scaled)
//! workloads and print where each lands at the paper's budget multiples.
//!
//! Usage: `smoke [workload] [scale] [--neural]`

use limeqo_bench::harness::{build_oracle, run_technique, Technique, WorkloadKind};
use limeqo_bench::report::fmt_secs;
use limeqo_tcnn::{TcnnConfig, WorkloadFeatures};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = args.get(1).and_then(|s| WorkloadKind::parse(s)).unwrap_or(WorkloadKind::Job);
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let neural = args.iter().any(|a| a == "--neural");

    let t0 = std::time::Instant::now();
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    println!(
        "{} n={} default={} optimal={} headroom={:.2}x  (built in {:.1?})",
        kind.name(),
        workload.n(),
        fmt_secs(matrices.default_total),
        fmt_secs(matrices.optimal_total),
        matrices.headroom(),
        t0.elapsed()
    );
    let default_time = matrices.default_total;
    let budgets = [0.25, 0.5, 1.0, 2.0, 4.0].map(|m| m * default_time);

    let mut techniques =
        vec![Technique::Random, Technique::Greedy, Technique::QoAdvisor, Technique::LimeQo];
    if neural {
        techniques.push(Technique::LimeQoPlus);
        techniques.push(Technique::BaoCache);
    }
    let tcnn_cfg = TcnnConfig::default();
    if neural {
        let tf = std::time::Instant::now();
        let _features = WorkloadFeatures::build(&workload);
        println!("featurization warm-up: {:.1?}", tf.elapsed());
    }
    println!(
        "{:>12} | {:>9} {:>9} {:>9} {:>9} {:>9} | overhead  wall",
        "technique", "0.25x", "0.5x", "1x", "2x", "4x"
    );
    for t in techniques {
        let tw = std::time::Instant::now();
        let curve = run_technique(t, &workload, &oracle, budgets[4], 16, 5, 1234, &tcnn_cfg);
        let row: Vec<String> = budgets.iter().map(|&b| fmt_secs(curve.latency_at(b))).collect();
        println!(
            "{:>12} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8} {:.1?}",
            t.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            fmt_secs(curve.overhead_at(budgets[4])),
            tw.elapsed()
        );
    }
    println!("(optimal = {})", fmt_secs(matrices.optimal_total));
}
