//! Run the named scenario matrix and emit a machine-readable summary.
//!
//!   cargo run --release -p limeqo-bench --bin scenario            # all fast
//!   cargo run --release -p limeqo-bench --bin scenario -- --list
//!   cargo run --release -p limeqo-bench --bin scenario -- --filter online
//!   cargo run --release -p limeqo-bench --bin scenario -- --scale  # 100k tier
//!   cargo run --release -p limeqo-bench --bin scenario -- --via-service
//!   cargo run --release -p limeqo-bench --bin scenario -- --dir scenarios
//!   cargo run --release -p limeqo-bench --bin scenario -- export scenarios
//!   cargo run --release -p limeqo-bench --bin scenario -- fuzz --seed 1 --count 8
//!   cargo run --release -p limeqo-bench --bin scenario -- fuzz --replay 42
//!   cargo run --release -p limeqo-bench --bin scenario -- fuzz --replay path/to/spec.json
//!
//! `--dir DIR` swaps the code registry for the file corpus in DIR
//! (`*.json` / `*.toml`, loaded with the `limeqo-sim` scenario loader). A
//! file that fails to parse or validate exits non-zero with the offending
//! path and line — the corpus is config, and config errors are user
//! errors, not panics.
//!
//! `export DIR` writes the code registry out as corpus files (a fixed
//! subset as TOML, the rest JSON, the 100k tier under `DIR/scale/`) —
//! the generator for the checked-in `scenarios/` directory.
//!
//! `fuzz` generates random-but-valid specs, runs each through the full
//! runner, and checks the calibrated invariants; failures are minimized
//! and dumped under `bench-results/fuzz-failures/` for replay.
//!
//! `--via-service` does not produce metrics: it replays every selected
//! scenario twice — once through the legacy harness drivers, once through
//! the raw engine event API the `limeqo-svc` daemon speaks — and exits
//! non-zero on the first bitwise trace divergence.
//!
//! Prints one table row per scenario and writes
//! `bench-results/scenarios.json` (array of per-scenario objects) plus
//! `bench-results/scenarios.csv`. The golden regression suite
//! (`tests/tests/scenarios.rs`) runs the same registry through the same
//! runner and pins the metrics in `tests/golden/scenarios.golden`.

use std::path::{Path, PathBuf};

use limeqo_bench::fuzz::{check_spec, minimize, run_fuzz};
use limeqo_bench::report::{fmt_secs, write_csv, write_json, Table};
use limeqo_bench::scenario_runner::{report_json, run_scenarios, verify_scenario_via_engine};
use limeqo_sim::scenario::{registry, scale_registry};
use limeqo_sim::scenario_fuzz::generate;
use limeqo_sim::{load_corpus, load_scenario, to_json_string, to_toml_string};

/// Registry scenarios exported as TOML instead of JSON, so the corpus
/// exercises both loaders end to end.
const TOML_EXPORTS: &[&str] = &["heavy-tail", "online-zipf", "data-shift-retained"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("export") => return cmd_export(args.get(1).map(String::as_str)),
        Some("fuzz") => return cmd_fuzz(&args[1..]),
        _ => {}
    }

    let list_only = args.iter().any(|a| a == "--list");
    let scale = args.iter().any(|a| a == "--scale");
    let via_service = args.iter().any(|a| a == "--via-service");
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    let filter = flag_value("--filter").unwrap_or_default();
    let corpus_dir = flag_value("--dir");

    // --dir swaps the code registry for the file corpus; --scale swaps in
    // the 100k-query tier (minutes, not seconds). The fast code registry
    // stays the default so `scenario` remains cheap.
    let base = match &corpus_dir {
        Some(dir) => match load_corpus(Path::new(dir)) {
            Ok(corpus) => corpus.into_iter().map(|(_, spec)| spec).collect(),
            Err(e) => {
                eprintln!("scenario: {e}");
                std::process::exit(2);
            }
        },
        None if scale => scale_registry(),
        None => registry(),
    };
    let specs: Vec<_> =
        base.into_iter().filter(|s| filter.is_empty() || s.name.contains(&filter)).collect();
    if specs.is_empty() {
        eprintln!("no scenario matches filter {filter:?}");
        std::process::exit(2);
    }
    if list_only {
        let mut table = Table::new("scenario registry", &["name", "policy", "n", "summary"]);
        for s in &specs {
            table.row(&[
                s.name.to_string(),
                s.policy.name().to_string(),
                format!("{}", s.workload.n_queries()),
                s.summary.to_string(),
            ]);
        }
        table.print();
        return;
    }

    if via_service {
        let mut table = Table::new("engine-API equivalence", &["scenario", "policy", "result"]);
        let mut failed = false;
        for spec in &specs {
            let result = verify_scenario_via_engine(spec);
            table.row(&[
                spec.name.to_string(),
                spec.policy.name().to_string(),
                match &result {
                    Ok(()) => "OK".to_string(),
                    Err(msg) => format!("FAIL: {msg}"),
                },
            ]);
            failed |= result.is_err();
        }
        table.print();
        if failed {
            eprintln!("[scenario] FAIL: engine event API diverged from the harness drivers");
            std::process::exit(1);
        }
        println!("[scenario] via-service: all {} scenarios byte-identical", specs.len());
        return;
    }

    let outcomes = run_scenarios(&specs);

    let mut table = Table::new(
        "scenario matrix",
        &[
            "scenario",
            "policy",
            "n",
            "k",
            "default",
            "optimal",
            "final",
            "vs random",
            "cells",
            "censored",
            "monotone",
        ],
    );
    let mut csv = vec![vec!["scenario".to_string(), "metric".to_string(), "value".to_string()]];
    for o in &outcomes {
        let final_latency = o.online.as_ref().map(|on| on.final_latency).unwrap_or(o.final_latency);
        table.row(&[
            o.name.clone(),
            o.policy.to_string(),
            format!("{}", o.n),
            format!("{}", o.k),
            fmt_secs(o.default_total),
            fmt_secs(o.optimal_total),
            fmt_secs(final_latency),
            o.random_final_latency.map(fmt_secs).unwrap_or_else(|| "-".into()),
            format!("{:.0}", o.cells_executed),
            format!("{:.0}", o.censored_cells),
            if o.monotone_ok { "yes".into() } else { "NO".into() },
        ]);
        for (k, v) in o.metrics() {
            let (name, metric) = k.split_once('.').expect("prefixed key");
            csv.push(vec![name.to_string(), metric.to_string(), format!("{v}")]);
        }
    }
    table.print();
    let out_name = if corpus_dir.is_some() {
        "scenarios-corpus"
    } else if scale {
        "scenarios-scale"
    } else {
        "scenarios"
    };
    let json_path = write_json(out_name, &report_json(&outcomes)).expect("write scenarios json");
    let csv_path = write_csv(out_name, &csv).expect("write scenarios csv");
    println!("[scenario] wrote {} and {}", json_path.display(), csv_path.display());

    if outcomes.iter().any(|o| !o.monotone_ok) {
        eprintln!("[scenario] FAIL: a latency trajectory regressed within a segment");
        std::process::exit(1);
    }
}

/// `scenario export [DIR]`: write the code registry as corpus files.
fn cmd_export(dir: Option<&str>) {
    let dir = PathBuf::from(dir.unwrap_or("scenarios"));
    let scale_dir = dir.join("scale");
    std::fs::create_dir_all(&scale_dir).expect("create export dirs");
    let mut written = 0usize;
    for spec in registry() {
        let toml = TOML_EXPORTS.contains(&spec.name.as_str());
        let ext = if toml { "toml" } else { "json" };
        let path = dir.join(format!("{}.{ext}", spec.name));
        let body = if toml { to_toml_string(&spec) } else { to_json_string(&spec) };
        std::fs::write(&path, body).expect("write corpus file");
        written += 1;
    }
    for spec in scale_registry() {
        let path = scale_dir.join(format!("{}.json", spec.name));
        std::fs::write(&path, to_json_string(&spec)).expect("write scale corpus file");
        written += 1;
    }
    println!("[scenario] exported {written} scenarios to {}", dir.display());
}

/// `scenario fuzz [--seed S] [--count N] [--out DIR] [--replay SEED|FILE]`.
fn cmd_fuzz(args: &[String]) {
    let flag_value =
        |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned();
    if let Some(target) = flag_value("--replay") {
        return cmd_fuzz_replay(&target);
    }
    let seed: u64 = flag_value("--seed").map_or(1, |v| v.parse().expect("--seed takes a u64"));
    let count: usize =
        flag_value("--count").map_or(64, |v| v.parse().expect("--count takes a number"));
    let out = flag_value("--out").unwrap_or_else(|| "bench-results/fuzz-failures".into());
    let report = run_fuzz(seed, count, Some(Path::new(&out)));
    if report.failures.is_empty() {
        println!(
            "[scenario] fuzz: {} specs (seeds {seed}..{}) satisfied every invariant",
            report.cases,
            seed + report.cases as u64 - 1
        );
        return;
    }
    for f in &report.failures {
        eprintln!(
            "[scenario] fuzz FAIL seed {}: {}",
            f.case_seed.expect("generated case"),
            f.original_reason
        );
        if f.reason != f.original_reason {
            eprintln!("  minimized to: {}", f.reason);
        }
        if let Some(p) = &f.dump_path {
            eprintln!("  minimized spec dumped to {} (replay with fuzz --replay)", p.display());
        }
    }
    eprintln!("[scenario] fuzz: {} of {} specs failed", report.failures.len(), report.cases);
    std::process::exit(1);
}

/// Replay one case: a generator seed, or a dumped/committed spec file.
fn cmd_fuzz_replay(target: &str) {
    let (spec, label) = if let Ok(seed) = target.parse::<u64>() {
        (generate(seed), format!("seed {seed}"))
    } else {
        match load_scenario(Path::new(target)) {
            Ok(spec) => (spec, target.to_string()),
            Err(e) => {
                eprintln!("scenario: {e}");
                std::process::exit(2);
            }
        }
    };
    match check_spec(&spec) {
        Ok(()) => println!("[scenario] fuzz replay {label}: every invariant holds"),
        Err(reason) => {
            let (minimized, min_reason) = minimize(&spec);
            eprintln!("[scenario] fuzz replay {label} FAILED: {reason}");
            eprintln!("  minimized ({min_reason}):");
            eprint!("{}", to_json_string(&minimized));
            std::process::exit(1);
        }
    }
}
