//! Run the named scenario matrix and emit a machine-readable summary.
//!
//!   cargo run --release -p limeqo-bench --bin scenario            # all fast
//!   cargo run --release -p limeqo-bench --bin scenario -- --list
//!   cargo run --release -p limeqo-bench --bin scenario -- --filter online
//!   cargo run --release -p limeqo-bench --bin scenario -- --scale  # 100k tier
//!   cargo run --release -p limeqo-bench --bin scenario -- --via-service
//!
//! `--via-service` does not produce metrics: it replays every selected
//! scenario twice — once through the legacy harness drivers, once through
//! the raw engine event API the `limeqo-svc` daemon speaks — and exits
//! non-zero on the first bitwise trace divergence.
//!
//! Prints one table row per scenario and writes
//! `bench-results/scenarios.json` (array of per-scenario objects) plus
//! `bench-results/scenarios.csv`. The golden regression suite
//! (`tests/tests/scenarios.rs`) runs the same registry through the same
//! runner and pins the metrics in `tests/golden/scenarios.golden`.

use limeqo_bench::report::{fmt_secs, write_csv, write_json, Table};
use limeqo_bench::scenario_runner::{report_json, run_scenarios, verify_scenario_via_engine};
use limeqo_sim::scenario::{registry, scale_registry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list_only = args.iter().any(|a| a == "--list");
    let scale = args.iter().any(|a| a == "--scale");
    let via_service = args.iter().any(|a| a == "--via-service");
    let filter = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_default();

    // --scale swaps in the 100k-query tier (minutes, not seconds); the
    // fast registry stays the default so `scenario` remains cheap.
    let base = if scale { scale_registry() } else { registry() };
    let specs: Vec<_> =
        base.into_iter().filter(|s| filter.is_empty() || s.name.contains(&filter)).collect();
    if specs.is_empty() {
        eprintln!("no scenario matches filter {filter:?}");
        std::process::exit(2);
    }
    if list_only {
        let mut table = Table::new("scenario registry", &["name", "policy", "n", "summary"]);
        for s in &specs {
            table.row(&[
                s.name.to_string(),
                s.policy.name().to_string(),
                format!("{}", s.workload.n_queries()),
                s.summary.to_string(),
            ]);
        }
        table.print();
        return;
    }

    if via_service {
        let mut table = Table::new("engine-API equivalence", &["scenario", "policy", "result"]);
        let mut failed = false;
        for spec in &specs {
            let result = verify_scenario_via_engine(spec);
            table.row(&[
                spec.name.to_string(),
                spec.policy.name().to_string(),
                match &result {
                    Ok(()) => "OK".to_string(),
                    Err(msg) => format!("FAIL: {msg}"),
                },
            ]);
            failed |= result.is_err();
        }
        table.print();
        if failed {
            eprintln!("[scenario] FAIL: engine event API diverged from the harness drivers");
            std::process::exit(1);
        }
        println!("[scenario] via-service: all {} scenarios byte-identical", specs.len());
        return;
    }

    let outcomes = run_scenarios(&specs);

    let mut table = Table::new(
        "scenario matrix",
        &[
            "scenario",
            "policy",
            "n",
            "k",
            "default",
            "optimal",
            "final",
            "vs random",
            "cells",
            "censored",
            "monotone",
        ],
    );
    let mut csv = vec![vec!["scenario".to_string(), "metric".to_string(), "value".to_string()]];
    for o in &outcomes {
        let final_latency = o.online.as_ref().map(|on| on.final_latency).unwrap_or(o.final_latency);
        table.row(&[
            o.name.clone(),
            o.policy.to_string(),
            format!("{}", o.n),
            format!("{}", o.k),
            fmt_secs(o.default_total),
            fmt_secs(o.optimal_total),
            fmt_secs(final_latency),
            o.random_final_latency.map(fmt_secs).unwrap_or_else(|| "-".into()),
            format!("{:.0}", o.cells_executed),
            format!("{:.0}", o.censored_cells),
            if o.monotone_ok { "yes".into() } else { "NO".into() },
        ]);
        for (k, v) in o.metrics() {
            let (name, metric) = k.split_once('.').expect("prefixed key");
            csv.push(vec![name.to_string(), metric.to_string(), format!("{v}")]);
        }
    }
    table.print();
    let out_name = if scale { "scenarios-scale" } else { "scenarios" };
    let json_path = write_json(out_name, &report_json(&outcomes)).expect("write scenarios json");
    let csv_path = write_csv(out_name, &csv).expect("write scenarios csv");
    println!("[scenario] wrote {} and {}", json_path.display(), csv_path.display());

    if outcomes.iter().any(|o| !o.monotone_ok) {
        eprintln!("[scenario] FAIL: a latency trajectory regressed within a segment");
        std::process::exit(1);
    }
}
