//! Regenerates the paper's fig17. See `limeqo_bench::figures::fig17`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig17::run(&opts);
}
