//! Regenerates the paper's fig12_13. See `limeqo_bench::figures::fig12_13`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig12_13::run(&opts);
}
