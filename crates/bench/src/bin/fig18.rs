//! Regenerates the paper's fig18. See `limeqo_bench::figures::fig18`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig18::run(&opts);
}
