//! Regenerates the paper's fig08. See `limeqo_bench::figures::fig08`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig08::run(&opts);
}
