//! Regenerates the paper's fig14. See `limeqo_bench::figures::fig14`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig14::run(&opts);
}
