//! Emit the tracked perf trajectory `bench-results/BENCH_policy.json`.
//!
//!   cargo run --release -p limeqo-bench --bin perf -- --smoke   # CI tier-1
//!   cargo run --release -p limeqo-bench --bin perf -- --full    # 10k×49
//!
//! Measures the completion-engine hot paths (serial vs parallel ALS,
//! store demotion, density-gate scan, Eq. 6 ranking scan, one end-to-end
//! scenario), writes the flat JSON report, then re-reads it through the
//! parser and validates `limeqo_bench::perf::REQUIRED_KEYS` — exiting
//! non-zero if the file is malformed. See PERF.md for how to diff the
//! trajectory across PRs.

use limeqo_bench::perf::{emit, PerfOpts, REQUIRED_KEYS};
use limeqo_bench::report::{fmt_secs, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = if args.iter().any(|a| a == "--full") {
        PerfOpts::full()
    } else if args.iter().any(|a| a == "--smoke") {
        PerfOpts::smoke()
    } else {
        eprintln!("usage: perf --smoke | --full");
        std::process::exit(2);
    };

    let path = match emit(&opts) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("[perf] FAIL: {e}");
            std::process::exit(1);
        }
    };
    let doc = Json::parse(&std::fs::read_to_string(&path).expect("just written"))
        .expect("just validated");
    println!("[perf] {} (schema ok, {} required keys)", path.display(), REQUIRED_KEYS.len());
    for key in [
        "als.serial_s",
        "als.parallel_s",
        "als.speedup",
        "als.blocked_s",
        "als.block_speedup",
        "als.incremental_s",
        "store.demote_s",
        "store.gate_scan_s",
        "policy.rank_scan_s",
        "policy.sample_s",
        "policy.topk_s",
        "scenario.end_to_end_s",
    ] {
        if let Some(v) = doc.get(key).and_then(Json::as_num) {
            if key.ends_with("speedup") {
                println!("[perf]   {key} = {v:.2}x");
            } else {
                println!("[perf]   {key} = {}", fmt_secs(v));
            }
        }
    }
    let full = doc.get("smoke") == Some(&Json::Bool(false));
    if let (Some(cores), Some(speedup)) =
        (doc.get("cores").and_then(Json::as_num), doc.get("als.speedup").and_then(Json::as_num))
    {
        // The acceptance bar: >= 2x ALS speedup at 10k×49 on >= 4 cores.
        // On smaller machines the parallel fit cannot possibly hit 2x, so
        // the gate is SKIPPED with a visible reason — never silently
        // passed as if it had been checked (`cores` is recorded in the
        // report so the skip is auditable after the fact).
        if full {
            if cores < 4.0 {
                println!(
                    "[perf] SKIP: als.speedup >= 2x gate needs >= 4 cores, this container \
                     has {cores} (speedup measured {speedup:.2}x)"
                );
            } else if speedup < 2.0 {
                eprintln!("[perf] FAIL: {cores} cores but ALS speedup only {speedup:.2}x (< 2x)");
                std::process::exit(1);
            }
        }
    }
    // The blocked-kernel floor is serial-vs-serial, so it is armed on
    // every --full run regardless of core count: cache blocking that
    // loses to the naive kernel at 10k×49 is a regression.
    if full {
        if let Some(block_speedup) = doc.get("als.block_speedup").and_then(Json::as_num) {
            if block_speedup < 1.0 {
                eprintln!(
                    "[perf] FAIL: blocked ALS slower than the naive serial kernel \
                     (als.block_speedup = {block_speedup:.2}x < 1x)"
                );
                std::process::exit(1);
            }
        }
    }
}
