//! Regenerates the paper's fig11. See `limeqo_bench::figures::fig11`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig11::run(&opts);
}
