//! Runs the entire experiment suite: Table 1 and every figure, writing all
//! CSV series under `bench-results/`. Accepts the common figure flags
//! (`--fast`, `--full`, `--seeds N`, `--batch N`).

use limeqo_bench::figures::{self, FigOpts};

fn main() {
    let opts = FigOpts::from_args();
    let t0 = std::time::Instant::now();
    type Step = (&'static str, fn(&FigOpts));
    let steps: [Step; 13] = [
        ("table1", figures::table1::run),
        ("fig05", figures::fig05::run),
        ("fig06_07", figures::fig06_07::run),
        ("fig08", figures::fig08::run),
        ("fig09", figures::fig09::run),
        ("fig10", figures::fig10::run),
        ("fig11", figures::fig11::run),
        ("fig12_13", figures::fig12_13::run),
        ("fig14", figures::fig14::run),
        ("fig15", figures::fig15::run),
        ("fig16", figures::fig16::run),
        ("fig17", figures::fig17::run),
        ("fig18", figures::fig18::run),
    ];
    for (name, f) in steps {
        let t = std::time::Instant::now();
        println!("\n==================== {name} ====================");
        f(&opts);
        println!("[{name}] finished in {:.1?}", t.elapsed());
    }
    println!("\nall experiments done in {:.1?}", t0.elapsed());
}
