//! Sweep Algorithm 1's timeout multiplier α on JOB and CEB-small to pick
//! the default (diagnostic; result recorded in DESIGN.md).

use limeqo_bench::harness::{build_oracle, WorkloadKind};
use limeqo_bench::report::fmt_secs;
use limeqo_core::explore::{ExploreConfig, Explorer};
use limeqo_core::policy::LimeQoPolicy;

fn main() {
    for (kind, scale) in [(WorkloadKind::Job, 1.0), (WorkloadKind::Ceb, 0.2)] {
        let (w, m, oracle) = build_oracle(kind, scale);
        println!(
            "\n{} n={} default={} optimal={}",
            kind.name(),
            w.n(),
            fmt_secs(m.default_total),
            fmt_secs(m.optimal_total)
        );
        let budgets = [0.25, 0.5, 1.0, 2.0, 4.0].map(|x| x * m.default_total);
        for alpha in [1.5, 2.0, 3.0, 5.0, 10.0, f64::INFINITY] {
            let mut lats = vec![];
            for seed in 0..3u64 {
                let mut policy = LimeQoPolicy::with_als(seed * 31 + 7);
                policy.alpha = alpha;
                let mut ex = Explorer::new(
                    &oracle,
                    Box::new(policy),
                    ExploreConfig { batch: 16, seed, ..Default::default() },
                    w.n(),
                );
                ex.run_until(budgets[4]);
                lats.push(ex.into_curve());
            }
            let at = |b: f64| {
                let v: f64 = lats.iter().map(|c| c.latency_at(b)).sum::<f64>() / lats.len() as f64;
                fmt_secs(v)
            };
            println!(
                "  alpha={alpha:>5}: {:>8} {:>8} {:>8} {:>8} {:>8}",
                at(budgets[0]),
                at(budgets[1]),
                at(budgets[2]),
                at(budgets[3]),
                at(budgets[4])
            );
        }
    }
}
