//! Regenerates the paper's table1. See `limeqo_bench::figures::table1`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::table1::run(&opts);
}
