//! Regenerates the paper's fig15. See `limeqo_bench::figures::fig15`.
fn main() {
    let opts = limeqo_bench::figures::FigOpts::from_args();
    limeqo_bench::figures::fig15::run(&opts);
}
